// Figure 7: TensorSSA speedup over eager (end-to-end) at different batch
// sizes, for the six workloads the paper sweeps.
//
// Paper shape to reproduce: speedup *grows* with batch for SSD, FCOS and
// seq2seq (the memory-intensive imperative share grows), and *shrinks* for
// YOLOv3, YOLACT and Attention (the compute-intensive share grows).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace tssa;
using bench::endToEndUs;
using bench::runSim;
using runtime::DeviceSpec;
using runtime::PipelineKind;

const std::vector<std::int64_t> kBatches = {1, 2, 4, 8, 16};
const std::vector<std::string> kWorkloads = {"yolov3", "ssd",     "yolact",
                                             "fcos",   "seq2seq", "attention"};

void printFigure7(bench::BenchReport& report) {
  std::printf("\n=== Figure 7: TensorSSA speedup over eager vs batch size "
              "(end-to-end, data-center) ===\n");
  std::printf("%-10s", "workload");
  for (std::int64_t b : kBatches) std::printf("  batch=%-6lld",
                                              static_cast<long long>(b));
  std::printf("  trend\n");
  bench::printRule(10 + 14 * static_cast<int>(kBatches.size()) + 7);

  const DeviceSpec device = DeviceSpec::dataCenter();
  for (const std::string& name : kWorkloads) {
    std::printf("%-10s", name.c_str());
    double eagerBatch1 = 0;
    std::vector<double> speedups;
    for (std::int64_t batch : kBatches) {
      workloads::WorkloadConfig config;
      config.batch = batch;
      config.seqLen = 32;
      workloads::Workload w = workloads::buildWorkload(name, config);
      const bench::SimResult eager = runSim(w, PipelineKind::Eager, device);
      const bench::SimResult tssa = runSim(w, PipelineKind::TensorSsa, device);
      if (batch == 1) eagerBatch1 = eager.imperativeUs;
      const double speedup =
          endToEndUs(name, eagerBatch1, batch, eager.imperativeUs) /
          endToEndUs(name, eagerBatch1, batch, tssa.imperativeUs);
      speedups.push_back(speedup);
      std::printf("  %-11.2fx", speedup);
      bench::BenchRecord rec;
      rec.name = "batch/" + name + "/b" + std::to_string(batch);
      rec.workload = name;
      rec.pipeline = "TensorSSA";
      rec.simUs = tssa.imperativeUs;
      rec.kernelLaunches = tssa.launches;
      rec.extra.emplace_back("speedup_vs_eager", speedup);
      rec.extra.emplace_back("eager_sim_us", eager.imperativeUs);
      report.add(std::move(rec));
    }
    std::printf("  %s\n", speedups.back() > speedups.front() ? "UP" : "DOWN");
  }
  std::printf("(paper: SSD/FCOS/seq2seq trend UP; YOLOv3/YOLACT/Attention "
              "trend DOWN)\n");
}

void BM_TensorSsaBatch(benchmark::State& state, std::string workload) {
  workloads::WorkloadConfig config;
  config.batch = state.range(0);
  config.seqLen = 16;
  workloads::Workload w = workloads::buildWorkload(workload, config);
  runtime::Pipeline pipeline(PipelineKind::TensorSsa, *w.graph,
                             DeviceSpec::dataCenter());
  for (auto _ : state) {
    auto out = pipeline.run(w.inputs);
    benchmark::DoNotOptimize(out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("fig7_batch_size", flags);
  printFigure7(report);
  for (const std::string& name : kWorkloads) {
    benchmark::RegisterBenchmark(
        ("batch_scaling/" + name).c_str(),
        [name](benchmark::State& s) { BM_TensorSsaBatch(s, name); })
        ->Arg(1)
        ->Arg(4)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(flags.reps);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report.finish();
  return 0;
}
