// Deterministic open-loop arrival traces for the sharded-serving benches.
//
// The generator is a pure function of (seed, index): every draw is a
// counter-based splitmix64 evaluation, never a stateful RNG, so the same
// TraceOptions produce bit-identical traces on every machine, run, and
// shard count — which is what lets bench/shard_scaling.cpp gate per-trace
// compile counts exactly in CI while still exercising a bursty,
// Poisson-like arrival process.
//
// Arrivals are open-loop: each request carries a scheduled offset `atUs`
// from trace start, independent of completions. Inter-arrival gaps are
// exponential (mean `meanGapUs`) with periodic bursts — every `burstEvery`
// arrivals, the next `burstLen` gaps shrink to `burstFactor` of the mean —
// so the tier sees both steady-state load and the queue spikes that trip
// admission control. Workload, batch, seqLen, and weight seed are drawn
// per request from small configured sets; diversifying `seeds` multiplies
// the distinct program keys (workloads x seeds), which is what spreads the
// trace across a consistent-hash ring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace tssa::bench {

/// One scheduled one-shot request.
struct TraceRequest {
  double atUs = 0;  ///< scheduled arrival offset from trace start
  std::string workload;
  workloads::WorkloadConfig config;  ///< batch / seqLen / seed
};

/// One scheduled decode session.
struct TraceSession {
  double atUs = 0;
  std::int64_t promptLen = 2;
  std::int64_t generate = 4;
  std::uint64_t promptSeed = 0;  ///< seed for DecodeScheduler::randomPrompt
};

struct TraceOptions {
  std::uint64_t seed = 1;  ///< trace identity; distinct seeds = distinct traces
  int requests = 64;       ///< one-shot arrivals to schedule
  double meanGapUs = 400;  ///< mean exponential inter-arrival gap
  /// Burst shape: every `burstEvery` arrivals, the following `burstLen`
  /// gaps use `burstFactor * meanGapUs` as their mean. burstEvery <= 0
  /// disables bursts.
  int burstEvery = 16;
  int burstLen = 4;
  double burstFactor = 0.25;
  /// Request mix. Defaults cover every registered one-shot workload; seeds
  /// beyond one multiply the distinct program keys (cache-affinity routing
  /// spreads keys, so more keys = better shard balance).
  std::vector<std::string> workloads;          ///< empty = all 8 registered
  std::vector<std::uint64_t> seeds = {42, 43, 44};
  std::vector<std::int64_t> batches = {1, 2, 4};
  std::vector<std::int64_t> seqLens = {8, 16, 24, 32};
  /// Decode-session schedule (generateSessions): open-loop at a fixed
  /// exponential gap, prompt/generate lengths drawn from small ranges.
  int decodeSessions = 0;
  double decodeGapUs = 800;
};

/// Counter-based uniform draw: splitmix64 of (seed, counter), mapped to
/// [0, 1). Pure function — the whole generator is replayable from indices.
double traceUniform(std::uint64_t seed, std::uint64_t counter);

/// Counter-based exponential draw with the given mean (inverse-CDF of the
/// uniform above). Used for inter-arrival gaps.
double traceExp(double meanUs, std::uint64_t seed, std::uint64_t counter);

/// The raw 64-bit counter-based draw behind both of the above.
std::uint64_t traceDraw(std::uint64_t seed, std::uint64_t counter);

/// The scheduled one-shot arrivals, sorted by atUs (construction order).
std::vector<TraceRequest> generateTrace(const TraceOptions& options);

/// The scheduled decode sessions (empty when decodeSessions == 0).
std::vector<TraceSession> generateSessions(const TraceOptions& options);

/// Number of distinct program keys the trace can touch (workloads x seeds) —
/// the exact tier-wide compile count when routing is cache-affine and no
/// request is retried onto a non-home shard.
std::size_t distinctKeyCount(const TraceOptions& options);

}  // namespace tssa::bench
