// Figure 5: end-to-end inference speedup over PyTorch eager for the eight
// imperative-tensor-program workloads, under all compared compilation
// pipelines, on both the consumer and the data-center platform.
//
// Paper shape to reproduce: TensorSSA is fastest on every workload; up to
// ~1.79x and ~1.34x on average over the *best* baseline; NLP / attention
// gains exceed CV gains.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/runtime/thread_pool.h"

namespace {

using namespace tssa;
using bench::endToEndUs;
using bench::runSim;
using runtime::DeviceSpec;
using runtime::PipelineKind;

void printFigure5(const DeviceSpec& device, const bench::BenchFlags& flags,
                  bench::BenchReport& report) {
  // Columns honor --pipeline; the simulation always runs every pipeline so
  // the eager anchor and best-baseline summary stay well-defined.
  const std::vector<PipelineKind> shown = flags.kinds();
  std::printf("\n=== Figure 5: speedup over eager (end-to-end), %s ===\n",
              device.name.c_str());
  std::printf("%-10s", "workload");
  for (PipelineKind kind : shown)
    std::printf(" %15s", std::string(pipelineName(kind)).c_str());
  std::printf(" %12s\n", "vs-best-base");
  bench::printRule(10 + 16 * static_cast<int>(shown.size()) + 13);

  workloads::WorkloadConfig config;
  config.batch = 1;
  config.seqLen = 64;

  std::vector<double> vsBestAll;
  double maxVsBest = 0;
  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload w = workloads::buildWorkload(name, config);
    std::map<PipelineKind, double> e2e;
    std::map<PipelineKind, std::int64_t> launches;
    double eagerImp = 0;
    for (PipelineKind kind : runtime::allPipelines()) {
      bench::SimResult r = runSim(w, kind, device);
      if (kind == PipelineKind::Eager) eagerImp = r.imperativeUs;
      e2e[kind] = r.imperativeUs;
      launches[kind] = r.launches;
    }
    for (auto& [kind, us] : e2e)
      us = endToEndUs(name, eagerImp, config.batch, us);
    for (PipelineKind kind : runtime::allPipelines()) {
      bench::BenchRecord rec;
      rec.name = "e2e/" + device.name + "/" + name + "/" +
                 std::string(pipelineName(kind));
      rec.workload = name;
      rec.pipeline = std::string(pipelineName(kind));
      rec.simUs = e2e[kind];
      rec.kernelLaunches = launches[kind];
      report.add(std::move(rec));
    }

    std::printf("%-10s", name.c_str());
    double bestBaseline = 1e300;
    for (PipelineKind kind : runtime::allPipelines()) {
      if (kind != PipelineKind::Eager && kind != PipelineKind::TensorSsa)
        bestBaseline = std::min(bestBaseline, e2e[kind]);
    }
    for (PipelineKind kind : shown)
      std::printf(" %14.2fx", e2e[PipelineKind::Eager] / e2e[kind]);
    const double vsBest = bestBaseline / e2e[PipelineKind::TensorSsa];
    vsBestAll.push_back(vsBest);
    maxVsBest = std::max(maxVsBest, vsBest);
    std::printf(" %11.2fx\n", vsBest);
  }
  std::printf("%-10s vs best baseline: geomean %.2fx, max %.2fx  "
              "(paper: 1.34x avg, 1.79x max)\n",
              "summary", bench::geomean(vsBestAll), maxVsBest);
}

std::size_t countParallelMaps(const ir::Graph& g) {
  std::size_t n = 0;
  std::vector<const ir::Block*> stack{g.topBlock()};
  while (!stack.empty()) {
    const ir::Block* b = stack.back();
    stack.pop_back();
    for (const ir::Node* node : *b) {
      if (node->kind() == ir::OpKind::ParallelMap) ++n;
      for (const ir::Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return n;
}

/// Wall-clock (not simulated) comparison of the threaded execution engine:
/// the same compiled TensorSSA program, run serially and with 4 workers.
/// Outputs and kernel-launch counts are asserted identical — threading is
/// unobservable except in time. Speedup > 1 requires actual CPU cores;
/// on a single-core host the two columns should be ~equal.
void printWallClock(const bench::BenchFlags& flags,
                    bench::BenchReport& report) {
  std::printf("\n=== Threaded executor: wall-clock, TensorSSA pipeline "
              "(threads=1 vs threads=%d, %d hardware threads, best of %d) "
              "===\n",
              flags.threads, runtime::ThreadPool::hardwareThreads(),
              flags.reps);
  std::printf("%-10s %8s %12s %12s %8s %9s %10s\n", "workload", "#parmap",
              "serial-us", "threaded-us", "speedup", "outputs", "launches");
  bench::printRule(76);

  workloads::WorkloadConfig config;
  config.batch = 8;
  config.seqLen = 64;
  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload w = workloads::buildWorkload(name, config);
    runtime::PipelineOptions serialOpts;
    serialOpts.threads = 1;
    runtime::PipelineOptions threadedOpts;
    threadedOpts.threads = flags.threads;
    runtime::Pipeline serial(PipelineKind::TensorSsa, *w.graph, serialOpts);
    runtime::Pipeline threaded(PipelineKind::TensorSsa, *w.graph,
                               threadedOpts);

    auto serialOut = serial.run(w.inputs);
    auto threadedOut = threaded.run(w.inputs);
    const bool outputsEq = bench::outputsBitwiseEqual(serialOut, threadedOut);
    const bool launchesEq = serial.profiler().kernelLaunches() ==
                                threaded.profiler().kernelLaunches() &&
                            serial.profiler().kernelHistogram() ==
                                threaded.profiler().kernelHistogram();

    const double serialUs = bench::wallClockUs(serial, w.inputs, flags.reps);
    const double threadedUs =
        bench::wallClockUs(threaded, w.inputs, flags.reps);
    std::printf("%-10s %8zu %12.0f %12.0f %7.2fx %9s %10s\n", name.c_str(),
                countParallelMaps(serial.compiled()), serialUs, threadedUs,
                serialUs / threadedUs, outputsEq ? "equal" : "DIFFER",
                launchesEq ? "equal" : "DIFFER");

    // The CI-gated records: real wall-clock of the actual executor, plus
    // deterministic launch counts and the arena-planner reuse rate. Launch
    // counts come from the single verification run above (wallClockUs reps
    // accumulate into the same profiler, but the count per run is constant,
    // so normalize by runs).
    const std::int64_t runsSerial = 1 + flags.reps;  // verify + reps
    const auto mem = serial.profiler().memoryCounters();
    const std::int64_t allocs = mem.freshAllocs + mem.reusedAllocs;
    for (int threaded01 = 0; threaded01 < 2; ++threaded01) {
      runtime::Pipeline& p = threaded01 ? threaded : serial;
      bench::BenchRecord rec;
      rec.name = "wallclock/" + name + (threaded01 ? "/threaded" : "/serial");
      rec.workload = name;
      rec.pipeline = "TensorSSA";
      rec.nsPerIter = (threaded01 ? threadedUs : serialUs) * 1000.0;
      rec.kernelLaunches = p.profiler().kernelLaunches() / runsSerial;
      rec.timeGated = true;
      if (!threaded01 && allocs > 0)
        rec.arenaReuseRate =
            static_cast<double>(mem.reusedAllocs) / static_cast<double>(allocs);
      rec.extra.emplace_back("outputs_equal", outputsEq ? 1 : 0);
      rec.extra.emplace_back("launches_equal", launchesEq ? 1 : 0);
      report.add(std::move(rec));
    }
  }
}

/// Real-CPU-time benchmark of the actual executor (compile once, run many).
void BM_PipelineRun(benchmark::State& state, std::string workload,
                    PipelineKind kind) {
  workloads::WorkloadConfig config;
  config.batch = 1;
  config.seqLen = 32;
  workloads::Workload w = workloads::buildWorkload(workload, config);
  runtime::Pipeline pipeline(kind, *w.graph, DeviceSpec::dataCenter());
  for (auto _ : state) {
    auto out = pipeline.run(w.inputs);
    benchmark::DoNotOptimize(out);
  }
  state.counters["kernel_launches"] =
      static_cast<double>(pipeline.profiler().kernelLaunches());
  state.counters["sim_us"] = pipeline.profiler().simTimeUs();
}

}  // namespace

int main(int argc, char** argv) {
  const tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("fig5_overall", flags);
  printFigure5(DeviceSpec::consumer(), flags, report);
  printFigure5(DeviceSpec::dataCenter(), flags, report);
  printWallClock(flags, report);

  for (const std::string& name : tssa::workloads::workloadNames()) {
    for (PipelineKind kind :
         {PipelineKind::Eager, PipelineKind::TensorSsa}) {
      if (!flags.enabled(kind)) continue;
      benchmark::RegisterBenchmark(
          (name + "/" + std::string(pipelineName(kind))).c_str(),
          [name, kind](benchmark::State& s) { BM_PipelineRun(s, name, kind); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(flags.reps);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report.finish();
  return 0;
}
