// Figure 6: kernel-launch counts during execution of each workload's
// imperative region under every compared system.
//
// Paper shape to reproduce: TensorSSA launches the fewest kernels for most
// workloads; on NASRNN and seq2seq Dynamo+Inductor can launch as few or
// fewer (trace-time loop unrolling fuses whole cells), yet TensorSSA remains
// faster end-to-end (Python dispatch overhead + layout effects).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace tssa;
using bench::runSim;
using runtime::DeviceSpec;
using runtime::PipelineKind;

void printFigure6(const bench::BenchFlags& flags,
                  bench::BenchReport& report) {
  const std::vector<PipelineKind> shown = flags.kinds();
  std::printf("\n=== Figure 6: kernel launch counts (imperative region) ===\n");
  std::printf("%-10s", "workload");
  for (PipelineKind kind : shown)
    std::printf(" %15s", std::string(pipelineName(kind)).c_str());
  std::printf("\n");
  bench::printRule(10 + 16 * static_cast<int>(shown.size()));

  workloads::WorkloadConfig config;
  config.batch = 1;
  config.seqLen = 64;
  const DeviceSpec device = DeviceSpec::dataCenter();

  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload w = workloads::buildWorkload(name, config);
    std::printf("%-10s", name.c_str());
    std::vector<std::int64_t> counts;
    for (PipelineKind kind : shown) {
      bench::SimResult r = runSim(w, kind, device);
      std::printf(" %15lld", static_cast<long long>(r.launches));
      counts.push_back(r.launches);
      bench::BenchRecord rec;
      rec.name = "launches/" + name + "/" + std::string(pipelineName(kind));
      rec.workload = name;
      rec.pipeline = std::string(pipelineName(kind));
      rec.simUs = r.imperativeUs;
      rec.kernelLaunches = r.launches;
      report.add(std::move(rec));
    }
    std::printf("\n");
  }
  if (shown.size() == runtime::allPipelines().size())
    std::printf("(columns follow the paper: eager, TS+NNC, TS+nvFuser, "
                "Dynamo+Inductor, TensorSSA)\n");
}

void BM_CountLaunches(benchmark::State& state, std::string workload) {
  workloads::WorkloadConfig config;
  config.seqLen = 32;
  workloads::Workload w = workloads::buildWorkload(workload, config);
  runtime::Pipeline pipeline(PipelineKind::TensorSsa, *w.graph,
                             DeviceSpec::dataCenter());
  for (auto _ : state) {
    auto out = pipeline.run(w.inputs);
    benchmark::DoNotOptimize(out);
  }
  state.counters["launches"] =
      static_cast<double>(pipeline.profiler().kernelLaunches());
}

}  // namespace

int main(int argc, char** argv) {
  const tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("fig6_kernel_launches", flags);
  printFigure6(flags, report);
  for (const std::string& name : tssa::workloads::workloadNames()) {
    benchmark::RegisterBenchmark(
        ("launches/" + name).c_str(),
        [name](benchmark::State& s) { BM_CountLaunches(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(flags.reps);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report.finish();
  return 0;
}
