// Decode-serving throughput bench: iteration-level continuous batching vs
// the naive run-to-completion baseline over the same open-loop arrival
// trace of mixed-length decode sessions.
//
// The trace is deterministic: session i has promptLen 2 + (3i mod 4) and
// generate 4 + (7i mod 21), submitted open-loop (fixed inter-arrival gap,
// independent of completions). Run-to-completion admits a wave and refuses
// new arrivals until the wave fully drains, so mixed generation lengths
// leave it stepping a lone straggler at occupancy 1; continuous batching
// back-fills the freed slots the very next iteration. The headline number
// is session-steps/sec — same work, same arrivals, only the scheduling
// policy differs.
//
// The second section is a deterministic KV-footprint run: N identical
// sessions admitted together, so the paged KV cache's high-water mark is
// exactly N x ceil(tokens/pageTokens) pages. That count is recorded as
// extra.kv_pages and gated EXACTLY by scripts/check_bench.py (like
// kernel_launches): any increase means the allocator started holding more
// pages for the same traffic. extra.kv_leaked (pages still in use after
// drain) is likewise gated at 0.
//
// Usage: decode_throughput [--reps=N] [--texpr-jit=0] [--json=PATH]
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/decode.h"

namespace {

using namespace tssa;
using serve::DecodeMetricsSnapshot;
using serve::DecodeOptions;
using serve::DecodeRequest;
using serve::DecodeResult;
using serve::DecodeScheduler;

struct SessionSpec {
  std::int64_t promptLen;
  std::int64_t generate;
};

/// Deterministic mixed-length trace (no RNG: the bench gate wants the same
/// session mix on every machine).
std::vector<SessionSpec> mixedTrace(int n) {
  std::vector<SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    specs.push_back({2 + (3 * i) % 4, 4 + (7 * i) % 21});
  return specs;
}

struct RunResult {
  DecodeMetricsSnapshot decode;
  serve::MetricsSnapshot engine;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

/// Submits `specs` open-loop (one session every `arrivalGapUs`, regardless
/// of completions) and drains.
RunResult runTrace(const DecodeOptions& options,
                   const std::vector<SessionSpec>& specs,
                   std::int64_t arrivalGapUs) {
  DecodeScheduler sched(options);
  std::vector<std::future<DecodeResult>> futures;
  futures.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    DecodeRequest r;
    r.prompt = DecodeScheduler::randomPrompt(specs[i].promptLen,
                                             1000 + static_cast<std::uint64_t>(i));
    r.generate = specs[i].generate;
    futures.push_back(sched.submit(std::move(r)));
    if (arrivalGapUs > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(arrivalGapUs));
  }
  RunResult out;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++out.completed;
    } catch (const std::exception&) {
      ++out.failed;
    }
  }
  sched.drain();
  out.decode = sched.metrics();
  out.engine = sched.engineMetrics();
  return out;
}

DecodeOptions traceOptions(const bench::BenchFlags& flags, bool continuous) {
  DecodeOptions o;
  o.pipeline.texprJit = flags.texprJit;
  o.maxStepBatch = 4;
  o.maxActiveSessions = 4;
  o.ctxBuckets = {8, 16, 32};
  o.kvPageTokens = 16;
  o.continuous = continuous;
  return o;
}

void printComparison(const bench::BenchFlags& flags,
                     bench::BenchReport& report) {
  const int sessions = 8 + 4 * flags.reps;
  const std::vector<SessionSpec> specs = mixedTrace(sessions);
  std::int64_t totalSteps = 0;
  for (const SessionSpec& s : specs) totalSteps += s.promptLen + s.generate - 1;

  std::printf("=== Decode serving: %d mixed-length sessions "
              "(prompt 2..5, generate 4..24), open-loop arrivals, "
              "maxActive=4, maxStepBatch=4 ===\n",
              sessions);
  std::printf("%-14s %9s %10s %10s %10s %10s %10s\n", "policy", "steps",
              "steps/s", "occupancy", "batch-sz", "completed", "rejected");
  bench::printRule(14 + 6 * 11 + 10);

  double continuousRate = 0;
  double r2cRate = 0;
  for (bool continuous : {false, true}) {
    const RunResult run =
        runTrace(traceOptions(flags, continuous), specs, /*arrivalGapUs=*/500);
    const DecodeMetricsSnapshot& m = run.decode;
    std::printf("%-14s %9llu %10.1f %10.2f %10.2f %10llu %10llu\n",
                continuous ? "continuous" : "run-to-compl",
                static_cast<unsigned long long>(m.steps), m.stepsPerSec,
                m.meanOccupancy, run.engine.meanBatchSize,
                static_cast<unsigned long long>(run.completed),
                static_cast<unsigned long long>(m.rejectedTotal()));
    (continuous ? continuousRate : r2cRate) = m.stepsPerSec;

    bench::BenchRecord rec;
    rec.name = std::string("decode/") + (continuous ? "continuous" : "r2c");
    rec.workload = "decode_step";
    rec.pipeline = "tensor-ssa";
    rec.extra.emplace_back("steps", static_cast<double>(m.steps));
    rec.extra.emplace_back("steps_per_s", m.stepsPerSec);
    rec.extra.emplace_back("mean_occupancy", m.meanOccupancy);
    rec.extra.emplace_back("mean_batch", run.engine.meanBatchSize);
    rec.extra.emplace_back("completed", static_cast<double>(run.completed));
    rec.extra.emplace_back("errors", static_cast<double>(run.failed));
    // Deterministically zero (no deadlines, unbounded queue and KV): the
    // gate fails if decode serving starts silently shedding.
    rec.extra.emplace_back("rejected",
                           static_cast<double>(m.rejectedTotal()));
    report.add(std::move(rec));
  }
  if (r2cRate > 0)
    std::printf("(continuous batching: %.2fx the run-to-completion "
                "steps/s over %lld total session-steps)\n",
                continuousRate / r2cRate,
                static_cast<long long>(totalSteps));
}

void printKvFootprint(const bench::BenchFlags& flags,
                      bench::BenchReport& report) {
  // N identical sessions admitted together: every session appends exactly
  // promptLen + generate - 1 = 28 tokens, so with 16-token pages the cache
  // must peak at exactly N x 2 pages — deterministically, independent of
  // scheduling, because equal-length sessions retire in lockstep. Gated
  // exactly in CI.
  constexpr int kSessions = 6;
  constexpr std::int64_t kPromptLen = 4;
  constexpr std::int64_t kGenerate = 25;

  DecodeOptions options;
  options.pipeline.texprJit = flags.texprJit;
  options.maxStepBatch = kSessions;
  options.maxActiveSessions = kSessions;
  options.ctxBuckets = {32};
  options.kvPageTokens = 16;

  const std::vector<SessionSpec> specs(
      kSessions, SessionSpec{kPromptLen, kGenerate});
  const RunResult run = runTrace(options, specs, /*arrivalGapUs=*/0);
  const KvCache::Stats& kv = run.decode.kv;

  std::printf("\n=== KV footprint: %d identical sessions x %lld tokens, "
              "16-token pages ===\n",
              kSessions, static_cast<long long>(kPromptLen + kGenerate - 1));
  std::printf("high water %lld pages (%lld expected), in use after drain "
              "%lld, allocs %lld, frees %lld, slab bytes %lld\n",
              static_cast<long long>(kv.pagesHighWater),
              static_cast<long long>(kSessions * 2),
              static_cast<long long>(kv.pagesInUse),
              static_cast<long long>(kv.pageAllocs),
              static_cast<long long>(kv.pageFrees),
              static_cast<long long>(kv.slabBytes));

  bench::BenchRecord rec;
  rec.name = "decode/kv_footprint";
  rec.workload = "decode_step";
  rec.pipeline = "tensor-ssa";
  rec.extra.emplace_back("kv_pages", static_cast<double>(kv.pagesHighWater));
  rec.extra.emplace_back("kv_leaked", static_cast<double>(kv.pagesInUse));
  rec.extra.emplace_back("completed", static_cast<double>(run.completed));
  rec.extra.emplace_back("rejected",
                         static_cast<double>(run.decode.rejectedTotal()));
  report.add(std::move(rec));
}

}  // namespace

int main(int argc, char** argv) {
  tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("decode_throughput", flags);
  printComparison(flags, report);
  printKvFootprint(flags, report);
  report.finish();
  return 0;
}
