// Autotuner win/loss bench (src/tune, DESIGN.md §15, ROADMAP item 5).
//
// Runs the full two-phase search — analytic Markov moves scored by the cost
// pass, then the measured shortlist — for every paper workload on the
// TensorSsa pipeline, and emits one tssa-bench-v1 record per workload plus a
// summary record. The records carry the tuner's own honesty evidence:
//
//   extra.tuned_sim_us / extra.default_sim_us   analytic scores; the gate in
//       scripts/check_bench.py fails any record where tuned > default (the
//       search seeds at the default, so a regression means a scoring bug);
//   extra.tuned_ns / extra.default_ns           measured best-of-N ns/iter
//       of the installed config vs the default heuristics;
//   extra.tuned_win                             1 when a non-default config
//       was installed (i.e. it measured strictly faster than the default);
//   summary extra.tuned_wins                    count of winning workloads,
//       gated against check_bench.py's TUNED_WINS_FLOOR.
//
// The binary itself exits non-zero if any tuned config scores worse than
// the default analytically, or if the tuned program's outputs are not
// bitwise identical to the default program's — either would mean the tuner
// traded correctness or honesty for speed, and no record should paper over
// that. Wall-clock fields stay time_gated=false: the win/loss *counts* are
// the gated signal, the raw times are for trend inspection.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/pipeline.h"
#include "src/tune/tuner.h"
#include "src/workloads/workload.h"

namespace {

using namespace tssa;

const std::vector<std::string>& benchWorkloads() {
  static const std::vector<std::string> names = {
      "attention", "lstm", "nasrnn", "seq2seq",
      "fcos",      "ssd",  "yolact", "yolov3"};
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::BenchFlags::parse(argc, argv);
  bench::BenchReport report("tune_search", flags);

  tune::TunerOptions tunerOpts;
  tunerOpts.seed = 1;
  tunerOpts.searchSteps = 48;
  tunerOpts.measureReps = std::max(flags.reps, 3);
  tune::Autotuner tuner(tunerOpts);

  workloads::WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 16;
  const runtime::PipelineOptions base;
  const tune::TunedConfig defaults = tune::TunedConfig::defaults(base);
  constexpr auto kind = runtime::PipelineKind::TensorSsa;

  std::printf("autotuner search, TensorSsa pipeline (batch=%lld, seqLen=%lld, "
              "seed=%llu, %d steps)\n",
              static_cast<long long>(config.batch),
              static_cast<long long>(config.seqLen),
              static_cast<unsigned long long>(tunerOpts.seed),
              tunerOpts.searchSteps);
  std::printf("%-10s %12s %12s %14s %14s %5s  %s\n", "workload",
              "default_sim", "tuned_sim", "default_ns", "tuned_ns", "win",
              "config");

  int wins = 0;
  bool failed = false;
  for (const std::string& name : benchWorkloads()) {
    const tune::TuneResult r = tuner.tune(name, config, kind, base);

    // Honesty check 1: the analytic winner must never score worse than the
    // default the search started from.
    if (r.tunedSimUs > r.defaultSimUs) {
      std::fprintf(stderr,
                   "FAIL %s: tuned simUs %.2f > default %.2f — the search "
                   "installed a config it scored worse than its seed\n",
                   name.c_str(), r.tunedSimUs, r.defaultSimUs);
      failed = true;
    }

    // Honesty check 2: the tuned program is the same program. Scheduling
    // knobs must not change a single output bit.
    const workloads::Workload w = workloads::buildWorkload(name, config);
    runtime::Pipeline defaultPipeline(kind, *w.graph, base);
    runtime::Pipeline tunedPipeline(kind, *w.graph,
                                    tuner.pipelineFor(name, kind, base));
    const auto expected = defaultPipeline.run(w.inputs);
    const auto got = tunedPipeline.run(w.inputs);
    if (!bench::outputsBitwiseEqual(expected, got)) {
      std::fprintf(stderr,
                   "FAIL %s: tuned outputs differ bitwise from default\n",
                   name.c_str());
      failed = true;
    }

    const bool win = !r.measurementFailed && !(r.config == defaults);
    if (win) ++wins;

    bench::BenchRecord rec;
    rec.name = "tune/" + name;
    rec.workload = name;
    rec.pipeline = std::string(runtime::pipelineName(kind));
    rec.simUs = r.tunedSimUs;
    rec.timeGated = false;  // win *counts* are gated, raw times are not
    rec.extra = {{"tuned_sim_us", r.tunedSimUs},
                 {"default_sim_us", r.defaultSimUs},
                 {"installed_sim_us", r.installedSimUs},
                 {"tuned_ns", r.tunedNsPerIter},
                 {"default_ns", r.defaultNsPerIter},
                 {"tuned_win", win ? 1.0 : 0.0},
                 {"unknown_ops", static_cast<double>(r.unknownOps)}};
    report.add(std::move(rec));

    std::printf("%-10s %11.1fus %11.1fus %13.0fns %13.0fns %5s  %s\n",
                name.c_str(), r.defaultSimUs, r.tunedSimUs, r.defaultNsPerIter,
                r.tunedNsPerIter, win ? "yes" : "no",
                r.config.toString().c_str());
  }

  bench::BenchRecord summary;
  summary.name = "summary";
  summary.extra = {
      {"tuned_wins", static_cast<double>(wins)},
      {"workloads", static_cast<double>(benchWorkloads().size())}};
  report.add(std::move(summary));
  std::printf("\n%d of %zu workloads measured faster under a tuned config\n",
              wins, benchWorkloads().size());

  report.finish();
  return failed ? 1 : 0;
}
