// Ablation: which part of TensorSSA buys what (§4.2 of the paper).
//
// Variants, applied cumulatively on top of the TorchScript VM host model:
//   baseline-fusion : no functionalization; NNC-style pointwise fusion only
//   +functionalize  : TensorSSA conversion (Algorithm 1), no new fusion scope
//   +vertical       : fusion may now cross former view/mutation points
//   +horizontal     : independent loops batched into ParallelMap
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/verifier.h"

namespace {

using namespace tssa;
using runtime::DeviceSpec;
using runtime::HostSpec;
using runtime::Profiler;

enum class Variant {
  BaselineFusion,
  Functionalize,
  Vertical,
  Horizontal,
};

const char* variantName(Variant v) {
  switch (v) {
    case Variant::BaselineFusion: return "baseline-fusion";
    case Variant::Functionalize: return "+functionalize";
    case Variant::Vertical: return "+vertical";
    case Variant::Horizontal: return "+horizontal";
  }
  return "?";
}

std::unique_ptr<ir::Graph> compileVariant(const ir::Graph& source,
                                          Variant variant) {
  auto graph = ir::cloneGraph(source);
  switch (variant) {
    case Variant::BaselineFusion:
      core::hoistConstants(*graph);
      core::fuseKernels(*graph, core::FusionPolicy::nnc());
      break;
    case Variant::Functionalize:
      core::lowerInplaceOps(*graph);
      core::convertToTensorSSA(*graph);
      core::hoistConstants(*graph);
      core::fuseKernels(*graph, core::FusionPolicy::nnc());
      break;
    case Variant::Vertical:
      core::lowerInplaceOps(*graph);
      core::convertToTensorSSA(*graph);
      core::readonlyViewsToAccess(*graph, core::FusionPolicy::tensorssa());
      core::hoistConstants(*graph);
      core::fuseKernels(*graph, core::FusionPolicy::tensorssa());
      core::markInplaceAssigns(*graph);
      break;
    case Variant::Horizontal:
      core::lowerInplaceOps(*graph);
      core::convertToTensorSSA(*graph);
      core::readonlyViewsToAccess(*graph, core::FusionPolicy::tensorssa());
      core::parallelizeLoops(*graph);
      core::hoistConstants(*graph);
      core::fuseKernels(*graph, core::FusionPolicy::tensorssa());
      core::markInplaceAssigns(*graph);
      break;
  }
  core::eliminateDeadCode(*graph);
  ir::verify(*graph);
  return graph;
}

void printAblation() {
  std::printf("\n=== Ablation: simulated latency (us, imperative region, "
              "data-center) ===\n");
  std::printf("%-10s %16s %16s %16s %16s\n", "workload", "baseline-fusion",
              "+functionalize", "+vertical", "+horizontal");
  tssa::bench::printRule(10 + 17 * 4);

  const std::vector<Variant> variants = {
      Variant::BaselineFusion, Variant::Functionalize, Variant::Vertical,
      Variant::Horizontal};
  workloads::WorkloadConfig config;
  config.batch = 1;
  config.seqLen = 64;
  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload w = workloads::buildWorkload(name, config);
    std::printf("%-10s", name.c_str());
    for (Variant v : variants) {
      auto graph = compileVariant(*w.graph, v);
      Profiler prof(DeviceSpec::dataCenter(), HostSpec::torchscriptVm());
      runtime::Interpreter interp(&prof);
      interp.run(*graph, w.inputs);
      std::printf(" %13.1fus", prof.simTimeUs());
    }
    std::printf("\n");
  }
  std::printf(
      "(each column adds one TensorSSA stage. Note that +functionalize alone "
      "is SLOWER than the baseline:\n materializing Access copies costs "
      "kernels until the widened fusion scope absorbs them — \n "
      "functionalization and fusion only pay off together, which is the "
      "paper's core argument.)\n");
}

void BM_CompileVariant(benchmark::State& state, std::string workload,
                       Variant variant) {
  workloads::WorkloadConfig config;
  config.seqLen = 32;
  workloads::Workload w = workloads::buildWorkload(workload, config);
  for (auto _ : state) {
    auto graph = compileVariant(*w.graph, variant);
    benchmark::DoNotOptimize(graph);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printAblation();
  // Compile-time cost of the full TensorSSA pipeline (it is a compiler;
  // compile latency matters for deployment).
  for (const std::string& name : {std::string("yolact"), std::string("lstm")}) {
    benchmark::RegisterBenchmark(
        ("compile/" + name + "/full").c_str(),
        [name](benchmark::State& s) {
          BM_CompileVariant(s, name, Variant::Horizontal);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
