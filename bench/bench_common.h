// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary prints the rows of one paper figure from the simulated
// device model (see DESIGN.md §1: kernels are priced by a launch-overhead +
// roofline model; numerics really execute on the CPU tensor library), and
// additionally registers google-benchmark timers over the real executor.
//
// End-to-end latency composition (Fig. 5/7): the paper reports end-to-end
// inference where the NN backbone runs under TensorRT — identical across all
// compared systems — and the imperative tensor program is the compared
// region (the paper states the imperative part reaches up to 90% of
// end-to-end time). We model the backbone as a per-workload latency
//
//     backbone(batch) = eager_imperative(batch=1) * share
//                         * ((1 - slope) + slope * batch)
//
// where `share` is the backbone's fraction of the imperative region at
// batch 1 and `slope` controls how strongly it scales with batch
// (compute-heavy backbones scale ~linearly; detection heads with fixed
// input resolution amortize). These two constants per workload are the only
// free parameters of the reproduction and are listed in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/runtime/pipeline.h"
#include "src/workloads/workload.h"

/// Injected by bench/CMakeLists.txt from `git rev-parse`; every bench JSON
/// record carries it so a CI artifact can be traced back to its commit.
#ifndef TSSA_GIT_SHA
#define TSSA_GIT_SHA "unknown"
#endif

namespace tssa::bench {

struct SimResult {
  double imperativeUs = 0;   ///< modelled latency of the compared region
  std::int64_t launches = 0; ///< kernel launches in the compared region
  double hostUs = 0;
  double gpuUs = 0;
};

inline SimResult runSim(const workloads::Workload& w,
                        runtime::PipelineKind kind,
                        const runtime::DeviceSpec& device) {
  runtime::Pipeline pipeline(kind, *w.graph, device);
  pipeline.run(w.inputs);
  SimResult r;
  r.imperativeUs = pipeline.profiler().simTimeUs();
  r.launches = pipeline.profiler().kernelLaunches();
  r.hostUs = pipeline.profiler().hostTimeUs();
  r.gpuUs = pipeline.profiler().gpuTimeUs();
  return r;
}

struct BackboneParams {
  double share;  ///< backbone / imperative-eager at batch 1
  double slope;  ///< batch-scaling weight in [0, 1]
};

/// Per-workload backbone constants (see header comment).
inline BackboneParams backboneParams(const std::string& workload) {
  static const std::map<std::string, BackboneParams> table = {
      {"yolov3", {0.28, 0.20}},  {"ssd", {0.30, 0.00}},
      {"yolact", {0.21, 0.20}},  {"fcos", {0.35, 0.00}},
      {"nasrnn", {0.010, 0.20}}, {"lstm", {0.014, 0.20}},
      {"seq2seq", {1.20, 0.00}}, {"attention", {0.078, 0.20}},
  };
  return table.at(workload);
}

/// Modelled backbone latency for a workload at a batch size, given the
/// measured batch-1 eager imperative latency on the same device.
inline double backboneUs(const std::string& workload, double eagerBatch1Us,
                         std::int64_t batch) {
  const BackboneParams p = backboneParams(workload);
  return eagerBatch1Us * p.share *
         ((1.0 - p.slope) + p.slope * static_cast<double>(batch));
}

/// End-to-end latency = backbone + imperative region.
inline double endToEndUs(const std::string& workload, double eagerBatch1Us,
                         std::int64_t batch, double imperativeUs) {
  return backboneUs(workload, eagerBatch1Us, batch) + imperativeUs;
}

/// Best-of-`reps` wall-clock time of one pipeline run, in microseconds.
/// (Min, not mean: scheduling noise only ever adds time.)
inline double wallClockUs(runtime::Pipeline& pipeline,
                          std::span<const runtime::RtValue> inputs,
                          int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto out = pipeline.run(inputs);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return best;
}

/// Bitwise equality of two output vectors (tensor outputs only).
inline bool outputsBitwiseEqual(const std::vector<runtime::RtValue>& a,
                                const std::vector<runtime::RtValue>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].isTensor() != b[i].isTensor()) return false;
    if (!a[i].isTensor()) continue;
    const Tensor& x = a[i].tensor();
    const Tensor& y = b[i].tensor();
    if (x.sizes() != y.sizes() || x.dtype() != y.dtype()) return false;
    for (IndexIterator it(x.sizes()); it.valid(); it.next()) {
      if (x.scalarAt(it.index()) != y.scalarAt(it.index())) return false;
    }
  }
  return true;
}

/// Command-line flags shared by every fig bench. Parsed (and stripped) from
/// argv before benchmark::Initialize sees it, so google-benchmark's own flags
/// keep working alongside:
///
///   --threads=N        worker threads for threaded-executor comparisons
///   --reps=N           repetitions per wall-clock / google-benchmark timing
///   --pipeline=NAME    only run pipelines whose name contains NAME
///                      (case-insensitive; e.g. "tensorssa", "eager", "ts")
///   --json=PATH        write a machine-readable tssa-bench-v1 result file
///                      (consumed by scripts/check_bench.py in CI)
///   --trace=PATH       enable obs::Tracer and write a Chrome trace_event
///                      JSON of the whole run (open in Perfetto)
///   --texpr-jit=0/1    force the texpr JIT off/on for the whole process
///                      (sets TSSA_TEXPR_JIT before any kernel runs; with 0
///                      every fused region goes through the interpreter)
struct BenchFlags {
  int threads = 4;
  int reps = 3;
  bool texprJit = true;        ///< --texpr-jit=0 disables native codegen
  std::string pipelineFilter;  ///< empty = all pipelines
  std::string jsonPath;        ///< empty = no JSON result file
  std::string tracePath;       ///< empty = tracing stays disabled

  /// True when `kind` passes the --pipeline filter.
  bool enabled(runtime::PipelineKind kind) const {
    if (pipelineFilter.empty()) return true;
    return lower(std::string(runtime::pipelineName(kind)))
               .find(lower(pipelineFilter)) != std::string::npos;
  }

  /// allPipelines() restricted to the --pipeline filter. Falls back to the
  /// full list when the filter matches nothing (a typo should not silently
  /// print empty figures).
  std::vector<runtime::PipelineKind> kinds() const {
    std::vector<runtime::PipelineKind> out;
    for (runtime::PipelineKind kind : runtime::allPipelines())
      if (enabled(kind)) out.push_back(kind);
    if (out.empty()) return runtime::allPipelines();
    return out;
  }

  /// Parses known flags out of argv, compacting it in place so later
  /// benchmark::Initialize(&argc, argv) only sees what it understands.
  static BenchFlags parse(int& argc, char** argv) {
    BenchFlags flags;
    int kept = 1;
    int jit = 1;
    bool jitSeen = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (consume(arg, "--texpr-jit=", jit)) {
        jitSeen = true;
        continue;
      }
      if (!consume(arg, "--threads=", flags.threads) &&
          !consume(arg, "--reps=", flags.reps) &&
          !consumeStr(arg, "--pipeline=", flags.pipelineFilter) &&
          !consumeStr(arg, "--json=", flags.jsonPath) &&
          !consumeStr(arg, "--trace=", flags.tracePath)) {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    flags.threads = std::max(flags.threads, 1);
    flags.reps = std::max(flags.reps, 1);
    if (jitSeen) {
      // texpr::jit::jitEnabled() latches TSSA_TEXPR_JIT on first use; parse()
      // runs at the top of main, well before the first kernel, so the flag
      // wins over an inherited environment either way.
      flags.texprJit = jit != 0;
      ::setenv("TSSA_TEXPR_JIT", flags.texprJit ? "1" : "0", 1);
    }
    return flags;
  }

 private:
  static std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  }
  static bool consume(const std::string& arg, const std::string& prefix,
                      int& out) {
    if (arg.rfind(prefix, 0) != 0) return false;
    out = std::atoi(arg.c_str() + prefix.size());
    return true;
  }
  static bool consumeStr(const std::string& arg, const std::string& prefix,
                         std::string& out) {
    if (arg.rfind(prefix, 0) != 0) return false;
    out = arg.substr(prefix.size());
    return true;
  }
};

/// One measurement in the tssa-bench-v1 schema. Fields < 0 mean "not
/// measured by this bench" and are omitted from the JSON. `timeGated`
/// marks ns_per_iter as stable enough for the CI regression gate (wall-clock
/// best-of-N over the real executor); ungated times are recorded for trend
/// inspection only. Kernel-launch counts are deterministic and always gated
/// exactly when present.
struct BenchRecord {
  std::string name;      ///< unique within the binary, e.g. "wallclock/lstm/serial"
  std::string workload;
  std::string pipeline;
  double nsPerIter = -1;
  double simUs = -1;
  std::int64_t kernelLaunches = -1;
  double arenaReuseRate = -1;
  bool timeGated = false;
  std::vector<std::pair<std::string, double>> extra;  ///< bench-specific scalars
};

/// Best-of-3 time of a fixed arithmetic loop, in nanoseconds. Written into
/// every result file so scripts/check_bench.py can compare wall-clock times
/// across machines: a CI runner half as fast as the baseline machine shows
/// ~2x calib_ns, and gated times are normalized by the ratio.
inline double calibrateNs() {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    double acc = 1.0;
    for (int i = 0; i < 2000000; ++i) acc = acc * 1.0000000001 + 1e-12;
    const auto t1 = std::chrono::steady_clock::now();
    // Fold the result into the timing decision so the loop cannot be
    // dead-code-eliminated.
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (acc < 0) ns += 1;
    best = std::min(best, ns);
  }
  return best;
}

/// Collects BenchRecords and, at finish(), writes the --json result file
/// and/or the --trace Chrome trace. Constructing the report enables the
/// tracer when --trace was given, so it must be created before the measured
/// work runs. With neither flag set, everything here is a no-op.
class BenchReport {
 public:
  BenchReport(std::string binary, const BenchFlags& flags)
      : binary_(std::move(binary)), flags_(flags) {
    if (!flags_.tracePath.empty()) {
      obs::Tracer::instance().enable();
      obs::Tracer::instance().clear();
    }
  }

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Writes the artifacts. Call once, at the end of main.
  void finish() const {
    if (!flags_.tracePath.empty()) {
      obs::Tracer& tracer = obs::Tracer::instance();
      tracer.writeChromeTrace(flags_.tracePath);
      std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                   tracer.spanCount(), flags_.tracePath.c_str());
    }
    if (flags_.jsonPath.empty()) return;
    std::FILE* f = std::fopen(flags_.jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   flags_.jsonPath.c_str());
      return;
    }
    std::fputs(toJson().c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu bench records to %s\n", records_.size(),
                 flags_.jsonPath.c_str());
  }

  std::string toJson() const {
    std::string out;
    out += "{\n  \"schema\": \"tssa-bench-v1\",\n";
    out += "  \"binary\": " + obs::jsonQuote(binary_) + ",\n";
    out += "  \"git_sha\": " + obs::jsonQuote(TSSA_GIT_SHA) + ",\n";
    out += "  \"threads\": " +
           obs::jsonNumber(static_cast<std::int64_t>(flags_.threads)) + ",\n";
    out += "  \"reps\": " +
           obs::jsonNumber(static_cast<std::int64_t>(flags_.reps)) + ",\n";
    out += "  \"calib_ns\": " + obs::jsonNumber(calibrateNs()) + ",\n";
    out += "  \"results\": [";
    bool firstRecord = true;
    for (const BenchRecord& r : records_) {
      out += firstRecord ? "\n" : ",\n";
      firstRecord = false;
      out += "    {\"name\": " + obs::jsonQuote(r.name);
      out += ", \"workload\": " + obs::jsonQuote(r.workload);
      out += ", \"pipeline\": " + obs::jsonQuote(r.pipeline);
      out += std::string(", \"time_gated\": ") +
             (r.timeGated ? "true" : "false");
      if (r.nsPerIter >= 0)
        out += ", \"ns_per_iter\": " + obs::jsonNumber(r.nsPerIter);
      if (r.simUs >= 0) out += ", \"sim_us\": " + obs::jsonNumber(r.simUs);
      if (r.kernelLaunches >= 0)
        out += ", \"kernel_launches\": " + obs::jsonNumber(r.kernelLaunches);
      if (r.arenaReuseRate >= 0)
        out += ", \"arena_reuse_rate\": " + obs::jsonNumber(r.arenaReuseRate);
      if (!r.extra.empty()) {
        out += ", \"extra\": {";
        bool firstExtra = true;
        for (const auto& [key, value] : r.extra) {
          if (!firstExtra) out += ", ";
          firstExtra = false;
          out += obs::jsonQuote(key) + ": " + obs::jsonNumber(value);
        }
        out += "}";
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

 private:
  std::string binary_;
  BenchFlags flags_;
  std::vector<BenchRecord> records_;
};

inline double geomean(const std::vector<double>& xs) {
  double acc = 0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace tssa::bench
