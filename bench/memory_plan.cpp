// Memory-planner benchmark: steady-state allocation behaviour of the
// liveness-driven arena (DESIGN.md §8).
//
// For each workload compiled through the TensorSsa pipeline this prints the
// cold-run allocation counters (run 1: the pool is empty, everything is a
// fresh heap allocation) against the steady-state counters (run 4: the pool
// holds the previous runs' buffers), plus the resulting reduction factor in
// heap allocations per run. The acceptance bar for the planner is a >= 10x
// steady-state reduction on at least one fused workload.
//
// The google-benchmark timers then measure real wall clock of repeated runs
// with the planner on vs. off, on the fused workloads where the allocation
// churn is concentrated.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/pipeline.h"
#include "src/workloads/workload.h"

namespace {

using namespace tssa;

runtime::PipelineOptions optionsWithPlan(bool plan) {
  runtime::PipelineOptions o;
  o.memoryPlan = plan;
  return o;
}

const std::vector<std::string>& benchWorkloads() {
  static const std::vector<std::string> names = {
      "attention", "lstm", "nasrnn", "seq2seq",
      "fcos",      "ssd",  "yolact", "yolov3"};
  return names;
}

void printAllocationTable() {
  std::printf(
      "steady-state allocation counters, TensorSsa pipeline "
      "(batch=2, seqLen=16)\n");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "workload", "cold_fresh",
              "warm_fresh", "warm_reused", "warm_recycled", "reduction");
  for (const std::string& name : benchWorkloads()) {
    workloads::Workload w =
        workloads::buildWorkload(name, {.batch = 2, .seqLen = 16});
    runtime::Pipeline pipeline(runtime::PipelineKind::TensorSsa, *w.graph,
                               optionsWithPlan(true));
    pipeline.run(w.inputs);
    const auto cold = pipeline.profiler().memoryCounters();
    pipeline.run(w.inputs);
    pipeline.run(w.inputs);
    pipeline.run(w.inputs);
    const auto warm = pipeline.profiler().memoryCounters();
    const double reduction =
        warm.freshAllocs > 0
            ? static_cast<double>(cold.freshAllocs) /
                  static_cast<double>(warm.freshAllocs)
            : static_cast<double>(cold.freshAllocs);
    std::printf("%-10s %12lld %12lld %12lld %12lld %9.1fx\n", name.c_str(),
                static_cast<long long>(cold.freshAllocs),
                static_cast<long long>(warm.freshAllocs),
                static_cast<long long>(warm.reusedAllocs),
                static_cast<long long>(warm.recycled), reduction);
  }
  std::printf("\n");
}

void BM_WorkloadRun(benchmark::State& state, const std::string& name,
                    bool plan) {
  workloads::Workload w =
      workloads::buildWorkload(name, {.batch = 2, .seqLen = 16});
  runtime::Pipeline pipeline(runtime::PipelineKind::TensorSsa, *w.graph,
                             optionsWithPlan(plan));
  pipeline.run(w.inputs);  // warm up: compile kernels, fill the pool
  for (auto _ : state) {
    auto outputs = pipeline.run(w.inputs);
    benchmark::DoNotOptimize(outputs);
  }
  const auto counters = pipeline.profiler().memoryCounters();
  state.counters["fresh"] = static_cast<double>(counters.freshAllocs);
  state.counters["reused"] = static_cast<double>(counters.reusedAllocs);
}

void registerBenchmarks() {
  for (const std::string& name : {std::string("attention"),
                                  std::string("lstm"),
                                  std::string("nasrnn")}) {
    benchmark::RegisterBenchmark(("BM_" + name + "/plan:on").c_str(),
                                 [name](benchmark::State& s) {
                                   BM_WorkloadRun(s, name, true);
                                 });
    benchmark::RegisterBenchmark(("BM_" + name + "/plan:off").c_str(),
                                 [name](benchmark::State& s) {
                                   BM_WorkloadRun(s, name, false);
                                 });
  }
}

}  // namespace

int main(int argc, char** argv) {
  printAllocationTable();
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
