// Shard-scaling bench: the Router tier (src/serve/router.h) under a
// deterministic bursty open-loop trace (bench/trace_gen.h), 1 vs 2 vs 4
// shards. Four sections, each a tssa-bench-v1 record gated in CI:
//
//   * scaling — the same overload trace against 1/2/4 shards. Each Engine
//     models ONE simulated device (DESIGN.md §1: kernels are costed
//     analytically; numerics run on host), so tier throughput is measured
//     over the SIMULATED clock: a shard's busy time is its accumulated
//     profiler sim time (MetricsSnapshot::simBusyUs), and the tier's
//     makespan is the busiest shard — work-conserving shards under
//     overload retire their queues back-to-back. This is deterministic and
//     machine-independent, unlike wall clock on a host with fewer cores
//     than shards (this bench must hold on a 1-core CI runner, where four
//     shards' host work serializes and wall time cannot scale). Wall-clock
//     rps/p99 are still recorded as trend data. Meanwhile the tier-wide
//     compile count stays EXACTLY flat (cache-affinity routing — every
//     program key compiles once, on its home shard, whatever the shard
//     count). extra.compiles is exact-gated; the bench itself exits
//     nonzero unless the 4-shard run clears 2.5x the 1-shard simulated
//     throughput.
//   * decode mix — one-shot traffic plus decode sessions on a 2-shard
//     tier with decode enabled: all sessions share the polymorphic
//     decode_step key's home shard, compiles stay exact, no KV page leaks,
//     nothing shed.
//   * shed burst — a same-key burst into bounded queues with one retry
//     hop: the home shard sheds, the ring neighbor absorbs, the rest is
//     refused. Rejections are expected here (the record's rejected count
//     is nonzero in the baseline, so the stays-zero gate does not apply).
//   * drain + roll — serial rolling-restart walkthrough: drain the home
//     shard (traffic hops over without consuming retry budget), restart it
//     fresh, traffic returns. Deterministic compile arithmetic, zero
//     errors.
//
// Usage: shard_scaling [--reps=N] [--texpr-jit=0] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/trace_gen.h"
#include "src/serve/router.h"

namespace {

using namespace tssa;
using serve::DecodeRequest;
using serve::DecodeResult;
using serve::DecodeScheduler;
using serve::Request;
using serve::Response;
using serve::Router;
using serve::RouterOptions;

using Clock = std::chrono::steady_clock;

/// The distinct program keys a trace touches — with cache-affine routing
/// and no retries, this is the exact tier-wide compile count at any shard
/// count.
std::set<std::string> distinctKeys(const std::vector<bench::TraceRequest>& t) {
  std::set<std::string> keys;
  for (const bench::TraceRequest& r : t)
    keys.insert(r.workload + "|" + std::to_string(r.config.seed));
  return keys;
}

/// Pre-materialized request payloads, one per trace entry, deduped by
/// (workload, batch, seqLen, seed). Building a workload's example inputs
/// walks the whole graph builder — leaving it to Engine::submit's
/// default-filling would serialize ~40ms per request on the submitting
/// thread and cap the open-loop rate far below what the shards can absorb.
/// Real clients send concrete tensors; the bench does the same.
class PayloadSet {
 public:
  explicit PayloadSet(const std::vector<bench::TraceRequest>& trace) {
    payloads_.reserve(trace.size());
    std::map<std::string, std::vector<runtime::RtValue>> cache;
    for (const bench::TraceRequest& r : trace) {
      const std::string key = r.workload + "|" + std::to_string(r.config.batch) +
                              "|" + std::to_string(r.config.seqLen) + "|" +
                              std::to_string(r.config.seed);
      auto it = cache.find(key);
      if (it == cache.end())
        it = cache.emplace(key, serve::Engine::defaultInputs(r.workload,
                                                             r.config)).first;
      payloads_.push_back(it->second);  // tensors share storage; copies are cheap
    }
  }
  Request request(const std::vector<bench::TraceRequest>& trace,
                  std::size_t i) const {
    Request req;
    req.workload = trace[i].workload;
    req.config = trace[i].config;
    req.inputs = payloads_[i];
    return req;
  }

 private:
  std::vector<std::vector<runtime::RtValue>> payloads_;
};

/// Sleep until `atUs` past `t0` (open-loop: the schedule never waits for
/// completions).
void holdUntil(Clock::time_point t0, double atUs) {
  std::this_thread::sleep_until(
      t0 + std::chrono::microseconds(static_cast<std::int64_t>(atUs)));
}

struct TraceRun {
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  double elapsedUs = 0;  ///< first submit -> every future settled + drained
};

/// Plays the whole trace open-loop against `router` and settles every
/// future.
TraceRun playTrace(Router& router, const std::vector<bench::TraceRequest>& trace,
                   const PayloadSet& payloads) {
  std::vector<std::future<Response>> futures;
  futures.reserve(trace.size());
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    holdUntil(t0, trace[i].atUs);
    futures.push_back(router.submit(payloads.request(trace, i)));
  }
  TraceRun run;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++run.served;
    } catch (const serve::RejectedError&) {
      ++run.rejected;
    } catch (const std::exception&) {
      ++run.errors;
    }
  }
  router.drain();
  run.elapsedUs =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  return run;
}

/// Shard-tier engine options shared by every section: one worker per
/// shard (scaling must come from shard count, not intra-shard
/// parallelism), a cache big enough that no key is ever evicted.
serve::EngineOptions shardEngineOptions(const bench::BenchFlags& flags) {
  serve::EngineOptions o;
  o.pipeline.texprJit = flags.texprJit;
  o.pipeline.threads = 1;
  o.executeConcurrency = 1;
  o.maxBatch = 4;
  o.maxWaitUs = 200;
  o.cacheCapacity = 64;
  return o;
}

// ---- Section 1: throughput scaling, compile flatness ----------------------

bool printScaling(const bench::BenchFlags& flags, bench::BenchReport& report) {
  bench::TraceOptions to;
  to.seed = 40;
  to.requests = 64 * flags.reps;
  // Six weight seeds x 8 workloads = 48 possible program keys: per-request
  // device cost varies ~50x across workloads (seq2seq dwarfs attention), so
  // the trace needs enough distinct ring points that no shard inherits an
  // outsized share of the expensive keys. Placement is deterministic, so
  // balance is a property of the trace, fixed once here.
  to.seeds = {42, 43, 44, 45, 46, 47};
  to.meanGapUs = 150;  // arrivals far outpace one serial shard: overload
  const std::vector<bench::TraceRequest> trace = bench::generateTrace(to);
  const PayloadSet payloads(trace);
  const std::size_t keys = distinctKeys(trace).size();

  std::printf("=== Shard scaling: %zu requests over %zu program keys "
              "(8 workloads x %zu seeds), open-loop bursty arrivals ===\n",
              trace.size(), keys, to.seeds.size());
  std::printf("(throughput over the simulated device clock: one modelled "
              "device per shard,\n tier makespan = busiest shard; wall "
              "columns are host-dependent trend data)\n");
  std::printf("%7s %9s %12s %10s %11s %9s %10s %14s\n", "shards", "served",
              "sim-busy-ms", "sim-rps", "wall-rps", "p99-ms", "compiles",
              "per-shard");
  bench::printRule(7 + 10 + 13 + 11 + 12 + 10 + 11 + 15);

  double makespan1 = 0;
  double makespan4 = 0;
  for (int shards : {1, 2, 4}) {
    RouterOptions ro;
    ro.shards = shards;
    // Retries trade a duplicate compile for availability; the queues here
    // are unbounded, so zero hops keeps the compile count exact.
    ro.maxRetryHops = 0;
    ro.engine = shardEngineOptions(flags);
    // One request per executed batch: coalescing depends on arrival races,
    // and a batched run's sim time differs from the sum of its members'
    // solo runs — maxBatch=1 makes each shard's sim busy time a pure
    // function of routing, identical on every host.
    ro.engine.maxBatch = 1;
    Router router(ro);
    const TraceRun run = playTrace(router, trace, payloads);

    const std::vector<serve::MetricsSnapshot> perShard = router.shardMetrics();
    std::uint64_t compiles = 0;
    std::uint64_t fallbacks = 0;
    double simTotalUs = 0;
    double simMakespanUs = 0;  // busiest simulated device
    std::string spread;
    for (const serve::MetricsSnapshot& m : perShard) {
      compiles += m.cacheCompiles;
      fallbacks += m.fallbackRequests;
      simTotalUs += m.simBusyUs;
      simMakespanUs = std::max(simMakespanUs, m.simBusyUs);
      spread += (spread.empty() ? "" : "/") + std::to_string(m.cacheCompiles);
    }
    const serve::MetricsSnapshot merged = router.mergedMetrics();
    const double wallRps = 1e6 * static_cast<double>(run.served) / run.elapsedUs;
    const double simRps =
        simMakespanUs > 0
            ? 1e6 * static_cast<double>(run.served) / simMakespanUs
            : 0;
    if (shards == 1) makespan1 = simMakespanUs;
    if (shards == 4) makespan4 = simMakespanUs;

    std::printf("%7d %9llu %12.1f %10.0f %11.0f %9.1f %10llu %14s\n", shards,
                static_cast<unsigned long long>(run.served),
                simMakespanUs * 1e-3, simRps, wallRps,
                merged.total.p99Us * 1e-3,
                static_cast<unsigned long long>(compiles), spread.c_str());

    bench::BenchRecord rec;
    rec.name = "shard/scale_s" + std::to_string(shards);
    rec.workload = "mix8";
    rec.pipeline = "tensor-ssa";
    rec.extra.emplace_back("shards", static_cast<double>(shards));
    rec.extra.emplace_back("served", static_cast<double>(run.served));
    // The headline scaling metric: simulated-device makespan and the
    // throughput it implies. simTotalUs is the same at every shard count
    // (the same requests run the same programs); only its split across
    // devices changes — that invariant is visible across the three records.
    rec.extra.emplace_back("sim_makespan_us", simMakespanUs);
    rec.extra.emplace_back("sim_total_us", simTotalUs);
    rec.extra.emplace_back("sim_rps", simRps);
    // Host-dependent trend data (not meaningful on a 1-core runner).
    rec.extra.emplace_back("wall_rps", wallRps);
    rec.extra.emplace_back("p99_us", merged.total.p99Us);
    // Exact-gated: cache-affinity means the tier compiles each key once,
    // so this number is `keys` at EVERY shard count — if routing stops
    // being affine (or retries sneak in) it grows and CI fails.
    rec.extra.emplace_back("compiles", static_cast<double>(compiles));
    // Deterministically zero (unbounded queues, no deadlines, no retry
    // hops): gated to stay zero.
    rec.extra.emplace_back("rejected", static_cast<double>(run.rejected));
    rec.extra.emplace_back("errors", static_cast<double>(run.errors));
    rec.extra.emplace_back("fallback", static_cast<double>(fallbacks));
    report.add(std::move(rec));
  }

  const double speedup = makespan4 > 0 ? makespan1 / makespan4 : 0;
  const bool ok = speedup >= 2.5;
  std::printf("(4-shard simulated throughput = %.2fx 1-shard on the same "
              "trace%s; compile total identical at every shard count)\n",
              speedup, ok ? "" : " — BELOW the 2.5x floor, FAILING");
  bench::BenchRecord rec;
  rec.name = "shard/speedup_4v1";
  rec.workload = "mix8";
  rec.pipeline = "tensor-ssa";
  rec.extra.emplace_back("speedup_sim", speedup);
  report.add(std::move(rec));
  return ok;
}

// ---- Section 2: one-shot + decode mix on a decode-enabled tier ------------

void printDecodeMix(const bench::BenchFlags& flags,
                    bench::BenchReport& report) {
  bench::TraceOptions to;
  to.seed = 11;
  to.requests = 16 * flags.reps;
  to.meanGapUs = 300;
  to.decodeSessions = 6;
  to.decodeGapUs = 500;
  const std::vector<bench::TraceRequest> trace = bench::generateTrace(to);
  const PayloadSet payloads(trace);
  const std::vector<bench::TraceSession> sessions =
      bench::generateSessions(to);
  const std::size_t keys = distinctKeys(trace).size();

  RouterOptions ro;
  ro.shards = 2;
  ro.maxRetryHops = 0;
  ro.engine = shardEngineOptions(flags);
  ro.enableDecode = true;
  ro.decode.pipeline.texprJit = flags.texprJit;
  ro.decode.maxStepBatch = 4;
  ro.decode.maxActiveSessions = 4;
  ro.decode.ctxBuckets = {16, 32};
  ro.decode.kvPageTokens = 16;
  Router router(ro);
  const int decodeHome = router.decodeHomeShard();

  // Interleave both open-loop schedules on one clock.
  std::vector<std::future<Response>> oneShot;
  std::vector<std::future<DecodeResult>> decodes;
  std::size_t ri = 0;
  std::size_t si = 0;
  const auto t0 = Clock::now();
  while (ri < trace.size() || si < sessions.size()) {
    const bool takeRequest =
        si >= sessions.size() ||
        (ri < trace.size() && trace[ri].atUs <= sessions[si].atUs);
    if (takeRequest) {
      holdUntil(t0, trace[ri].atUs);
      oneShot.push_back(router.submit(payloads.request(trace, ri)));
      ++ri;
    } else {
      holdUntil(t0, sessions[si].atUs);
      DecodeRequest d;
      d.prompt = DecodeScheduler::randomPrompt(sessions[si].promptLen,
                                               sessions[si].promptSeed);
      d.generate = sessions[si].generate;
      decodes.push_back(router.submitDecode(std::move(d)));
      ++si;
    }
  }
  std::uint64_t served = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  for (auto& f : oneShot) {
    try {
      (void)f.get();
      ++served;
    } catch (const std::exception&) {
      ++errors;
    }
  }
  for (auto& f : decodes) {
    try {
      (void)f.get();
      ++completed;
    } catch (const std::exception&) {
      ++errors;
    }
  }
  router.drain();

  std::uint64_t compiles = 0;
  std::uint64_t rejected = 0;
  for (const serve::MetricsSnapshot& m : router.shardMetrics()) {
    compiles += m.cacheCompiles;
    rejected += m.rejectedTotal();
  }
  std::int64_t kvLeaked = 0;
  std::uint64_t steps = 0;
  for (const serve::DecodeMetricsSnapshot& m : router.shardDecodeMetrics()) {
    kvLeaked += m.kv.pagesInUse;
    steps += m.steps;
    rejected += m.rejectedTotal();
  }
  // The polymorphic decode_step programs compile on the inner engines;
  // every session routes to one home shard, so exactly one shard pays
  // exactly one compile.
  for (int s = 0; s < router.shards(); ++s)
    if (DecodeScheduler* d = router.decode(s))
      compiles += d->engineMetrics().cacheCompiles;

  std::printf("\n=== Decode mix: %zu one-shot requests (%zu keys) + %zu "
              "decode sessions on 2 shards (decode home: shard %d) ===\n",
              trace.size(), keys, sessions.size(), decodeHome);
  std::printf("served %llu, sessions %llu (%llu steps), errors %llu; "
              "compiles %llu, kv leaked %lld, rejected %llu\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(compiles),
              static_cast<long long>(kvLeaked),
              static_cast<unsigned long long>(rejected));

  bench::BenchRecord rec;
  rec.name = "shard/decode_mix_s2";
  rec.workload = "mix8+decode";
  rec.pipeline = "tensor-ssa";
  rec.extra.emplace_back("served", static_cast<double>(served));
  rec.extra.emplace_back("sessions", static_cast<double>(completed));
  rec.extra.emplace_back("steps", static_cast<double>(steps));
  // Exact-gated: one-shot keys + exactly one decode_step compile tier-wide.
  rec.extra.emplace_back("compiles", static_cast<double>(compiles));
  // Deterministically zero; gated to stay zero.
  rec.extra.emplace_back("kv_leaked", static_cast<double>(kvLeaked));
  rec.extra.emplace_back("rejected", static_cast<double>(rejected));
  rec.extra.emplace_back("errors", static_cast<double>(errors));
  report.add(std::move(rec));
}

// ---- Section 3: shed-and-retry under a same-key burst ---------------------

void printShedBurst(const bench::BenchFlags& flags,
                    bench::BenchReport& report) {
  const int burst = 32 * flags.reps;

  RouterOptions ro;
  ro.shards = 2;
  ro.maxRetryHops = 1;
  ro.engine = shardEngineOptions(flags);
  ro.engine.maxQueueDepth = 2;
  ro.engine.maxBatch = 2;
  // A long window parks admitted requests in the open batch, so the burst
  // sees full queues instead of racing executions.
  ro.engine.maxWaitUs = 100'000;
  Router router(ro);

  Request burstKey;
  burstKey.workload = "lstm";
  burstKey.config.batch = 1;
  burstKey.config.seqLen = 16;
  burstKey.inputs = serve::Engine::defaultInputs("lstm", burstKey.config);

  // Pre-warm the burst key on EVERY shard: the section measures admission
  // and retry behavior, not compilation on the overflow shard.
  for (int s = 0; s < router.shards(); ++s)
    (void)router.engine(s).submit(burstKey).get();

  std::vector<std::future<Response>> futures;
  futures.reserve(static_cast<std::size_t>(burst));
  for (int i = 0; i < burst; ++i) futures.push_back(router.submit(burstKey));
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++served;
    } catch (const serve::RejectedError&) {
      ++shed;
    } catch (const std::exception&) {
      ++errors;
    }
  }
  router.drain();
  const Router::Stats stats = router.stats();

  std::printf("\n=== Shed burst: %d same-key submits, 2 shards, queue depth "
              "2, 1 retry hop ===\n", burst);
  std::printf("served %llu, shed %llu, errors %llu; retry hops %llu "
              "(home shard full -> ring neighbor -> refuse)\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(stats.retryHops));

  bench::BenchRecord rec;
  rec.name = "shard/shed_burst_s2";
  rec.workload = "lstm";
  rec.pipeline = "tensor-ssa";
  rec.extra.emplace_back("offered", static_cast<double>(burst));
  rec.extra.emplace_back("served", static_cast<double>(served));
  // Nonzero by construction (the burst dwarfs both queues), so the
  // stays-zero gate does not bind; recorded for trend inspection.
  rec.extra.emplace_back("rejected", static_cast<double>(shed));
  rec.extra.emplace_back("retry_hops", static_cast<double>(stats.retryHops));
  rec.extra.emplace_back("errors", static_cast<double>(errors));
  report.add(std::move(rec));
}

// ---- Section 4: rolling restart -------------------------------------------

void printDrainRoll(const bench::BenchFlags& flags,
                    bench::BenchReport& report) {
  RouterOptions ro;
  ro.shards = 2;
  ro.maxRetryHops = 0;
  ro.engine = shardEngineOptions(flags);
  ro.engine.maxWaitUs = 0;  // serial walkthrough: no batching window
  Router router(ro);

  Request probe;
  probe.workload = "lstm";
  probe.config.batch = 1;
  probe.config.seqLen = 16;
  const int home = router.homeShard(probe);

  std::uint64_t served = 0;
  std::uint64_t errors = 0;
  const auto sendOne = [&] {
    Request r = probe;
    try {
      (void)router.submit(std::move(r)).get();
      ++served;
    } catch (const std::exception&) {
      ++errors;
    }
  };

  sendOne();                  // compiles on the home shard
  router.drainShard(home);    // Serving -> Draining -> Drained
  sendOne();                  // hops over the drained shard (no retry
                              // budget needed), compiles on the neighbor
  router.restartShard(home);  // fresh engine, empty cache, same warm pool
  sendOne();                  // back home; the fresh cache compiles again

  router.drain();
  const Router::Stats stats = router.stats();
  std::uint64_t compiles = 0;
  for (const serve::MetricsSnapshot& m : router.shardMetrics())
    compiles += m.cacheCompiles;

  std::printf("\n=== Drain + roll: home shard %d drained, hopped over, "
              "restarted fresh ===\n", home);
  std::printf("served %llu, errors %llu; drains %llu, restarts %llu, drain "
              "skips %llu; compiles now visible: %llu (neighbor 1 + fresh "
              "home 1; the pre-drain compile retired with its engine)\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(stats.drains),
              static_cast<unsigned long long>(stats.restarts),
              static_cast<unsigned long long>(stats.drainSkips),
              static_cast<unsigned long long>(compiles));
  (void)flags;

  bench::BenchRecord rec;
  rec.name = "shard/drain_roll_s2";
  rec.workload = "lstm";
  rec.pipeline = "tensor-ssa";
  rec.extra.emplace_back("served", static_cast<double>(served));
  // Exact-gated: neighbor compile + fresh-home compile, nothing else.
  rec.extra.emplace_back("compiles", static_cast<double>(compiles));
  rec.extra.emplace_back("drains", static_cast<double>(stats.drains));
  rec.extra.emplace_back("restarts", static_cast<double>(stats.restarts));
  rec.extra.emplace_back("drain_skips",
                         static_cast<double>(stats.drainSkips));
  // Deterministically zero; gated to stay zero.
  rec.extra.emplace_back("errors", static_cast<double>(errors));
  rec.extra.emplace_back("retry_hops", static_cast<double>(stats.retryHops));
  report.add(std::move(rec));
}

}  // namespace

int main(int argc, char** argv) {
  tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("shard_scaling", flags);
  const bool scalingOk = printScaling(flags, report);
  printDecodeMix(flags, report);
  printShedBurst(flags, report);
  printDrainRoll(flags, report);
  report.finish();
  // Self-gating: CI runs this binary, so the 2.5x simulated-scaling floor
  // is enforced by the exit code (check_bench.py gates the counters).
  return scalingOk ? 0 : 1;
}
