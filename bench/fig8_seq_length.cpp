// Figure 8: latency of the NLP and attention workloads at different
// sequence lengths, per pipeline.
//
// Paper shape to reproduce: latency grows linearly with sequence length for
// every system, and TensorSSA is the lowest curve at every length.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace tssa;
using bench::endToEndUs;
using bench::runSim;
using runtime::DeviceSpec;
using runtime::PipelineKind;

const std::vector<std::int64_t> kSeqLens = {16, 32, 64, 128, 256};
const std::vector<std::string> kWorkloads = {"nasrnn", "lstm", "seq2seq",
                                             "attention"};

void printFigure8(const bench::BenchFlags& flags,
                  bench::BenchReport& report) {
  std::printf("\n=== Figure 8: latency (ms, end-to-end) vs sequence length "
              "(data-center) ===\n");
  const DeviceSpec device = DeviceSpec::dataCenter();
  for (const std::string& name : kWorkloads) {
    std::printf("\n%s:\n", name.c_str());
    std::printf("%-16s", "seq_len");
    for (std::int64_t s : kSeqLens)
      std::printf(" %9lld", static_cast<long long>(s));
    std::printf("\n");
    bench::printRule(16 + 10 * static_cast<int>(kSeqLens.size()));

    // Batch-1 eager at the default length anchors the backbone model.
    double eagerAnchor = -1;
    std::map<PipelineKind, std::vector<double>> rows;
    for (std::int64_t seq : kSeqLens) {
      workloads::WorkloadConfig config;
      config.batch = 1;
      config.seqLen = seq;
      workloads::Workload w = workloads::buildWorkload(name, config);
      for (PipelineKind kind : runtime::allPipelines()) {
        bench::SimResult r = runSim(w, kind, device);
        if (kind == PipelineKind::Eager && eagerAnchor < 0)
          eagerAnchor = r.imperativeUs;
        rows[kind].push_back(
            endToEndUs(name, eagerAnchor, 1, r.imperativeUs) / 1000.0);
        if (kind == PipelineKind::TensorSsa) {
          bench::BenchRecord rec;
          rec.name = "seq/" + name + "/s" + std::to_string(seq);
          rec.workload = name;
          rec.pipeline = "TensorSSA";
          rec.simUs = r.imperativeUs;
          rec.kernelLaunches = r.launches;
          report.add(std::move(rec));
        }
      }
    }
    bool tssaLowestEverywhere = true;
    for (PipelineKind kind : runtime::allPipelines()) {
      for (std::size_t i = 0; i < kSeqLens.size(); ++i) {
        if (kind != PipelineKind::TensorSsa &&
            rows[PipelineKind::TensorSsa][i] > rows[kind][i]) {
          tssaLowestEverywhere = false;
        }
      }
    }
    for (PipelineKind kind : flags.kinds()) {
      std::printf("%-16s", std::string(pipelineName(kind)).c_str());
      for (std::size_t i = 0; i < kSeqLens.size(); ++i)
        std::printf(" %9.2f", rows[kind][i]);
      std::printf("\n");
    }
    const auto& t = rows[PipelineKind::TensorSsa];
    // Linearity probe: compare growth of successive doublings.
    const double growth1 = t[2] / t[1];
    const double growth2 = t[3] / t[2];
    std::printf("  TensorSSA lowest at every length: %s; doubling growth "
                "%.2f / %.2f (linear ~= 2.0)\n",
                tssaLowestEverywhere ? "yes" : "NO", growth1, growth2);
  }
}

void BM_SeqLen(benchmark::State& state, std::string workload,
               PipelineKind kind) {
  workloads::WorkloadConfig config;
  config.seqLen = state.range(0);
  workloads::Workload w = workloads::buildWorkload(workload, config);
  runtime::Pipeline pipeline(kind, *w.graph, DeviceSpec::dataCenter());
  for (auto _ : state) {
    auto out = pipeline.run(w.inputs);
    benchmark::DoNotOptimize(out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("fig8_seq_length", flags);
  printFigure8(flags, report);
  for (const std::string& name : kWorkloads) {
    benchmark::RegisterBenchmark(
        ("seq_scaling/" + name + "/TensorSSA").c_str(),
        [name](benchmark::State& s) {
          BM_SeqLen(s, name, PipelineKind::TensorSsa);
        })
        ->Arg(16)
        ->Arg(64)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(flags.reps);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report.finish();
  return 0;
}
