// Serving-engine throughput bench: drives the src/serve Engine with
// closed-loop concurrent clients over a mixed workload set and prints, per
// sweep point, the achieved requests/sec, latency percentiles, program-cache
// hit rate, and micro-batch occupancy. The interesting shapes:
//
//   * hit rate → 1 after the first request per (workload, shape): every
//     later request reuses the shape-specialized compiled program;
//   * mean batch size grows with client count (more same-key arrivals per
//     window) and with the window itself;
//   * p50 stays near the single-run execution time while p99 absorbs the
//     batching window + compile spikes.
//
// Usage: serve_throughput [--threads=N] [--reps=N] [--pipeline=NAME]
//   --threads   client threads at the largest sweep point (default 4)
//   --reps      requests issued per client (default 3, scaled ×8 here since
//               serving wants more samples than a wall-clock rep)
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/engine.h"

namespace {

using namespace tssa;
using serve::Engine;
using serve::EngineOptions;
using serve::MetricsSnapshot;
using serve::Request;
using serve::Response;
using serve::Session;

struct SweepPoint {
  int clients;
  std::int64_t maxWaitUs;
  int maxBatch;
};

/// One closed-loop run: `clients` threads, each submitting `perClient`
/// requests back-to-back over a fixed workload mix.
MetricsSnapshot runSweep(const SweepPoint& point, int perClient,
                         runtime::PipelineKind kind) {
  EngineOptions options;
  options.kind = kind;
  options.maxBatch = point.maxBatch;
  options.maxWaitUs = point.maxWaitUs;
  options.cacheCapacity = 32;
  Engine engine(options);

  const std::vector<std::string> mix = {"lstm", "attention", "seq2seq",
                                        "nasrnn"};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(point.clients));
  for (int c = 0; c < point.clients; ++c) {
    threads.emplace_back([&, c] {
      Session session = engine.openSession("client-" + std::to_string(c));
      for (int i = 0; i < perClient; ++i) {
        Request r;
        r.workload = mix[static_cast<std::size_t>((c + i) % mix.size())];
        r.config.batch = 1;
        r.config.seqLen = 16;
        try {
          Response resp = session.infer(std::move(r));
          (void)resp;
        } catch (const std::exception&) {
          ++failed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.drain();

  MetricsSnapshot snap = engine.metrics();
  if (failed > 0)
    std::fprintf(stderr, "WARNING: %llu requests failed\n",
                 static_cast<unsigned long long>(failed.load()));
  return snap;
}

void printSweep(const bench::BenchFlags& flags, runtime::PipelineKind kind,
                bench::BenchReport& report) {
  const int perClient = flags.reps * 8;
  std::printf("\n=== Serving throughput: %s pipeline, %d requests/client, "
              "4-workload mix ===\n",
              std::string(runtime::pipelineName(kind)).c_str(), perClient);
  std::printf("%8s %9s %9s %9s %9s %9s %9s %9s %9s %10s\n", "clients",
              "window", "maxbatch", "rps", "p50-us", "p95-us", "p99-us",
              "hit-rate", "batch-sz", "compiles");
  bench::printRule(8 + 10 * 9 + 1);

  std::vector<SweepPoint> points = {
      {1, 0, 1},                    // no batching: per-request baseline
      {2, 200, 4},                  // light concurrency, short window
      {flags.threads, 200, 4},      // full client load, short window
      {flags.threads, 2000, 8},     // full load, long window: batch growth
  };
  // --threads=2 collapses the second and third point into one; drop the
  // duplicate (it would also collide in the --json record keys).
  points.erase(std::unique(points.begin(), points.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.clients == b.clients &&
                                    a.maxWaitUs == b.maxWaitUs &&
                                    a.maxBatch == b.maxBatch;
                           }),
               points.end());
  for (const SweepPoint& p : points) {
    const MetricsSnapshot m = runSweep(p, perClient, kind);
    std::printf(
        "%8d %8lldus %9d %9.0f %9.0f %9.0f %9.0f %8.0f%% %9.2f %9llu\n",
        p.clients, static_cast<long long>(p.maxWaitUs), p.maxBatch,
        m.throughputRps, m.total.p50Us, m.total.p95Us, m.total.p99Us,
        100.0 * m.cacheHitRate(), m.meanBatchSize,
        static_cast<unsigned long long>(m.cacheCompiles));

    // Serving latencies are scheduling-noisy (closed-loop clients, batching
    // windows), so the record is NOT time-gated — CI keeps the numbers for
    // trend inspection but only hard-fails on deterministic counters.
    bench::BenchRecord rec;
    rec.name = "serve/" + std::string(runtime::pipelineName(kind)) + "/c" +
               std::to_string(p.clients) + "_w" + std::to_string(p.maxWaitUs) +
               "_b" + std::to_string(p.maxBatch);
    rec.workload = "mix4";
    rec.pipeline = std::string(runtime::pipelineName(kind));
    rec.arenaReuseRate = m.arenaReuseRate();
    rec.extra.emplace_back("rps", m.throughputRps);
    rec.extra.emplace_back("p50_us", m.total.p50Us);
    rec.extra.emplace_back("p95_us", m.total.p95Us);
    rec.extra.emplace_back("p99_us", m.total.p99Us);
    rec.extra.emplace_back("hit_rate", m.cacheHitRate());
    rec.extra.emplace_back("mean_batch", m.meanBatchSize);
    rec.extra.emplace_back("requests", static_cast<double>(m.requests));
    rec.extra.emplace_back("errors", static_cast<double>(m.errors));
    rec.extra.emplace_back("compiles", static_cast<double>(m.cacheCompiles));
    report.add(std::move(rec));
  }
  std::printf("(hit-rate counts batched executions; every shape compiles "
              "once, then all later requests hit)\n");
}

}  // namespace

int main(int argc, char** argv) {
  tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("serve_throughput", flags);
  for (runtime::PipelineKind kind :
       {runtime::PipelineKind::Eager, runtime::PipelineKind::TensorSsa}) {
    if (!flags.enabled(kind)) continue;
    printSweep(flags, kind, report);
  }
  report.finish();
  return 0;
}
