// Serving-engine throughput bench: drives the src/serve Engine with
// closed-loop concurrent clients over a mixed workload set and prints, per
// sweep point, the achieved requests/sec, latency percentiles, program-cache
// hit rate, and micro-batch occupancy. The interesting shapes:
//
//   * hit rate → 1 after the first request per workload: every later
//     request reuses the workload's polymorphic compiled program
//     (DESIGN.md §13), whatever its concrete shape;
//   * mean batch size grows with client count (more same-key arrivals per
//     window) and with the window itself;
//   * p50 stays near the single-run execution time while p99 absorbs the
//     batching window + compile spikes.
//
// Usage: serve_throughput [--threads=N] [--reps=N] [--pipeline=NAME]
//   --threads   client threads at the largest sweep point (default 4)
//   --reps      requests issued per client (default 3, scaled ×8 here since
//               serving wants more samples than a wall-clock rep)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/engine.h"

namespace {

using namespace tssa;
using serve::Engine;
using serve::EngineOptions;
using serve::MetricsSnapshot;
using serve::Request;
using serve::Response;
using serve::Session;

struct SweepPoint {
  int clients;
  std::int64_t maxWaitUs;
  int maxBatch;
};

/// One closed-loop run: `clients` threads, each submitting `perClient`
/// requests back-to-back over a fixed workload mix.
MetricsSnapshot runSweep(const SweepPoint& point, int perClient,
                         runtime::PipelineKind kind) {
  EngineOptions options;
  options.kind = kind;
  options.maxBatch = point.maxBatch;
  options.maxWaitUs = point.maxWaitUs;
  options.cacheCapacity = 32;
  Engine engine(options);

  const std::vector<std::string> mix = {"lstm", "attention", "seq2seq",
                                        "nasrnn"};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(point.clients));
  for (int c = 0; c < point.clients; ++c) {
    threads.emplace_back([&, c] {
      Session session = engine.openSession("client-" + std::to_string(c));
      for (int i = 0; i < perClient; ++i) {
        Request r;
        r.workload = mix[static_cast<std::size_t>((c + i) % mix.size())];
        r.config.batch = 1;
        r.config.seqLen = 16;
        try {
          Response resp = session.infer(std::move(r));
          (void)resp;
        } catch (const std::exception&) {
          ++failed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.drain();

  MetricsSnapshot snap = engine.metrics();
  if (failed > 0)
    std::fprintf(stderr, "WARNING: %llu requests failed\n",
                 static_cast<unsigned long long>(failed.load()));
  return snap;
}

void printSweep(const bench::BenchFlags& flags, runtime::PipelineKind kind,
                bench::BenchReport& report) {
  const int perClient = flags.reps * 8;
  std::printf("\n=== Serving throughput: %s pipeline, %d requests/client, "
              "4-workload mix ===\n",
              std::string(runtime::pipelineName(kind)).c_str(), perClient);
  std::printf("%8s %9s %9s %9s %9s %9s %9s %9s %9s %10s\n", "clients",
              "window", "maxbatch", "rps", "p50-us", "p95-us", "p99-us",
              "hit-rate", "batch-sz", "compiles");
  bench::printRule(8 + 10 * 9 + 1);

  std::vector<SweepPoint> points = {
      {1, 0, 1},                    // no batching: per-request baseline
      {2, 200, 4},                  // light concurrency, short window
      {flags.threads, 200, 4},      // full client load, short window
      {flags.threads, 2000, 8},     // full load, long window: batch growth
  };
  // --threads=2 collapses the second and third point into one; drop the
  // duplicate (it would also collide in the --json record keys).
  points.erase(std::unique(points.begin(), points.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.clients == b.clients &&
                                    a.maxWaitUs == b.maxWaitUs &&
                                    a.maxBatch == b.maxBatch;
                           }),
               points.end());
  for (const SweepPoint& p : points) {
    const MetricsSnapshot m = runSweep(p, perClient, kind);
    std::printf(
        "%8d %8lldus %9d %9.0f %9.0f %9.0f %9.0f %8.0f%% %9.2f %9llu\n",
        p.clients, static_cast<long long>(p.maxWaitUs), p.maxBatch,
        m.throughputRps, m.total.p50Us, m.total.p95Us, m.total.p99Us,
        100.0 * m.cacheHitRate(), m.meanBatchSize,
        static_cast<unsigned long long>(m.cacheCompiles));

    // Serving latencies are scheduling-noisy (closed-loop clients, batching
    // windows), so the record is NOT time-gated — CI keeps the numbers for
    // trend inspection but only hard-fails on deterministic counters.
    bench::BenchRecord rec;
    rec.name = "serve/" + std::string(runtime::pipelineName(kind)) + "/c" +
               std::to_string(p.clients) + "_w" + std::to_string(p.maxWaitUs) +
               "_b" + std::to_string(p.maxBatch);
    rec.workload = "mix4";
    rec.pipeline = std::string(runtime::pipelineName(kind));
    rec.arenaReuseRate = m.arenaReuseRate();
    rec.extra.emplace_back("rps", m.throughputRps);
    rec.extra.emplace_back("p50_us", m.total.p50Us);
    rec.extra.emplace_back("p95_us", m.total.p95Us);
    rec.extra.emplace_back("p99_us", m.total.p99Us);
    rec.extra.emplace_back("hit_rate", m.cacheHitRate());
    rec.extra.emplace_back("mean_batch", m.meanBatchSize);
    rec.extra.emplace_back("requests", static_cast<double>(m.requests));
    rec.extra.emplace_back("errors", static_cast<double>(m.errors));
    rec.extra.emplace_back("compiles", static_cast<double>(m.cacheCompiles));
    // Deterministically zero in this closed-loop sweep (no deadlines, no
    // admission caps): scripts/check_bench.py fails the gate if a bench run
    // starts silently shedding or degrading where the baseline had none.
    rec.extra.emplace_back("rejected", static_cast<double>(m.rejectedTotal()));
    rec.extra.emplace_back("fallback",
                           static_cast<double>(m.fallbackRequests));
    report.add(std::move(rec));
  }
  std::printf("(hit-rate counts batched executions; every workload compiles "
              "one polymorphic program, then all later requests hit)\n");
}

/// Shape-storm run: one client sweeps 100 distinct sequence lengths over a
/// single workload. Under exact-shape program keys every length is a new
/// compile (the cache also churns at cacheCapacity=32, so late requests
/// re-compile evicted shapes); under the symbolic-pattern keys of
/// DESIGN.md §13 the whole storm runs through ONE polymorphic program. The
/// compile count is deterministic and CI-gates it exactly — if a change
/// re-introduces shape-specialized keys anywhere on the serve path, this
/// record jumps from 1 to ~100 and the gate fails.
void printShapeStorm(runtime::PipelineKind kind, bench::BenchReport& report) {
  constexpr int kShapes = 100;
  EngineOptions options;
  options.kind = kind;
  options.maxBatch = 1;  // measure caching, not coalescing
  options.cacheCapacity = 32;
  Engine engine(options);

  std::uint64_t failed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kShapes; ++i) {
    Request r;
    r.workload = "attention";
    r.config.batch = 1 + i % 3;    // 100 distinct (batch, seqLen) pairs
    r.config.seqLen = 4 + i;       // ...with 100 distinct sequence lengths
    try {
      (void)engine.submit(std::move(r)).get();
    } catch (const std::exception&) {
      ++failed;
    }
  }
  engine.drain();
  const double elapsedUs = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

  const MetricsSnapshot m = engine.metrics();
  std::printf("\n=== Shape storm: %s pipeline, %d distinct shapes, "
              "1 workload ===\n",
              std::string(runtime::pipelineName(kind)).c_str(), kShapes);
  std::printf("%d shapes -> %llu compiles, %zu cached programs, hit rate "
              "%.0f%% (p50 %.0fus p99 %.0fus)\n",
              kShapes,
              static_cast<unsigned long long>(m.cacheCompiles),
              engine.cacheStats().size, 100.0 * m.cacheHitRate(),
              m.total.p50Us, m.total.p99Us);
  std::printf("(polymorphic program keys: compile count stays flat while "
              "shape diversity grows)\n");

  bench::BenchRecord rec;
  rec.name = "serve/" + std::string(runtime::pipelineName(kind)) +
             "/shape_storm" + std::to_string(kShapes);
  rec.workload = "attention";
  rec.pipeline = std::string(runtime::pipelineName(kind));
  rec.extra.emplace_back("shapes", static_cast<double>(kShapes));
  // Deterministic; gated EXACTLY by scripts/check_bench.py.
  rec.extra.emplace_back("compiles", static_cast<double>(m.cacheCompiles));
  rec.extra.emplace_back("cache_size",
                         static_cast<double>(engine.cacheStats().size));
  rec.extra.emplace_back("rps", m.throughputRps);
  rec.extra.emplace_back("p50_us", m.total.p50Us);
  rec.extra.emplace_back("p99_us", m.total.p99Us);
  rec.extra.emplace_back("elapsed_us", elapsedUs);
  rec.extra.emplace_back("requests", static_cast<double>(m.requests));
  rec.extra.emplace_back("errors",
                         static_cast<double>(m.errors + failed));
  rec.extra.emplace_back("rejected", static_cast<double>(m.rejectedTotal()));
  rec.extra.emplace_back("fallback", static_cast<double>(m.fallbackRequests));
  report.add(std::move(rec));
}

/// Open-burst overload run: every client fires its whole burst of async
/// submits before settling any of them, so admission sees far more
/// outstanding work than maxQueueDepth allows. The engine sheds the excess
/// at admission (RejectedError, reason queue_full) instead of queueing it,
/// so the latency of *served* requests is bounded by the queue cap — it
/// does not grow with the burst size (DESIGN.md §10).
void printOverload(const bench::BenchFlags& flags, runtime::PipelineKind kind,
                   bench::BenchReport& report) {
  const int clients = std::max(2, flags.threads);
  const int burst = flags.reps * 32;  // per client, far beyond the queue cap
  const std::size_t queueDepth = 8;

  EngineOptions options;
  options.kind = kind;
  options.maxBatch = 4;
  options.maxWaitUs = 200;
  options.cacheCapacity = 32;
  options.maxQueueDepth = queueDepth;
  Engine engine(options);

  // Warm the solo program so the burst measures admission, not compilation.
  {
    Request warm;
    warm.workload = "lstm";
    warm.config.batch = 1;
    warm.config.seqLen = 16;
    engine.submit(std::move(warm)).get();
  }

  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Session session = engine.openSession("burst-" + std::to_string(c));
      std::vector<std::future<Response>> futures;
      futures.reserve(static_cast<std::size_t>(burst));
      for (int i = 0; i < burst; ++i) {
        Request r;
        r.workload = "lstm";
        r.config.batch = 1;
        r.config.seqLen = 16;
        futures.push_back(session.submit(std::move(r)));
      }
      for (auto& f : futures) {
        try {
          (void)f.get();
          ++served;
        } catch (const serve::RejectedError&) {
          ++shed;
        } catch (const std::exception&) {
          ++failed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.drain();

  const MetricsSnapshot m = engine.metrics();
  const std::uint64_t offered =
      static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(burst);
  std::printf("\n=== Overload (open burst): %s pipeline, %d clients x %d "
              "requests, maxQueueDepth=%zu ===\n",
              std::string(runtime::pipelineName(kind)).c_str(), clients,
              burst, queueDepth);
  std::printf("offered %llu: served %llu, shed %llu (%.0f%%), errors %llu; "
              "served p50 %.0fus p99 %.0fus\n",
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(shed.load()),
              offered ? 100.0 * static_cast<double>(shed.load()) /
                            static_cast<double>(offered)
                      : 0.0,
              static_cast<unsigned long long>(failed.load()), m.total.p50Us,
              m.total.p99Us);
  std::printf("(excess is refused at admission — served latency is bounded "
              "by the queue cap, not the burst size)\n");

  bench::BenchRecord rec;
  rec.name = "serve/" + std::string(runtime::pipelineName(kind)) +
             "/overload_q" + std::to_string(queueDepth);
  rec.workload = "lstm";
  rec.pipeline = std::string(runtime::pipelineName(kind));
  rec.extra.emplace_back("offered", static_cast<double>(offered));
  rec.extra.emplace_back("rps", m.throughputRps);
  rec.extra.emplace_back("p50_us", m.total.p50Us);
  rec.extra.emplace_back("p99_us", m.total.p99Us);
  rec.extra.emplace_back("requests", static_cast<double>(m.requests));
  rec.extra.emplace_back("rejected", static_cast<double>(m.rejectedTotal()));
  rec.extra.emplace_back("fallback", static_cast<double>(m.fallbackRequests));
  rec.extra.emplace_back("errors", static_cast<double>(failed.load()));
  report.add(std::move(rec));
}

}  // namespace

int main(int argc, char** argv) {
  tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("serve_throughput", flags);
  for (runtime::PipelineKind kind :
       {runtime::PipelineKind::Eager, runtime::PipelineKind::TensorSsa}) {
    if (!flags.enabled(kind)) continue;
    printSweep(flags, kind, report);
    printShapeStorm(kind, report);
    printOverload(flags, kind, report);
  }
  report.finish();
  return 0;
}
