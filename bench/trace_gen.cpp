#include "bench/trace_gen.h"

#include <cmath>

namespace tssa::bench {

namespace {

/// splitmix64 finalizer (same constants as src/serve/router.cpp's hash
/// finalizer — the canonical public-domain mixer).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename T>
const T& pick(const std::vector<T>& xs, std::uint64_t draw) {
  return xs[static_cast<std::size_t>(draw % xs.size())];
}

/// True when arrival index i falls inside a burst window.
bool inBurst(const TraceOptions& o, int i) {
  if (o.burstEvery <= 0 || o.burstLen <= 0) return false;
  const int phase = i % o.burstEvery;
  return phase > 0 && phase <= o.burstLen;
}

}  // namespace

std::uint64_t traceDraw(std::uint64_t seed, std::uint64_t counter) {
  return mix64(mix64(seed) ^ counter * 0x9e3779b97f4a7c15ULL);
}

double traceUniform(std::uint64_t seed, std::uint64_t counter) {
  // Top 53 bits -> [0, 1) at double precision.
  return static_cast<double>(traceDraw(seed, counter) >> 11) * 0x1.0p-53;
}

double traceExp(double meanUs, std::uint64_t seed, std::uint64_t counter) {
  // Inverse CDF; 1 - u stays in (0, 1] so the log is finite.
  return -meanUs * std::log(1.0 - traceUniform(seed, counter));
}

std::vector<TraceRequest> generateTrace(const TraceOptions& options) {
  const std::vector<std::string>& mix = options.workloads.empty()
                                            ? workloads::workloadNames()
                                            : options.workloads;
  std::vector<TraceRequest> trace;
  trace.reserve(static_cast<std::size_t>(std::max(options.requests, 0)));
  double clockUs = 0;
  for (int i = 0; i < options.requests; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 8;
    const double mean = inBurst(options, i)
                            ? options.meanGapUs * options.burstFactor
                            : options.meanGapUs;
    clockUs += traceExp(mean, options.seed, base + 0);
    TraceRequest r;
    r.atUs = clockUs;
    r.workload = pick(mix, traceDraw(options.seed, base + 1));
    r.config.seed = pick(options.seeds, traceDraw(options.seed, base + 2));
    r.config.batch = pick(options.batches, traceDraw(options.seed, base + 3));
    r.config.seqLen = pick(options.seqLens, traceDraw(options.seed, base + 4));
    trace.push_back(std::move(r));
  }
  return trace;
}

std::vector<TraceSession> generateSessions(const TraceOptions& options) {
  std::vector<TraceSession> sessions;
  sessions.reserve(static_cast<std::size_t>(std::max(options.decodeSessions, 0)));
  double clockUs = 0;
  for (int i = 0; i < options.decodeSessions; ++i) {
    // Disjoint counter stream from the one-shot trace (offset by 1<<32).
    const std::uint64_t base = (1ULL << 32) + static_cast<std::uint64_t>(i) * 8;
    clockUs += traceExp(options.decodeGapUs, options.seed, base + 0);
    TraceSession s;
    s.atUs = clockUs;
    s.promptLen = 2 + static_cast<std::int64_t>(
                          traceDraw(options.seed, base + 1) % 4);  // 2..5
    s.generate = 4 + static_cast<std::int64_t>(
                         traceDraw(options.seed, base + 2) % 13);  // 4..16
    s.promptSeed = traceDraw(options.seed, base + 3);
    sessions.push_back(s);
  }
  return sessions;
}

std::size_t distinctKeyCount(const TraceOptions& options) {
  const std::size_t names = options.workloads.empty()
                                ? workloads::workloadNames().size()
                                : options.workloads.size();
  return names * options.seeds.size();
}

}  // namespace tssa::bench
