// Micro-benchmarks: tensor-library primitives, interpreter dispatch, and the
// analytic device model's per-op pricing (sanity anchors for the figures).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/ir/builder.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace {

using namespace tssa;

void BM_TensorAdd(benchmark::State& state) {
  Rng rng(1);
  Tensor a = rng.uniform({state.range(0)});
  Tensor b = rng.uniform({state.range(0)});
  for (auto _ : state) {
    Tensor c = ops::add(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAdd)->Arg(1024)->Arg(65536);

void BM_TensorSigmoid(benchmark::State& state) {
  Rng rng(2);
  Tensor a = rng.uniform({state.range(0)});
  for (auto _ : state) {
    Tensor c = ops::sigmoid(a);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorSigmoid)->Arg(1024)->Arg(65536);

void BM_TensorMatmul(benchmark::State& state) {
  Rng rng(3);
  const std::int64_t n = state.range(0);
  Tensor a = rng.uniform({n, n});
  Tensor b = rng.uniform({n, n});
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

void BM_ViewSelectCopy(benchmark::State& state) {
  Rng rng(4);
  Tensor a = rng.uniform({64, 256});
  Tensor src = rng.uniform({256});
  for (auto _ : state) {
    a.select(0, 7).copy_(src);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ViewSelectCopy);

// Transposed (non-contiguous) operands exercise the typed strided loop of
// binaryOp/where/copy_ — before that fallback existed every element went
// through the double-boxing scalarAt/setScalarAt path. Compare against
// BM_TensorAdd at the same element count for the contiguous fast path.
void BM_TensorAddTransposed(benchmark::State& state) {
  Rng rng(6);
  const std::int64_t n = state.range(0);
  Tensor a = rng.uniform({n, n}).transpose(0, 1);
  Tensor b = rng.uniform({n, n});
  for (auto _ : state) {
    Tensor c = ops::add(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TensorAddTransposed)->Arg(32)->Arg(256);

void BM_WhereTransposed(benchmark::State& state) {
  Rng rng(7);
  const std::int64_t n = state.range(0);
  Tensor cond =
      ops::gt(rng.uniform({n, n}), Tensor::full({}, Scalar(0.5)));
  Tensor a = rng.uniform({n, n}).transpose(0, 1);
  Tensor b = rng.uniform({n, n});
  for (auto _ : state) {
    Tensor c = ops::where(cond, a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_WhereTransposed)->Arg(256);

void BM_CopyTransposed(benchmark::State& state) {
  Rng rng(8);
  const std::int64_t n = state.range(0);
  Tensor dst = Tensor::zeros({n, n});
  Tensor src = rng.uniform({n, n}).transpose(0, 1);
  for (auto _ : state) {
    dst.copy_(src);
    benchmark::DoNotOptimize(dst);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CopyTransposed)->Arg(256);

void BM_StridedSliceFill(benchmark::State& state) {
  Tensor a = Tensor::zeros({1 << 16});
  for (auto _ : state) {
    a.slice(0, 1, 1 << 16, 2).fill_(Scalar(1.0));
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_StridedSliceFill);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor a = rng.uniform({64, 256});
  for (auto _ : state) {
    Tensor s = ops::softmax(a, 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Softmax);

void BM_InterpreterDispatch(benchmark::State& state) {
  // A tiny pure graph: measures per-node interpreter overhead.
  ir::Graph g;
  ir::Value* a = g.addInput(ir::Type::tensor(), "a");
  ir::IRBuilder b(g);
  ir::Value* v = a;
  for (int i = 0; i < 16; ++i) v = b.relu(v);
  g.addOutput(v);
  runtime::Interpreter interp;
  std::vector<runtime::RtValue> in{runtime::RtValue(Tensor::ones({8}))};
  for (auto _ : state) {
    auto out = interp.run(g, in);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_InterpreterDispatch);

void printDeviceModelAnchors() {
  std::printf("\n=== Device-model anchors (per-kernel cost in us) ===\n");
  for (const auto& device : {runtime::DeviceSpec::consumer(),
                             runtime::DeviceSpec::dataCenter()}) {
    std::printf("%-18s launch=%.1fus", device.name.c_str(),
                device.launchOverheadUs);
    std::printf("  1MB-memcpy=%.2fus", device.kernelTimeUs(1 << 20, 0));
    std::printf("  1GFLOP=%.1fus\n", device.kernelTimeUs(0, 1'000'000'000));
  }
}

}  // namespace

int main(int argc, char** argv) {
  printDeviceModelAnchors();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
