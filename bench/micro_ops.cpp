// Micro-benchmarks: tensor-library primitives, interpreter dispatch, the
// analytic device model's per-op pricing (sanity anchors for the figures),
// and fused-region execution — texpr JIT native code vs the tree-walking
// interpreter on identical bodies (records feed the CI perf gate).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "src/ir/builder.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"
#include "src/texpr/texpr.h"

namespace {

using namespace tssa;

void BM_TensorAdd(benchmark::State& state) {
  Rng rng(1);
  Tensor a = rng.uniform({state.range(0)});
  Tensor b = rng.uniform({state.range(0)});
  for (auto _ : state) {
    Tensor c = ops::add(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAdd)->Arg(1024)->Arg(65536);

void BM_TensorSigmoid(benchmark::State& state) {
  Rng rng(2);
  Tensor a = rng.uniform({state.range(0)});
  for (auto _ : state) {
    Tensor c = ops::sigmoid(a);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorSigmoid)->Arg(1024)->Arg(65536);

void BM_TensorMatmul(benchmark::State& state) {
  Rng rng(3);
  const std::int64_t n = state.range(0);
  Tensor a = rng.uniform({n, n});
  Tensor b = rng.uniform({n, n});
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

void BM_ViewSelectCopy(benchmark::State& state) {
  Rng rng(4);
  Tensor a = rng.uniform({64, 256});
  Tensor src = rng.uniform({256});
  for (auto _ : state) {
    a.select(0, 7).copy_(src);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ViewSelectCopy);

// Transposed (non-contiguous) operands exercise the typed strided loop of
// binaryOp/where/copy_ — before that fallback existed every element went
// through the double-boxing scalarAt/setScalarAt path. Compare against
// BM_TensorAdd at the same element count for the contiguous fast path.
void BM_TensorAddTransposed(benchmark::State& state) {
  Rng rng(6);
  const std::int64_t n = state.range(0);
  Tensor a = rng.uniform({n, n}).transpose(0, 1);
  Tensor b = rng.uniform({n, n});
  for (auto _ : state) {
    Tensor c = ops::add(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TensorAddTransposed)->Arg(32)->Arg(256);

void BM_WhereTransposed(benchmark::State& state) {
  Rng rng(7);
  const std::int64_t n = state.range(0);
  Tensor cond =
      ops::gt(rng.uniform({n, n}), Tensor::full({}, Scalar(0.5)));
  Tensor a = rng.uniform({n, n}).transpose(0, 1);
  Tensor b = rng.uniform({n, n});
  for (auto _ : state) {
    Tensor c = ops::where(cond, a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_WhereTransposed)->Arg(256);

void BM_CopyTransposed(benchmark::State& state) {
  Rng rng(8);
  const std::int64_t n = state.range(0);
  Tensor dst = Tensor::zeros({n, n});
  Tensor src = rng.uniform({n, n}).transpose(0, 1);
  for (auto _ : state) {
    dst.copy_(src);
    benchmark::DoNotOptimize(dst);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CopyTransposed)->Arg(256);

void BM_StridedSliceFill(benchmark::State& state) {
  Tensor a = Tensor::zeros({1 << 16});
  for (auto _ : state) {
    a.slice(0, 1, 1 << 16, 2).fill_(Scalar(1.0));
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_StridedSliceFill);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor a = rng.uniform({64, 256});
  for (auto _ : state) {
    Tensor s = ops::softmax(a, 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Softmax);

void BM_InterpreterDispatch(benchmark::State& state) {
  // A tiny pure graph: measures per-node interpreter overhead.
  ir::Graph g;
  ir::Value* a = g.addInput(ir::Type::tensor(), "a");
  ir::IRBuilder b(g);
  ir::Value* v = a;
  for (int i = 0; i < 16; ++i) v = b.relu(v);
  g.addOutput(v);
  runtime::Interpreter interp;
  std::vector<runtime::RtValue> in{runtime::RtValue(Tensor::ones({8}))};
  for (auto _ : state) {
    auto out = interp.run(g, in);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_InterpreterDispatch);

// ---- Fused-region: texpr JIT vs interpreter --------------------------------

/// `sigmoid(p0 * p1 + p2) * relu(p0 - p2)` — a pure elementwise chain; all
/// inputs contiguous and shape-equal, so the JIT's linear fast loop runs.
ir::Block* buildEwiseBody(ir::Graph& g) {
  ir::Value* in0 = g.addInput(ir::Type::tensor());
  ir::Value* in1 = g.addInput(ir::Type::tensor());
  ir::Value* in2 = g.addInput(ir::Type::tensor());
  ir::IRBuilder b(g);
  ir::Node* group = b.emitNode(ir::OpKind::FusionGroup, {in0, in1, in2}, 0);
  ir::Block* body = group->addBlock();
  ir::Value* p0 = body->addParam(in0->type());
  ir::Value* p1 = body->addParam(in1->type());
  ir::Value* p2 = body->addParam(in2->type());
  ir::IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  ir::Value* s = inner.sigmoid(inner.add(inner.mul(p0, p1), p2));
  body->addReturn(inner.mul(s, inner.relu(inner.sub(p0, p2))));
  group->addOutput(ir::Type::tensor());
  g.addOutput(group->output(0));
  return body;
}

/// `relu(transpose(p0) + p1) * p1` with an Access view — exercises the
/// generic coordinate-walking loop of the generated code.
ir::Block* buildViewBody(ir::Graph& g) {
  ir::Value* in0 = g.addInput(ir::Type::tensor());
  ir::Value* in1 = g.addInput(ir::Type::tensor());
  ir::IRBuilder b(g);
  ir::Node* group = b.emitNode(ir::OpKind::FusionGroup, {in0, in1}, 0);
  ir::Block* body = group->addBlock();
  ir::Value* p0 = body->addParam(in0->type());
  ir::Value* p1 = body->addParam(in1->type());
  ir::IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  ir::Node* tr = inner.emitNode(ir::OpKind::Access, {p0}, 1);
  tr->attrs().set("view",
                  Scalar(static_cast<std::int64_t>(ir::OpKind::Transpose)));
  tr->attrs().set("dim0", Scalar(0));
  tr->attrs().set("dim1", Scalar(1));
  body->addReturn(
      inner.mul(inner.relu(inner.add(tr->output(), p1)), p1));
  group->addOutput(ir::Type::tensor());
  g.addOutput(group->output(0));
  return body;
}

/// Best-of-`reps` mean ns per kernel run over `iters` runs.
double fusedNsPerIter(const texpr::Kernel& kernel,
                      const std::vector<runtime::RtValue>& inputs, int iters,
                      int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      auto out = kernel.run(inputs, nullptr, 1);
      benchmark::DoNotOptimize(out);
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count() /
                        iters);
  }
  return best;
}

void runFusedRegionBench(const bench::BenchFlags& flags,
                         bench::BenchReport& report) {
  struct Case {
    const char* name;
    ir::Block* (*build)(ir::Graph&);
    std::size_t numInputs;
  };
  const Case cases[] = {{"ewise", buildEwiseBody, 3},
                        {"views", buildViewBody, 2}};
  std::printf("\n=== Fused-region ns/iter: texpr JIT vs interpreter ===\n");
  for (const Case& c : cases) {
    ir::Graph g;
    ir::Block* body = c.build(g);
    Rng rng(42);
    std::vector<runtime::RtValue> inputs;
    for (std::size_t i = 0; i < c.numInputs; ++i)
      inputs.emplace_back(rng.uniform({256, 256}, -1, 1));

    texpr::Kernel jit(*body, /*allowJit=*/true);
    texpr::Kernel interp(*body, /*allowJit=*/false);
    // Warm up: first JIT run pays the external compile; outputs must agree
    // bitwise or the comparison is meaningless.
    const auto a = jit.run(inputs, nullptr, 1);
    const auto b = interp.run(inputs, nullptr, 1);
    if (!bench::outputsBitwiseEqual(a, b)) {
      std::fprintf(stderr, "fused_region/%s: JIT and interpreter disagree\n",
                   c.name);
      std::exit(1);
    }

    const double jitNs = fusedNsPerIter(jit, inputs, 40, flags.reps);
    const double interpNs = fusedNsPerIter(interp, inputs, 3, flags.reps);
    const double speedup = interpNs / jitNs;
    std::printf("  %-8s jit=%10.0f ns  interp=%12.0f ns  speedup=%6.1fx\n",
                c.name, jitNs, interpNs, speedup);

    bench::BenchRecord jitRecord;
    jitRecord.name = std::string("fused_region/") + c.name + "/jit";
    jitRecord.workload = "micro";
    jitRecord.pipeline = "texpr_jit";
    jitRecord.nsPerIter = jitNs;
    jitRecord.timeGated = true;
    jitRecord.extra.emplace_back("speedup_vs_interp", speedup);
    report.add(std::move(jitRecord));

    bench::BenchRecord interpRecord;
    interpRecord.name = std::string("fused_region/") + c.name + "/interp";
    interpRecord.workload = "micro";
    interpRecord.pipeline = "texpr_interp";
    interpRecord.nsPerIter = interpNs;
    interpRecord.timeGated = false;  // tracked for the ratio, not gated
    report.add(std::move(interpRecord));
  }
}

void printDeviceModelAnchors() {
  std::printf("\n=== Device-model anchors (per-kernel cost in us) ===\n");
  for (const auto& device : {runtime::DeviceSpec::consumer(),
                             runtime::DeviceSpec::dataCenter()}) {
    std::printf("%-18s launch=%.1fus", device.name.c_str(),
                device.launchOverheadUs);
    std::printf("  1MB-memcpy=%.2fus", device.kernelTimeUs(1 << 20, 0));
    std::printf("  1GFLOP=%.1fus\n", device.kernelTimeUs(0, 1'000'000'000));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tssa::bench::BenchFlags flags = tssa::bench::BenchFlags::parse(argc, argv);
  tssa::bench::BenchReport report("micro_ops", flags);
  printDeviceModelAnchors();
  runFusedRegionBench(flags, report);
  report.finish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
