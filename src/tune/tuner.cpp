#include "src/tune/tuner.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/analysis/cost.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"
#include "src/serve/fault_injector.h"
#include "src/support/error.h"

namespace tssa::tune {

namespace {

/// Deterministic search RNG (xorshift64): the whole analytic phase must
/// replay bit-for-bit from TunerOptions::seed.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

std::uint64_t mixSeed(std::uint64_t seed, const std::string& salt) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (char c : salt) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  return h == 0 ? 1 : h;
}

std::size_t countParallelMaps(const ir::Graph& graph) {
  std::size_t n = 0;
  std::vector<const ir::Block*> stack{graph.topBlock()};
  while (!stack.empty()) {
    const ir::Block* b = stack.back();
    stack.pop_back();
    for (const ir::Node* node : *b) {
      if (node->kind() == ir::OpKind::ParallelMap) ++n;
      for (const ir::Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return n;
}

constexpr std::size_t kFusionCaps[] = {0, 2, 3, 4, 6, 8, 12, 16};

double nowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TunedConfig TunedConfig::defaults(const runtime::PipelineOptions& base) {
  TunedConfig c;
  c.fusionMaxOps = base.fusionMaxOps;
  c.parallelizeMask = base.parallelizeMask;
  c.threads = base.threads;
  c.memoryPlan = base.memoryPlan;
  c.texprJit = base.texprJit;
  return c;
}

runtime::PipelineOptions TunedConfig::applyTo(
    runtime::PipelineOptions base) const {
  base.fusionMaxOps = fusionMaxOps;
  base.parallelizeMask = parallelizeMask;
  base.threads = threads;
  base.memoryPlan = memoryPlan;
  base.texprJit = texprJit;
  return base;
}

std::string TunedConfig::toString() const {
  std::ostringstream os;
  os << "fuse=" << fusionMaxOps << "|mask=" << std::hex << parallelizeMask
     << std::dec << "|threads=" << threads << "|mem=" << memoryPlan
     << "|jit=" << texprJit << "|mb=" << maxBatch << "|wait=" << maxWaitUs;
  return os.str();
}

Autotuner::Autotuner(TunerOptions options) : options_(options) {}

std::string Autotuner::entryKey(const std::string& workload,
                                runtime::PipelineKind kind) {
  return workload + "|" + std::string(runtime::pipelineName(kind));
}

TuneResult Autotuner::tune(const std::string& workload,
                           const workloads::WorkloadConfig& config,
                           runtime::PipelineKind kind,
                           const runtime::PipelineOptions& base) {
  obs::TraceSpan span("tune", "search");
  span.arg("workload", workload);
  span.arg("pipeline", runtime::pipelineName(kind));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counterAdd("tssa_tune_searches_total", 1);

  workloads::Workload w = workloads::buildWorkload(workload, config);
  const std::vector<analysis::CostValue> costIn =
      analysis::costInputs(w.inputs);
  analysis::CostOptions costOpts;
  costOpts.device = base.device;
  costOpts.host = runtime::hostSpecFor(kind);
  costOpts.useTexpr = base.useTexpr;

  // Analytic oracle: compile the candidate pipeline, price it on metadata.
  // Memoized per config — the Markov walk revisits points freely.
  std::unordered_map<std::string, analysis::CostReport> memo;
  auto score = [&](const TunedConfig& c) -> const analysis::CostReport& {
    auto [it, fresh] = memo.try_emplace(c.toString());
    if (fresh) {
      std::unique_ptr<ir::Graph> clone = ir::cloneGraph(*w.graph);
      runtime::compileGraph(kind, *clone, c.applyTo(base));
      it->second = analysis::estimateCost(*clone, costIn, costOpts);
    }
    return it->second;
  };

  TuneResult result;
  const TunedConfig defaults = TunedConfig::defaults(base);
  const analysis::CostReport& defaultReport = score(defaults);
  result.defaultSimUs = defaultReport.simUs;
  result.unknownOps = defaultReport.unknownOps;

  // How many loops the mask can gate: count what the
  // parallelize-everything default converted.
  std::size_t parCandidates = 0;
  {
    std::unique_ptr<ir::Graph> clone = ir::cloneGraph(*w.graph);
    runtime::compileGraph(kind, *clone, defaults.applyTo(base));
    parCandidates = std::min<std::size_t>(countParallelMaps(*clone), 64);
  }

  // Markov walk over the simulated-clock-visible knobs. Greedy with an
  // occasional uphill move; best-seen starts at the default, so the analytic
  // winner can never be worse than the heuristics it replaces.
  Rng rng{mixSeed(options_.seed, entryKey(workload, kind))};
  TunedConfig current = defaults;
  TunedConfig best = defaults;
  double currentUs = defaultReport.simUs;
  double bestUs = defaultReport.simUs;
  for (int step = 0; step < options_.searchSteps; ++step) {
    TunedConfig cand = current;
    const bool moveMask = parCandidates > 0 && (rng.next() & 1) != 0;
    obs::TraceSpan move("tune", "move");
    if (moveMask) {
      const std::size_t bit = rng.next() % parCandidates;
      cand.parallelizeMask ^= std::uint64_t{1} << bit;
      move.arg("knob", "parallelize_mask");
      move.arg("bit", static_cast<std::int64_t>(bit));
    } else {
      cand.fusionMaxOps =
          kFusionCaps[rng.next() % std::size(kFusionCaps)];
      move.arg("knob", "fusion_max_ops");
      move.arg("cap", static_cast<std::int64_t>(cand.fusionMaxOps));
    }
    const double candUs = score(cand).simUs;
    move.arg("sim_us", candUs);
    reg.counterAdd("tssa_tune_moves_total", 1);
    // Accept improvements; accept a worse point 1 time in 8 to escape local
    // minima (deterministic — the "temperature" is just the RNG stream).
    if (candUs <= currentUs || (rng.next() & 7) == 0) {
      current = cand;
      currentUs = candUs;
      reg.counterAdd("tssa_tune_accepts_total", 1);
    }
    if (candUs < bestUs) {
      best = cand;
      bestUs = candUs;
    }
  }
  result.tunedSimUs = bestUs;
  result.evaluated = static_cast<int>(memo.size());
  span.arg("evaluated", static_cast<std::int64_t>(memo.size()));

  // Wall-clock-only knobs (thread count; the analytic clock is invariant to
  // them by design) are settled by measuring a shortlist that always
  // includes the default: the pick can lose to the default only by actually
  // beating it on this machine.
  TunedConfig winner = best;
  if (options_.measure) {
    const int hw = options_.hardwareThreads > 0
                       ? options_.hardwareThreads
                       : runtime::ThreadPool::hardwareThreads();
    std::vector<TunedConfig> shortlist{defaults, best};
    if (hw != defaults.threads) {
      TunedConfig t = defaults;
      t.threads = hw;
      shortlist.push_back(t);
      t = best;
      t.threads = hw;
      shortlist.push_back(t);
    }
    // Wall-clock-only explorers. The analytic clock models a hypothetical
    // accelerator, so it is structurally blind to (or inverted on) host-side
    // effects: texpr dispatch vs. plain kernels under a fusion cap, the
    // ParallelMap merge machinery on a low-core box, arena bookkeeping, JIT
    // codegen. These candidates can only be justified by measuring; each one
    // displaces the default only by beating it for real.
    {
      TunedConfig t = defaults;
      t.texprJit = false;
      shortlist.push_back(t);
      t = defaults;
      t.memoryPlan = false;
      shortlist.push_back(t);
      t = defaults;
      t.parallelizeMask = 0;
      shortlist.push_back(t);
      for (const std::size_t cap : {std::size_t{2}, std::size_t{4}}) {
        t = defaults;
        t.fusionMaxOps = cap;
        shortlist.push_back(t);
      }
    }

    serve::FaultInjector* const injector = options_.faultInjector;
    auto measureNs = [&](const TunedConfig& c) {
      runtime::Pipeline pipeline(kind, *w.graph, c.applyTo(base));
      if (injector != nullptr)
        pipeline.setLaunchProbe([injector] { injector->onKernelLaunch(); });
      double bestNs = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < std::max(1, options_.measureReps); ++rep) {
        if (injector != nullptr) injector->beginRun();
        const double t0 = nowNs();
        pipeline.run(w.inputs);
        bestNs = std::min(bestNs, nowNs() - t0);
      }
      return bestNs;
    };

    try {
      std::vector<std::string> seen;
      double winnerNs = std::numeric_limits<double>::infinity();
      for (const TunedConfig& c : shortlist) {
        const std::string id = c.toString();
        if (std::find(seen.begin(), seen.end(), id) != seen.end()) continue;
        seen.push_back(id);
        const double ns = measureNs(c);
        if (c == defaults) result.defaultNsPerIter = ns;
        // Strict <: on a tie the earlier candidate (the default first)
        // keeps the win, so tuning never churns configs for nothing.
        if (ns < winnerNs) {
          winnerNs = ns;
          winner = c;
        }
      }
      result.tunedNsPerIter = winnerNs;
    } catch (const Error&) {
      // A measurement failure (injected or real) must never install a
      // config that was only ever priced on paper: keep the defaults.
      reg.counterAdd("tssa_tune_measure_failures_total", 1);
      winner = defaults;
      result.tunedSimUs = result.defaultSimUs;
      result.defaultNsPerIter = 0;
      result.tunedNsPerIter = 0;
      result.measurementFailed = true;
    }
  }

  // The installed config's own analytic score, for transparency: a
  // wall-clock explorer may measure faster while modelling slower (more
  // launches on the hypothetical device), and the report must not hide that.
  result.installedSimUs =
      result.measurementFailed ? result.defaultSimUs : score(winner).simUs;

  // Micro-batch knobs: a host-bound program amortizes per-request dispatch
  // across a bigger window; a device-bound one gains nothing from waiting.
  // Deterministic, from the analytic report — no measurement involved.
  if (!result.measurementFailed &&
      workloads::workloadBatchTraits(workload).batchable() &&
      defaultReport.hostUs > defaultReport.gpuUs) {
    winner.maxBatch = 16;
    winner.maxWaitUs = 400;
  }
  result.config = winner;

  if (result.tunedSimUs < result.defaultSimUs ||
      (result.tunedNsPerIter > 0 &&
       result.tunedNsPerIter < result.defaultNsPerIter))
    reg.counterAdd("tssa_tune_wins_total", 1);
  span.arg("sim_us_default", result.defaultSimUs);
  span.arg("sim_us_tuned", result.tunedSimUs);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[entryKey(workload, kind)];
    entry.result = result;
    entry.rejected = false;
    entry.samples.clear();
  }
  return result;
}

runtime::PipelineOptions Autotuner::pipelineFor(
    const std::string& workload, runtime::PipelineKind kind,
    runtime::PipelineOptions base) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(entryKey(workload, kind));
  if (it == entries_.end() || it->second.rejected) return base;
  return it->second.result.config.applyTo(base);
}

Autotuner::BatchOverride Autotuner::batchOverride(
    const std::string& workload, runtime::PipelineKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(entryKey(workload, kind));
  if (it == entries_.end() || it->second.rejected) return {};
  return {it->second.result.config.maxBatch,
          it->second.result.config.maxWaitUs};
}

void Autotuner::recordMeasurement(const std::string& workload,
                                  runtime::PipelineKind kind,
                                  double nsPerIter) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(entryKey(workload, kind));
  if (it == entries_.end() || it->second.rejected) return;
  Entry& entry = it->second;
  entry.samples.push_back(nsPerIter);
  while (entry.samples.size() > 64) entry.samples.pop_front();
  // Rejection needs a measured baseline to compare against; an
  // analytic-only entry (defaultNsPerIter == 0) is never auto-rejected.
  if (entry.result.defaultNsPerIter <= 0) return;
  if (entry.samples.size() < options_.minOnlineSamples) return;
  double sum = 0;
  for (double s : entry.samples) sum += s;
  const double mean = sum / static_cast<double>(entry.samples.size());
  if (mean > options_.rejectRatio * entry.result.defaultNsPerIter) {
    entry.rejected = true;
    obs::MetricsRegistry::global().counterAdd("tssa_tune_rejected_total", 1);
  }
}

void Autotuner::recordFailure(const std::string& workload,
                              runtime::PipelineKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(entryKey(workload, kind));
  if (it == entries_.end() || it->second.rejected) return;
  it->second.rejected = true;
  obs::MetricsRegistry::global().counterAdd("tssa_tune_rejected_total", 1);
}

Autotuner::OnlineStats Autotuner::onlineStats(
    const std::string& workload, runtime::PipelineKind kind) const {
  // Snapshot under the lock: serving threads append samples concurrently,
  // and a torn deque read here was the race this API exists to prevent.
  std::lock_guard<std::mutex> lock(mutex_);
  OnlineStats stats;
  auto it = entries_.find(entryKey(workload, kind));
  if (it == entries_.end()) return stats;
  stats.hasEntry = true;
  stats.rejected = it->second.rejected;
  stats.samples = it->second.samples.size();
  if (!it->second.samples.empty()) {
    double sum = 0;
    for (double s : it->second.samples) sum += s;
    stats.meanNsPerIter =
        sum / static_cast<double>(it->second.samples.size());
  }
  return stats;
}

std::optional<TuneResult> Autotuner::result(const std::string& workload,
                                            runtime::PipelineKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(entryKey(workload, kind));
  if (it == entries_.end()) return std::nullopt;
  return it->second.result;
}

}  // namespace tssa::tune
