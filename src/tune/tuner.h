// Cost-model-guided autotuning of pass and batching decisions (ROADMAP
// item 5).
//
// The pass pipeline and the serving engine expose knobs that have always run
// on fixed heuristics: fusion group size (unlimited), per-loop
// parallelization (always on), interpreter thread count, the memory planner,
// the texpr JIT, and the micro-batcher's window. The Autotuner searches that
// config space per (workload × pipeline kind), in two phases:
//
//  * Offline, analytic: candidate configs are compiled with
//    runtime::compileGraph and priced by the analytic device model over the
//    cost pass's flops/bytes (analysis::estimateCost) — no execution. The
//    search is Gensor-style Markov moves over single knobs (cap the fusion
//    group size, drop one loop from parallelization), greedy-with-jitter,
//    deterministic under TunerOptions::seed. Only knobs the simulated clock
//    can see are searched here: simUs is thread-count invariant by design,
//    so threads/memoryPlan/texprJit are NOT differentiated analytically.
//  * Measured shortlist: the analytic winner and the default, crossed with
//    hardware threads, plus wall-clock-only explorers the analytic clock is
//    structurally blind to (texpr JIT off, memory planner off,
//    parallelization off, small fusion caps — host-side effects a modelled
//    accelerator cannot see), are executed for real and the best measured
//    ns/iter wins. The default is always in the shortlist and measured
//    first, so the installed config is never worse than the default on the
//    machine that tuned it. A measurement failure (including an injected
//    fault from TunerOptions::faultInjector) discards the candidate config
//    entirely: serving stays on defaults.
//
// Tuned entries live in a mutex-protected map keyed by (workload, kind).
// The serving engine consults pipelineFor() when it builds a program-cache
// key, so the tuned config is hashed into the key's config guard — distinct
// configs can never collide in the ProgramCache, and a Router hashing the
// rendered key keeps shards cache-affine per config. Online, every served
// run of a tuned program reports its measured ns/iter back through
// recordMeasurement(); once minOnlineSamples accumulate, a mean worse than
// rejectRatio × the offline default measurement rejects the entry (sticky),
// and pipelineFor falls back to the default heuristics. recordFailure()
// (a kernel fault under a tuned config) rejects immediately.
//
// Observability: tssa_tune_* counters in obs::MetricsRegistry::global() and
// a "tune" trace span per search plus one per move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/runtime/pipeline.h"
#include "src/workloads/workload.h"

namespace tssa::serve {
class FaultInjector;
}

namespace tssa::tune {

/// One point of the search space. Pipeline-level knobs are concrete values;
/// the batching knobs keep "engine default" sentinels (0 / -1) because their
/// defaults live in serve::EngineOptions, not here.
struct TunedConfig {
  std::size_t fusionMaxOps = 0;        ///< 0 = unlimited (heuristic)
  std::uint64_t parallelizeMask = ~std::uint64_t{0};
  int threads = 1;
  bool memoryPlan = true;
  bool texprJit = true;
  int maxBatch = 0;             ///< micro-batch cap; 0 = engine default
  std::int64_t maxWaitUs = -1;  ///< micro-batch window; < 0 = engine default

  /// The config equivalent to `base`'s heuristics (what an untuned engine
  /// runs).
  static TunedConfig defaults(const runtime::PipelineOptions& base);
  /// `base` with this config's pipeline knobs applied (device, useTexpr and
  /// everything else non-tunable stay `base`'s).
  runtime::PipelineOptions applyTo(runtime::PipelineOptions base) const;

  friend bool operator==(const TunedConfig&, const TunedConfig&) = default;
  std::string toString() const;
};

struct TunerOptions {
  std::uint64_t seed = 1;  ///< search determinism: same seed ⇒ same config
  int searchSteps = 48;    ///< Markov moves in the analytic phase
  int measureReps = 3;     ///< wall-clock reps per shortlist candidate
  /// Thread count the "parallel" shortlist candidates use; 0 = the machine's
  /// runtime::ThreadPool::hardwareThreads().
  int hardwareThreads = 0;
  /// Skip the measured-shortlist phase (analytic only): the installed config
  /// is the analytic winner with default wall-clock knobs. Used by tests
  /// that need full determinism without timing noise.
  bool measure = true;
  /// Online refinement: reject a tuned entry once this many served-run
  /// samples average worse than rejectRatio × the default's offline
  /// measurement.
  std::size_t minOnlineSamples = 8;
  double rejectRatio = 1.10;
  /// Measurement fault seam: when set, every measurement run reports its
  /// kernel launches to the injector exactly like an engine-run program, so
  /// tests can script a tuner-measurement failure. Not owned.
  serve::FaultInjector* faultInjector = nullptr;
};

struct TuneResult {
  TunedConfig config;        ///< the installed (winning) config
  double defaultSimUs = 0;   ///< analytic score of the default heuristics
  /// Best analytic score the search found (≤ defaultSimUs by construction:
  /// the search seeds at the default). This is the analytic *winner's*
  /// score; the installed `config` may differ when a wall-clock explorer
  /// measured faster.
  double tunedSimUs = 0;
  /// Analytic score of the installed `config` itself. May exceed
  /// defaultSimUs for a measured wall-clock winner (e.g. a fusion cap: more
  /// modelled launches, less host dispatch) — reported so nothing hides it.
  double installedSimUs = 0;
  double defaultNsPerIter = 0;  ///< measured; 0 when measure == false
  double tunedNsPerIter = 0;    ///< measured; 0 when measure == false
  int evaluated = 0;            ///< distinct configs scored analytically
  /// Cost-model residue on the default compile: > 0 means the analytic
  /// scores are lower bounds (estimateCost could not resolve every op).
  std::int64_t unknownOps = 0;
  /// The measured shortlist threw (e.g. an injected fault): `config` is the
  /// default and serving stays on the default heuristics.
  bool measurementFailed = false;
};

class Autotuner {
 public:
  explicit Autotuner(TunerOptions options = {});

  /// Searches configs for (workload, kind), installs the winner, returns
  /// the result. Deterministic for a given (options.seed, workload, kind)
  /// when measure == false; with measurement on, the *shortlist* is
  /// deterministic and the pick depends on this machine's timings. Builds
  /// and (when measuring) executes the workload — offline cost, not for the
  /// request path.
  TuneResult tune(const std::string& workload,
                  const workloads::WorkloadConfig& config,
                  runtime::PipelineKind kind,
                  const runtime::PipelineOptions& base);

  /// The pipeline options serving should compile and key programs with:
  /// the tuned config applied to `base`, or `base` unchanged when no entry
  /// exists for (workload, kind) or its entry was rejected online.
  runtime::PipelineOptions pipelineFor(const std::string& workload,
                                       runtime::PipelineKind kind,
                                       runtime::PipelineOptions base) const;

  /// Micro-batching overrides for `workload` (any kind): maxBatch == 0 /
  /// maxWaitUs < 0 mean "keep the engine default".
  struct BatchOverride {
    int maxBatch = 0;
    std::int64_t maxWaitUs = -1;
  };
  BatchOverride batchOverride(const std::string& workload,
                              runtime::PipelineKind kind) const;

  /// Online refinement: one served run of `workload` under its tuned config
  /// took `nsPerIter` nanoseconds per request. See class comment for the
  /// rejection policy.
  void recordMeasurement(const std::string& workload,
                         runtime::PipelineKind kind, double nsPerIter);
  /// A run under the tuned config failed: reject the entry immediately.
  void recordFailure(const std::string& workload, runtime::PipelineKind kind);

  /// Snapshot of one entry's online state, copied under the lock (safe to
  /// call while serving threads are recording).
  struct OnlineStats {
    bool hasEntry = false;
    bool rejected = false;
    std::size_t samples = 0;
    double meanNsPerIter = 0;
  };
  OnlineStats onlineStats(const std::string& workload,
                          runtime::PipelineKind kind) const;

  /// The offline result for (workload, kind), if tuned.
  std::optional<TuneResult> result(const std::string& workload,
                                   runtime::PipelineKind kind) const;

  const TunerOptions& options() const { return options_; }

 private:
  struct Entry {
    TuneResult result;
    bool rejected = false;
    std::deque<double> samples;  ///< bounded window of served ns/iter
  };

  static std::string entryKey(const std::string& workload,
                              runtime::PipelineKind kind);

  TunerOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tssa::tune
