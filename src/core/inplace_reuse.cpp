#include "src/core/inplace_reuse.h"

namespace tssa::core {

using ir::Block;
using ir::Node;
using ir::OpKind;
using ir::Value;

namespace {

/// True when `v` is guaranteed to own fresh storage no one else aliases:
/// produced by a factory/clone/pure-compute/Access/Assign/FusionGroup node.
bool ownsFreshStorage(const Value* v) {
  const Node* def = v->definingNode();
  if (def == nullptr) return false;  // params handled separately
  if (def->kind() == OpKind::Constant) return false;  // shared weights
  if (ir::isViewOp(def->kind())) return false;        // aliases its base
  if (ir::isMutationOp(def->kind())) return false;
  // Factories, clone, elementwise, Access (materializing copy), Assign
  // (fresh or donated-chain version), FusionGroup results... all own their
  // storage lineage.
  return true;
}

/// All uses of `v` other than `consumer` have already executed when
/// `consumer` runs: plain uses strictly before it in the same block. A block
/// return or a nested-block use would still observe the old version.
bool isLastUse(const Node* consumer, const Value* v) {
  for (const ir::Use& use : v->uses()) {
    if (use.user == consumer) continue;
    if (use.user->kind() == OpKind::Return) return false;
    if (use.user->owningBlock() != consumer->owningBlock()) return false;
    if (!use.user->isBefore(consumer)) return false;
  }
  return true;
}

/// Decides donation by walking the ownership chain outward: through
/// FusionGroup parameters to the group's operand, and through loop-carried
/// parameters to the loop's initial value. Every hop requires the value to
/// be dead after its consumer at that level.
bool donatable(const Node* consumer, const Value* value) {
  const Node* c = consumer;
  const Value* v = value;
  for (int hop = 0; hop < 16; ++hop) {  // depth bound (defensive)
    if (!isLastUse(c, v)) return false;
    if (!v->isParam()) return ownsFreshStorage(v);

    const Block* block = v->paramBlock();
    const Node* owner = block->owningNode();
    if (owner == nullptr) return false;  // graph input: caller-owned

    if (owner->kind() == OpKind::FusionGroup) {
      // The body param mirrors the group operand; continue at group level.
      c = owner;
      v = owner->input(v->defIndex());
      continue;
    }
    if (owner->kind() == OpKind::Loop || owner->kind() == OpKind::ParallelMap) {
      if (v->defIndex() == 0) return false;  // induction variable
      const std::size_t slot = v->defIndex() - 1;
      // The carried-back version must own the storage lineage (it is the
      // assign chain's fresh/donated result).
      const Value* carried = block->returns()[slot];
      if (carried != v && !carried->isParam() && !ownsFreshStorage(carried))
        return false;
      // Continue with the loop's initial value at the loop's level.
      c = owner;
      v = owner->input(slot + 1);
      continue;
    }
    return false;  // If-blocks etc.: be conservative
  }
  return false;
}

std::size_t markInBlock(Block& block) {
  std::size_t marked = 0;
  for (Node* node : block) {
    for (Block* b : node->blocks()) marked += markInBlock(*b);
    if (node->kind() != OpKind::Assign) continue;
    if (!donatable(node, node->input(0))) continue;
    node->attrs().set("inplace", Scalar(true));
    ++marked;
  }
  return marked;
}

}  // namespace

std::size_t markInplaceAssigns(ir::Graph& graph) {
  return markInBlock(*graph.topBlock());
}

}  // namespace tssa::core
