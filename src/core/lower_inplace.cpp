#include "src/core/lower_inplace.h"

#include "src/ir/builder.h"

namespace tssa::core {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Value;

namespace {

std::size_t lowerInBlock(Graph& graph, Block& block) {
  std::size_t lowered = 0;
  for (Node* node : block.nodesSnapshot()) {
    for (Block* b : node->blocks()) lowered += lowerInBlock(graph, *b);
    if (!ir::isMutationOp(node->kind()) || node->kind() == OpKind::Copy_)
      continue;

    IRBuilder builder(graph);
    builder.setInsertionPoint(node);
    Value* target = node->input(0);
    Value* computed = nullptr;
    switch (node->kind()) {
      case OpKind::Fill_:
      case OpKind::Zero_: {
        Value* scalar = node->kind() == OpKind::Fill_ ? node->input(1)
                                                      : builder.constFloat(0.0);
        const DType dt = scalar->type().kind() == ir::TypeKind::Int
                             ? DType::Int64
                             : DType::Float32;
        computed = builder.full({}, scalar, dt);
        break;
      }
      default: {
        // Same operands, pure equivalent kind, same attributes.
        const OpKind pure = ir::pureEquivalent(node->kind());
        TSSA_CHECK(pure != node->kind(),
                   "no pure equivalent for " << opName(node->kind()));
        std::vector<Value*> inputs(node->inputs().begin(),
                                   node->inputs().end());
        Node* pureNode = builder.emitNode(pure, std::move(inputs), 1);
        for (const auto& [name, value] : node->attrs().all())
          pureNode->attrs().set(name, value);
        computed = pureNode->output();
        break;
      }
    }
    Node* copyNode = builder.copy_(target, computed);
    node->output(0)->replaceAllUsesWith(copyNode->output(0));
    node->destroy();
    ++lowered;
  }
  return lowered;
}

}  // namespace

std::size_t lowerInplaceOps(Graph& graph) {
  return lowerInBlock(graph, *graph.topBlock());
}

}  // namespace tssa::core
