// TensorSSA conversion — Algorithm 1 of the paper.
//
// Transforms an imperative tensor program (views + in-place mutation +
// control flow) into its pure functional TensorSSA form:
//
//   1. RewriteMutation: for every Mutate(v, w) in a functionalizable T-set,
//      *pass-up* inserts the Assign chain rebuilding a new version of the
//      origin tensor, *pass-down* re-Accesses every view that dominates the
//      mutation and annotates new versions with tssa::update.
//   2. BlockPropagation: every tssa::update whose new version is defined in a
//      deeper block than the variable it updates is propagated through the
//      enclosing prim::Loop / prim::If — adding loop-carried inputs, block
//      params, block returns, and node outputs, exactly as lines 17-32 of
//      Algorithm 1.
//   3. Renaming: a scoped walk replaces every use of x with x' after each
//      Update(x', x); then all Update operators (annotation-only,
//      Definition 3.5) are erased.
//   4. Every view operator of a functionalized T-set is rewritten to its
//      immutable Access form, and dead code is eliminated.
//
// Precondition: lowerInplaceOps() has run (copy_ is the only Mutate form).
// Postcondition: functionalized T-sets contain no views and no mutation; the
// graph verifies; the program computes the same outputs (tests enforce
// bit-equality against the reference interpreter on the original program).
#pragma once

#include <cstddef>
#include <string>

#include "src/ir/ir.h"

namespace tssa::core {

struct ConversionStats {
  std::size_t setsFunctionalized = 0;
  std::size_t setsSkipped = 0;
  std::size_t mutationsRemoved = 0;
  std::size_t updatesInserted = 0;
  std::size_t viewsRewritten = 0;
  std::size_t deadNodesRemoved = 0;

  std::string toString() const;
};

struct ConversionOptions {
  /// When false, only T-sets that live entirely inside one block are
  /// functionalized — the capability envelope of dataflow functionalization
  /// (functorch / TorchInductor), which breaks at control-flow boundaries.
  /// TensorSSA's holistic conversion keeps this true.
  bool acrossControlFlow = true;
};

/// Runs the full TensorSSA conversion on `graph` (in place).
ConversionStats convertToTensorSSA(ir::Graph& graph,
                                   const ConversionOptions& options = {});

}  // namespace tssa::core
