// Copy-on-write elision for immut::assign (buffer donation).
//
// Naively, Assign(base, src, [.]) materializes a full new version of `base`
// per write — functionalization would turn a loop of column writes into
// O(n^2) traffic. When the base version is *dead after the assign* (its only
// use is the assign itself), the kernel may write into the base buffer in
// place; versioning remains purely nominal. This is the standard buffer-
// donation optimization every functional tensor compiler performs (XLA
// aliasing, Inductor buffer reuse, NNC memory planning), and it is what the
// paper alludes to with "the layout of the tensor data can become a
// performance-friendly dense type".
//
// Safety: the base must be the assign's only consumer-visible version, and
// must be provably fresh storage (not a constant, not a graph input, not a
// view of something else). For loop-carried parameters the loop's initial
// value must itself be dead-after-loop fresh storage.
#pragma once

#include <cstddef>

#include "src/ir/ir.h"

namespace tssa::core {

/// Marks eligible immut::assign nodes with attribute inplace=true.
/// Run AFTER fusion (no pass may reorder reads past a donated write once
/// marking has happened); the analysis follows ownership through FusionGroup
/// parameters and loop-carried values. Returns the number of assigns marked.
std::size_t markInplaceAssigns(ir::Graph& graph);

}  // namespace tssa::core
