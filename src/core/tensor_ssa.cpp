#include "src/core/tensor_ssa.h"

#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/analysis/alias_graph.h"
#include "src/core/dce.h"
#include "src/core/immut_ops.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace tssa::core {

using analysis::AliasInfo;
using analysis::TensorSet;
using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;

namespace {

Node* makeUpdate(IRBuilder& builder, Value* newVersion, Value* oldVersion) {
  return builder.emitNode(OpKind::Update, {newVersion, oldVersion}, 0);
}

// ---- Mutation-effect reachability -------------------------------------------------

/// Innermost loop body enclosing `n`, or nullptr.
const Block* enclosingLoopBody(const Node* n) {
  for (const Block* b = n->owningBlock(); b != nullptr;
       b = b->owningNode() ? b->owningNode()->owningBlock() : nullptr) {
    const Node* owner = b->owningNode();
    if (owner != nullptr && (owner->kind() == OpKind::Loop ||
                             owner->kind() == OpKind::ParallelMap)) {
      return b;
    }
  }
  return nullptr;
}

/// True when the effect of mutation `n` can be observed by `use`: the use
/// executes after the mutation in straight-line program order, is a block
/// return that completes after it, or sits in a loop iteration following the
/// mutation (wrap-around through a common enclosing loop).
bool mutationReaches(const Node* n, const ir::Use& use) {
  const Node* user = use.user;
  if (user->kind() == OpKind::Return) {
    const Block* b = user->owningBlock();
    if (b->encloses(n->owningBlock())) return true;
    const Node* owner = b->owningNode();
    return owner != nullptr && n->isBefore(owner);
  }
  if (n->isBefore(user)) return true;
  for (const Block* loop = enclosingLoopBody(n); loop != nullptr;
       loop = loop->owningNode() != nullptr
                  ? enclosingLoopBody(loop->owningNode())
                  : nullptr) {
    if (loop->encloses(user->owningBlock())) return true;
  }
  return false;
}

// ---- RewriteMutation (Algorithm 1, lines 1-16) -----------------------------------

class MutationRewriter {
 public:
  MutationRewriter(Graph& graph, ConversionStats& stats)
      : graph_(graph), stats_(stats) {}

  void rewriteSet(const TensorSet& set) {
    for (Node* mutation : set.mutations) {
      rewriteMutation(set, mutation);
      ++stats_.mutationsRemoved;
    }
    // All views of the functionalized set become immutable Accesses
    // (after renaming; recorded for the final phase).
    for (Value* v : set.views) {
      Node* def = v->definingNode();
      if (def != nullptr && ir::isViewOp(def->kind()))
        viewsToRewrite_.insert(def);
    }
  }

  const std::unordered_set<Node*>& viewsToRewrite() const {
    return viewsToRewrite_;
  }

 private:
  void rewriteMutation(const TensorSet& set, Node* mutation) {
    TSSA_CHECK(mutation->kind() == OpKind::Copy_,
               "run lowerInplaceOps first: found "
                   << opName(mutation->kind()));
    Value* target = mutation->input(0);
    Value* source = mutation->input(1);

    IRBuilder builder(graph_);
    builder.setInsertionPoint(mutation);

    // ---- Pass up: rebuild a new version of the origin tensor ----
    // First an identity Assign at the target view's level (the data of the
    // whole view is replaced by `source`, broadcast if needed) ...
    Value* current = makeAssignOp(builder, target, source, /*viewNode=*/nullptr);
    // ... then fold the new data back through each view step toward the
    // origin: x' = Assign(x, v', [.]) per Algorithm 1 line 11.
    Value* x = target;
    while (x != set.origin) {
      Node* def = x->definingNode();
      TSSA_CHECK(def != nullptr && ir::isViewOp(def->kind()),
                 "view path of %" << x->id() << " broken at "
                                  << (def ? std::string(opName(def->kind()))
                                          : std::string("<param>")));
      Value* parent = def->input(0);
      current = makeAssignOp(builder, parent, current, def);
      x = parent;
    }
    Value* newOrigin = current;

    // The mutation's returned alias is the mutated view itself; redirect its
    // uses before computing which values the mutation's effect reaches.
    mutation->output(0)->replaceAllUsesWith(target);

    // ---- Pass down: re-access the views that dominate the mutation and
    // whose value is observed after it (directly, via a block return, or in
    // a later loop iteration).
    const auto needed = computeNeeded(set, mutation);
    traversal(set, set.origin, newOrigin, mutation, builder, needed);

    mutation->destroy();
  }

  /// Values of the T-set whose version must be advanced past mutation `n`,
  /// closed over view-path ancestors (a re-Accessed child needs its parent's
  /// new version as the base).
  std::unordered_set<const Value*> computeNeeded(const TensorSet& set,
                                                 const Node* n) const {
    std::unordered_set<const Value*> needed;
    auto observed = [&](const Value* v) {
      for (const ir::Use& use : v->uses()) {
        if (use.user->kind() == OpKind::Update) continue;  // annotations
        if (use.user == n) continue;                       // the mutation itself
        if (mutationReaches(n, use)) return true;
      }
      return false;
    };
    std::vector<Value*> all = set.views;
    all.push_back(set.origin);
    for (Value* v : all) {
      if (!observed(v)) continue;
      // Mark v and every ancestor on its view path up to the origin.
      for (Value* x = v; needed.insert(x).second && x != set.origin;) {
        Node* def = x->definingNode();
        if (def == nullptr ||
            (!ir::isViewOp(def->kind()) && !ir::isMutationOp(def->kind()))) {
          break;
        }
        x = def->input(0);
      }
      needed.insert(set.origin);
    }
    return needed;
  }

  /// Algorithm 1, Traversal (lines 1-7): Update(x', x), then recursively
  /// re-Access the views of x that dominate N.
  void traversal(const TensorSet& set, Value* x, Value* xNew, Node* n,
                 IRBuilder& builder,
                 const std::unordered_set<const Value*>& needed) {
    if (needed.count(x) == 0) return;
    makeUpdate(builder, xNew, x);
    ++stats_.updatesInserted;
    for (Value* viewVal : set.views) {
      if (needed.count(viewVal) == 0) continue;
      Node* def = viewVal->definingNode();
      if (def == nullptr || !ir::isViewOp(def->kind())) continue;
      if (def->input(0) != x) continue;
      if (!def->dominates(n)) continue;
      Value* reaccessed = makeAccessOp(builder, xNew, *def);
      traversal(set, viewVal, reaccessed, n, builder, needed);
    }
  }

  Graph& graph_;
  ConversionStats& stats_;
  std::unordered_set<Node*> viewsToRewrite_;
};

// ---- BlockPropagation (Algorithm 1, lines 17-32) -------------------------------------

void collectUpdates(Block& block, std::deque<Node*>& out) {
  for (Node* node : block) {
    if (node->kind() == OpKind::Update) out.push_back(node);
    for (Block* b : node->blocks()) collectUpdates(*b, out);
  }
}

void blockPropagation(Graph& graph, ConversionStats& stats) {
  std::deque<Node*> worklist;
  collectUpdates(*graph.topBlock(), worklist);

  // One propagation per (control-flow node, variable): several mutations of
  // the same variable inside one block share the carried slot.
  std::map<std::pair<Node*, Value*>, bool> propagated;

  while (!worklist.empty()) {
    Node* update = worklist.front();
    worklist.pop_front();
    Value* oldVersion = update->input(1);
    Block* b = update->owningBlock();
    Block* bEnd = oldVersion->definingBlock();
    if (bEnd == nullptr) bEnd = graph.topBlock();
    if (b == bEnd) continue;  // same scope: renaming alone suffices
    TSSA_CHECK(bEnd->encloses(b),
               "update target scope does not enclose the update");

    Node* owner = b->owningNode();
    TSSA_CHECK(owner != nullptr, "nested block without owning node");
    const auto key = std::make_pair(owner, oldVersion);
    if (propagated[key]) continue;
    propagated[key] = true;

    IRBuilder builder(graph);
    if (owner->kind() == OpKind::Loop || owner->kind() == OpKind::ParallelMap) {
      // Loop: thread the variable through as a loop-carried value.
      owner->addInput(oldVersion);               // initial version
      Value* param = b->addParam(oldVersion->type());
      b->addReturn(oldVersion);                  // placeholder; renamed later
      Value* out = owner->addOutput(oldVersion->type());
      // Update(param, old) at the head of the body keeps uses inside the
      // body on the freshest carried version (Algorithm 1 line 29).
      Node* headUpdate = graph.create(OpKind::Update, {param, oldVersion}, 0);
      headUpdate->prependTo(b);
      ++stats.updatesInserted;
      // Update(out, old) after the loop resumes outer uses (line 25).
      Node* tailUpdate = graph.create(OpKind::Update, {out, oldVersion}, 0);
      tailUpdate->insertAfter(owner);
      ++stats.updatesInserted;
      worklist.push_back(tailUpdate);
    } else if (owner->kind() == OpKind::If) {
      // Branch: both blocks return the variable; the sibling returns the
      // (possibly un-mutated) version visible inside it (line 31).
      Value* out = owner->addOutput(oldVersion->type());
      for (Block* branch : owner->blocks()) branch->addReturn(oldVersion);
      Node* tailUpdate = graph.create(OpKind::Update, {out, oldVersion}, 0);
      tailUpdate->insertAfter(owner);
      ++stats.updatesInserted;
      worklist.push_back(tailUpdate);
    } else {
      TSSA_THROW("cannot propagate update through " << opName(owner->kind()));
    }
  }
}

// ---- Renaming (Algorithm 1, lines 33-35) -----------------------------------------------

class Renamer {
 public:
  explicit Renamer(Graph& graph) : graph_(graph) {}

  void run() {
    renameBlock(*graph_.topBlock());
    removeUpdates(*graph_.topBlock());
  }

 private:
  void renameBlock(Block& block) {
    std::vector<Value*> pushed;
    for (Node* node : block.nodesSnapshot()) {
      if (node->kind() == OpKind::Update) {
        // From here on, uses of input(1) resolve to input(0).
        stacks_[node->input(1)].push_back(node->input(0));
        pushed.push_back(node->input(1));
        continue;
      }
      for (std::size_t i = 0; i < node->numInputs(); ++i) {
        Value* mapped = currentVersion(node->input(i));
        if (mapped != nullptr) node->setInput(i, mapped);
      }
      for (Block* b : node->blocks()) renameBlock(*b);
    }
    // Block returns see the block-final versions.
    Node* ret = block.returnNode();
    for (std::size_t i = 0; i < ret->numInputs(); ++i) {
      Value* mapped = currentVersion(ret->input(i));
      if (mapped != nullptr) ret->setInput(i, mapped);
    }
    for (auto it = pushed.rbegin(); it != pushed.rend(); ++it)
      stacks_[*it].pop_back();
  }

  Value* currentVersion(Value* v) const {
    auto it = stacks_.find(v);
    if (it == stacks_.end() || it->second.empty()) return nullptr;
    return it->second.back();
  }

  void removeUpdates(Block& block) {
    for (Node* node : block.nodesSnapshot()) {
      for (Block* b : node->blocks()) removeUpdates(*b);
      if (node->kind() == OpKind::Update) node->destroy();
    }
  }

  Graph& graph_;
  std::unordered_map<Value*, std::vector<Value*>> stacks_;
};

// ---- View -> Access rewrite -------------------------------------------------------------

std::size_t rewriteViewsToAccess(Graph& graph,
                                 const std::unordered_set<Node*>& views) {
  std::size_t rewritten = 0;
  for (Node* view : views) {
    if (view->isDestroyed()) continue;
    if (!view->output(0)->hasUses()) {
      view->destroy();
      continue;
    }
    rewriteViewToAccess(graph, view);
    ++rewritten;
  }
  return rewritten;
}

}  // namespace

std::string ConversionStats::toString() const {
  std::ostringstream os;
  os << "TensorSSA conversion: " << setsFunctionalized
     << " set(s) functionalized, " << setsSkipped << " skipped, "
     << mutationsRemoved << " mutation(s) removed, " << updatesInserted
     << " update(s) inserted, " << viewsRewritten << " view(s) -> access, "
     << deadNodesRemoved << " dead node(s) removed";
  return os.str();
}

namespace {

/// True when the whole T-set (origin, views, mutations, and uses of its
/// values) lives in a single block — the only case dataflow-only
/// functionalization can handle.
bool setIsSingleBlock(const TensorSet& set) {
  const Block* home = set.origin->definingBlock();
  auto sameBlock = [&](const Value* v) {
    if (v->definingBlock() != home) return false;
    for (const ir::Use& use : v->uses()) {
      if (use.user->owningBlock() != home) return false;
    }
    return true;
  };
  if (!sameBlock(set.origin)) return false;
  for (const Value* v : set.views) {
    if (!sameBlock(v)) return false;
  }
  for (const Node* m : set.mutations) {
    if (m->owningBlock() != home) return false;
  }
  return true;
}

}  // namespace

ConversionStats convertToTensorSSA(Graph& graph,
                                   const ConversionOptions& options) {
  ConversionStats stats;
  AliasInfo alias = AliasInfo::analyze(graph);

  MutationRewriter rewriter(graph, stats);
  for (const TensorSet& set : alias.sets()) {
    if (!set.functionalizable ||
        (!options.acrossControlFlow && !setIsSingleBlock(set))) {
      if (!set.mutations.empty()) ++stats.setsSkipped;
      continue;
    }
    rewriter.rewriteSet(set);
    ++stats.setsFunctionalized;
  }

  blockPropagation(graph, stats);
  Renamer(graph).run();
  stats.viewsRewritten = rewriteViewsToAccess(graph, rewriter.viewsToRewrite());
  stats.deadNodesRemoved = eliminateDeadCode(graph);
  return stats;
}

}  // namespace tssa::core
