// Construction helpers for the immutable TensorSSA operators
// (immut::access / immut::assign, Definitions 3.3-3.4).
#pragma once

#include "src/ir/builder.h"

namespace tssa::core {

/// Creates `immut::access(base, <dynamic view operands>)` carrying the view
/// rule of `viewNode` (its kind, attributes, and non-base operands).
ir::Value* makeAccessOp(ir::IRBuilder& builder, ir::Value* base,
                        const ir::Node& viewNode);

/// Creates `immut::assign(base, src, <dynamic view operands>)` carrying the
/// view rule of `viewNode`; a null `viewNode` means the identity rule
/// (whole-tensor assignment).
ir::Value* makeAssignOp(ir::IRBuilder& builder, ir::Value* base,
                        ir::Value* src, const ir::Node* viewNode);

/// Replaces a view node by the equivalent immut::access (same base and
/// operands); RAUWs its output and destroys it. Returns the access value.
ir::Value* rewriteViewToAccess(ir::Graph& graph, ir::Node* viewNode);

}  // namespace tssa::core
