// Loop unrolling and scalar constant folding.
//
// TorchDynamo traces Python control flow: a `for` loop with a trace-time
// constant range is unrolled into straight-line code (after which dataflow
// functionalization and fusion see one big block). These passes model that
// capability for the Dynamo+Inductor pipeline; TensorSSA deliberately does
// NOT need them — Algorithm 1 works across the un-unrolled loop.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/ir/ir.h"

namespace tssa::core {

/// Unrolls every prim::Loop whose trip count is a prim::Constant no larger
/// than `maxTrip`. Nested loops are unrolled innermost-first. Returns the
/// number of loops unrolled.
std::size_t unrollLoops(ir::Graph& graph, std::int64_t maxTrip = 256);

/// Folds scalar:: arithmetic over prim::Constant operands into constants
/// (fixpoint). Returns the number of nodes folded.
std::size_t foldScalarConstants(ir::Graph& graph);

}  // namespace tssa::core
