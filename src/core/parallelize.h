// Horizontal loop parallelization (paper §4.2.2).
//
// After TensorSSA conversion a loop body is pure; when every loop-carried
// tensor is only read and written at the slice indexed by the induction
// variable, iterations are independent and the loop can execute as a single
// batched kernel. This pass proves that pattern and re-tags such loops as
// tssa::ParallelMap (identical structure; the runtime prices the whole map
// as one kernel launch).
//
// Conservative conditions per candidate loop:
//   * body has no nested control flow and contains only pure operators;
//   * each carried value is either passed through unchanged or produced by a
//     chain of immut::assign ops rooted at the carried parameter, all
//     writing Select(dim=d, index=i) where `i` is the induction variable;
//   * every other use of a carried-chain value is an immut::access reading
//     Select(dim=d, index=i) (same slice) or the block return;
//   * the induction variable is used only as an access/assign index (reads
//     may index anywhere — they are pure — but writes must be exactly `i`).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/ir/ir.h"

namespace tssa::core {

/// Re-tags every provably independent prim::Loop; returns how many. Each
/// converted node is annotated with a `par_dims` attribute (one entry per
/// carried slot: the dimension whose slice `i` the iteration writes, -1 for
/// read-only pass-throughs), which the runtime's threaded ParallelMap
/// executor uses to merge per-iteration results without locks.
///
/// `mask` gates conversion per candidate: provably-parallelizable loops are
/// numbered in discovery order (outer blocks first, nested bodies before
/// their owner), and candidate i converts only when bit min(i, 63) is set.
/// The default converts everything; the autotuner (src/tune) searches over
/// masks to leave serial the loops whose batching the device model says
/// doesn't pay.
std::size_t parallelizeLoops(ir::Graph& graph,
                             std::uint64_t mask = ~std::uint64_t{0});

/// Exposed for testing: checks a single loop node.
bool isParallelizableLoop(const ir::Node& loop);

}  // namespace tssa::core
