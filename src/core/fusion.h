// Vertical kernel fusion (paper §4.2.1).
//
// Groups runs of element-level operators into tssa::FusionGroup nodes, each
// of which the runtime executes (and prices) as a single kernel. The fusion
// *policy* models the capability envelope of each compared system:
//
//   * TorchScript+NNC     : elementwise chains only; views, mutations and
//                           immut ops are fusion breakers.
//   * TorchScript+nvFuser : + ternary selects and a trailing reduction.
//   * TorchInductor       : + Access/Assign inside a traced region.
//   * TensorSSA (ours)    : + Access/Assign everywhere — after
//                           functionalization there is nothing left to break
//                           the fuser (the point of the paper).
#pragma once

#include <cstddef>

#include "src/ir/ir.h"

namespace tssa::core {

struct FusionPolicy {
  bool fuseTernary = true;        ///< aten::where / masked_fill
  bool fuseAccessAssign = true;   ///< immut::access / immut::assign
  bool reductionTail = false;     ///< allow one trailing reduction per group
  bool fuseReductions = false;    ///< reductions as full members (TE codegen)
  bool fuseShapeOps = false;      ///< cat/stack codegen (Inductor-style)
  std::size_t minKernelOps = 2;   ///< don't group fewer kernel ops than this
  /// Cap on ops per group: a run is flushed when it reaches this size, so
  /// longer chains split into several groups. 0 = unlimited (the historical
  /// behaviour and every preset's default); the autotuner (src/tune) sets it
  /// to trade launch count against per-kernel working-set size.
  std::size_t maxKernelOps = 0;

  static FusionPolicy nnc() { return {false, false, false, false, false, 2}; }
  static FusionPolicy nvfuser() {
    return {true, false, true, false, false, 2};
  }
  static FusionPolicy inductor() { return {true, true, true, true, true, 2}; }
  static FusionPolicy tensorssa() {
    return {true, true, true, true, false, 2};
  }
};

/// Hoists prim::Constant nodes to the top of their blocks so that constant
/// materialization never interrupts a fusable run. Returns count moved.
std::size_t hoistConstants(ir::Graph& graph);

/// Fuses maximal contiguous runs of policy-fusable nodes in every block
/// (including loop/branch bodies). Returns the number of groups created.
std::size_t fuseKernels(ir::Graph& graph, const FusionPolicy& policy);

/// Converts read-only views (views of storage that is never mutated) into
/// immut::access when every consumer is policy-fusable (or another converted
/// view), so they can join fusion groups as index transforms instead of
/// breaking them. Run after convertToTensorSSA and before fuseKernels.
/// Returns the number converted.
std::size_t readonlyViewsToAccess(ir::Graph& graph,
                                  const FusionPolicy& policy);

}  // namespace tssa::core
