#include "src/core/parallelize.h"

#include <algorithm>
#include <unordered_set>

#include "src/analysis/alias_graph.h"

namespace tssa::core {

using analysis::AliasInfo;
using ir::Block;
using ir::Node;
using ir::OpKind;
using ir::Use;
using ir::Value;

namespace {

bool isSelectRule(const Node& node) {
  return node.attrs().has("view") &&
         static_cast<OpKind>(node.attrs().i("view")) == OpKind::Select;
}

/// For an Access with Select rule, the index operand; for an Assign with
/// Select rule likewise.
Value* selectIndexOperand(const Node& node) {
  if (node.kind() == OpKind::Access) return node.input(1);
  if (node.kind() == OpKind::Assign) return node.input(2);
  return nullptr;
}

/// Verifies one carried slot: returns(k) must be an assign chain over
/// param(k+1) confined to slice `iv`, all reads likewise confined. On
/// success `outWriteDim` receives the written dimension, or -1 when the slot
/// is a read-only pass-through.
bool carriedSlotIndependent(const Block& body, std::size_t k, Value* iv,
                            std::int64_t* outWriteDim) {
  *outWriteDim = -1;
  Value* param = body.param(k + 1);
  Value* ret = body.returns()[k];
  if (ret == param) return true;  // read-only carried value

  // Walk the assign chain from the return back to the parameter.
  std::unordered_set<const Value*> chain;
  std::int64_t writeDim = -1;
  const Value* cur = ret;
  while (cur != param) {
    const Node* def = cur->definingNode();
    if (def == nullptr || def->kind() != OpKind::Assign) return false;
    if (!isSelectRule(*def)) return false;
    if (def->input(2) != iv) return false;  // write index must be exactly i
    const std::int64_t d = def->attrs().i("dim");
    if (writeDim == -1) writeDim = d;
    if (d != writeDim) return false;
    chain.insert(cur);
    cur = def->input(0);
  }
  chain.insert(param);

  // Every use of a chain value must stay on slice i of the write dim.
  for (const Value* v : chain) {
    for (const Use& use : v->uses()) {
      const Node* user = use.user;
      if (user->kind() == OpKind::Return) {
        if (v != ret) return false;  // only the final version escapes
        continue;
      }
      if (user->kind() == OpKind::Assign && use.index == 0 &&
          chain.count(user->output(0)) > 0) {
        continue;  // the next link of the chain
      }
      if (user->kind() == OpKind::Access && isSelectRule(*user) &&
          use.index == 0 && user->attrs().i("dim") == writeDim &&
          selectIndexOperand(*user) == iv) {
        continue;  // read of this iteration's own slice
      }
      return false;
    }
  }
  *outWriteDim = writeDim;
  return true;
}

/// The induction variable may only index accesses/assigns (reads anywhere,
/// writes checked per-slot above) or feed scalar math that itself only
/// indexes reads.
bool inductionUsesSafe(Value* iv) {
  for (const Use& use : iv->uses()) {
    const Node* user = use.user;
    if (user->kind() == OpKind::Access || user->kind() == OpKind::Assign)
      continue;
    // View reads indexed by i are safe: the body is mutation-free, so a view
    // can only be read (write-disjointness is proven on the carried chains).
    if (ir::isViewOp(user->kind())) continue;
    if (ir::opCategory(user->kind()) == ir::OpCategory::Scalar) {
      // Derived scalars may only feed read accesses.
      bool readsOnly = true;
      for (const Use& u2 : user->output(0)->uses()) {
        if (u2.user->kind() != OpKind::Access) {
          readsOnly = false;
          break;
        }
      }
      if (readsOnly) continue;
    }
    return false;
  }
  return true;
}

}  // namespace

namespace {

/// `alias` may be null (strict mode: views disallowed). On success
/// `outWriteDims` (when non-null) receives one entry per carried slot: the
/// dimension its assign chain writes at index `i`, or -1 for read-only
/// pass-throughs.
bool loopIsParallelizable(const Node& loop, const AliasInfo* alias,
                          std::vector<std::int64_t>* outWriteDims = nullptr) {
  if (loop.kind() != OpKind::Loop) return false;
  const Block& body = *loop.block(0);
  for (const Node* n : body) {
    if (n->numBlocks() != 0) return false;  // no nested control flow
    if (ir::isPureOp(n->kind())) continue;
    // Views of never-mutated storage are pure reads.
    if (ir::isViewOp(n->kind()) && alias != nullptr) {
      const ir::Value* root = alias->memoryRoot(n->output(0));
      bool mutated = false;
      for (const analysis::TensorSet& set : alias->sets()) {
        if (set.origin == root && !set.mutations.empty()) {
          mutated = true;
          break;
        }
      }
      if (!mutated) continue;
    }
    return false;
  }
  Value* iv = body.param(0);
  if (!inductionUsesSafe(iv)) return false;
  std::vector<std::int64_t> writeDims(loop.numOutputs(), -1);
  for (std::size_t k = 0; k < loop.numOutputs(); ++k) {
    if (!carriedSlotIndependent(body, k, iv, &writeDims[k])) return false;
  }
  if (outWriteDims != nullptr) *outWriteDims = std::move(writeDims);
  return true;
}

std::size_t parallelizeInBlock(Block& block, const AliasInfo& alias,
                               std::uint64_t mask, std::size_t& candidate) {
  std::size_t converted = 0;
  for (Node* node : block.nodesSnapshot()) {
    for (Block* b : node->blocks())
      converted += parallelizeInBlock(*b, alias, mask, candidate);
    std::vector<std::int64_t> writeDims;
    if (node->kind() == OpKind::Loop &&
        loopIsParallelizable(*node, &alias, &writeDims)) {
      // Candidates are numbered in discovery order whether or not the mask
      // admits them, so a mask bit always names the same loop.
      const std::size_t bit = std::min<std::size_t>(candidate++, 63);
      if ((mask >> bit & 1) == 0) continue;
      node->setKind(OpKind::ParallelMap);
      // The proof travels with the node: the runtime's threaded executor
      // needs the written dimension of each carried slot to pre-allocate
      // output buffers and merge per-iteration slices without locks. A
      // ParallelMap lacking this attribute falls back to serial execution.
      node->attrs().set("par_dims", std::move(writeDims));
      ++converted;
    }
  }
  return converted;
}

}  // namespace

bool isParallelizableLoop(const Node& loop) {
  return loopIsParallelizable(loop, nullptr);
}

std::size_t parallelizeLoops(ir::Graph& graph, std::uint64_t mask) {
  AliasInfo alias = AliasInfo::analyze(graph);
  std::size_t candidate = 0;
  return parallelizeInBlock(*graph.topBlock(), alias, mask, candidate);
}

}  // namespace tssa::core
