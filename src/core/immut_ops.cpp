#include "src/core/immut_ops.h"

namespace tssa::core {

using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Value;

Value* makeAccessOp(IRBuilder& builder, Value* base, const Node& viewNode) {
  std::vector<Value*> inputs{base};
  for (std::size_t i = 1; i < viewNode.numInputs(); ++i)
    inputs.push_back(viewNode.input(i));
  Node* access = builder.emitNode(OpKind::Access, std::move(inputs), 1);
  for (const auto& [name, value] : viewNode.attrs().all())
    access->attrs().set(name, value);
  access->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(viewNode.kind())));
  return access->output();
}

Value* makeAssignOp(IRBuilder& builder, Value* base, Value* src,
                    const Node* viewNode) {
  std::vector<Value*> inputs{base, src};
  OpKind viewKind = OpKind::Identity;
  if (viewNode != nullptr) {
    viewKind = viewNode->kind();
    for (std::size_t i = 1; i < viewNode->numInputs(); ++i)
      inputs.push_back(viewNode->input(i));
  }
  Node* assign = builder.emitNode(OpKind::Assign, std::move(inputs), 1);
  if (viewNode != nullptr) {
    for (const auto& [name, value] : viewNode->attrs().all())
      assign->attrs().set(name, value);
  }
  assign->attrs().set("view", Scalar(static_cast<std::int64_t>(viewKind)));
  assign->output()->setType(base->type());
  return assign->output();
}

Value* rewriteViewToAccess(ir::Graph& graph, Node* viewNode) {
  IRBuilder builder(graph);
  builder.setInsertionPoint(viewNode);
  Value* access = makeAccessOp(builder, viewNode->input(0), *viewNode);
  access->setDebugName(viewNode->output(0)->debugName());
  viewNode->output(0)->replaceAllUsesWith(access);
  viewNode->destroy();
  return access;
}

}  // namespace tssa::core
