#include "src/core/fusion.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/analysis/alias_graph.h"
#include "src/core/immut_ops.h"
#include "src/support/error.h"

namespace tssa::core {

using ir::Block;
using ir::Graph;
using ir::Node;
using ir::OpCategory;
using ir::OpKind;
using ir::Value;

namespace {

bool policyFusable(const FusionPolicy& policy, const Node& node) {
  switch (ir::opCategory(node.kind())) {
    case OpCategory::EwiseUnary:
    case OpCategory::EwiseBinary:
      return true;
    case OpCategory::EwiseTernary:
      return policy.fuseTernary;
    case OpCategory::Reduction:
      return policy.fuseReductions;
    case OpCategory::Immut:
      return policy.fuseAccessAssign &&
             (node.kind() == OpKind::Access || node.kind() == OpKind::Assign);
    case OpCategory::ShapeOp:
      return policy.fuseShapeOps &&
             (node.kind() == OpKind::Cat || node.kind() == OpKind::Stack);
    case OpCategory::Primitive:
      return policy.fuseShapeOps && node.kind() == OpKind::ListConstruct;
    default:
      return false;
  }
}

bool isReductionKind(OpKind kind) {
  return ir::opCategory(kind) == OpCategory::Reduction;
}

std::size_t hoistInBlock(Block& block) {
  std::size_t moved = 0;
  Node* anchor = nullptr;  // last placed constant
  for (Node* node : block.nodesSnapshot()) {
    for (Block* b : node->blocks()) moved += hoistInBlock(*b);
    if (node->kind() != OpKind::Constant) continue;
    if (anchor == nullptr) {
      if (block.front() != node) {
        Node* first = block.front();
        node->moveBefore(first);
        ++moved;
      }
      anchor = node;
    } else if (anchor->next() != node) {
      node->moveAfter(anchor);
      anchor = node;
      ++moved;
    } else {
      anchor = node;
    }
  }
  return moved;
}

/// Builds one FusionGroup from a contiguous run of pure nodes and replaces
/// them. `members` is in program order.
void buildGroup(Graph& graph, const std::vector<Node*>& members) {
  std::unordered_set<const Node*> memberSet(members.begin(), members.end());
  Node* group = graph.create(OpKind::FusionGroup, {}, 0);
  group->insertAfter(members.back());
  Block* body = group->addBlock();

  std::unordered_map<Value*, Value*> externParam;  // outer value -> body param
  std::unordered_map<Value*, Value*> localMap;     // member output -> clone

  auto mapOperand = [&](Value* v) -> Value* {
    if (auto it = localMap.find(v); it != localMap.end()) return it->second;
    if (auto it = externParam.find(v); it != externParam.end())
      return it->second;
    group->addInput(v);
    Value* p = body->addParam(v->type(), v->debugName());
    externParam[v] = p;
    return p;
  };

  for (Node* m : members) {
    Node* copy = graph.create(m->kind(), {}, 0);
    for (Value* in : m->inputs()) copy->addInput(mapOperand(in));
    for (Value* out : m->outputs()) {
      Value* newOut = copy->addOutput(out->type());
      newOut->setDebugName(out->debugName());
      localMap[out] = newOut;
    }
    for (const auto& [name, value] : m->attrs().all())
      copy->attrs().set(name, value);
    copy->appendTo(body);
  }

  // Outputs: member results consumed outside the run.
  for (Node* m : members) {
    for (Value* out : m->outputs()) {
      bool external = false;
      for (const ir::Use& use : out->uses()) {
        if (memberSet.count(use.user) == 0) {
          external = true;
          break;
        }
      }
      if (!external) continue;
      body->addReturn(localMap.at(out));
      Value* groupOut = group->addOutput(out->type());
      groupOut->setDebugName(out->debugName());
      out->replaceAllUsesWith(groupOut);
    }
  }

  // Destroy originals, consumers first.
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    // Internal uses of member outputs may still point at group outputs via
    // the RAUW above; those users are destroyed before their producers.
    (*it)->destroy();
  }
}

/// Sinks each fusable node to just above its earliest consumer in the same
/// block, so unfusable producers (matmuls, reductions) between it and its
/// consumers no longer break the run. Sinking never crosses a mutation or a
/// control-flow node — those may change what the moved op (or anything it
/// aliases) observes.
void sinkFusableOps(Block& block, const FusionPolicy& policy) {
  auto nodes = block.nodesSnapshot();
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    Node* node = *it;
    if (node->isDestroyed() || !policyFusable(policy, *node)) continue;

    // Earliest consumer, lifted into this block; block returns pin the node
    // to the end (sentinel anchor).
    Node* anchor = nullptr;
    bool movable = true;
    for (Value* out : node->outputs()) {
      for (const ir::Use& use : out->uses()) {
        Node* user = use.user;
        while (user->owningBlock() != &block) {
          Node* owner = user->owningBlock()->owningNode();
          if (owner == nullptr) {
            movable = false;
            break;
          }
          user = owner;
        }
        if (!movable) break;
        if (anchor == nullptr ||
            (user->kind() != OpKind::Return &&
             (anchor->kind() == OpKind::Return || user->isBefore(anchor)))) {
          anchor = user;
        }
      }
      if (!movable) break;
    }
    if (!movable || anchor == nullptr || anchor == node->next()) continue;
    // Barrier check: nothing with side effects or nested control flow may be
    // crossed.
    bool blocked = false;
    for (Node* n = node->next(); n != anchor && n->kind() != OpKind::Return;
         n = n->next()) {
      if (ir::isMutationOp(n->kind()) || n->numBlocks() != 0) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    node->moveBefore(anchor);
  }
}

std::size_t fuseInBlock(Graph& graph, Block& block,
                        const FusionPolicy& policy) {
  std::size_t groups = 0;
  // Recurse into nested bodies first (loop bodies fuse independently).
  for (Node* node : block.nodesSnapshot()) {
    for (Block* b : node->blocks()) groups += fuseInBlock(graph, *b, policy);
  }
  sinkFusableOps(block, policy);

  std::vector<Node*> run;
  auto flush = [&]() {
    if (run.size() >= policy.minKernelOps) {
      buildGroup(graph, run);
      ++groups;
    }
    run.clear();
  };

  for (Node* node : block.nodesSnapshot()) {
    if (node->isDestroyed()) continue;
    if (policyFusable(policy, *node)) {
      run.push_back(node);
      if (policy.maxKernelOps != 0 && run.size() >= policy.maxKernelOps)
        flush();
      continue;
    }
    // Optional single reduction closing the group.
    if (policy.reductionTail && !run.empty() && isReductionKind(node->kind())) {
      bool consumesRun = false;
      for (Value* in : node->inputs()) {
        Node* def = in->definingNode();
        if (def != nullptr &&
            std::find(run.begin(), run.end(), def) != run.end()) {
          consumesRun = true;
          break;
        }
      }
      if (consumesRun) {
        run.push_back(node);
        flush();
        continue;
      }
    }
    flush();
  }
  flush();
  return groups;
}

}  // namespace

std::size_t hoistConstants(Graph& graph) {
  return hoistInBlock(*graph.topBlock());
}

namespace {

void collectViews(Block& block, std::vector<Node*>& out) {
  for (Node* node : block) {
    if (ir::isViewOp(node->kind())) out.push_back(node);
    for (Block* b : node->blocks()) collectViews(*b, out);
  }
}

}  // namespace

std::size_t readonlyViewsToAccess(Graph& graph, const FusionPolicy& policy) {
  analysis::AliasInfo alias = analysis::AliasInfo::analyze(graph);
  std::unordered_set<const Value*> mutatedRoots;
  for (const analysis::TensorSet& set : alias.sets()) {
    if (!set.mutations.empty()) mutatedRoots.insert(set.origin);
  }

  std::vector<Node*> views;
  collectViews(*graph.topBlock(), views);

  // Fixpoint: a view converts when its storage is never mutated and every
  // consumer either fuses or is itself a converting view.
  std::unordered_set<Node*> convertible;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = views.rbegin(); it != views.rend(); ++it) {
      Node* view = *it;
      if (convertible.count(view) > 0) continue;
      if (mutatedRoots.count(alias.memoryRoot(view->output(0))) > 0) continue;
      if (!view->output(0)->hasUses()) continue;
      bool allFusable = true;
      for (const ir::Use& use : view->output(0)->uses()) {
        if (policyFusable(policy, *use.user)) continue;
        if (convertible.count(use.user) > 0) continue;
        allFusable = false;
        break;
      }
      if (allFusable) {
        convertible.insert(view);
        changed = true;
      }
    }
  }

  for (Node* view : views) {
    if (convertible.count(view) > 0) rewriteViewToAccess(graph, view);
  }
  return convertible.size();
}

std::size_t fuseKernels(Graph& graph, const FusionPolicy& policy) {
  return fuseInBlock(graph, *graph.topBlock(), policy);
}

}  // namespace tssa::core
