#include "src/core/unroll.h"

#include <unordered_map>

#include "src/ir/builder.h"

namespace tssa::core {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Value;

namespace {

/// The constant scalar behind `v`, if any.
const Scalar* constantScalar(const Value* v) {
  const Node* def = v->definingNode();
  if (def == nullptr || def->kind() != OpKind::Constant) return nullptr;
  if (!def->attrs().has("value")) return nullptr;
  return &std::get<Scalar>(def->attrs().all().at("value"));
}

using ValueMap = std::unordered_map<const Value*, Value*>;

Value* mapped(const ValueMap& map, Value* v) {
  auto it = map.find(v);
  return it == map.end() ? v : it->second;
}

/// Clones `node` (with nested blocks) in front of `anchor`, rewriting
/// operands through `map`; records output mappings.
void cloneNodeBefore(Graph& graph, const Node& node, Node* anchor,
                     ValueMap& map) {
  Node* copy = graph.create(node.kind(), {}, 0);
  for (Value* in : node.inputs()) copy->addInput(mapped(map, in));
  for (Value* out : node.outputs()) {
    Value* newOut = copy->addOutput(out->type());
    newOut->setDebugName(out->debugName());
    map[out] = newOut;
  }
  for (const auto& [name, value] : node.attrs().all())
    copy->attrs().set(name, value);
  for (const Block* b : node.blocks()) {
    Block* newBlock = copy->addBlock();
    for (Value* p : b->params()) map[p] = newBlock->addParam(p->type());
    std::unordered_map<const Value*, Value*>& inner = map;
    ir::cloneBlockContents(*b, newBlock, inner);
  }
  copy->insertBefore(anchor);
}

std::size_t unrollInBlock(Graph& graph, Block& block, std::int64_t maxTrip) {
  std::size_t unrolled = 0;
  for (Node* node : block.nodesSnapshot()) {
    // Innermost first, so nested constant loops flatten completely.
    for (Block* b : node->blocks()) unrolled += unrollInBlock(graph, *b, maxTrip);
    if (node->kind() != OpKind::Loop) continue;
    const Scalar* trip = constantScalar(node->input(0));
    if (trip == nullptr) continue;
    const std::int64_t n = trip->toInt();
    if (n < 0 || n > maxTrip) continue;

    Block& body = *node->block(0);
    std::vector<Value*> carried;
    for (std::size_t i = 1; i < node->numInputs(); ++i)
      carried.push_back(node->input(i));

    IRBuilder builder(graph);
    builder.setInsertionPoint(node);
    for (std::int64_t it = 0; it < n; ++it) {
      ValueMap map;
      map[body.param(0)] = builder.constInt(it);
      for (std::size_t k = 0; k < carried.size(); ++k)
        map[body.param(k + 1)] = carried[k];
      for (const Node* inner : body) cloneNodeBefore(graph, *inner, node, map);
      for (std::size_t k = 0; k < carried.size(); ++k)
        carried[k] = mapped(map, body.returns()[k]);
    }
    for (std::size_t k = 0; k < node->numOutputs(); ++k)
      node->output(k)->replaceAllUsesWith(carried[k]);
    node->destroy();
    ++unrolled;
  }
  return unrolled;
}

std::size_t foldInBlock(Graph& graph, Block& block) {
  std::size_t folded = 0;
  for (Node* node : block.nodesSnapshot()) {
    for (Block* b : node->blocks()) folded += foldInBlock(graph, *b);
    if (ir::opCategory(node->kind()) != ir::OpCategory::Scalar) continue;
    if (node->numInputs() != 2 || node->numOutputs() != 1) continue;
    const Scalar* a = constantScalar(node->input(0));
    const Scalar* b = constantScalar(node->input(1));
    if (a == nullptr || b == nullptr) continue;

    Scalar result;
    if (a->isFloat() || b->isFloat()) {
      const double x = a->toDouble();
      const double y = b->toDouble();
      switch (node->kind()) {
        case OpKind::ScalarAdd: result = Scalar(x + y); break;
        case OpKind::ScalarSub: result = Scalar(x - y); break;
        case OpKind::ScalarMul: result = Scalar(x * y); break;
        case OpKind::ScalarMin: result = Scalar(x < y ? x : y); break;
        case OpKind::ScalarMax: result = Scalar(x > y ? x : y); break;
        case OpKind::ScalarLt: result = Scalar(x < y); break;
        case OpKind::ScalarLe: result = Scalar(x <= y); break;
        case OpKind::ScalarGt: result = Scalar(x > y); break;
        case OpKind::ScalarGe: result = Scalar(x >= y); break;
        case OpKind::ScalarEq: result = Scalar(x == y); break;
        case OpKind::ScalarNe: result = Scalar(x != y); break;
        default: continue;  // mod of floats: leave
      }
    } else {
      const std::int64_t x = a->toInt();
      const std::int64_t y = b->toInt();
      switch (node->kind()) {
        case OpKind::ScalarAdd: result = Scalar(x + y); break;
        case OpKind::ScalarSub: result = Scalar(x - y); break;
        case OpKind::ScalarMul: result = Scalar(x * y); break;
        case OpKind::ScalarMod:
          if (y == 0) continue;
          result = Scalar(x % y);
          break;
        case OpKind::ScalarMin: result = Scalar(x < y ? x : y); break;
        case OpKind::ScalarMax: result = Scalar(x > y ? x : y); break;
        case OpKind::ScalarLt: result = Scalar(x < y); break;
        case OpKind::ScalarLe: result = Scalar(x <= y); break;
        case OpKind::ScalarGt: result = Scalar(x > y); break;
        case OpKind::ScalarGe: result = Scalar(x >= y); break;
        case OpKind::ScalarEq: result = Scalar(x == y); break;
        case OpKind::ScalarNe: result = Scalar(x != y); break;
        default: continue;
      }
    }
    IRBuilder builder(graph);
    builder.setInsertionPoint(node);
    Node* constant = builder.emitNode(OpKind::Constant, {}, 1);
    constant->attrs().set("value", result);
    constant->output()->setType(node->output(0)->type());
    node->output(0)->replaceAllUsesWith(constant->output());
    node->destroy();
    ++folded;
  }
  return folded;
}

}  // namespace

std::size_t unrollLoops(Graph& graph, std::int64_t maxTrip) {
  return unrollInBlock(graph, *graph.topBlock(), maxTrip);
}

std::size_t foldScalarConstants(Graph& graph) {
  std::size_t total = 0;
  while (true) {
    const std::size_t folded = foldInBlock(graph, *graph.topBlock());
    total += folded;
    if (folded == 0) break;
  }
  return total;
}

}  // namespace tssa::core
