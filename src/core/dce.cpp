#include "src/core/dce.h"

namespace tssa::core {

using ir::Block;
using ir::Graph;
using ir::Node;
using ir::OpKind;

bool hasSideEffects(const ir::Node& node) {
  if (ir::isMutationOp(node.kind())) return true;
  // Update is annotation the renaming pass still needs; never DCE it.
  if (node.kind() == OpKind::Update) return true;
  for (const Block* b : node.blocks()) {
    for (const Node* n : *b) {
      if (hasSideEffects(*n)) return true;
    }
  }
  return false;
}

namespace {

std::size_t dceBlock(Block& block) {
  std::size_t removed = 0;
  // Reverse order so consumers die before producers.
  auto nodes = block.nodesSnapshot();
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    Node* node = *it;
    if (node->isDestroyed()) continue;
    bool unused = true;
    for (const ir::Value* out : node->outputs()) {
      if (out->hasUses()) {
        unused = false;
        break;
      }
    }
    if (unused && !hasSideEffects(*node)) {
      node->destroy();
      ++removed;
      continue;
    }
    for (Block* b : node->blocks()) removed += dceBlock(*b);
  }
  return removed;
}

}  // namespace

std::size_t eliminateDeadCode(Graph& graph) {
  std::size_t total = 0;
  // Iterate to fixpoint: removing a consumer can free its producers.
  while (true) {
    const std::size_t removed = dceBlock(*graph.topBlock());
    total += removed;
    if (removed == 0) break;
  }
  return total;
}

}  // namespace tssa::core
