// Canonicalizes in-place operators to pure-compute + aten::copy_.
//
// After this pass, `aten::copy_` is the only Mutate operator (Definition 3.2)
// left in the program, so the TensorSSA conversion (Algorithm 1) needs to
// handle exactly one mutation form:
//
//   v.add_(o)             ->  t = aten::add(v, o);          copy_(v, t)
//   v.sigmoid_()          ->  t = aten::sigmoid(v);         copy_(v, t)
//   v.masked_fill_(m, s)  ->  t = aten::masked_fill(v,m,s); copy_(v, t)
//   v.fill_(s) / zero_()  ->  t = aten::full([], s);        copy_(v, t)
#pragma once

#include <cstddef>

#include "src/ir/ir.h"

namespace tssa::core {

/// Rewrites every non-copy_ mutation; returns the number rewritten.
std::size_t lowerInplaceOps(ir::Graph& graph);

}  // namespace tssa::core
