// Dead code elimination for graph-level IR.
#pragma once

#include <cstddef>

#include "src/ir/ir.h"

namespace tssa::core {

/// True when executing `node` can be observed other than through its
/// outputs: it mutates storage, or contains something that does.
bool hasSideEffects(const ir::Node& node);

/// Removes nodes whose outputs are all unused and that have no side effects
/// (including recursively inside control-flow bodies). Returns the number of
/// nodes removed.
std::size_t eliminateDeadCode(ir::Graph& graph);

}  // namespace tssa::core
