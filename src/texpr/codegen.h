// C++ code generation for fused element-expression DAGs.
//
// A texpr-supported FusionGroup body is lowered to a self-contained C++
// translation unit: one `static inline double v<slot>(...)` per body value
// (mirroring Kernel::evalAt node for node, including the per-node dtype
// rounding that makes fused evaluation bitwise-equal to eager execution),
// plus one loop body per return. The loop comes in two forms — a generic
// coordinate walk that handles broadcasts, strided inputs, and Access/Assign
// index transforms, and a contiguous-innermost linear loop the host enables
// at run time when every input is contiguous and shape-equal to the output
// (the form the compiler auto-vectorizes).
//
// Specialization unit: (expression structure × input dtypes × ranks ×
// contiguity). Shapes stay runtime values — the generated code reads extents
// from a per-value shapes table the host rebuilds each run — so one compiled
// kernel serves every shape of a given structure (no compile storms under
// dynamic shapes). Everything the generator cannot express declines with a
// typed reason; the caller falls back to the interpreter (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"

namespace tssa::texpr::codegen {

/// Why a fused body (or one specialization of it) is not JIT-compiled.
/// Ordered roughly by when the reason is discovered: Op and Dtype at
/// analysis time, Rank per input signature, Toolchain when the external
/// compile fails (reported by jit::KernelCache, not the generator).
enum class Decline {
  None = 0,
  Op,        ///< an op / view rule the generator does not lower
  Dtype,     ///< a dtype combination it does not lower (e.g. Bool arithmetic)
  Rank,      ///< a value's rank exceeds the generator's cap
  Toolchain, ///< runtime compilation of the generated source failed
};

/// Stable label ("op", "dtype", "rank", "toolchain") for metrics/tests.
std::string_view declineName(Decline reason);

/// Runtime facts about one body parameter that are baked into the generated
/// code (and into the kernel-cache key). Shapes are deliberately absent.
struct InputSig {
  bool isTensor = false;    ///< tensors feed element reads; scalars feed
                            ///< dynamic view operands (select index, bounds)
  DType dtype = DType::Float32;  ///< tensor params only
  int rank = 0;                  ///< tensor params only
  bool contiguous = false;       ///< tensor params only

  friend bool operator==(const InputSig&, const InputSig&) = default;
};

/// Host-side guard for a dynamic select index: the generated code cannot
/// throw, so the host validates `normalizeIndex(scalar, extent)` would
/// succeed before dispatching and falls back to the interpreter (which
/// raises the identical tssa::Error) when it would not.
struct SelectGuard {
  const ir::Value* indexParam = nullptr;  ///< scalar body param holding idx
  const ir::Value* base = nullptr;        ///< tensor whose dim is indexed
  std::int64_t dim = 0;                   ///< already normalized
};

/// Bound to one fused body; reusable across input signatures. The body must
/// satisfy texpr::Kernel::supports and outlive the generator.
class Generator {
 public:
  explicit Generator(const ir::Block& body);

  /// Signature-independent decline (unsupported op / view rule / attribute),
  /// decided at construction. Decline::None means "ask declineFor per sig".
  Decline structuralDecline() const { return structural_; }

  /// Full decline decision for one input signature (dtype combinations,
  /// rank cap, scalar-vs-tensor param mismatches). `sig` must have one entry
  /// per body parameter.
  Decline declineFor(std::span<const InputSig> sig) const;

  /// Cache key: structure fingerprint × the signature facts that change the
  /// generated source. Two bodies with identical structure share a key (and
  /// thus a compiled kernel) even across workloads.
  std::string cacheKey(std::span<const InputSig> sig) const;

  /// The complete C++ source of the kernel for `sig`. Precondition:
  /// declineFor(sig) == Decline::None.
  std::string emitSource(std::span<const InputSig> sig) const;

  /// Values with a slot in the generated shapes table, in slot order
  /// (parameters first, then node outputs). The host builds
  /// `const int64_t* shapes[numSlots()]` from the per-run inferred shapes.
  std::span<const ir::Value* const> slotValues() const { return values_; }
  std::size_t numSlots() const { return values_.size(); }

  /// True when the body is pure elementwise (no Access/Assign), i.e. the
  /// linear fast path exists structurally; the host still checks per run
  /// that inputs are contiguous and shape-equal to the output.
  bool fastPathEligible() const { return fastEligible_; }

  /// Select guards the host must validate before every dispatch.
  std::span<const SelectGuard> selectGuards() const { return guards_; }

 private:
  const ir::Block& body_;
  std::vector<const ir::Value*> values_;  ///< slot -> value
  std::unordered_map<const ir::Value*, int> slots_;  ///< value -> slot
  std::vector<SelectGuard> guards_;
  std::string structureKey_;
  Decline structural_ = Decline::None;
  bool fastEligible_ = false;

  int slotOf(const ir::Value* v) const;
  friend struct GeneratorTestPeer;
};

}  // namespace tssa::texpr::codegen
