#include "src/texpr/codegen.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/ir/op_kind.h"
#include "src/tensor/shape.h"

namespace tssa::texpr::codegen {

using ir::AttrValue;
using ir::Block;
using ir::Node;
using ir::OpKind;
using ir::Value;

std::string_view declineName(Decline reason) {
  switch (reason) {
    case Decline::None: return "none";
    case Decline::Op: return "op";
    case Decline::Dtype: return "dtype";
    case Decline::Rank: return "rank";
    case Decline::Toolchain: return "toolchain";
  }
  return "?";
}

namespace {

/// Values of rank above this are left to the interpreter: the generated
/// coordinate arrays are stack-allocated and fully unrolled per dimension.
constexpr int kRankCap = 8;

OpKind viewRuleOf(const Node& node) {
  return static_cast<OpKind>(node.attrs().i("view"));
}

/// Doubles are rendered as hexfloat literals so the generated source parses
/// back to the bit-identical value (decimal printing would round).
std::string doubleLiteral(double v) {
  if (std::isnan(v)) return "std::numeric_limits<double>::quiet_NaN()";
  if (std::isinf(v)) {
    return v > 0 ? "std::numeric_limits<double>::infinity()"
                 : "(-std::numeric_limits<double>::infinity())";
  }
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

std::string attrKeyString(const AttrValue& value) {
  std::ostringstream os;
  if (const auto* s = std::get_if<Scalar>(&value)) {
    if (s->isFloat()) {
      os << "f" << std::hexfloat << s->toDouble();
    } else if (s->isBool()) {
      os << "b" << (s->toBool() ? 1 : 0);
    } else {
      os << "i" << s->toInt();
    }
  } else if (const auto* str = std::get_if<std::string>(&value)) {
    os << "s" << *str;
  } else if (const auto* ints =
                 std::get_if<std::vector<std::int64_t>>(&value)) {
    os << "v";
    for (std::int64_t i : *ints) os << i << ",";
  } else if (const auto* dt = std::get_if<DType>(&value)) {
    os << "d" << dtypeName(*dt);
  } else {
    os << "t?";  // Tensor attrs structurally decline before key use
  }
  return os.str();
}

/// Per-slot dtype/rank facts derived from the input signature alone (shapes
/// stay runtime). Must track Kernel::inferAll's dtype rules exactly: a wrong
/// dtype here becomes a wrong rounding in the generated code, which the
/// differential fuzz harness exists to catch.
struct SlotMeta {
  bool isTensor = false;
  DType dtype = DType::Float32;
  int rank = 0;
};

}  // namespace

// ---- Construction: slots, structure key, structural declines ---------------

Generator::Generator(const Block& body) : body_(body) {
  for (std::size_t i = 0; i < body.numParams(); ++i) {
    slots_[body.param(i)] = static_cast<int>(values_.size());
    values_.push_back(body.param(i));
  }
  std::ostringstream key;
  key << "p" << body.numParams() << ";";
  fastEligible_ = true;
  for (const Node* node : body) {
    const OpKind kind = node->kind();
    slots_[node->output(0)] = static_cast<int>(values_.size());
    values_.push_back(node->output(0));

    if (kind == OpKind::MaskedFill) structural_ = Decline::Op;
    if (kind == OpKind::Access || kind == OpKind::Assign) {
      fastEligible_ = false;
      const OpKind rule = viewRuleOf(*node);
      if (kind == OpKind::Assign &&
          (rule == OpKind::Reshape || rule == OpKind::Flatten)) {
        // The covers-check needs a base-to-view delinearization entangled
        // with the written region's extents; interpreter-only for now.
        structural_ = Decline::Op;
      }
      if (kind == OpKind::Access && rule == OpKind::Select) {
        guards_.push_back(
            {node->input(1), node->input(0), node->attrs().i("dim")});
      }
      if (kind == OpKind::Assign && rule == OpKind::Select) {
        guards_.push_back(
            {node->input(2), node->input(0), node->attrs().i("dim")});
      }
    }

    key << opName(kind) << "(";
    for (std::size_t i = 0; i < node->numInputs(); ++i) {
      auto it = slots_.find(node->input(i));
      if (it == slots_.end()) {
        structural_ = Decline::Op;  // input defined outside the body
        key << "x";
      } else {
        key << it->second;
      }
      key << ",";
    }
    key << "){";
    for (const auto& [name, value] : node->attrs().all()) {
      if (std::holds_alternative<Tensor>(value)) structural_ = Decline::Op;
      key << name << "=" << attrKeyString(value) << ";";
    }
    key << "};";
  }
  key << "r";
  for (const Value* r : body.returns()) {
    auto it = slots_.find(r);
    if (it == slots_.end()) {
      structural_ = Decline::Op;
      key << "x,";
    } else {
      key << it->second << ",";
    }
  }
  structureKey_ = key.str();
}

int Generator::slotOf(const Value* v) const { return slots_.at(v); }

// ---- Signature-dependent analysis ------------------------------------------

namespace {

/// Resolves per-slot dtype/rank for `sig`, or reports why it cannot.
Decline resolveMetas(const Block& body,
                     const std::unordered_map<const Value*, int>& slots,
                     std::span<const InputSig> sig,
                     std::vector<SlotMeta>& metas) {
  metas.assign(slots.size(), SlotMeta{});
  if (sig.size() != body.numParams()) return Decline::Op;
  for (std::size_t i = 0; i < body.numParams(); ++i) {
    SlotMeta& m = metas[i];
    m.isTensor = sig[i].isTensor;
    m.dtype = sig[i].dtype;
    m.rank = sig[i].rank;
  }
  auto metaOf = [&](const Value* v) -> SlotMeta& {
    return metas[static_cast<std::size_t>(slots.at(v))];
  };
  // Element operands must be tensor-valued; dynamic view operands (select
  // index, slice bounds) must be scalar body parameters — that is where the
  // interpreter reads them from too.
  auto tensorOperand = [&](const Value* v) { return metaOf(v).isTensor; };
  auto scalarParam = [&](const Value* v) {
    return v->definingNode() == nullptr && !metaOf(v).isTensor;
  };

  for (const Node* node : body) {
    const OpKind kind = node->kind();
    SlotMeta& out = metaOf(node->output(0));
    out.isTensor = true;
    try {
      switch (kind) {
        case OpKind::Access: {
          if (!tensorOperand(node->input(0))) return Decline::Op;
          const SlotMeta& base = metaOf(node->input(0));
          const OpKind rule = viewRuleOf(*node);
          const auto& attrs = node->attrs();
          out.dtype = base.dtype;
          switch (rule) {
            case OpKind::Identity:
              out.rank = base.rank;
              break;
            case OpKind::Select:
              if (!scalarParam(node->input(1))) return Decline::Op;
              out.rank = base.rank - 1;
              break;
            case OpKind::Slice:
              if (!scalarParam(node->input(1)) ||
                  !scalarParam(node->input(2)))
                return Decline::Op;
              out.rank = base.rank;
              break;
            case OpKind::Transpose:
              out.rank = base.rank;
              break;
            case OpKind::Permute:
              out.rank = static_cast<int>(attrs.ints("dims").size());
              break;
            case OpKind::Squeeze:
              out.rank = base.rank - 1;
              break;
            case OpKind::Unsqueeze:
              out.rank = base.rank + 1;
              break;
            case OpKind::Reshape:
            case OpKind::Expand:
              out.rank = static_cast<int>(attrs.ints("sizes").size());
              break;
            case OpKind::Flatten: {
              const std::int64_t rank = base.rank;
              const std::int64_t s = normalizeDim(attrs.i("start_dim"), rank);
              const std::int64_t e = normalizeDim(attrs.i("end_dim"), rank);
              out.rank = static_cast<int>(rank - (e - s));
              break;
            }
            default:
              return Decline::Op;
          }
          break;
        }
        case OpKind::Assign: {
          if (!tensorOperand(node->input(0)) ||
              !tensorOperand(node->input(1)))
            return Decline::Op;
          const OpKind rule = viewRuleOf(*node);
          if (rule == OpKind::Select && !scalarParam(node->input(2)))
            return Decline::Op;
          if (rule == OpKind::Slice &&
              (!scalarParam(node->input(2)) || !scalarParam(node->input(3))))
            return Decline::Op;
          out.dtype = metaOf(node->input(0)).dtype;
          out.rank = metaOf(node->input(0)).rank;
          break;
        }
        case OpKind::MaskedFill:
          return Decline::Op;  // also caught structurally
        case OpKind::Where: {
          for (std::size_t i = 0; i < 3; ++i)
            if (!tensorOperand(node->input(i))) return Decline::Op;
          out.rank = std::max({metaOf(node->input(0)).rank,
                               metaOf(node->input(1)).rank,
                               metaOf(node->input(2)).rank});
          out.dtype = promoteTypes(metaOf(node->input(1)).dtype,
                                   metaOf(node->input(2)).dtype);
          break;
        }
        default: {
          // Elementwise compute.
          out.rank = 0;
          for (std::size_t i = 0; i < node->numInputs(); ++i) {
            if (!tensorOperand(node->input(i))) return Decline::Op;
            out.rank = std::max(out.rank, metaOf(node->input(i)).rank);
          }
          const DType a = metaOf(node->input(0)).dtype;
          switch (kind) {
            case OpKind::Div:
            case OpKind::Pow:
            case OpKind::Exp:
            case OpKind::Log:
            case OpKind::Sqrt:
            case OpKind::Sigmoid:
            case OpKind::Tanh:
              out.dtype = DType::Float32;
              break;
            case OpKind::Eq:
            case OpKind::Ne:
            case OpKind::Lt:
            case OpKind::Le:
            case OpKind::Gt:
            case OpKind::Ge:
            case OpKind::LogicalAnd:
            case OpKind::LogicalOr:
            case OpKind::LogicalNot:
              out.dtype = DType::Bool;
              break;
            case OpKind::Cast:
              out.dtype = node->attrs().dtype("dtype");
              break;
            case OpKind::Add:
            case OpKind::Sub:
            case OpKind::Mul:
            case OpKind::Minimum:
            case OpKind::Maximum:
              out.dtype = promoteTypes(a, metaOf(node->input(1)).dtype);
              // Bool arithmetic (e.g. Bool + Bool) stays interpreter-only:
              // the natural trigger for the "dtype" decline reason.
              if (out.dtype == DType::Bool) return Decline::Dtype;
              break;
            default:
              out.dtype = a;
              break;
          }
          break;
        }
      }
    } catch (...) {
      return Decline::Op;  // malformed attrs; the interpreter raises the error
    }
    if (out.rank > kRankCap || out.rank < 0) return Decline::Rank;
  }
  for (const Value* r : body.returns()) {
    if (!metas[static_cast<std::size_t>(slots.at(r))].isTensor)
      return Decline::Op;
  }
  return Decline::None;
}

}  // namespace

Decline Generator::declineFor(std::span<const InputSig> sig) const {
  if (structural_ != Decline::None) return structural_;
  for (const InputSig& s : sig)
    if (s.isTensor && s.rank > kRankCap) return Decline::Rank;
  std::vector<SlotMeta> metas;
  return resolveMetas(body_, slots_, sig, metas);
}

std::string Generator::cacheKey(std::span<const InputSig> sig) const {
  std::ostringstream os;
  os << structureKey_ << "|";
  for (const InputSig& s : sig) {
    if (s.isTensor) {
      os << "T" << dtypeName(s.dtype) << s.rank << (s.contiguous ? "c" : "s");
    } else {
      os << "S";
    }
    os << ",";
  }
  return os.str();
}

// ---- Source emission -------------------------------------------------------

namespace {

const char* ctypeName(DType dtype) {
  switch (dtype) {
    case DType::Float32: return "float";
    case DType::Int64: return "long long";
    case DType::Bool: return "unsigned char";
  }
  return "double";
}

/// Wraps `expr` in the rounding that Kernel::evalAt's finish() applies: the
/// value a tensor of `dtype` would store, kept as a double.
std::string finishExpr(DType dtype, const std::string& expr) {
  switch (dtype) {
    case DType::Float32:
      return "(double)(float)(" + expr + ")";
    case DType::Int64:
      return "(double)(long long)(" + expr + ")";
    case DType::Bool:
      return "(((" + expr + ") != 0.0) ? 1.0 : 0.0)";
  }
  return expr;
}

class Emitter {
 public:
  Emitter(const Block& body,
          const std::unordered_map<const Value*, int>& slots,
          std::span<const InputSig> sig, const std::vector<SlotMeta>& metas,
          bool emitFast)
      : body_(body),
        slots_(slots),
        sig_(sig),
        metas_(metas),
        emitFast_(emitFast) {}

  std::string emit() {
    os_ << "// Generated by the tssa texpr JIT backend. Mirrors\n"
           "// texpr::Kernel::evalAt element for element (DESIGN.md S11);\n"
           "// compiled with -ffp-contract=off so every node boundary keeps\n"
           "// its own IEEE rounding, bitwise-equal to the interpreter.\n"
           "#include <algorithm>\n"
           "#include <cmath>\n"
           "#include <cstdint>\n"
           "#include <limits>\n\n"
           "using i64 = long long;\n\n"
           "extern \"C\" {\n"
           "struct TssaJitBuffer {\n"
           "  void* data;\n"
           "  const i64* sizes;\n"
           "  const i64* strides;\n"
           "};\n"
           "}\n\n"
           "namespace {\n"
           "struct C {\n"
           "  const TssaJitBuffer* ins;\n"
           "  const i64* const* shapes;\n"
           "  const double* scalars;\n"
           "};\n"
           "}  // namespace\n\n";
    for (std::size_t i = 0; i < body_.numParams(); ++i) {
      if (sig_[i].isTensor) emitParam(i);
    }
    for (const Node* node : body_) emitNode(*node);
    if (emitFast_) {
      for (std::size_t i = 0; i < body_.numParams(); ++i) {
        if (sig_[i].isTensor) emitFastParam(i);
      }
      for (const Node* node : body_) emitFastNode(*node);
    }
    std::size_t ri = 0;
    for (const Value* r : body_.returns()) emitRunner(ri++, r);
    emitEntry();
    return os_.str();
  }

 private:
  int slot(const Value* v) const { return slots_.at(v); }
  const SlotMeta& meta(const Value* v) const {
    return metas_[static_cast<std::size_t>(slot(v))];
  }
  static std::string arrayLen(int rank) {
    return std::to_string(std::max(rank, 1));
  }
  int normDim(std::int64_t dim, int rank) const {
    return static_cast<int>(normalizeDim(dim, rank));
  }

  void emitParam(std::size_t i) {
    const Value* p = body_.param(i);
    const SlotMeta& m = meta(p);
    os_ << "static inline double v" << slot(p)
        << "(const C* g, const i64* c) {\n"
        << "  const TssaJitBuffer& b = g->ins[" << i << "];\n"
        << "  i64 off = 0;\n";
    for (int d = 0; d < m.rank; ++d)
      os_ << "  off += c[" << d << "] * b.strides[" << d << "];\n";
    if (m.rank == 0) os_ << "  (void)c;\n";
    os_ << "  return (double)((const " << ctypeName(m.dtype)
        << "*)b.data)[off];\n}\n\n";
  }

  void emitFastParam(std::size_t i) {
    const Value* p = body_.param(i);
    os_ << "static inline double f" << slot(p) << "(const C* g, i64 i) {\n"
        << "  return (double)((const " << ctypeName(meta(p).dtype)
        << "*)g->ins[" << i << "].data)[i];\n}\n\n";
  }

  /// Emits `i64 name[...]` holding the coordinate of operand `o` aligned to
  /// the output coordinate `c` of rank `outRank` (trailing-dim broadcast:
  /// size-1 dims pin to 0). Mirrors texpr's alignCoord.
  void emitAlign(const std::string& name, const Value* o, int outRank) {
    const SlotMeta& m = meta(o);
    os_ << "  i64 " << name << "[" << arrayLen(m.rank) << "];\n";
    if (m.rank > 0) {
      os_ << "  const i64* S" << name << " = g->shapes[" << slot(o) << "];\n";
      for (int d = 0; d < m.rank; ++d) {
        os_ << "  " << name << "[" << d << "] = (S" << name << "[" << d
            << "] == 1) ? 0 : c[" << (outRank - m.rank + d) << "];\n";
      }
    } else {
      os_ << "  (void)" << name << ";\n";
    }
  }

  /// The scalars-table index of a dynamic view operand (a scalar body
  /// param, whose slot equals its param index).
  int scalarIndex(const Value* v) const { return slot(v); }

  void emitNode(const Node& node) {
    const Value* out = node.output(0);
    os_ << "static inline double v" << slot(out)
        << "(const C* g, const i64* c) {\n";
    switch (node.kind()) {
      case OpKind::Access:
        emitAccessBody(node);
        break;
      case OpKind::Assign:
        emitAssignBody(node);
        break;
      default:
        emitComputeBody(node, /*fast=*/false);
        break;
    }
    os_ << "}\n\n";
  }

  void emitFastNode(const Node& node) {
    os_ << "static inline double f" << slot(node.output(0))
        << "(const C* g, i64 i) {\n";
    emitComputeBody(node, /*fast=*/true);
    os_ << "}\n\n";
  }

  /// Elementwise body: loads operands (aligned coordinates in the generic
  /// form, the shared linear index in the fast form), then returns the op
  /// expression with the output dtype's rounding. Mirrors evalAt.
  void emitComputeBody(const Node& node, bool fast) {
    const SlotMeta& m = meta(node.output(0));
    std::vector<std::string> x;
    for (std::size_t i = 0; i < node.numInputs(); ++i) {
      const Value* o = node.input(i);
      const std::string name = "x" + std::to_string(i);
      if (fast) {
        os_ << "  double " << name << " = f" << slot(o) << "(g, i);\n";
      } else if (node.numInputs() == 1) {
        // Unary output shape equals the input's: the coordinate passes
        // through (alignCoord against an identical shape is the identity).
        os_ << "  double " << name << " = v" << slot(o) << "(g, c);\n";
      } else {
        const std::string cn = "oc" + std::to_string(i);
        emitAlign(cn, o, m.rank);
        os_ << "  double " << name << " = v" << slot(o) << "(g, " << cn
            << ");\n";
      }
      x.push_back(name);
    }
    os_ << "  return " << opExpr(node, m.dtype, x) << ";\n";
  }

  std::string opExpr(const Node& node, DType outDtype,
                     const std::vector<std::string>& x) {
    auto fin = [&](const std::string& e) { return finishExpr(outDtype, e); };
    switch (node.kind()) {
      case OpKind::Add: return fin(x[0] + " + " + x[1]);
      case OpKind::Sub: return fin(x[0] + " - " + x[1]);
      case OpKind::Mul: return fin(x[0] + " * " + x[1]);
      case OpKind::Div: return fin(x[0] + " / " + x[1]);
      case OpKind::Pow: return fin("std::pow(" + x[0] + ", " + x[1] + ")");
      case OpKind::Minimum:
        return fin("std::min(" + x[0] + ", " + x[1] + ")");
      case OpKind::Maximum:
        return fin("std::max(" + x[0] + ", " + x[1] + ")");
      case OpKind::Eq: return "(" + x[0] + " == " + x[1] + ") ? 1.0 : 0.0";
      case OpKind::Ne: return "(" + x[0] + " != " + x[1] + ") ? 1.0 : 0.0";
      case OpKind::Lt: return "(" + x[0] + " < " + x[1] + ") ? 1.0 : 0.0";
      case OpKind::Le: return "(" + x[0] + " <= " + x[1] + ") ? 1.0 : 0.0";
      case OpKind::Gt: return "(" + x[0] + " > " + x[1] + ") ? 1.0 : 0.0";
      case OpKind::Ge: return "(" + x[0] + " >= " + x[1] + ") ? 1.0 : 0.0";
      case OpKind::LogicalAnd:
        return "(" + x[0] + " != 0.0 && " + x[1] + " != 0.0) ? 1.0 : 0.0";
      case OpKind::LogicalOr:
        return "(" + x[0] + " != 0.0 || " + x[1] + " != 0.0) ? 1.0 : 0.0";
      case OpKind::LogicalNot:
        return "(" + x[0] + " == 0.0) ? 1.0 : 0.0";
      case OpKind::Neg: return fin("-" + x[0]);
      case OpKind::Exp: return fin("std::exp(" + x[0] + ")");
      case OpKind::Log: return fin("std::log(" + x[0] + ")");
      case OpKind::Sqrt: return fin("std::sqrt(" + x[0] + ")");
      case OpKind::Abs: return fin("std::abs(" + x[0] + ")");
      case OpKind::Sigmoid:
        return fin("1.0 / (1.0 + std::exp(-" + x[0] + "))");
      case OpKind::Tanh: return fin("std::tanh(" + x[0] + ")");
      case OpKind::Relu:
        return fin("(" + x[0] + " > 0) ? " + x[0] + " : 0.0");
      case OpKind::Clamp:
        return fin("std::clamp(" + x[0] + ", " +
                   doubleLiteral(node.attrs().f("lo")) + ", " +
                   doubleLiteral(node.attrs().f("hi")) + ")");
      case OpKind::Cast: return fin(x[0]);
      case OpKind::Where:
        return fin("(" + x[0] + " != 0.0) ? " + x[1] + " : " + x[2]);
      default:
        return "0.0 /* unreachable: gated by declineFor */";
    }
  }

  /// Access: compute the base coordinate `bc` that the view coordinate `c`
  /// reads, then recurse into the base. Mirrors accessBaseCoord.
  void emitAccessBody(const Node& node) {
    const Value* base = node.input(0);
    const int bs = slot(base);
    const int rb = meta(base).rank;
    const int r = meta(node.output(0)).rank;
    const OpKind rule = viewRuleOf(node);
    const auto& attrs = node.attrs();
    auto ret = [&] { os_ << "  return v" << bs << "(g, bc);\n"; };
    auto declBc = [&] { os_ << "  i64 bc[" << arrayLen(rb) << "];\n"; };
    switch (rule) {
      case OpKind::Identity:
        os_ << "  return v" << bs << "(g, c);\n";
        return;
      case OpKind::Select: {
        const int d = normDim(attrs.i("dim"), rb);
        os_ << "  i64 idx = (i64)g->scalars[" << scalarIndex(node.input(1))
            << "];\n"
            << "  if (idx < 0) idx += g->shapes[" << bs << "][" << d
            << "];\n";
        declBc();
        for (int i = 0; i < rb; ++i) {
          if (i < d) {
            os_ << "  bc[" << i << "] = c[" << i << "];\n";
          } else if (i == d) {
            os_ << "  bc[" << i << "] = idx;\n";
          } else {
            os_ << "  bc[" << i << "] = c[" << (i - 1) << "];\n";
          }
        }
        ret();
        return;
      }
      case OpKind::Slice: {
        const int d = normDim(attrs.i("dim"), rb);
        const std::int64_t step = attrs.i("step");
        os_ << "  const i64 ext = g->shapes[" << bs << "][" << d << "];\n"
            << "  i64 start = (i64)g->scalars["
            << scalarIndex(node.input(1)) << "];\n"
            << "  if (start < 0) start += ext;\n"
            << "  if (start < 0) start = 0;\n"
            << "  if (start > ext) start = ext;\n";
        declBc();
        for (int i = 0; i < rb; ++i) {
          if (i == d) {
            os_ << "  bc[" << i << "] = start + c[" << i << "] * " << step
                << ";\n";
          } else {
            os_ << "  bc[" << i << "] = c[" << i << "];\n";
          }
        }
        ret();
        return;
      }
      case OpKind::Transpose: {
        const int d0 = normDim(attrs.i("dim0"), rb);
        const int d1 = normDim(attrs.i("dim1"), rb);
        declBc();
        for (int i = 0; i < rb; ++i) {
          const int src = i == d0 ? d1 : (i == d1 ? d0 : i);
          os_ << "  bc[" << i << "] = c[" << src << "];\n";
        }
        ret();
        return;
      }
      case OpKind::Permute: {
        const auto& dims = attrs.ints("dims");
        declBc();
        for (std::size_t i = 0; i < dims.size(); ++i)
          os_ << "  bc[" << dims[i] << "] = c[" << i << "];\n";
        ret();
        return;
      }
      case OpKind::Squeeze: {
        const int d = normDim(attrs.i("dim"), rb);
        declBc();
        for (int i = 0; i < rb; ++i) {
          if (i < d) {
            os_ << "  bc[" << i << "] = c[" << i << "];\n";
          } else if (i == d) {
            os_ << "  bc[" << i << "] = 0;\n";
          } else {
            os_ << "  bc[" << i << "] = c[" << (i - 1) << "];\n";
          }
        }
        ret();
        return;
      }
      case OpKind::Unsqueeze: {
        std::int64_t d = attrs.i("dim");
        if (d < 0) d += rb + 1;
        declBc();
        for (int i = 0; i < rb; ++i)
          os_ << "  bc[" << i << "] = c[" << (i < d ? i : i + 1) << "];\n";
        if (rb == 0) os_ << "  (void)c;\n";
        ret();
        return;
      }
      case OpKind::Reshape:
      case OpKind::Flatten: {
        os_ << "  i64 lin = 0;\n";
        if (r > 0) {
          os_ << "  const i64* So = g->shapes[" << slot(node.output(0))
              << "];\n";
          for (int i = 0; i < r; ++i)
            os_ << "  lin = lin * So[" << i << "] + c[" << i << "];\n";
        } else {
          os_ << "  (void)c;\n";
        }
        declBc();
        if (rb > 0) {
          os_ << "  const i64* Sb = g->shapes[" << bs << "];\n";
          for (int i = rb - 1; i >= 0; --i) {
            os_ << "  bc[" << i << "] = lin % Sb[" << i << "];\n"
                << "  lin /= Sb[" << i << "];\n";
          }
        }
        ret();
        return;
      }
      case OpKind::Expand: {
        declBc();
        if (rb > 0) {
          os_ << "  const i64* Sb = g->shapes[" << bs << "];\n";
          for (int i = 0; i < rb; ++i) {
            os_ << "  bc[" << i << "] = (Sb[" << i << "] == 1) ? 0 : c["
                << (r - rb + i) << "];\n";
          }
        } else {
          os_ << "  (void)c;\n";
        }
        ret();
        return;
      }
      default:
        os_ << "  return 0.0; /* unreachable */\n";
        return;
    }
  }

  /// Assign: if the base coordinate lies in the written view region, read
  /// the source at the view coordinate (with the output dtype's rounding);
  /// otherwise pass the base element through unrounded. Mirrors
  /// assignCovers + evalAt's Assign case.
  void emitAssignBody(const Node& node) {
    const Value* out = node.output(0);
    const Value* base = node.input(0);
    const Value* src = node.input(1);
    const int bs = slot(base);
    const int r = meta(out).rank;  // == base rank
    const int rs = meta(src).rank;
    const OpKind rule = viewRuleOf(node);
    const auto& attrs = node.attrs();
    const DType outDtype = meta(out).dtype;

    // Emits the covered epilogue: align `vcName` (rank rv) to the source
    // shape and return the rounded source element.
    auto coveredReturn = [&](const std::string& vcName, int rv) {
      os_ << "  i64 sc[" << arrayLen(rs) << "];\n";
      if (rs > 0) {
        os_ << "  const i64* Ss = g->shapes[" << slot(src) << "];\n";
        for (int i = 0; i < rs; ++i) {
          os_ << "  sc[" << i << "] = (Ss[" << i << "] == 1) ? 0 : "
              << vcName << "[" << (rv - rs + i) << "];\n";
        }
      }
      os_ << "  return "
          << finishExpr(outDtype, "v" + std::to_string(slot(src)) + "(g, sc)")
          << ";\n";
    };
    auto uncovered = [&] { return "v" + std::to_string(bs) + "(g, c)"; };

    switch (rule) {
      case OpKind::Identity:
        coveredReturn("c", r);
        return;
      case OpKind::Select: {
        const int d = normDim(attrs.i("dim"), r);
        os_ << "  i64 idx = (i64)g->scalars[" << scalarIndex(node.input(2))
            << "];\n"
            << "  if (idx < 0) idx += g->shapes[" << bs << "][" << d
            << "];\n"
            << "  if (c[" << d << "] != idx) return " << uncovered()
            << ";\n"
            << "  i64 vc[" << arrayLen(r - 1) << "];\n";
        for (int i = 0; i < r - 1; ++i)
          os_ << "  vc[" << i << "] = c[" << (i < d ? i : i + 1) << "];\n";
        if (r - 1 == 0) os_ << "  (void)vc;\n";
        coveredReturn("vc", r - 1);
        return;
      }
      case OpKind::Slice: {
        const int d = normDim(attrs.i("dim"), r);
        const std::int64_t step = attrs.i("step");
        os_ << "  const i64 ext = g->shapes[" << bs << "][" << d << "];\n"
            << "  i64 start = (i64)g->scalars["
            << scalarIndex(node.input(2)) << "];\n"
            << "  i64 end = (i64)g->scalars[" << scalarIndex(node.input(3))
            << "];\n"
            << "  if (start < 0) start += ext;\n"
            << "  if (end < 0) end += ext;\n"
            << "  if (start < 0) start = 0;\n"
            << "  if (start > ext) start = ext;\n"
            << "  if (end < start) end = start;\n"
            << "  if (end > ext) end = ext;\n"
            << "  const i64 p = c[" << d << "];\n"
            << "  if (p < start || p >= end || (p - start) % " << step
            << " != 0) return " << uncovered() << ";\n"
            << "  i64 vc[" << arrayLen(r) << "];\n";
        for (int i = 0; i < r; ++i) {
          if (i == d) {
            os_ << "  vc[" << i << "] = (p - start) / " << step << ";\n";
          } else {
            os_ << "  vc[" << i << "] = c[" << i << "];\n";
          }
        }
        coveredReturn("vc", r);
        return;
      }
      case OpKind::Transpose: {
        const int d0 = normDim(attrs.i("dim0"), r);
        const int d1 = normDim(attrs.i("dim1"), r);
        os_ << "  i64 vc[" << arrayLen(r) << "];\n";
        for (int i = 0; i < r; ++i) {
          const int srcI = i == d0 ? d1 : (i == d1 ? d0 : i);
          os_ << "  vc[" << i << "] = c[" << srcI << "];\n";
        }
        coveredReturn("vc", r);
        return;
      }
      case OpKind::Permute: {
        const auto& dims = attrs.ints("dims");
        os_ << "  i64 vc[" << arrayLen(r) << "];\n";
        for (std::size_t i = 0; i < dims.size(); ++i)
          os_ << "  vc[" << i << "] = c[" << dims[i] << "];\n";
        coveredReturn("vc", r);
        return;
      }
      case OpKind::Squeeze: {
        const int d = normDim(attrs.i("dim"), r);
        os_ << "  i64 vc[" << arrayLen(r - 1) << "];\n";
        for (int i = 0; i < r - 1; ++i)
          os_ << "  vc[" << i << "] = c[" << (i < d ? i : i + 1) << "];\n";
        if (r - 1 == 0) os_ << "  (void)vc;\n";
        coveredReturn("vc", r - 1);
        return;
      }
      case OpKind::Unsqueeze: {
        std::int64_t d = attrs.i("dim");
        if (d < 0) d += r + 1;
        os_ << "  i64 vc[" << arrayLen(r + 1) << "];\n";
        for (int i = 0; i < r + 1; ++i) {
          if (i < d) {
            os_ << "  vc[" << i << "] = c[" << i << "];\n";
          } else if (i == d) {
            os_ << "  vc[" << i << "] = 0;\n";
          } else {
            os_ << "  vc[" << i << "] = c[" << (i - 1) << "];\n";
          }
        }
        coveredReturn("vc", r + 1);
        return;
      }
      default:
        os_ << "  return 0.0; /* unreachable */\n";
        return;
    }
  }

  void emitRunner(std::size_t ri, const Value* r) {
    const SlotMeta& m = meta(r);
    const char* t = ctypeName(m.dtype);
    const int rank = m.rank;
    os_ << "static void run_r" << ri
        << "(const C* g, TssaJitBuffer* out, i64 begin, i64 end, "
           "std::int32_t flags) {\n"
        << "  " << t << "* o = (" << t << "*)out->data;\n";
    if (emitFast_) {
      os_ << "  if (flags & 1) {\n"
          << "    for (i64 i = begin; i < end; ++i) o[i] = (" << t << ")f"
          << slot(r) << "(g, i);\n"
          << "    return;\n"
          << "  }\n";
    } else {
      os_ << "  (void)flags;\n";
    }
    os_ << "  i64 c[" << arrayLen(rank) << "];\n";
    if (rank > 0) {
      os_ << "  const i64* S = g->shapes[" << slot(r) << "];\n"
          << "  i64 lin = begin;\n";
      for (int d = rank - 1; d >= 0; --d) {
        os_ << "  c[" << d << "] = lin % S[" << d << "];\n"
            << "  lin /= S[" << d << "];\n";
      }
      os_ << "  for (i64 i = begin; i < end; ++i) {\n"
          << "    o[i] = (" << t << ")v" << slot(r) << "(g, c);\n"
          << "    for (int d = " << rank - 1
          << "; d >= 0; --d) { if (++c[d] < S[d]) break; c[d] = 0; }\n"
          << "  }\n";
    } else {
      os_ << "  c[0] = 0;\n"
          << "  for (i64 i = begin; i < end; ++i) o[i] = (" << t << ")v"
          << slot(r) << "(g, c);\n";
    }
    os_ << "}\n\n";
  }

  void emitEntry() {
    os_ << "extern \"C\" void tssa_jit_entry(const TssaJitBuffer* ins, "
           "TssaJitBuffer* out,\n"
           "                                const i64* const* shapes, "
           "const double* scalars,\n"
           "                                std::int32_t outIndex, i64 "
           "begin, i64 end,\n"
           "                                std::int32_t flags) {\n"
           "  C g{ins, shapes, scalars};\n"
           "  switch (outIndex) {\n";
    for (std::size_t i = 0; i < body_.numReturns(); ++i) {
      os_ << "    case " << i << ": run_r" << i
          << "(&g, out, begin, end, flags); return;\n";
    }
    os_ << "    default: return;\n"
           "  }\n"
           "}\n";
  }

  const Block& body_;
  const std::unordered_map<const Value*, int>& slots_;
  std::span<const InputSig> sig_;
  const std::vector<SlotMeta>& metas_;
  bool emitFast_;
  std::ostringstream os_;
};

}  // namespace

std::string Generator::emitSource(std::span<const InputSig> sig) const {
  std::vector<SlotMeta> metas;
  resolveMetas(body_, slots_, sig, metas);
  bool allContig = true;
  for (const InputSig& s : sig)
    if (s.isTensor && !s.contiguous) allContig = false;
  Emitter e(body_, slots_, sig, metas, fastEligible_ && allContig);
  return e.emit();
}

}  // namespace tssa::texpr::codegen
