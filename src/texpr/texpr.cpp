#include "src/texpr/texpr.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/thread_pool.h"
#include "src/tensor/shape.h"
#include "src/texpr/codegen.h"
#include "src/texpr/jit.h"

namespace tssa::texpr {

using ir::Block;
using ir::Node;
using ir::OpKind;
using ir::Value;
using runtime::RtValue;

namespace {

OpKind viewRuleOf(const Node& node) {
  return static_cast<OpKind>(node.attrs().i("view"));
}

bool supportedViewRule(OpKind rule, bool forAssign) {
  switch (rule) {
    case OpKind::Identity:
    case OpKind::Select:
    case OpKind::Slice:
    case OpKind::Transpose:
    case OpKind::Permute:
    case OpKind::Squeeze:
    case OpKind::Unsqueeze:
    case OpKind::Reshape:
    case OpKind::Flatten:
      return true;
    case OpKind::Expand:
      // Assign-through-expand writes one output element from several source
      // elements (iteration-order dependent): interpreter only.
      return !forAssign;
    default:
      return false;
  }
}

/// Rounds a double to the value a tensor of `dtype` would store.
double roundTo(DType dtype, double v) {
  switch (dtype) {
    case DType::Float32:
      return static_cast<double>(static_cast<float>(v));
    case DType::Int64:
      return static_cast<double>(static_cast<std::int64_t>(v));
    case DType::Bool:
      return v != 0.0 ? 1.0 : 0.0;
  }
  return v;
}

/// Trailing-dimension broadcast alignment: coordinate of an operand with
/// `shape` corresponding to output coordinate `coord`.
Shape alignCoord(std::span<const std::int64_t> coord,
                 std::span<const std::int64_t> shape) {
  Shape out(shape.size());
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const std::size_t od = coord.size() - shape.size() + i;
    out[i] = shape[i] == 1 ? 0 : coord[od];
  }
  return out;
}

std::int64_t linearize(std::span<const std::int64_t> coord,
                       std::span<const std::int64_t> shape) {
  std::int64_t lin = 0;
  for (std::size_t i = 0; i < shape.size(); ++i) lin = lin * shape[i] + coord[i];
  return lin;
}

Shape delinearize(std::int64_t lin, std::span<const std::int64_t> shape) {
  Shape coord(shape.size());
  for (std::size_t i = shape.size(); i-- > 0;) {
    coord[i] = lin % shape[i];
    lin /= shape[i];
  }
  return coord;
}

}  // namespace

// ---- Per-run binding ---------------------------------------------------------------

struct Kernel::Binding {
  std::span<const RtValue> inputs;
  std::unordered_map<const Value*, Shape> shapes;
  std::unordered_map<const Value*, DType> dtypes;
  std::unordered_map<const Value*, double> scalars;

  const Shape& shapeOf(const Value* v) const { return shapes.at(v); }
  DType dtypeOf(const Value* v) const { return dtypes.at(v); }
  double scalarOf(const Value* v) const { return scalars.at(v); }
};

// ---- Support check -------------------------------------------------------------------

bool Kernel::supports(const Block& body) {
  for (const Node* node : body) {
    if (node->numBlocks() != 0) return false;
    switch (ir::opCategory(node->kind())) {
      case ir::OpCategory::EwiseUnary:
      case ir::OpCategory::EwiseBinary:
      case ir::OpCategory::EwiseTernary:
        break;
      case ir::OpCategory::Immut:
        // Dynamic-extent view rules ("dyn" marker: sizes bound from scalar
        // operands at run time) stay on the per-node interpreter path —
        // viewShape below reads "sizes" as static (-1 means infer there).
        if (node->attrs().has("dyn")) return false;
        if (node->kind() == OpKind::Access) {
          if (!supportedViewRule(viewRuleOf(*node), /*forAssign=*/false))
            return false;
        } else if (node->kind() == OpKind::Assign) {
          if (!supportedViewRule(viewRuleOf(*node), /*forAssign=*/true))
            return false;
        } else {
          return false;
        }
        break;
      default:
        return false;
    }
  }
  return true;
}

Kernel::Kernel(const Block& body, bool allowJit) : body_(body) {
  TSSA_CHECK(supports(body), "unsupported fusion body for texpr");
  if (allowJit && jit::jitEnabled())
    gen_ = std::make_unique<codegen::Generator>(body);
}

Kernel::~Kernel() = default;

// ---- Shape/dtype inference ---------------------------------------------------------------

namespace {

/// Shape produced by applying a view rule to `base` (for Access), given the
/// node's attrs and dynamic scalar operands starting at `operandStart`.
Shape viewShape(const Node& node, OpKind rule, const Shape& base,
                std::size_t operandStart, const Kernel::Binding& b);

}  // namespace

void Kernel::inferAll(Binding& b) const {
  // Parameters.
  for (std::size_t i = 0; i < body_.numParams(); ++i) {
    const Value* p = body_.param(i);
    const RtValue& in = b.inputs[i];
    if (in.isTensor()) {
      b.shapes[p] = in.tensor().sizes();
      b.dtypes[p] = in.tensor().dtype();
    } else if (in.isScalar()) {
      b.scalars[p] = in.scalar().toDouble();
    }
  }
  for (const Node* node : body_) {
    const Value* out = node->output(0);
    switch (node->kind()) {
      case OpKind::Access: {
        const Value* base = node->input(0);
        const OpKind rule = viewRuleOf(*node);
        b.shapes[out] = viewShape(*node, rule, b.shapeOf(base), 1, b);
        b.dtypes[out] = b.dtypeOf(base);
        break;
      }
      case OpKind::Assign: {
        const Value* base = node->input(0);
        b.shapes[out] = b.shapeOf(base);
        b.dtypes[out] = b.dtypeOf(base);
        break;
      }
      case OpKind::Where: {
        Shape s = broadcastShapes(b.shapeOf(node->input(0)),
                                  b.shapeOf(node->input(1)));
        b.shapes[out] = broadcastShapes(s, b.shapeOf(node->input(2)));
        b.dtypes[out] = promoteTypes(b.dtypeOf(node->input(1)),
                                     b.dtypeOf(node->input(2)));
        break;
      }
      case OpKind::MaskedFill: {
        const DType at = b.dtypeOf(node->input(0));
        b.shapes[out] = broadcastShapes(b.shapeOf(node->input(0)),
                                        b.shapeOf(node->input(1)));
        // Mirrors ops::maskedFill: where(mask, full(value), a).
        const DType vt = isFloatingPoint(at) ? DType::Float32
                                             : DType::Int64;
        b.dtypes[out] = promoteTypes(vt, at);
        break;
      }
      default: {
        // Elementwise compute.
        if (node->numInputs() == 2) {
          b.shapes[out] = broadcastShapes(b.shapeOf(node->input(0)),
                                          b.shapeOf(node->input(1)));
        } else {
          b.shapes[out] = b.shapeOf(node->input(0));
        }
        const DType a = b.dtypeOf(node->input(0));
        switch (node->kind()) {
          case OpKind::Div:
          case OpKind::Pow:
          case OpKind::Exp:
          case OpKind::Log:
          case OpKind::Sqrt:
          case OpKind::Sigmoid:
          case OpKind::Tanh:
            b.dtypes[out] = DType::Float32;
            break;
          case OpKind::Eq:
          case OpKind::Ne:
          case OpKind::Lt:
          case OpKind::Le:
          case OpKind::Gt:
          case OpKind::Ge:
          case OpKind::LogicalAnd:
          case OpKind::LogicalOr:
          case OpKind::LogicalNot:
            b.dtypes[out] = DType::Bool;
            break;
          case OpKind::Cast:
            b.dtypes[out] = node->attrs().dtype("dtype");
            break;
          case OpKind::Add:
          case OpKind::Sub:
          case OpKind::Mul:
          case OpKind::Minimum:
          case OpKind::Maximum:
            b.dtypes[out] = promoteTypes(a, b.dtypeOf(node->input(1)));
            break;
          default:
            b.dtypes[out] = a;
            break;
        }
        break;
      }
    }
  }
}

namespace {

Shape viewShape(const Node& node, OpKind rule, const Shape& base,
                std::size_t operandStart, const Kernel::Binding& b) {
  const auto& attrs = node.attrs();
  auto dynInt = [&](std::size_t i) {
    return static_cast<std::int64_t>(b.scalarOf(node.input(i)));
  };
  Shape out = base;
  switch (rule) {
    case OpKind::Identity:
      return out;
    case OpKind::Select: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      out.erase(out.begin() + d);
      return out;
    }
    case OpKind::Slice: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      std::int64_t start = dynInt(operandStart);
      std::int64_t end = dynInt(operandStart + 1);
      normalizeSliceBounds(base[static_cast<std::size_t>(d)], start, end);
      const std::int64_t step = attrs.i("step");
      out[static_cast<std::size_t>(d)] = (end - start + step - 1) / step;
      return out;
    }
    case OpKind::Transpose: {
      const auto d0 = static_cast<std::size_t>(normalizeDim(
          attrs.i("dim0"), static_cast<std::int64_t>(base.size())));
      const auto d1 = static_cast<std::size_t>(normalizeDim(
          attrs.i("dim1"), static_cast<std::int64_t>(base.size())));
      std::swap(out[d0], out[d1]);
      return out;
    }
    case OpKind::Permute: {
      const auto& dims = attrs.ints("dims");
      for (std::size_t i = 0; i < dims.size(); ++i)
        out[i] = base[static_cast<std::size_t>(dims[i])];
      return out;
    }
    case OpKind::Squeeze: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      out.erase(out.begin() + d);
      return out;
    }
    case OpKind::Unsqueeze: {
      const std::int64_t rank = static_cast<std::int64_t>(base.size());
      std::int64_t d = attrs.i("dim");
      if (d < 0) d += rank + 1;
      out.insert(out.begin() + d, 1);
      return out;
    }
    case OpKind::Reshape: {
      Shape sizes = attrs.ints("sizes");
      std::int64_t known = 1;
      std::int64_t infer = -1;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (sizes[i] == -1) {
          infer = static_cast<std::int64_t>(i);
        } else {
          known *= sizes[i];
        }
      }
      if (infer >= 0)
        sizes[static_cast<std::size_t>(infer)] = numelOf(base) / known;
      return sizes;
    }
    case OpKind::Flatten: {
      const std::int64_t rank = static_cast<std::int64_t>(base.size());
      const std::int64_t s = normalizeDim(attrs.i("start_dim"), rank);
      const std::int64_t e = normalizeDim(attrs.i("end_dim"), rank);
      Shape sizes;
      for (std::int64_t i = 0; i < s; ++i)
        sizes.push_back(base[static_cast<std::size_t>(i)]);
      std::int64_t merged = 1;
      for (std::int64_t i = s; i <= e; ++i)
        merged *= base[static_cast<std::size_t>(i)];
      sizes.push_back(merged);
      for (std::int64_t i = e + 1; i < rank; ++i)
        sizes.push_back(base[static_cast<std::size_t>(i)]);
      return sizes;
    }
    case OpKind::Expand: {
      Shape sizes = attrs.ints("sizes");
      return sizes;
    }
    default:
      TSSA_THROW("unsupported view rule in texpr: " << opName(rule));
  }
}

/// For an Access: the base coordinate that view coordinate `coord` reads.
Shape accessBaseCoord(const Node& node, OpKind rule,
                      std::span<const std::int64_t> coord, const Shape& base,
                      std::size_t operandStart, const Kernel::Binding& b) {
  const auto& attrs = node.attrs();
  auto dynInt = [&](std::size_t i) {
    return static_cast<std::int64_t>(b.scalarOf(node.input(i)));
  };
  switch (rule) {
    case OpKind::Identity:
      return Shape(coord.begin(), coord.end());
    case OpKind::Select: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      const std::int64_t idx =
          normalizeIndex(dynInt(operandStart), base[static_cast<std::size_t>(d)]);
      Shape out(coord.begin(), coord.end());
      out.insert(out.begin() + d, idx);
      return out;
    }
    case OpKind::Slice: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      std::int64_t start = dynInt(operandStart);
      std::int64_t end = dynInt(operandStart + 1);
      normalizeSliceBounds(base[static_cast<std::size_t>(d)], start, end);
      Shape out(coord.begin(), coord.end());
      out[static_cast<std::size_t>(d)] =
          start + coord[static_cast<std::size_t>(d)] * attrs.i("step");
      return out;
    }
    case OpKind::Transpose: {
      const auto d0 = static_cast<std::size_t>(normalizeDim(
          attrs.i("dim0"), static_cast<std::int64_t>(base.size())));
      const auto d1 = static_cast<std::size_t>(normalizeDim(
          attrs.i("dim1"), static_cast<std::int64_t>(base.size())));
      Shape out(coord.begin(), coord.end());
      std::swap(out[d0], out[d1]);
      return out;
    }
    case OpKind::Permute: {
      const auto& dims = attrs.ints("dims");
      Shape out(base.size());
      for (std::size_t i = 0; i < dims.size(); ++i)
        out[static_cast<std::size_t>(dims[i])] = coord[i];
      return out;
    }
    case OpKind::Squeeze: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      Shape out(coord.begin(), coord.end());
      out.insert(out.begin() + d, 0);
      return out;
    }
    case OpKind::Unsqueeze: {
      const std::int64_t rank = static_cast<std::int64_t>(base.size());
      std::int64_t d = attrs.i("dim");
      if (d < 0) d += rank + 1;
      Shape out(coord.begin(), coord.end());
      out.erase(out.begin() + d);
      return out;
    }
    case OpKind::Reshape:
    case OpKind::Flatten: {
      const Shape mine = viewShape(node, rule, base, operandStart, b);
      return delinearize(linearize(coord, mine), base);
    }
    case OpKind::Expand: {
      Shape out(base.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        const std::size_t vd = coord.size() - base.size() + i;
        out[i] = base[i] == 1 ? 0 : coord[vd];
      }
      return out;
    }
    default:
      TSSA_THROW("unsupported view rule in texpr: " << opName(rule));
  }
}

/// For an Assign: whether base coordinate `coord` lies in the written view
/// region; if so, `viewCoord` receives the view-space coordinate.
bool assignCovers(const Node& node, OpKind rule,
                  std::span<const std::int64_t> coord, const Shape& base,
                  const Kernel::Binding& b, Shape& viewCoord) {
  const auto& attrs = node.attrs();
  auto dynInt = [&](std::size_t i) {
    return static_cast<std::int64_t>(b.scalarOf(node.input(i)));
  };
  switch (rule) {
    case OpKind::Identity:
      viewCoord.assign(coord.begin(), coord.end());
      return true;
    case OpKind::Select: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      const std::int64_t idx =
          normalizeIndex(dynInt(2), base[static_cast<std::size_t>(d)]);
      if (coord[static_cast<std::size_t>(d)] != idx) return false;
      viewCoord.assign(coord.begin(), coord.end());
      viewCoord.erase(viewCoord.begin() + d);
      return true;
    }
    case OpKind::Slice: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      std::int64_t start = dynInt(2);
      std::int64_t end = dynInt(3);
      normalizeSliceBounds(base[static_cast<std::size_t>(d)], start, end);
      const std::int64_t step = attrs.i("step");
      const std::int64_t c = coord[static_cast<std::size_t>(d)];
      if (c < start || c >= end || (c - start) % step != 0) return false;
      viewCoord.assign(coord.begin(), coord.end());
      viewCoord[static_cast<std::size_t>(d)] = (c - start) / step;
      return true;
    }
    case OpKind::Transpose: {
      const auto d0 = static_cast<std::size_t>(normalizeDim(
          attrs.i("dim0"), static_cast<std::int64_t>(base.size())));
      const auto d1 = static_cast<std::size_t>(normalizeDim(
          attrs.i("dim1"), static_cast<std::int64_t>(base.size())));
      viewCoord.assign(coord.begin(), coord.end());
      std::swap(viewCoord[d0], viewCoord[d1]);
      return true;
    }
    case OpKind::Permute: {
      const auto& dims = attrs.ints("dims");
      viewCoord.resize(base.size());
      for (std::size_t i = 0; i < dims.size(); ++i)
        viewCoord[i] = coord[static_cast<std::size_t>(dims[i])];
      return true;
    }
    case OpKind::Squeeze: {
      const std::int64_t d = normalizeDim(attrs.i("dim"),
                                          static_cast<std::int64_t>(base.size()));
      viewCoord.assign(coord.begin(), coord.end());
      viewCoord.erase(viewCoord.begin() + d);
      return true;
    }
    case OpKind::Unsqueeze: {
      const std::int64_t rank = static_cast<std::int64_t>(base.size());
      std::int64_t d = attrs.i("dim");
      if (d < 0) d += rank + 1;
      viewCoord.assign(coord.begin(), coord.end());
      viewCoord.insert(viewCoord.begin() + d, 0);
      return true;
    }
    case OpKind::Reshape:
    case OpKind::Flatten: {
      const Shape mine = viewShape(node, rule, base, 2, b);
      viewCoord = delinearize(linearize(coord, base), mine);
      return true;
    }
    default:
      TSSA_THROW("unsupported assign rule in texpr: " << opName(rule));
  }
}

}  // namespace

// ---- Element evaluation --------------------------------------------------------------------

double Kernel::evalAt(const Value* v, std::span<const std::int64_t> coord,
                      const Binding& b) const {
  const Node* def = v->definingNode();
  if (def == nullptr) {
    // Body parameter: read the bound tensor.
    const RtValue& in = b.inputs[v->defIndex()];
    return in.tensor().scalarAt(coord);
  }
  const auto& attrs = def->attrs();
  auto operand = [&](std::size_t i) -> double {
    const Value* o = def->input(i);
    Shape oc = alignCoord(coord, b.shapeOf(o));
    return evalAt(o, oc, b);
  };
  auto finish = [&](double x) { return roundTo(b.dtypeOf(v), x); };

  switch (def->kind()) {
    case OpKind::Add: return finish(operand(0) + operand(1));
    case OpKind::Sub: return finish(operand(0) - operand(1));
    case OpKind::Mul: return finish(operand(0) * operand(1));
    case OpKind::Div: return finish(operand(0) / operand(1));
    case OpKind::Pow: return finish(std::pow(operand(0), operand(1)));
    case OpKind::Minimum: return finish(std::min(operand(0), operand(1)));
    case OpKind::Maximum: return finish(std::max(operand(0), operand(1)));
    case OpKind::Eq: return operand(0) == operand(1) ? 1.0 : 0.0;
    case OpKind::Ne: return operand(0) != operand(1) ? 1.0 : 0.0;
    case OpKind::Lt: return operand(0) < operand(1) ? 1.0 : 0.0;
    case OpKind::Le: return operand(0) <= operand(1) ? 1.0 : 0.0;
    case OpKind::Gt: return operand(0) > operand(1) ? 1.0 : 0.0;
    case OpKind::Ge: return operand(0) >= operand(1) ? 1.0 : 0.0;
    case OpKind::LogicalAnd:
      return operand(0) != 0.0 && operand(1) != 0.0 ? 1.0 : 0.0;
    case OpKind::LogicalOr:
      return operand(0) != 0.0 || operand(1) != 0.0 ? 1.0 : 0.0;
    case OpKind::LogicalNot: return operand(0) == 0.0 ? 1.0 : 0.0;
    case OpKind::Neg: return finish(-operand(0));
    case OpKind::Exp: return finish(std::exp(operand(0)));
    case OpKind::Log: return finish(std::log(operand(0)));
    case OpKind::Sqrt: return finish(std::sqrt(operand(0)));
    case OpKind::Abs: return finish(std::abs(operand(0)));
    case OpKind::Sigmoid:
      return finish(1.0 / (1.0 + std::exp(-operand(0))));
    case OpKind::Tanh: return finish(std::tanh(operand(0)));
    case OpKind::Relu: {
      const double x = operand(0);
      return finish(x > 0 ? x : 0.0);
    }
    case OpKind::Clamp:
      return finish(std::clamp(operand(0), attrs.f("lo"), attrs.f("hi")));
    case OpKind::Cast: return finish(operand(0));
    case OpKind::Where:
      return finish(operand(0) != 0.0 ? operand(1) : operand(2));
    case OpKind::MaskedFill:
      return finish(operand(1) != 0.0 ? b.scalarOf(def->input(2))
                                      : operand(0));
    case OpKind::Access: {
      const Value* base = def->input(0);
      const OpKind rule = viewRuleOf(*def);
      Shape bc = accessBaseCoord(*def, rule, coord, b.shapeOf(base), 1, b);
      return evalAt(base, bc, b);
    }
    case OpKind::Assign: {
      const Value* base = def->input(0);
      const Value* src = def->input(1);
      const OpKind rule = viewRuleOf(*def);
      Shape viewCoord;
      if (assignCovers(*def, rule, coord, b.shapeOf(base), b, viewCoord)) {
        Shape sc = alignCoord(viewCoord, b.shapeOf(src));
        return finish(evalAt(src, sc, b));
      }
      return evalAt(base, coord, b);
    }
    default:
      TSSA_THROW("texpr: unexpected op " << opName(def->kind()));
  }
}

// ---- Entry -------------------------------------------------------------------------------------

namespace {

/// Elements below this count are not worth a trip through the pool.
constexpr std::int64_t kMinParallelElems = 1024;

/// The tensor's base element pointer (storage offset applied), type-erased
/// for the JIT ABI.
void* rawDataOf(const Tensor& t) {
  auto& mt = const_cast<Tensor&>(t);
  switch (t.dtype()) {
    case DType::Float32: return mt.data<float>();
    case DType::Int64: return mt.data<std::int64_t>();
    case DType::Bool: return mt.data<std::uint8_t>();
  }
  return nullptr;
}

}  // namespace

bool Kernel::tryRunJit(std::span<const RtValue> inputs, const Binding& b,
                       std::vector<RtValue>& outputs, int threads) const {
  using codegen::Decline;
  if (gen_ == nullptr) return false;
  jit::KernelCache& cache = jit::KernelCache::instance();
  if (gen_->structuralDecline() != Decline::None) {
    cache.recordDecline(gen_->structuralDecline());
    return false;
  }

  std::vector<codegen::InputSig> sig(body_.numParams());
  for (std::size_t i = 0; i < body_.numParams(); ++i) {
    const RtValue& in = inputs[i];
    if (in.isTensor()) {
      const Tensor& t = in.tensor();
      sig[i].isTensor = true;
      sig[i].dtype = t.dtype();
      sig[i].rank = static_cast<int>(t.dim());
      sig[i].contiguous = t.isContiguous();
    } else if (!in.isScalar()) {
      cache.recordDecline(Decline::Op);
      return false;
    }
  }

  const std::string key = gen_->cacheKey(sig);
  std::shared_ptr<jit::CompiledKernel> kernel;
  bool memoized = false;
  {
    std::lock_guard<std::mutex> lock(jitMutex_);
    auto it = jitMemo_.find(key);
    if (it != jitMemo_.end()) {
      kernel = it->second;
      memoized = true;
    }
  }
  if (memoized) {
    if (kernel == nullptr) {
      cache.recordDecline(Decline::Toolchain);
      return false;
    }
    cache.recordHit();
  } else {
    const Decline reason = gen_->declineFor(sig);
    if (reason != Decline::None) {
      cache.recordDecline(reason);
      return false;
    }
    kernel = cache.getOrCompile(key, [&] { return gen_->emitSource(sig); });
    {
      std::lock_guard<std::mutex> lock(jitMutex_);
      jitMemo_[key] = kernel;
    }
    if (kernel == nullptr) {
      cache.recordDecline(Decline::Toolchain);
      return false;
    }
  }

  // Select indices are validated here because the generated code cannot
  // throw: an out-of-range index falls back to the interpreter, which
  // raises the identical tssa::Error.
  for (const codegen::SelectGuard& guard : gen_->selectGuards()) {
    const Shape& baseShape = b.shapeOf(guard.base);
    const std::int64_t rank = static_cast<std::int64_t>(baseShape.size());
    std::int64_t d = guard.dim < 0 ? guard.dim + rank : guard.dim;
    if (d < 0 || d >= rank) return false;
    const std::int64_t extent = baseShape[static_cast<std::size_t>(d)];
    std::int64_t idx =
        static_cast<std::int64_t>(b.scalarOf(guard.indexParam));
    if (idx < 0) idx += extent;
    if (idx < 0 || idx >= extent) return false;
  }

  // Dispatch tables: per-slot shape extents, per-param buffers, scalars.
  const auto slotVals = gen_->slotValues();
  std::vector<const std::int64_t*> shapes(slotVals.size(), nullptr);
  for (std::size_t s = 0; s < slotVals.size(); ++s) {
    auto it = b.shapes.find(slotVals[s]);
    if (it != b.shapes.end()) shapes[s] = it->second.data();
  }
  std::vector<jit::JitBuffer> ins(body_.numParams());
  std::vector<double> scalars(body_.numParams(), 0.0);
  for (std::size_t i = 0; i < body_.numParams(); ++i) {
    const RtValue& in = inputs[i];
    if (in.isTensor()) {
      const Tensor& t = in.tensor();
      ins[i].data = rawDataOf(t);
      ins[i].sizes = t.sizes().data();
      ins[i].strides = t.strides().data();
      if (ins[i].data == nullptr) return false;
    } else {
      scalars[i] = in.scalar().toDouble();
    }
  }

  // The linear fast loop was emitted only for all-contiguous signatures of
  // pure elementwise bodies; it is valid at run time only when every tensor
  // input additionally has exactly the output's shape (no broadcasting).
  bool emittedFast = gen_->fastPathEligible();
  for (const codegen::InputSig& s : sig)
    if (s.isTensor && !s.contiguous) emittedFast = false;

  jit::EntryFn entry = kernel->entry();
  outputs.reserve(body_.numReturns());
  std::int32_t outIndex = 0;
  for (const Value* r : body_.returns()) {
    Tensor out = Tensor::empty(b.shapeOf(r), b.dtypeOf(r));
    const std::int64_t numel = out.numel();
    std::int32_t flags = 0;
    if (emittedFast) {
      bool linear = true;
      for (std::size_t i = 0; i < body_.numParams(); ++i) {
        if (inputs[i].isTensor() &&
            inputs[i].tensor().sizes() != out.sizes())
          linear = false;
      }
      if (linear) flags = 1;
    }
    jit::JitBuffer ob{rawDataOf(out), out.sizes().data(),
                      out.strides().data()};
    if (threads > 1 && numel >= kMinParallelElems) {
      runtime::ThreadPool::shared().parallelFor(
          numel, threads,
          [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
            entry(ins.data(), &ob, shapes.data(), scalars.data(), outIndex,
                  begin, end, flags);
          });
    } else {
      entry(ins.data(), &ob, shapes.data(), scalars.data(), outIndex, 0,
            numel, flags);
    }
    outputs.emplace_back(std::move(out));
    ++outIndex;
  }
  return true;
}

std::vector<RtValue> Kernel::run(std::span<const RtValue> inputs,
                                 RunStats* stats, int threads) const {
  TSSA_CHECK(inputs.size() == body_.numParams(),
             "texpr kernel expects " << body_.numParams() << " inputs");
  Binding b;
  b.inputs = inputs;
  inferAll(b);
  if (stats != nullptr) {
    for (const Node* node : body_) {
      const Value* out = node->output(0);
      stats->flops += numelOf(b.shapeOf(out));
      if (node->kind() == OpKind::Assign &&
          node->attrs().bOr("inplace", false)) {
        const Value* base = node->input(0);
        const Value* src = node->input(1);
        const std::int64_t baseBytes =
            numelOf(b.shapeOf(base)) *
            static_cast<std::int64_t>(dtypeSize(b.dtypeOf(base)));
        const std::int64_t srcBytes =
            numelOf(b.shapeOf(src)) *
            static_cast<std::int64_t>(dtypeSize(b.dtypeOf(src)));
        stats->savedBytes += std::max<std::int64_t>(0, 2 * (baseBytes - srcBytes));
      }
    }
  }

  std::vector<RtValue> outputs;
  if (tryRunJit(inputs, b, outputs, threads)) return outputs;
  outputs.reserve(body_.numReturns());
  for (const Value* r : body_.returns()) {
    Tensor out = Tensor::empty(b.shapeOf(r), b.dtypeOf(r));
    const std::int64_t numel = out.numel();
    if (threads > 1 && numel >= kMinParallelElems) {
      // Each chunk writes a disjoint contiguous range of the fresh output;
      // evalAt reads only the immutable Binding and input tensors.
      runtime::ThreadPool::shared().parallelFor(
          numel, threads,
          [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
            Shape coord = delinearize(begin, out.sizes());
            for (std::int64_t lin = begin; lin < end; ++lin) {
              out.setScalarAt(coord, evalAt(r, coord, b));
              for (std::int64_t d =
                       static_cast<std::int64_t>(coord.size()) - 1;
                   d >= 0; --d) {
                const auto ud = static_cast<std::size_t>(d);
                if (++coord[ud] < out.sizes()[ud]) break;
                coord[ud] = 0;
              }
            }
          });
    } else {
      for (IndexIterator it(out.sizes()); it.valid(); it.next())
        out.setScalarAt(it.index(), evalAt(r, it.index(), b));
    }
    outputs.emplace_back(std::move(out));
  }
  return outputs;
}

}  // namespace tssa::texpr
