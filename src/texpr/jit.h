// Runtime compilation and caching of generated texpr kernels.
//
// The generator (codegen.h) produces a C++ translation unit; this layer
// compiles it with the system toolchain into a shared object, dlopens it,
// and caches the result process-wide so structurally identical fused
// regions — across pipelines, serve shards, and requests — share one
// compiled kernel. Compilation is single-flight per cache key; failures are
// negative-cached so a broken toolchain costs one compile attempt per key,
// not one per launch. Everything here is fallible by design: a nullptr
// kernel means "use the interpreter" (DESIGN.md §11).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/texpr/codegen.h"

namespace tssa::obs {
class MetricsRegistry;
}

namespace tssa::texpr::jit {

/// Mirrors the generated code's `TssaJitBuffer`. `data` must already point
/// at the tensor's first element (storage offset applied).
struct JitBuffer {
  void* data = nullptr;
  const std::int64_t* sizes = nullptr;
  const std::int64_t* strides = nullptr;
};

/// The generated entry point: dispatches output `outIndex` over the element
/// range [begin, end). Bit 0 of `flags` selects the contiguous linear fast
/// loop (caller asserts all inputs are contiguous and shape-equal to the
/// output); 0 selects the generic coordinate walk.
using EntryFn = void (*)(const JitBuffer* ins, JitBuffer* out,
                         const std::int64_t* const* shapes,
                         const double* scalars, std::int32_t outIndex,
                         std::int64_t begin, std::int64_t end,
                         std::int32_t flags);

/// Process-wide kill switch: false when the environment sets
/// TSSA_TEXPR_JIT=0 (read once; tests use PipelineOptions / the Kernel
/// constructor flag instead so they can flip per instance).
bool jitEnabled();

/// A loaded shared object. Destruction dlcloses, so holders keep the
/// shared_ptr alive for as long as they might call entry() — the cache's
/// LRU eviction only drops its own reference.
class CompiledKernel {
 public:
  CompiledKernel(void* handle, EntryFn entry)
      : handle_(handle), entry_(entry) {}
  ~CompiledKernel();
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  EntryFn entry() const { return entry_; }

 private:
  void* handle_ = nullptr;
  EntryFn entry_ = nullptr;
};

/// Compiles `source` to a shared object in a fresh mode-0700 temp directory,
/// loads it, and returns the kernel (nullptr on any failure). The .so is
/// unlinked and the directory removed as soon as the object is loaded, so no
/// on-disk artifact outlives the call. Compiler: $TSSA_JIT_CC if set (read
/// per call — tests point it at /bin/false), else the build-time toolchain.
std::shared_ptr<CompiledKernel> compileSource(const std::string& source);

/// Process-global cache of compiled kernels, keyed by
/// Generator::cacheKey (expression structure × dtypes × ranks ×
/// contiguity). Thread-safe; concurrent misses on one key rendezvous on a
/// single compile (single-flight). Failed compiles are cached as negative
/// entries so the toolchain is retried at most once per key.
class KernelCache {
 public:
  static KernelCache& instance();

  /// The cached kernel for `key`, compiling `makeSource()` on a miss.
  /// Returns nullptr when compilation failed (now or previously cached).
  /// Counts a miss on first compile and a hit on every subsequent lookup of
  /// a positive entry; negative lookups count neither (the caller records a
  /// toolchain decline).
  std::shared_ptr<CompiledKernel> getOrCompile(
      const std::string& key, const std::function<std::string()>& makeSource);

  /// Callers that memoize lookup results (texpr::Kernel keeps a per-body
  /// memo to skip rebuilding the key string) report reuse through these so
  /// the counters still reflect every launch.
  void recordHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void recordDecline(codegen::Decline reason);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t declines = 0;
    std::uint64_t compileFails = 0;
    std::size_t size = 0;  ///< resident compiled kernels (positive entries)
  };
  Stats stats() const;

  /// Publishes `tssa_texpr_jit_{hits,misses,declines,compile_fail}_total`.
  void exportTo(obs::MetricsRegistry& registry) const;

  /// Tests only: drops all entries (in-flight compiles finish against the
  /// old generation and are discarded) and zeroes counters.
  void clearForTesting();
  /// Tests only: shrinks the LRU capacity to force eviction.
  void setCapacityForTesting(std::size_t capacity);

 private:
  KernelCache() = default;

  struct Slot {
    std::shared_ptr<CompiledKernel> kernel;  ///< nullptr = negative entry
    bool ready = false;     ///< compile finished (kernel may be null)
    bool compiling = false; ///< a thread owns the single-flight compile
    std::uint64_t generation = 0;
    std::list<std::string>::iterator lruIt;
    bool inLru = false;
  };

  void touchLocked(const std::string& key, Slot& slot);
  void evictExcessLocked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  ///< front = most recent
  std::size_t capacity_ = 256;
  std::uint64_t generation_ = 0;  ///< bumped by clearForTesting
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> declines_{0};
  std::atomic<std::uint64_t> compileFails_{0};
};

}  // namespace tssa::texpr::jit
