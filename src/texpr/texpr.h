// Tensor-expression backend: single-pass evaluation of fused subgraphs.
//
// This is the reproduction's stand-in for PyTorch NNC (the paper's codegen
// backend, §4.2.1). A tssa::FusionGroup body made of elementwise compute and
// immut::access / immut::assign operators is compiled to a per-element
// expression DAG: every output element is produced by one traversal that
// reads input elements through index transforms — no intermediate tensor is
// ever materialized, which is precisely the memory behaviour of a fused
// kernel. The runtime uses it to execute fusion groups; tests cross-check it
// element-for-element against the reference interpreter.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"
#include "src/runtime/rt_value.h"

namespace tssa::texpr {

/// A compiled fusion-group body.
class Kernel {
 public:
  /// True when every operator in `body` can be expressed per-element
  /// (elementwise compute, Access/Assign with supported rules, constants).
  /// Reductions, matmuls, cat, and assign-through-expand fall back to the
  /// interpreter.
  static bool supports(const ir::Block& body);

  /// Compiles `body` (does not take ownership; the IR must outlive the
  /// kernel).
  explicit Kernel(const ir::Block& body);

  /// Cost-model numbers observed during a run.
  struct RunStats {
    std::int64_t flops = 0;       ///< one per produced element per op
    std::int64_t savedBytes = 0;  ///< traffic saved by donated assigns
  };

  /// Executes: one RtValue per body parameter, returns one tensor per body
  /// return. Tensor inputs may be views; scalar inputs feed dynamic view
  /// operands (select indices, slice bounds).
  ///
  /// With `threads > 1` the per-element loop of each output is split into
  /// static chunks on the shared runtime thread pool (every element is
  /// computed independently from read-only state, so the result — and the
  /// reported RunStats, which derive from shapes alone — is bitwise
  /// identical to the serial run at any thread count).
  std::vector<runtime::RtValue> run(std::span<const runtime::RtValue> inputs,
                                    RunStats* stats = nullptr,
                                    int threads = 1) const;

  struct Binding;  // per-run resolved shapes/dtypes/input tensors

 private:

  /// Infers the shape/dtype of every body value for this run's inputs.
  void inferAll(Binding& b) const;

  /// Evaluates the scalar element of `v` at output coordinate `coord`
  /// (a coordinate in v's own shape).
  double evalAt(const ir::Value* v, std::span<const std::int64_t> coord,
                const Binding& b) const;

  const ir::Block& body_;
};

}  // namespace tssa::texpr
