// Tensor-expression backend: single-pass evaluation of fused subgraphs.
//
// This is the reproduction's stand-in for PyTorch NNC (the paper's codegen
// backend, §4.2.1). A tssa::FusionGroup body made of elementwise compute and
// immut::access / immut::assign operators is compiled to a per-element
// expression DAG: every output element is produced by one traversal that
// reads input elements through index transforms — no intermediate tensor is
// ever materialized, which is precisely the memory behaviour of a fused
// kernel. The runtime uses it to execute fusion groups; tests cross-check it
// element-for-element against the reference interpreter.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"
#include "src/runtime/rt_value.h"

namespace tssa::texpr {

namespace codegen {
class Generator;
}
namespace jit {
class CompiledKernel;
}

/// A compiled fusion-group body.
class Kernel {
 public:
  /// True when every operator in `body` can be expressed per-element
  /// (elementwise compute, Access/Assign with supported rules, constants).
  /// Reductions, matmuls, cat, and assign-through-expand fall back to the
  /// interpreter.
  static bool supports(const ir::Block& body);

  /// Compiles `body` (does not take ownership; the IR must outlive the
  /// kernel). With `allowJit` (and TSSA_TEXPR_JIT not set to 0), runs try
  /// the native code path first: the body is lowered to C++, compiled via
  /// jit::KernelCache, and dispatched through the C ABI; any decline falls
  /// back to the tree-walking interpreter below, bitwise-identically.
  explicit Kernel(const ir::Block& body, bool allowJit = true);
  ~Kernel();

  /// Cost-model numbers observed during a run.
  struct RunStats {
    std::int64_t flops = 0;       ///< one per produced element per op
    std::int64_t savedBytes = 0;  ///< traffic saved by donated assigns
  };

  /// Executes: one RtValue per body parameter, returns one tensor per body
  /// return. Tensor inputs may be views; scalar inputs feed dynamic view
  /// operands (select indices, slice bounds).
  ///
  /// With `threads > 1` the per-element loop of each output is split into
  /// static chunks on the shared runtime thread pool (every element is
  /// computed independently from read-only state, so the result — and the
  /// reported RunStats, which derive from shapes alone — is bitwise
  /// identical to the serial run at any thread count).
  std::vector<runtime::RtValue> run(std::span<const runtime::RtValue> inputs,
                                    RunStats* stats = nullptr,
                                    int threads = 1) const;

  struct Binding;  // per-run resolved shapes/dtypes/input tensors

 private:

  /// Infers the shape/dtype of every body value for this run's inputs.
  void inferAll(Binding& b) const;

  /// Evaluates the scalar element of `v` at output coordinate `coord`
  /// (a coordinate in v's own shape).
  double evalAt(const ir::Value* v, std::span<const std::int64_t> coord,
                const Binding& b) const;

  /// Native-code dispatch. Returns true and fills `outputs` when a compiled
  /// kernel ran; false when this launch declines to the interpreter (the
  /// reason is counted in jit::KernelCache).
  bool tryRunJit(std::span<const runtime::RtValue> inputs, const Binding& b,
                 std::vector<runtime::RtValue>& outputs, int threads) const;

  const ir::Block& body_;
  std::unique_ptr<codegen::Generator> gen_;  ///< null when JIT is off
  /// Per-signature lookup memo (shared_ptr null = known failure). Guards
  /// concurrent run() calls on one Kernel; the global KernelCache guards
  /// cross-kernel sharing.
  mutable std::mutex jitMutex_;
  mutable std::unordered_map<std::string,
                             std::shared_ptr<jit::CompiledKernel>>
      jitMemo_;
};

}  // namespace tssa::texpr
