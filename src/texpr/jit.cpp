#include "src/texpr/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/error.h"

#ifndef TSSA_JIT_CXX
#define TSSA_JIT_CXX "c++"
#endif

namespace tssa::texpr::jit {

bool jitEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("TSSA_TEXPR_JIT");
    return v == nullptr || std::string_view(v) != "0";
  }();
  return enabled;
}

CompiledKernel::~CompiledKernel() {
  if (handle_ != nullptr) dlclose(handle_);
}

namespace {

std::string compilerCommand() {
  // Read per call: tests redirect the toolchain (TSSA_JIT_CC=/bin/false)
  // around individual compiles.
  if (const char* cc = std::getenv("TSSA_JIT_CC"); cc != nullptr && *cc != '\0')
    return cc;
  return TSSA_JIT_CXX;
}

/// RAII temp dir: created 0700 by mkdtemp under $TMPDIR (fallback /tmp),
/// best-effort cleaned on exit.
struct TempDir {
  std::string path;
  std::vector<std::string> files;

  explicit TempDir() {
    // Read per call, like TSSA_JIT_CC: sandboxed environments point TMPDIR
    // at a writable scratch dir where a hardcoded /tmp would fail (and tests
    // redirect it to assert the kernel still engages).
    const char* base = std::getenv("TMPDIR");
    if (base == nullptr || *base == '\0') base = "/tmp";
    std::string tmpl = std::string(base);
    if (tmpl.back() == '/') tmpl.pop_back();
    tmpl += "/tssa-jit-XXXXXX";
    if (::mkdtemp(tmpl.data()) != nullptr) path = tmpl;
  }
  ~TempDir() {
    for (const std::string& f : files) ::unlink(f.c_str());
    if (!path.empty()) ::rmdir(path.c_str());
  }
  std::string file(const char* name) {
    files.push_back(path + "/" + name);
    return files.back();
  }
};

}  // namespace

std::shared_ptr<CompiledKernel> compileSource(const std::string& source) {
  obs::TraceSpan span("jit", "compile");
  TempDir dir;
  if (dir.path.empty()) return nullptr;
  const std::string cppPath = dir.file("kernel.cpp");
  const std::string soPath = dir.file("kernel.so");
  {
    std::ofstream out(cppPath);
    if (!out) return nullptr;
    out << source;
    if (!out.flush()) return nullptr;
  }
  // -ffp-contract=off: the bitwise-equality contract with the interpreter
  // forbids fusing a multiply-add across what the interpreter rounds twice.
  const std::string cmd = compilerCommand() + " -std=c++17 -O2 -fPIC -shared" +
                          " -ffp-contract=off -o " + soPath + " " + cppPath +
                          " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return nullptr;
  void* handle = dlopen(soPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  // The object is mapped (or failed); nothing on disk needs to outlive this
  // call. TempDir unlinks kernel.{cpp,so} and removes the directory now, so
  // no other process can swap the .so between compile and a later load.
  if (handle == nullptr) return nullptr;
  auto entry = reinterpret_cast<EntryFn>(dlsym(handle, "tssa_jit_entry"));
  if (entry == nullptr) {
    dlclose(handle);
    return nullptr;
  }
  if (span.active()) span.arg("bytes", static_cast<std::int64_t>(source.size()));
  return std::make_shared<CompiledKernel>(handle, entry);
}

// ---- KernelCache -----------------------------------------------------------

KernelCache& KernelCache::instance() {
  static KernelCache* cache = new KernelCache();  // immortal: used at exit
  return *cache;
}

void KernelCache::recordDecline(codegen::Decline reason) {
  // compileFails_ counts actual failed compile attempts (incremented at the
  // compile site in getOrCompile); a memoized toolchain decline only adds to
  // the decline count.
  declines_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceSpan span("jit", "decline");
  if (span.active()) span.arg("reason", codegen::declineName(reason));
}

void KernelCache::touchLocked(const std::string& key, Slot& slot) {
  if (slot.inLru) lru_.erase(slot.lruIt);
  lru_.push_front(key);
  slot.lruIt = lru_.begin();
  slot.inLru = true;
}

void KernelCache::evictExcessLocked() {
  // Negative entries are not counted against capacity (they hold no code),
  // but they are still evictable from the cold end.
  std::size_t positive = 0;
  for (const auto& [key, slot] : map_)
    if (slot.ready && slot.kernel != nullptr) ++positive;
  while (positive > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    auto it = map_.find(victim);
    if (it != map_.end() && it->second.ready) {
      if (it->second.kernel != nullptr) --positive;
      // The shared_ptr keeps any executing kernel mapped until its last
      // caller returns; eviction only drops the cache's reference.
      map_.erase(it);
    }
    lru_.pop_back();
  }
}

std::shared_ptr<CompiledKernel> KernelCache::getOrCompile(
    const std::string& key, const std::function<std::string()>& makeSource) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    auto it = map_.find(key);
    if (it == map_.end()) break;  // miss: this thread compiles
    Slot& slot = it->second;
    if (slot.ready) {
      if (slot.kernel != nullptr) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        touchLocked(key, slot);
      }
      return slot.kernel;  // nullptr = cached failure
    }
    // Someone is compiling this key: rendezvous.
    cv_.wait(lock, [&] {
      auto w = map_.find(key);
      return w == map_.end() || w->second.ready;
    });
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = map_[key];
  slot.compiling = true;
  slot.generation = generation_;
  const std::uint64_t myGeneration = generation_;
  lock.unlock();

  std::shared_ptr<CompiledKernel> kernel;
  std::string source;
  try {
    source = makeSource();
  } catch (...) {
    source.clear();
  }
  if (!source.empty()) kernel = compileSource(source);
  if (kernel == nullptr)
    compileFails_.fetch_add(1, std::memory_order_relaxed);

  lock.lock();
  if (myGeneration != generation_) {
    // clearForTesting ran mid-compile: the map entry is gone; hand the
    // result to this caller only.
    cv_.notify_all();
    return kernel;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.kernel = kernel;
    it->second.ready = true;
    it->second.compiling = false;
    touchLocked(key, it->second);
    evictExcessLocked();
  }
  cv_.notify_all();
  return kernel;
}

KernelCache::Stats KernelCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.declines = declines_.load(std::memory_order_relaxed);
  s.compileFails = compileFails_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, slot] : map_)
    if (slot.ready && slot.kernel != nullptr) ++s.size;
  return s;
}

void KernelCache::exportTo(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.counterSet("tssa_texpr_jit_hits_total",
                      static_cast<std::int64_t>(s.hits));
  registry.counterSet("tssa_texpr_jit_misses_total",
                      static_cast<std::int64_t>(s.misses));
  registry.counterSet("tssa_texpr_jit_declines_total",
                      static_cast<std::int64_t>(s.declines));
  registry.counterSet("tssa_texpr_jit_compile_fail_total",
                      static_cast<std::int64_t>(s.compileFails));
  registry.gaugeSet("tssa_texpr_jit_cache_size",
                    static_cast<double>(s.size));
}

void KernelCache::clearForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++generation_;
  map_.clear();
  lru_.clear();
  hits_.store(0);
  misses_.store(0);
  declines_.store(0);
  compileFails_.store(0);
  cv_.notify_all();
}

void KernelCache::setCapacityForTesting(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evictExcessLocked();
}

}  // namespace tssa::texpr::jit
