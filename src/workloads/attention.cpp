// Incremental (KV-cache) attention decode loop.
//
// The classic imperative attention pattern the paper targets: per decoding
// step, the key/value caches are *mutated in place* at column t, then
// attention is computed over the growing prefix through dynamic slices:
//
//   for t in range(T):
//       kcache[:, t] = k[:, t]; vcache[:, t] = v[:, t]   # cache mutations
//       s = (q[:, t:t+1] @ kcache[:, 0:t+1]^T) * scale
//       out[:, t] = softmax(s) @ vcache[:, 0:t+1]        # column write
//
// Reads span all previously written columns, so the loop is genuinely
// sequential; the win comes from functionalizing the cache updates so the
// surrounding elementwise work fuses instead of graph-breaking.
#include <cmath>

#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::Block;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kDim = 32;
}

Workload buildAttention(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  const std::int64_t t = config.seqLen;
  Rng rng(config.seed + 7);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("attention") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* q = graph->addInput(inType(0), "q");
  Value* k = graph->addInput(inType(1), "k");
  Value* v = graph->addInput(inType(2), "v");

  Value* scale = bld.constTensor(
      Tensor::full({}, Scalar(1.0 / std::sqrt(static_cast<double>(kDim)))));
  Value* kCache;
  Value* vCache;
  Value* out;
  Value* trip;
  if (config.symbolicDims) {
    // Caches and trip count sized off the inputs: one program per guard.
    Value* rows = bld.sizeOf(q, 0);
    Value* steps = bld.sizeOf(q, 1);
    kCache = bld.zeros({-1, -1, kDim}, {rows, steps});
    vCache = bld.zeros({-1, -1, kDim}, {rows, steps});
    out = bld.zeros({-1, -1, kDim}, {rows, steps});
    trip = steps;
  } else {
    kCache = bld.zeros({b, t, kDim});
    vCache = bld.zeros({b, t, kDim});
    out = bld.zeros({b, t, kDim});
    trip = bld.constInt(t);
  }

  Node* loop = bld.makeLoop(trip, {});
  Block* body = loop->block(0);
  {
    IRBuilder ib(*graph);
    ib.setInsertionPointToEnd(body);
    Value* step = body->param(0);
    // Cache updates: in-place column writes.
    ib.copy_(ib.select(kCache, 1, step), ib.select(k, 1, step));
    ib.copy_(ib.select(vCache, 1, step), ib.select(v, 1, step));

    Value* end = ib.scalarAdd(step, ib.constInt(1));
    Value* qt = ib.unsqueeze(ib.select(q, 1, step), 1);        // [B, 1, D]
    Value* keys = ib.slice(kCache, 1, ib.constInt(0), end);    // [B, t+1, D]
    Value* values = ib.slice(vCache, 1, ib.constInt(0), end);
    Value* scores =
        ib.mul(ib.bmm(qt, ib.transpose(keys, 1, 2)), scale);   // [B, 1, t+1]
    Value* probs = ib.softmax(scores, 2);
    Value* ot = ib.squeeze(ib.bmm(probs, values), 1);          // [B, D]
    ib.copy_(ib.select(out, 1, step), ot);
  }
  graph->addOutput(out);
  ir::verify(*graph);

  Workload w;
  w.name = "attention";
  w.description = "KV-cache attention decode: cache mutations + dynamic slices";
  w.inputs.emplace_back(rng.normal({b, t, kDim}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, t, kDim}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, t, kDim}, 0.0, 0.5));
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
