// YOLOv3 bounding-box decoding (post-processing).
//
// For each of three detection scales, the raw head output is decoded into a
// preallocated buffer via slice views and in-place copies:
//
//   dec[..., 0:2] = (sigmoid(p[..., 0:2]) + grid) * stride   # box centers
//   dec[..., 2:4] = exp(p[..., 2:4]) * anchors               # box sizes
//   dec[..., 4: ] = sigmoid(p[..., 4:])                      # obj + classes
//
// then the three scales are flattened and concatenated. The slice mutations
// make every baseline fuser break; TensorSSA functionalizes them.
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

namespace {

constexpr std::int64_t kAnchors = 3;
constexpr std::int64_t kClasses = 16;
constexpr std::int64_t kBox = 5 + kClasses;
constexpr std::int64_t kGrids[3] = {16, 8, 4};
constexpr double kStrides[3] = {8.0, 16.0, 32.0};

/// Cell-center grid of shape [1, 1, H, W, 2].
Tensor makeGrid(std::int64_t h) {
  Tensor grid = Tensor::empty({1, 1, h, h, 2});
  float* p = grid.data<float>();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < h; ++x) {
      p[(y * h + x) * 2 + 0] = static_cast<float>(x);
      p[(y * h + x) * 2 + 1] = static_cast<float>(y);
    }
  }
  return grid;
}

/// Per-scale anchor sizes of shape [1, A, 1, 1, 2].
Tensor makeAnchors(Rng& rng) { return rng.uniform({1, kAnchors, 1, 1, 2}, 8, 64); }

}  // namespace

Workload buildYolov3(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  Rng rng(config.seed);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);

  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("yolov3") : nullptr;
  std::vector<Value*> heads;
  for (int s = 0; s < 3; ++s) {
    heads.push_back(graph->addInput(
        pat ? pat->inputs[static_cast<std::size_t>(s)]
            : Type::tensor(DType::Float32),
        "head" + std::to_string(s)));
  }
  // The batch extent read off the first head sizes every per-scale buffer.
  Value* rows = pat ? bld.sizeOf(heads[0], 0) : nullptr;

  std::vector<Value*> flats;
  for (int s = 0; s < 3; ++s) {
    const std::int64_t h = kGrids[s];
    Value* p = heads[static_cast<std::size_t>(s)];
    Value* dec = pat ? bld.zeros({-1, kAnchors, h, h, kBox}, {rows})
                     : bld.zeros({b, kAnchors, h, h, kBox});

    // Box centers.
    Value* pxy = bld.slice(p, 4, bld.constInt(0), bld.constInt(2));
    Value* dxy = bld.slice(dec, 4, bld.constInt(0), bld.constInt(2));
    Value* grid = bld.constTensor(makeGrid(h));
    Value* stride = bld.constTensor(Tensor::full({}, Scalar(kStrides[s])));
    bld.copy_(dxy, bld.mul(bld.add(bld.sigmoid(pxy), grid), stride));

    // Box sizes.
    Value* pwh = bld.slice(p, 4, bld.constInt(2), bld.constInt(4));
    Value* dwh = bld.slice(dec, 4, bld.constInt(2), bld.constInt(4));
    Value* anchors = bld.constTensor(makeAnchors(rng));
    bld.copy_(dwh, bld.mul(bld.exp(pwh), anchors));

    // Objectness and class scores.
    Value* pconf = bld.slice(p, 4, bld.constInt(4), bld.constInt(kBox));
    Value* dconf = bld.slice(dec, 4, bld.constInt(4), bld.constInt(kBox));
    bld.copy_(dconf, bld.sigmoid(pconf));

    flats.push_back(pat
                        ? bld.reshape(dec, {-1, kAnchors * h * h, kBox}, {rows})
                        : bld.reshape(dec, {b, kAnchors * h * h, kBox}));
  }

  Value* all = bld.cat(flats, 1);
  Value* boxes = bld.slice(all, 2, bld.constInt(0), bld.constInt(4));
  Value* obj = bld.slice(all, 2, bld.constInt(4), bld.constInt(5));
  Value* cls = bld.slice(all, 2, bld.constInt(5), bld.constInt(kBox));
  Value* scores = bld.mul(obj, cls);

  // Candidate selection (NMS front-end): best class score per box, top-K
  // boxes, gather their coordinates.
  constexpr std::int64_t kTop = 64;
  Value* best = bld.maxDim(scores, 2);             // [B, N]
  ir::Node* top = bld.topk(best, kTop);            // values, indices
  Value* unsq = bld.unsqueeze(top->output(1), 2);
  Value* idx = pat ? bld.expand(unsq, {-1, kTop, 4}, {rows})
                   : bld.expand(unsq, {b, kTop, 4});
  Value* selected = bld.gather(boxes, 1, idx);     // [B, K, 4]
  graph->addOutput(selected);
  graph->addOutput(top->output(0));
  ir::verify(*graph);

  Workload w;
  w.name = "yolov3";
  w.description = "YOLOv3 multi-scale box decoding with slice mutations";
  std::vector<runtime::RtValue> inputs;
  for (int s = 0; s < 3; ++s) {
    const std::int64_t h = kGrids[s];
    inputs.emplace_back(rng.normal({b, kAnchors, h, h, kBox}, 0.0, 0.8));
  }
  w.inputs = std::move(inputs);
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
