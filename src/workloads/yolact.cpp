// YOLACT mask assembly and crop (post-processing).
//
// Prototype masks are combined with per-detection coefficients, then each
// detection's mask is cropped to its box *in place* inside a loop:
//
//   masks = sigmoid(coeff @ proto^T).view(B, N, H, W).clone()
//   for i in range(N):                       # independent iterations!
//       inside = box_mask(boxes[:, i])       # [B, H, W] bool
//       masks[:, i].masked_fill_(~inside, 0) # view mutation in a loop
//
// The loop is the paper's horizontal-parallelization showcase: after
// functionalization every iteration touches only slice i, so TensorSSA
// executes the whole crop as one batched kernel.
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::Block;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kSide = 16;   // mask H = W
constexpr std::int64_t kProto = 8;   // prototype count K
constexpr std::int64_t kDets = 16;   // detections N

Tensor coordinateGrid(bool xAxis) {
  Tensor t = Tensor::empty({kSide, kSide});
  float* p = t.data<float>();
  for (std::int64_t y = 0; y < kSide; ++y) {
    for (std::int64_t x = 0; x < kSide; ++x) {
      p[y * kSide + x] = static_cast<float>(xAxis ? x : y);
    }
  }
  return t;
}
}  // namespace

Workload buildYolact(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  Rng rng(config.seed + 2);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("yolact") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* coeff = graph->addInput(inType(0), "coeff");
  Value* boxes = graph->addInput(inType(1), "boxes");
  // The number of surviving detections is decided at runtime (it is the
  // output of NMS) — data-dependent control flow that trace-time unrolling
  // cannot capture, but TensorSSA's loop-level functionalization can.
  Value* numDets = graph->addInput(Type::integer(), "num_dets");

  // Assemble masks: [B*N, K] @ [K, H*W] -> sigmoid -> [B, N, H, W].
  Value* protoT =
      bld.constTensor(rng.normal({kProto, kSide * kSide}, 0.0, 0.5));
  Value* coeffFlat;
  Value* rows = pat ? bld.sizeOf(coeff, 0) : nullptr;
  if (pat) {
    Value* flatRows = bld.scalarMul(rows, bld.constInt(kDets));
    coeffFlat = bld.reshape(coeff, {-1, kProto}, {flatRows});
  } else {
    coeffFlat = bld.reshape(coeff, {b * kDets, kProto});
  }
  Value* logits = bld.matmul(coeffFlat, protoT);
  Value* masksFlat = bld.sigmoid(logits);
  Value* masks = bld.clone(
      pat ? bld.reshape(masksFlat, {-1, kDets, kSide, kSide}, {rows})
          : bld.reshape(masksFlat, {b, kDets, kSide, kSide}));

  Value* xs = bld.constTensor(coordinateGrid(true));
  Value* ys = bld.constTensor(coordinateGrid(false));

  // Crop loop: zero everything outside each detection's box.
  Node* loop = bld.makeLoop(numDets, {});
  Block* body = loop->block(0);
  {
    IRBuilder ib(*graph);
    ib.setInsertionPointToEnd(body);
    Value* i = body->param(0);
    Value* mi = ib.select(masks, 1, i);   // [B, H, W], aliases `masks`
    Value* bi = ib.select(boxes, 1, i);   // [B, 4]
    auto coord = [&](std::int64_t c) {
      Value* s = ib.slice(bi, 1, ib.constInt(c), ib.constInt(c + 1));
      return ib.unsqueeze(s, 2);  // [B, 1, 1]
    };
    Value* inX = ib.logicalAnd(ib.ge(xs, coord(0)), ib.lt(xs, coord(2)));
    Value* inY = ib.logicalAnd(ib.ge(ys, coord(1)), ib.lt(ys, coord(3)));
    Value* outside = ib.logicalNot(ib.logicalAnd(inX, inY));  // [B, H, W]
    ib.maskedFill_(mi, outside, ib.constFloat(0.0));
  }
  graph->addOutput(masks);
  ir::verify(*graph);

  Workload w;
  w.name = "yolact";
  w.description = "YOLACT mask assembly + per-detection in-loop crop";
  w.inputs.emplace_back(rng.normal({b, kDets, kProto}, 0.0, 1.0));
  // Boxes as [x1, y1, x2, y2] pixel corners inside the mask plane.
  Tensor boxesT = Tensor::empty({b, kDets, 4});
  {
    float* p = boxesT.data<float>();
    for (std::int64_t i = 0; i < b * kDets; ++i) {
      const double x1 = rng.nextDouble(0, kSide / 2);
      const double y1 = rng.nextDouble(0, kSide / 2);
      p[i * 4 + 0] = static_cast<float>(x1);
      p[i * 4 + 1] = static_cast<float>(y1);
      p[i * 4 + 2] = static_cast<float>(x1 + rng.nextDouble(2, kSide / 2));
      p[i * 4 + 3] = static_cast<float>(y1 + rng.nextDouble(2, kSide / 2));
    }
  }
  w.inputs.emplace_back(std::move(boxesT));
  w.inputs.emplace_back(Scalar(kDets));
  // num_dets is a shared scalar: coalesced requests must agree on it.
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
