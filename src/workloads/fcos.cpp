// FCOS box decoding (post-processing).
//
// Per feature level, distances (l, t, r, b) regressed at each grid point are
// turned into corner boxes by slice writes into a buffer, combined with
// center-ness-weighted scores; levels are concatenated and optionally
// normalized under a branch:
//
//   scores = sqrt(sigmoid(cls) * sigmoid(centerness))
//   boxes[:, :, 0] = px - l * stride   (slice mutations)
//   ...
//   if normalize: boxes /= image_size
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::Block;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kSides[3] = {64, 32, 16};
constexpr double kStrides[3] = {4.0, 8.0, 16.0};
constexpr std::int64_t kClasses = 32;
constexpr double kImageSize = 128.0;

/// Grid-point coordinates of one level: [1, H*W, 1].
Tensor pointCoords(std::int64_t side, double stride, bool xAxis) {
  Tensor t = Tensor::empty({1, side * side, 1});
  float* p = t.data<float>();
  for (std::int64_t y = 0; y < side; ++y) {
    for (std::int64_t x = 0; x < side; ++x) {
      p[y * side + x] =
          static_cast<float>(stride * (0.5 + static_cast<double>(xAxis ? x : y)));
    }
  }
  return t;
}
}  // namespace

Workload buildFcos(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  Rng rng(config.seed + 3);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("fcos") : nullptr;
  auto inType = [&](int s, int kind) {
    return pat ? pat->inputs[static_cast<std::size_t>(s * 3 + kind)]
               : Type::tensor(DType::Float32);
  };
  std::vector<Value*> clsIn, ctrIn, regIn;
  for (int s = 0; s < 3; ++s) {
    clsIn.push_back(graph->addInput(inType(s, 0), "cls" + std::to_string(s)));
    ctrIn.push_back(graph->addInput(inType(s, 1), "ctr" + std::to_string(s)));
    regIn.push_back(graph->addInput(inType(s, 2), "reg" + std::to_string(s)));
  }
  Value* normalize = graph->addInput(Type::boolean(), "normalize");
  Value* rows = pat ? bld.sizeOf(clsIn[0], 0) : nullptr;

  std::vector<Value*> allBoxes, allScores;
  for (int s = 0; s < 3; ++s) {
    const std::int64_t hw = kSides[s] * kSides[s];
    Value* px = bld.constTensor(pointCoords(kSides[s], kStrides[s], true));
    Value* py = bld.constTensor(pointCoords(kSides[s], kStrides[s], false));
    Value* stride = bld.constTensor(Tensor::full({}, Scalar(kStrides[s])));

    // Center-ness-weighted scores with per-class calibration: a deep
    // elementwise chain over the [B, HW, C] tensor.
    Value* classBias =
        bld.constTensor(rng.uniform({1, 1, kClasses}, -0.1, 0.1));
    Value* power = bld.constTensor(Tensor::full({}, Scalar(0.8)));
    Value* raw = bld.sqrt(bld.mul(bld.sigmoid(clsIn[s]),
                                  bld.sigmoid(ctrIn[s])));
    Value* scores = bld.clamp(
        bld.mul(bld.exp(bld.mul(bld.log(bld.add(raw, bld.constTensor(
                                                          Tensor::full({}, Scalar(1e-9))))),
                                power)),
                bld.exp(classBias)),
        Scalar(0.0), Scalar(1.0));

    Value* boxes = pat ? bld.zeros({-1, hw, 4}, {rows})
                       : bld.zeros({b, hw, 4});
    auto dist = [&](std::int64_t c) {
      return bld.slice(regIn[s], 2, bld.constInt(c), bld.constInt(c + 1));
    };
    auto corner = [&](std::int64_t c) {
      return bld.slice(boxes, 2, bld.constInt(c), bld.constInt(c + 1));
    };
    bld.copy_(corner(0), bld.sub(px, bld.mul(dist(0), stride)));
    bld.copy_(corner(1), bld.sub(py, bld.mul(dist(1), stride)));
    bld.copy_(corner(2), bld.add(px, bld.mul(dist(2), stride)));
    bld.copy_(corner(3), bld.add(py, bld.mul(dist(3), stride)));

    allBoxes.push_back(bld.clamp(boxes, Scalar(0.0), Scalar(kImageSize)));
    allScores.push_back(scores);
  }

  Value* boxesCat = bld.cat(allBoxes, 1);
  Value* scoresCat = bld.cat(allScores, 1);

  Node* ifNode = bld.makeIf(normalize, 1);
  {
    IRBuilder tb(*graph);
    tb.setInsertionPointToEnd(ifNode->block(0));
    Value* size = tb.constTensor(Tensor::full({}, Scalar(kImageSize)));
    ifNode->block(0)->addReturn(tb.div(boxesCat, size));
  }
  ifNode->block(1)->addReturn(boxesCat);

  // Candidate selection across all levels.
  constexpr std::int64_t kTop = 64;
  Value* best = bld.maxDim(scoresCat, 2);            // [B, sum(HW)]
  Node* top = bld.topk(best, kTop);
  Value* unsq = bld.unsqueeze(top->output(1), 2);
  Value* idx = pat ? bld.expand(unsq, {-1, kTop, 4}, {rows})
                   : bld.expand(unsq, {b, kTop, 4});
  Value* selected = bld.gather(ifNode->output(0), 1, idx);

  graph->addOutput(selected);
  graph->addOutput(top->output(0));
  graph->addOutput(scoresCat);
  ir::verify(*graph);

  Workload w;
  w.name = "fcos";
  w.description = "FCOS per-level box decoding with slice mutations + branch";
  for (int s = 0; s < 3; ++s) {
    const std::int64_t hw = kSides[s] * kSides[s];
    w.inputs.emplace_back(rng.normal({b, hw, kClasses}, 0.0, 1.0));
    w.inputs.emplace_back(rng.normal({b, hw, 1}, 0.0, 1.0));
    w.inputs.emplace_back(rng.uniform({b, hw, 4}, 0.1, 4.0));
  }
  w.inputs.emplace_back(Scalar(true));
  // `normalize` is a shared flag: coalesced requests must agree on it.
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
