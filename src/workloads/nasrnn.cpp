// NASRNN cell loop (the NAS-discovered recurrent cell used as a standard
// imperative-program benchmark).
//
//   for t in range(T):
//       gates = xw[:, t] + h @ Wh          # [B, 8H], 8 slice views
//       m0 = sigmoid(g0) * tanh(g1); m1 = relu(g2) * sigmoid(g3)
//       m2 = tanh(g4) * sigmoid(g5); m3 = sigmoid(g6) * tanh(g7)
//       h  = tanh(tanh(m0 + m1) * tanh(m2 + m3))
//       out[:, t] = h
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::Block;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kHidden = 32;
}

Workload buildNasRnn(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  const std::int64_t t = config.seqLen;
  Rng rng(config.seed + 5);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("nasrnn") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* xw = graph->addInput(inType(0), "xw");
  Value* h0 = graph->addInput(inType(1), "h0");

  Value* wh = bld.constTensor(rng.normal({kHidden, 8 * kHidden}, 0.0, 0.2));
  Value* out;
  Value* trip;
  if (config.symbolicDims) {
    Value* rows = bld.sizeOf(xw, 0);
    Value* steps = bld.sizeOf(xw, 1);
    out = bld.zeros({-1, -1, kHidden}, {rows, steps});
    trip = steps;
  } else {
    out = bld.zeros({b, t, kHidden});
    trip = bld.constInt(t);
  }

  Node* loop = bld.makeLoop(trip, {h0});
  Block* body = loop->block(0);
  {
    IRBuilder ib(*graph);
    ib.setInsertionPointToEnd(body);
    Value* step = body->param(0);
    Value* h = body->param(1);

    Value* xt = ib.select(xw, 1, step);
    Value* gates = ib.add(xt, ib.matmul(h, wh));
    auto gate = [&](std::int64_t k) {
      return ib.slice(gates, 1, ib.constInt(k * kHidden),
                      ib.constInt((k + 1) * kHidden));
    };
    Value* m0 = ib.mul(ib.sigmoid(gate(0)), ib.tanh(gate(1)));
    Value* m1 = ib.mul(ib.relu(gate(2)), ib.sigmoid(gate(3)));
    Value* m2 = ib.mul(ib.tanh(gate(4)), ib.sigmoid(gate(5)));
    Value* m3 = ib.mul(ib.sigmoid(gate(6)), ib.tanh(gate(7)));
    Value* hNew =
        ib.tanh(ib.mul(ib.tanh(ib.add(m0, m1)), ib.tanh(ib.add(m2, m3))));
    ib.copy_(ib.select(out, 1, step), hNew);
    body->addReturn(hNew);
  }
  graph->addOutput(out);
  graph->addOutput(loop->output(0));
  ir::verify(*graph);

  Workload w;
  w.name = "nasrnn";
  w.description = "NASRNN cell loop: 8 gate slices, deep elementwise tree";
  w.inputs.emplace_back(rng.normal({b, t, 8 * kHidden}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, kHidden}, 0.0, 0.5));
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
