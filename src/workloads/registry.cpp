#include "src/workloads/workload.h"

#include <map>
#include <sstream>

#include "src/support/error.h"

namespace tssa::workloads {

std::string inputSignature(std::span<const runtime::RtValue> inputs) {
  std::ostringstream os;
  auto shapeOf = [&os](const Tensor& t) {
    os << dtypeName(t.dtype()) << "[";
    for (std::int64_t d = 0; d < t.dim(); ++d)
      os << (d ? "," : "") << t.size(d);
    os << "]";
  };
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i) os << ";";
    const runtime::RtValue& v = inputs[i];
    if (v.isTensor()) {
      shapeOf(v.tensor());
    } else if (v.isList()) {
      os << "list(";
      for (std::size_t j = 0; j < v.list().size(); ++j) {
        if (j) os << ",";
        shapeOf(v.list()[j]);
      }
      os << ")";
    } else {
      os << dtypeName(v.scalar().dtype());
    }
  }
  return os.str();
}

const BatchTraits& workloadBatchTraits(const std::string& name) {
  // All workloads batch along dim 0 of every tensor input/output; -1 marks
  // shared scalar inputs (coalesced requests must agree on their values).
  static const std::map<std::string, BatchTraits> table = {
      {"yolov3", {{0, 0, 0}, {0, 0}}},
      {"ssd", {{0, 0}, {0, 0, 0}}},
      {"yolact", {{0, 0, -1}, {0}}},
      {"fcos", {{0, 0, 0, 0, 0, 0, 0, 0, 0, -1}, {0, 0, 0}}},
      {"nasrnn", {{0, 0}, {0, 0}}},
      {"lstm", {{0, 0, 0}, {0, 0, 0}}},
      {"seq2seq", {{0, 0}, {0, 0}}},
      {"attention", {{0, 0, 0}, {0}}},
      // Serving-only decode step (not a figure workload, see workloadNames).
      {"decode_step", {{0, 0, 0, 0}, {0, 0, 0}}},
  };
  auto it = table.find(name);
  if (it == table.end()) TSSA_THROW("unknown workload '" << name << "'");
  return it->second;
}

const std::vector<std::string>& workloadNames() {
  static const std::vector<std::string> names = {
      "yolov3", "ssd", "yolact", "fcos",
      "nasrnn", "lstm", "seq2seq", "attention",
  };
  return names;
}

Workload buildWorkload(const std::string& name, const WorkloadConfig& config) {
  if (name == "yolov3") return buildYolov3(config);
  if (name == "ssd") return buildSsd(config);
  if (name == "yolact") return buildYolact(config);
  if (name == "fcos") return buildFcos(config);
  if (name == "nasrnn") return buildNasRnn(config);
  if (name == "lstm") return buildLstm(config);
  if (name == "seq2seq") return buildSeq2Seq(config);
  if (name == "attention") return buildAttention(config);
  if (name == "decode_step") return buildDecodeStep(config);
  TSSA_THROW("unknown workload '" << name << "'");
}

}  // namespace tssa::workloads
