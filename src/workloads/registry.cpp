#include "src/workloads/workload.h"

#include <map>
#include <sstream>

#include "src/support/error.h"

namespace tssa::workloads {

std::string inputSignature(std::span<const runtime::RtValue> inputs) {
  std::ostringstream os;
  auto shapeOf = [&os](const Tensor& t) {
    os << dtypeName(t.dtype()) << "[";
    for (std::int64_t d = 0; d < t.dim(); ++d)
      os << (d ? "," : "") << t.size(d);
    os << "]";
  };
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i) os << ";";
    const runtime::RtValue& v = inputs[i];
    if (v.isTensor()) {
      shapeOf(v.tensor());
    } else if (v.isList()) {
      os << "list(";
      for (std::size_t j = 0; j < v.list().size(); ++j) {
        if (j) os << ",";
        shapeOf(v.list()[j]);
      }
      os << ")";
    } else {
      os << dtypeName(v.scalar().dtype());
    }
  }
  return os.str();
}

const BatchTraits& workloadBatchTraits(const std::string& name) {
  // All workloads batch along dim 0 of every tensor input/output; -1 marks
  // shared scalar inputs (coalesced requests must agree on their values).
  static const std::map<std::string, BatchTraits> table = {
      {"yolov3", {{0, 0, 0}, {0, 0}}},
      {"ssd", {{0, 0}, {0, 0, 0}}},
      {"yolact", {{0, 0, -1}, {0}}},
      {"fcos", {{0, 0, 0, 0, 0, 0, 0, 0, 0, -1}, {0, 0, 0}}},
      {"nasrnn", {{0, 0}, {0, 0}}},
      {"lstm", {{0, 0, 0}, {0, 0, 0}}},
      {"seq2seq", {{0, 0}, {0, 0}}},
      {"attention", {{0, 0, 0}, {0}}},
      // Serving-only decode step (not a figure workload, see workloadNames).
      {"decode_step", {{0, 0, 0, 0}, {0, 0, 0}}},
  };
  auto it = table.find(name);
  if (it == table.end()) TSSA_THROW("unknown workload '" << name << "'");
  return it->second;
}

namespace {

std::string patternSignature(const std::vector<ir::Type>& inputs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i) os << ";";
    const ir::Type& t = inputs[i];
    if (t.isTensor()) {
      os << dtypeName(*t.dtype()) << "[";
      for (std::size_t d = 0; d < t.dims().size(); ++d)
        os << (d ? "," : "") << t.dims()[d].toString();
      os << "]";
    } else if (t.kind() == ir::TypeKind::Int) {
      os << dtypeName(DType::Int64);
    } else if (t.kind() == ir::TypeKind::Bool) {
      os << dtypeName(DType::Bool);
    } else {
      TSSA_THROW("unsupported pattern input type " << t.toString());
    }
  }
  return os.str();
}

SymbolicPattern pattern(std::vector<ir::Type> inputs) {
  SymbolicPattern p;
  p.signature = patternSignature(inputs);
  p.inputs = std::move(inputs);
  return p;
}

std::map<std::string, SymbolicPattern> makeSymbolicPatterns() {
  using ir::Dim;
  using ir::Type;
  auto T = [](std::vector<Dim> dims) {
    return Type::tensor(DType::Float32, std::move(dims));
  };
  const Dim B = Dim::symbol("B");   // batch
  const Dim S = Dim::symbol("T");   // sequence length
  const Dim C = Dim::symbol("C");   // decode context length

  std::map<std::string, SymbolicPattern> out;
  out.emplace("yolov3", pattern({T({B, 3, 16, 16, 21}), T({B, 3, 8, 8, 21}),
                                 T({B, 3, 4, 4, 21})}));
  out.emplace("ssd", pattern({T({B, 6144, 4}), T({B, 6144, 21})}));
  out.emplace("yolact",
              pattern({T({B, 16, 8}), T({B, 16, 4}), Type::integer()}));
  out.emplace("fcos",
              pattern({T({B, 4096, 32}), T({B, 4096, 1}), T({B, 4096, 4}),
                       T({B, 1024, 32}), T({B, 1024, 1}), T({B, 1024, 4}),
                       T({B, 256, 32}), T({B, 256, 1}), T({B, 256, 4}),
                       Type::boolean()}));
  out.emplace("nasrnn", pattern({T({B, S, 256}), T({B, 32})}));
  out.emplace("lstm", pattern({T({B, S, 128}), T({B, 32}), T({B, 32})}));
  out.emplace("seq2seq", pattern({T({B, S, 32}), T({B, 32})}));
  out.emplace("attention",
              pattern({T({B, S, 32}), T({B, S, 32}), T({B, S, 32})}));
  out.emplace("decode_step",
              pattern({T({B, 32}), T({B, C, 32}), T({B, C, 32}),
                       T({B, Dim::symbol("C", 1)})}));
  return out;
}

}  // namespace

const SymbolicPattern& workloadSymbolicPattern(const std::string& name) {
  static const std::map<std::string, SymbolicPattern> table =
      makeSymbolicPatterns();
  auto it = table.find(name);
  if (it == table.end()) TSSA_THROW("unknown workload '" << name << "'");
  return it->second;
}

bool matchesSymbolicPattern(const SymbolicPattern& pattern,
                            std::span<const runtime::RtValue> inputs) {
  if (inputs.size() != pattern.inputs.size()) return false;
  std::map<std::string, std::int64_t> binding;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const ir::Type& t = pattern.inputs[i];
    const runtime::RtValue& v = inputs[i];
    if (t.isTensor()) {
      if (!v.isTensor()) return false;
      const Tensor& x = v.tensor();
      if (t.dtype() && x.dtype() != *t.dtype()) return false;
      const auto& dims = t.dims();
      if (x.dim() != static_cast<std::int64_t>(dims.size())) return false;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        const std::int64_t extent = x.size(static_cast<std::int64_t>(d));
        if (!dims[d].symbolic()) {
          if (extent != dims[d].extent) return false;
          continue;
        }
        const std::int64_t bound = extent - dims[d].offset;
        if (bound < 1) return false;
        auto [it, fresh] = binding.emplace(dims[d].sym, bound);
        if (!fresh && it->second != bound) return false;
      }
    } else if (t.kind() == ir::TypeKind::Int) {
      if (!v.isScalar() || v.scalar().dtype() != DType::Int64) return false;
    } else if (t.kind() == ir::TypeKind::Bool) {
      if (!v.isScalar() || v.scalar().dtype() != DType::Bool) return false;
    } else {
      return false;
    }
  }
  return true;
}

const std::vector<std::string>& workloadNames() {
  static const std::vector<std::string> names = {
      "yolov3", "ssd", "yolact", "fcos",
      "nasrnn", "lstm", "seq2seq", "attention",
  };
  return names;
}

Workload buildWorkload(const std::string& name, const WorkloadConfig& config) {
  if (name == "yolov3") return buildYolov3(config);
  if (name == "ssd") return buildSsd(config);
  if (name == "yolact") return buildYolact(config);
  if (name == "fcos") return buildFcos(config);
  if (name == "nasrnn") return buildNasRnn(config);
  if (name == "lstm") return buildLstm(config);
  if (name == "seq2seq") return buildSeq2Seq(config);
  if (name == "attention") return buildAttention(config);
  if (name == "decode_step") return buildDecodeStep(config);
  TSSA_THROW("unknown workload '" << name << "'");
}

}  // namespace tssa::workloads
