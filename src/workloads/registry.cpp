#include "src/workloads/workload.h"

#include "src/support/error.h"

namespace tssa::workloads {

const std::vector<std::string>& workloadNames() {
  static const std::vector<std::string> names = {
      "yolov3", "ssd", "yolact", "fcos",
      "nasrnn", "lstm", "seq2seq", "attention",
  };
  return names;
}

Workload buildWorkload(const std::string& name, const WorkloadConfig& config) {
  if (name == "yolov3") return buildYolov3(config);
  if (name == "ssd") return buildSsd(config);
  if (name == "yolact") return buildYolact(config);
  if (name == "fcos") return buildFcos(config);
  if (name == "nasrnn") return buildNasRnn(config);
  if (name == "lstm") return buildLstm(config);
  if (name == "seq2seq") return buildSeq2Seq(config);
  if (name == "attention") return buildAttention(config);
  TSSA_THROW("unknown workload '" << name << "'");
}

}  // namespace tssa::workloads
