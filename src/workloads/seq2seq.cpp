// seq2seq decoder loop with a growing-context summary.
//
//   for t in range(T):
//       ctx = mean(enc[:, 0:t+1], dim=1)     # dynamic slice bound!
//       h   = tanh(h @ Wh + enc[:, t] + ctx)
//       out[:, t] = sigmoid(h)               # in-place column write
//
// The dynamic slice end (t+1) exercises data-dependent view operands; the
// carried dependence on h keeps the loop sequential.
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::Block;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kHidden = 32;
constexpr std::int64_t kVocab = 12288;
}

Workload buildSeq2Seq(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  const std::int64_t t = config.seqLen;
  Rng rng(config.seed + 6);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("seq2seq") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* enc = graph->addInput(inType(0), "enc");
  Value* h0 = graph->addInput(inType(1), "h0");

  Value* wh = bld.constTensor(rng.normal({kHidden, kHidden}, 0.0, 0.2));
  Value* wv = bld.constTensor(rng.normal({kHidden, kVocab}, 0.0, 0.2));
  Value* out;
  Value* trip;
  if (config.symbolicDims) {
    Value* rows = bld.sizeOf(enc, 0);
    Value* steps = bld.sizeOf(enc, 1);
    out = bld.zeros({-1, -1, kVocab}, {rows, steps});
    trip = steps;
  } else {
    out = bld.zeros({b, t, kVocab});
    trip = bld.constInt(t);
  }

  Node* loop = bld.makeLoop(trip, {h0});
  Block* body = loop->block(0);
  {
    IRBuilder ib(*graph);
    ib.setInsertionPointToEnd(body);
    Value* step = body->param(0);
    Value* h = body->param(1);

    Value* end = ib.scalarAdd(step, ib.constInt(1));
    Value* prefix = ib.slice(enc, 1, ib.constInt(0), end);  // [B, t+1, H]
    Value* ctx = ib.mean(prefix, 1);                        // [B, H]
    Value* et = ib.select(enc, 1, step);
    Value* hNew = ib.tanh(ib.add(ib.add(ib.matmul(h, wh), et), ctx));
    // Vocabulary projection: the decoder's memory-heavy per-step output,
    // post-processed by a repetition penalty + log-prob chain over [B, V].
    Value* probs = ib.softmax(ib.matmul(hNew, wv), 1);  // [B, V]
    Value* penalty = ib.constTensor(Tensor::full({}, Scalar(0.98)));
    Value* eps = ib.constTensor(Tensor::full({}, Scalar(1e-9)));
    Value* logp = ib.log(ib.add(ib.mul(probs, penalty), eps));
    ib.copy_(ib.select(out, 1, step), logp);
    body->addReturn(hNew);
  }
  graph->addOutput(out);
  graph->addOutput(loop->output(0));
  ir::verify(*graph);

  Workload w;
  w.name = "seq2seq";
  w.description = "seq2seq decoder: dynamic-length context slice + writes";
  w.inputs.emplace_back(rng.normal({b, t, kHidden}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, kHidden}, 0.0, 0.5));
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
