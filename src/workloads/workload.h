// The eight evaluation workloads of the paper (§5.1), expressed as
// imperative graph-level IR programs: the post-processing stages of four CV
// models (YOLOv3, SSD, YOLACT, FCOS), three NLP cells/loops (LSTM, NASRNN,
// seq2seq), and an attention module. Exactly like the paper's setting, these
// are the *imperative tensor program* parts — the NN backbones (handled by
// TensorRT in the paper) are out of scope for all compared systems alike.
//
// Sizes are scaled down from production models so the CPU-based reference
// interpreter stays fast; shapes and operator mixes (views + in-place
// mutation inside control flow) are preserved, which is what the compared
// optimizations act on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/ir/ir.h"
#include "src/runtime/rt_value.h"

namespace tssa::workloads {

struct WorkloadConfig {
  std::int64_t batch = 1;
  std::int64_t seqLen = 64;   ///< used by the NLP / attention workloads
  std::uint64_t seed = 42;
  /// Build the graph shape-polymorphically: input types carry symbolic dims
  /// (B, T, C — see workloadSymbolicPattern), factory/view extents along
  /// those axes are bound from the inputs at run time (aten::size + the
  /// builders' dynamic-size overloads), and loop trip counts are read off
  /// the inputs instead of baked as constants. `batch`/`seqLen` then only
  /// size the sample inputs; one compiled program serves every shape that
  /// matches the pattern.
  bool symbolicDims = false;
};

/// Hidden width of the decode_step workload (and therefore of every decode
/// session's token vectors): fixed, like attention's head dim, so the shape
/// axes that matter for specialization are batch and context length only.
inline constexpr std::int64_t kDecodeDim = 32;

/// How a workload's runtime interface maps onto its batch dimension. Every
/// builder fills this in; the serving engine (src/serve) uses it to coalesce
/// same-shape requests into one execution and to split the results back up.
struct BatchTraits {
  /// Per graph input: the dimension along which independent requests
  /// concatenate, or -1 for shared (non-batched) inputs — scalars such as
  /// yolact's `num_dets` or fcos's `normalize` flag, which must be equal
  /// across coalesced requests.
  std::vector<int> inputDims;
  /// Per graph output: the dimension along which per-request results are
  /// laid out, or -1 when an output cannot be attributed to requests.
  std::vector<int> outputDims;

  /// A workload can be micro-batched when every output can be de-interleaved
  /// and at least one input actually carries the batch.
  bool batchable() const {
    if (inputDims.empty() || outputDims.empty()) return false;
    bool anyBatchedInput = false;
    for (int d : inputDims) anyBatchedInput |= d >= 0;
    for (int d : outputDims)
      if (d < 0) return false;
    return anyBatchedInput;
  }
};

struct Workload {
  std::string name;
  std::string description;
  std::unique_ptr<ir::Graph> graph;
  std::vector<runtime::RtValue> inputs;
  BatchTraits batchTraits;
};

/// Compact dtype+shape signature of a runtime input tuple, e.g.
/// "f32[1,64,128];f32[1,32];i64" — the shape-specialization guard of the
/// serving engine's program cache (à la TorchDynamo shape guards).
std::string inputSignature(std::span<const runtime::RtValue> inputs);

/// Workload names in the order the paper's figures list them. The serving-
/// only "decode_step" workload (src/workloads/decode.cpp) is deliberately
/// not listed: it is not one of the paper's figure workloads and is driven
/// through the decode scheduler (src/serve/decode.h) instead.
const std::vector<std::string>& workloadNames();

/// Batch traits of a workload, available without building its graph (the
/// serving engine consults this on every submit). Builders fill
/// `Workload::batchTraits` from the same table. Throws on unknown names.
const BatchTraits& workloadBatchTraits(const std::string& name);

/// The symbolic input interface of a workload: one type per graph input —
/// tensor types carry symbolic dims (`f32[B,T,32]`), scalar inputs keep
/// their scalar type — plus the printed polymorphic signature in
/// inputSignature's format with symbols in place of concrete extents, e.g.
/// "f32[B,T,32];f32[B,32]". This is exactly what the builder stamps on the
/// graph inputs when `config.symbolicDims` is set (asserted by tests), and
/// what the serving engine canonicalizes request shapes against: every
/// input tuple that instantiates the pattern shares one cached program.
struct SymbolicPattern {
  std::vector<ir::Type> inputs;
  std::string signature;
};

/// Symbolic pattern of a workload, available without building its graph.
/// Throws on unknown names.
const SymbolicPattern& workloadSymbolicPattern(const std::string& name);

/// True when `inputs` concretely instantiate `pattern`: same arity, tensor
/// ranks/dtypes/static extents match exactly, scalar inputs have the right
/// scalar type, and every symbol binds consistently across its occurrences
/// (with each binding >= 1). This is the residual guard a polymorphic
/// program's cache entry carries in place of the exact-shape signature.
bool matchesSymbolicPattern(const SymbolicPattern& pattern,
                            std::span<const runtime::RtValue> inputs);

/// Builds a workload by name; throws on unknown names.
Workload buildWorkload(const std::string& name, const WorkloadConfig& config);

// Individual builders.
Workload buildYolov3(const WorkloadConfig& config);
Workload buildSsd(const WorkloadConfig& config);
Workload buildYolact(const WorkloadConfig& config);
Workload buildFcos(const WorkloadConfig& config);
Workload buildNasRnn(const WorkloadConfig& config);
Workload buildLstm(const WorkloadConfig& config);
Workload buildSeq2Seq(const WorkloadConfig& config);
Workload buildAttention(const WorkloadConfig& config);
/// One autoregressive decode step (serving-only; `seqLen` is the context
/// bucket). Inputs: x[b,d], kctx[b,ctx,d], vctx[b,ctx,d], mask[b,ctx+1];
/// outputs: next token state, and the step's K/V rows for the cache.
Workload buildDecodeStep(const WorkloadConfig& config);

}  // namespace tssa::workloads
