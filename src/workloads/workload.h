// The eight evaluation workloads of the paper (§5.1), expressed as
// imperative graph-level IR programs: the post-processing stages of four CV
// models (YOLOv3, SSD, YOLACT, FCOS), three NLP cells/loops (LSTM, NASRNN,
// seq2seq), and an attention module. Exactly like the paper's setting, these
// are the *imperative tensor program* parts — the NN backbones (handled by
// TensorRT in the paper) are out of scope for all compared systems alike.
//
// Sizes are scaled down from production models so the CPU-based reference
// interpreter stays fast; shapes and operator mixes (views + in-place
// mutation inside control flow) are preserved, which is what the compared
// optimizations act on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/ir.h"
#include "src/runtime/rt_value.h"

namespace tssa::workloads {

struct WorkloadConfig {
  std::int64_t batch = 1;
  std::int64_t seqLen = 64;   ///< used by the NLP / attention workloads
  std::uint64_t seed = 42;
};

struct Workload {
  std::string name;
  std::string description;
  std::unique_ptr<ir::Graph> graph;
  std::vector<runtime::RtValue> inputs;
};

/// Workload names in the order the paper's figures list them.
const std::vector<std::string>& workloadNames();

/// Builds a workload by name; throws on unknown names.
Workload buildWorkload(const std::string& name, const WorkloadConfig& config);

// Individual builders.
Workload buildYolov3(const WorkloadConfig& config);
Workload buildSsd(const WorkloadConfig& config);
Workload buildYolact(const WorkloadConfig& config);
Workload buildFcos(const WorkloadConfig& config);
Workload buildNasRnn(const WorkloadConfig& config);
Workload buildLstm(const WorkloadConfig& config);
Workload buildSeq2Seq(const WorkloadConfig& config);
Workload buildAttention(const WorkloadConfig& config);

}  // namespace tssa::workloads
