// One autoregressive decode step: the per-iteration body of a DecodeSession
// (src/serve/decode.h), expressed as its own shape-specialized workload.
//
// The iterative decode loop the paper's functionalized programs ultimately
// serve cannot be captured as a single graph — its shapes grow every step
// and the data dependence (next input = previous output) crosses the
// serving boundary. So the *step* is the compiled unit: the scheduler keeps
// the growing state outside the graph (in the paged KvCache) and re-enters
// a step program whose context length is padded up to a bucket, reusing one
// compiled program per (bucket, coalesced batch size) instead of one per
// context length.
//
//   k, v, q = x@Wk, x@Wv, x@Wq            # project the incoming token
//   K = cat(kctx, k); V = cat(vctx, v)    # history + this step
//   p = softmax(q·Kᵀ·scale + mask)        # mask kills the padded rows
//   out = tanh(softmax_attend(p, V)@Wo + x)
//
// Bitwise-batching contract: every op touches batch rows independently, and
// padded context rows cannot perturb real ones — their additive mask of
// -1e30 drives exp() to exactly 0.0 after max-subtraction, and adding
// 0.0-weighted V rows leaves the float accumulation bitwise unchanged. A
// session therefore produces identical bits whether its step shares a batch
// or runs solo, and whichever bucket its context is padded to
// (tests/decode_test.cpp asserts both).
//
// The projection weights are drawn from Rng(seed) *before* any shape-
// dependent input is generated, so every bucket specialization of the same
// seed computes with identical weights — a session's arithmetic does not
// change when its context crosses a bucket boundary.
#include <cmath>

#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

Workload buildDecodeStep(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  const std::int64_t ctx = config.seqLen;  // context bucket (history slots)
  const std::int64_t d = kDecodeDim;
  Rng rng(config.seed + 11);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  // Nothing below bakes b or ctx into the graph, so the symbolic build only
  // annotates input types ([B,d], [B,C,d], [B,C+1]): the step program is
  // structurally polymorphic already.
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("decode_step") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* x = graph->addInput(inType(0), "x");                           // [b,d]
  Value* kctx = graph->addInput(inType(1), "kctx");                 // [b,ctx,d]
  Value* vctx = graph->addInput(inType(2), "vctx");                 // [b,ctx,d]
  Value* mask = graph->addInput(inType(3), "mask");                 // [b,ctx+1]

  // Weights first, shapes only in terms of d: identical across buckets.
  Value* wq = bld.constTensor(rng.normal({d, d}, 0.0, 0.3));
  Value* wk = bld.constTensor(rng.normal({d, d}, 0.0, 0.3));
  Value* wv = bld.constTensor(rng.normal({d, d}, 0.0, 0.3));
  Value* wo = bld.constTensor(rng.normal({d, d}, 0.0, 0.3));
  Value* scale = bld.constTensor(
      Tensor::full({}, Scalar(1.0 / std::sqrt(static_cast<double>(d)))));

  Value* q = bld.matmul(x, wq);                                  // [b,d]
  Value* k = bld.matmul(x, wk);
  Value* v = bld.matmul(x, wv);
  Value* keys = bld.cat({kctx, bld.unsqueeze(k, 1)}, 1);         // [b,ctx+1,d]
  Value* values = bld.cat({vctx, bld.unsqueeze(v, 1)}, 1);
  Value* scores = bld.mul(
      bld.bmm(bld.unsqueeze(q, 1), bld.transpose(keys, 1, 2)), scale);
  scores = bld.add(scores, bld.unsqueeze(mask, 1));              // [b,1,ctx+1]
  Value* probs = bld.softmax(scores, 2);
  Value* attn = bld.squeeze(bld.bmm(probs, values), 1);          // [b,d]
  Value* out = bld.tanh(bld.add(bld.matmul(attn, wo), x));

  graph->addOutput(out);
  graph->addOutput(k);
  graph->addOutput(v);
  ir::verify(*graph);

  Workload w;
  w.name = "decode_step";
  w.description =
      "one autoregressive decode step over a bucketed, masked KV context";
  w.inputs.emplace_back(rng.normal({b, d}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, ctx, d}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, ctx, d}, 0.0, 0.5));
  w.inputs.emplace_back(Tensor::zeros({b, ctx + 1}));
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
