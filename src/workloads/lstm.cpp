// LSTM sequence loop.
//
// The input projections (x @ Wx + bias) are precomputed — standard practice
// that leaves the per-step cell as the imperative part:
//
//   for t in range(T):
//       gates = xw[:, t] + h @ Wh          # matmul + views of the input
//       i, f, g, o = gates.chunk(4, 1)     # slice views
//       c = f * c + i * g; h = o * tanh(c)
//       out[:, t] = h                      # in-place column write
//
// Sequential carried dependence on (h, c): vertical fusion applies, the
// horizontal pass must leave the loop alone.
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::Block;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kHidden = 32;
}

Workload buildLstm(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  const std::int64_t t = config.seqLen;
  Rng rng(config.seed + 4);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("lstm") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* xw = graph->addInput(inType(0), "xw");
  Value* h0 = graph->addInput(inType(1), "h0");
  Value* c0 = graph->addInput(inType(2), "c0");

  Value* wh = bld.constTensor(rng.normal({kHidden, 4 * kHidden}, 0.0, 0.2));
  Value* out;
  Value* trip;
  if (config.symbolicDims) {
    Value* rows = bld.sizeOf(xw, 0);
    Value* steps = bld.sizeOf(xw, 1);
    out = bld.zeros({-1, -1, kHidden}, {rows, steps});
    trip = steps;
  } else {
    out = bld.zeros({b, t, kHidden});
    trip = bld.constInt(t);
  }

  Node* loop = bld.makeLoop(trip, {h0, c0});
  Block* body = loop->block(0);
  {
    IRBuilder ib(*graph);
    ib.setInsertionPointToEnd(body);
    Value* step = body->param(0);
    Value* h = body->param(1);
    Value* c = body->param(2);

    Value* xt = ib.select(xw, 1, step);  // [B, 4H] view of the input
    Value* gates = ib.add(xt, ib.matmul(h, wh));
    auto gate = [&](std::int64_t k) {
      return ib.slice(gates, 1, ib.constInt(k * kHidden),
                      ib.constInt((k + 1) * kHidden));
    };
    Value* ig = ib.sigmoid(gate(0));
    Value* fg = ib.sigmoid(gate(1));
    Value* gg = ib.tanh(gate(2));
    Value* og = ib.sigmoid(gate(3));
    Value* cNew = ib.add(ib.mul(fg, c), ib.mul(ig, gg));
    Value* hNew = ib.mul(og, ib.tanh(cNew));
    ib.copy_(ib.select(out, 1, step), hNew);
    body->addReturn(hNew);
    body->addReturn(cNew);
  }
  graph->addOutput(out);
  graph->addOutput(loop->output(0));
  graph->addOutput(loop->output(1));
  ir::verify(*graph);

  Workload w;
  w.name = "lstm";
  w.description = "LSTM cell loop with gate slices and column writes";
  w.inputs.emplace_back(rng.normal({b, t, 4 * kHidden}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, kHidden}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, kHidden}, 0.0, 0.5));
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
