// SSD multi-box decoding (post-processing).
//
// Decodes location regressions against prior boxes, writing the corner
// coordinates into a preallocated buffer through slice views:
//
//   cxcy = loc[:, :, 0:2] * 0.1 * prior_wh + prior_cxcy
//   wh   = exp(loc[:, :, 2:4] * 0.2) * prior_wh
//   boxes[:, :, 0:2] = cxcy - wh / 2      # in-place slice writes
//   boxes[:, :, 2:4] = cxcy + wh / 2
//   boxes = clamp(boxes, 0, 1); scores = softmax(conf)
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"

namespace tssa::workloads {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

namespace {
constexpr std::int64_t kPriors = 6144;
constexpr std::int64_t kClasses = 21;
}  // namespace

Workload buildSsd(const WorkloadConfig& config) {
  const std::int64_t b = config.batch;
  Rng rng(config.seed + 1);

  auto graph = std::make_unique<ir::Graph>();
  IRBuilder bld(*graph);
  const SymbolicPattern* pat =
      config.symbolicDims ? &workloadSymbolicPattern("ssd") : nullptr;
  auto inType = [&](std::size_t i) {
    return pat ? pat->inputs[i] : Type::tensor(DType::Float32);
  };
  Value* loc = graph->addInput(inType(0), "loc");
  Value* conf = graph->addInput(inType(1), "conf");

  Value* priorCenters = bld.constTensor(rng.uniform({1, kPriors, 2}, 0.1, 0.9));
  Value* priorSizes = bld.constTensor(rng.uniform({1, kPriors, 2}, 0.05, 0.4));
  Value* varCenter = bld.constTensor(Tensor::full({}, Scalar(0.1)));
  Value* varSize = bld.constTensor(Tensor::full({}, Scalar(0.2)));
  Value* half = bld.constTensor(Tensor::full({}, Scalar(0.5)));

  Value* lxy = bld.slice(loc, 2, bld.constInt(0), bld.constInt(2));
  Value* lwh = bld.slice(loc, 2, bld.constInt(2), bld.constInt(4));
  Value* cxcy =
      bld.add(bld.mul(bld.mul(lxy, varCenter), priorSizes), priorCenters);
  Value* wh = bld.mul(bld.exp(bld.mul(lwh, varSize)), priorSizes);
  Value* halfWh = bld.mul(wh, half);

  Value* boxes = config.symbolicDims
                     ? bld.zeros({-1, kPriors, 4}, {bld.sizeOf(loc, 0)})
                     : bld.zeros({b, kPriors, 4});
  Value* bmin = bld.slice(boxes, 2, bld.constInt(0), bld.constInt(2));
  Value* bmax = bld.slice(boxes, 2, bld.constInt(2), bld.constInt(4));
  bld.copy_(bmin, bld.sub(cxcy, halfWh));
  bld.copy_(bmax, bld.add(cxcy, halfWh));

  Value* clamped = bld.clamp(boxes, Scalar(0.0), Scalar(1.0));
  // Temperature-scaled class distribution: the mul feeds the softmax, which
  // reduction-tail fusers (nvFuser-class) absorb and plain pointwise fusers
  // do not.
  Value* temp = bld.constTensor(Tensor::full({}, Scalar(0.5)));
  Value* scores = bld.softmax(bld.mul(conf, temp), 2);
  // Score calibration over the full [B, N, C] class tensor: log-space prior
  // bias + temperature, then re-exponentiation — the memory-intensive
  // elementwise chain that dominates at large batch.
  Value* eps = bld.constTensor(Tensor::full({}, Scalar(1e-9)));
  Value* classBias = bld.constTensor(rng.uniform({1, 1, kClasses}, -0.2, 0.2));
  Value* calibTemp = bld.constTensor(Tensor::full({}, Scalar(0.9)));
  Value* logp = bld.log(bld.add(scores, eps));
  Value* calibrated = bld.exp(bld.mul(bld.add(logp, classBias), calibTemp));
  // Threshold low-confidence entries and rank candidates (NMS front-end).
  Value* thresh = bld.constTensor(Tensor::full({}, Scalar(0.05)));
  Value* zero = bld.constTensor(Tensor::zeros({}));
  Value* kept = bld.where(bld.gt(calibrated, thresh), calibrated, zero);
  Value* best = bld.maxDim(kept, 2);           // [B, N]
  Value* order = bld.argsort(best, /*descending=*/true);
  graph->addOutput(clamped);
  graph->addOutput(kept);
  graph->addOutput(order);
  ir::verify(*graph);

  Workload w;
  w.name = "ssd";
  w.description = "SSD prior-box decoding with slice mutations";
  w.inputs.emplace_back(rng.normal({b, kPriors, 4}, 0.0, 0.5));
  w.inputs.emplace_back(rng.normal({b, kPriors, kClasses}, 0.0, 1.0));
  w.batchTraits = workloadBatchTraits(w.name);
  w.graph = std::move(graph);
  return w;
}

}  // namespace tssa::workloads
