// Paged per-session KV-cache allocator for autoregressive decode serving.
//
// A decode session appends one (K row, V row) pair per step and reads its
// whole history back every step; sessions are born and die continuously.
// A per-session contiguous buffer would fragment (every session has a
// different, growing length) and make bulk free expensive. Instead the cache
// is paged, vLLM-style: storage is carved into fixed-size pages of
// `pageTokens` token slots, each session owns a *page table* (an ordered list
// of page ids), a step appends into the session's last partial page or grabs
// a fresh page from the free list, and ending a session returns every page
// with one splice — O(pages), no per-token bookkeeping.
//
// Layered on the arena: backing slabs are allocated through a private
// tssa::Arena (the same pool allocator the memory planner uses, DESIGN.md
// §8), so slab storage is zeroed, size-classed, and returned to the pool on
// clear()/destruction rather than thrashing the heap when a cache is torn
// down and rebuilt. The arena is not thread-safe, so every touch happens
// under the cache's own mutex — unlike Arena, a KvCache is shared between
// the decode scheduler thread and whoever scrapes stats.
//
// Admission is reservation-based: a session reserves its worst-case page
// count (ceil(totalTokens / pageTokens)) *before* it is admitted, so a
// mid-generation append can never fail — KV exhaustion is a typed admission
// outcome (RejectReason::KvExhausted in src/serve), never a mid-flight
// crash. `maxPages` bounds the whole cache; reservation denials are counted
// as eviction pressure (`exhaustedReservations`).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/tensor/arena.h"
#include "src/tensor/storage.h"

namespace tssa {

struct KvCacheOptions {
  /// Token slots per page. Small pages waste less on short sessions; large
  /// pages mean fewer page-table entries. 16 tokens ≈ 4KiB at tokenFloats=64.
  std::int64_t pageTokens = 16;
  /// Floats per token slot: one K row plus one V row (2 × head dim).
  std::int64_t tokenFloats = 64;
  /// Hard capacity in pages across all sessions; 0 = unbounded. When a
  /// session's reservation would push past it, tryReserve fails and the
  /// caller sheds the session (kv_exhausted).
  std::int64_t maxPages = 0;
  /// Pages per backing slab (one arena allocation covers this many pages).
  std::int64_t slabPages = 64;
};

class KvCache {
 public:
  struct Stats {
    std::int64_t pagesInUse = 0;     ///< pages allocated to session tables
    std::int64_t pagesReserved = 0;  ///< worst-case pages promised to sessions
    std::int64_t pagesHighWater = 0; ///< max pagesInUse ever observed
    std::int64_t pageCapacity = 0;   ///< maxPages (0 = unbounded)
    std::int64_t pageAllocs = 0;     ///< pages handed to sessions (lifetime)
    std::int64_t pageFrees = 0;      ///< pages returned by ended sessions
    /// Eviction pressure: reservations denied because maxPages would be
    /// exceeded — each one is a session shed with kv_exhausted.
    std::int64_t exhaustedReservations = 0;
    std::int64_t appendedTokens = 0;
    std::int64_t activeSessions = 0;
    std::int64_t slabBytes = 0;      ///< backing storage held (all slabs)
  };

  explicit KvCache(KvCacheOptions options = {});

  /// Worst-case page count for a session of `totalTokens` appends.
  std::int64_t pagesNeededFor(std::int64_t totalTokens) const;

  /// Opens `session` by reserving its worst-case page count. Returns false
  /// (and counts an exhausted reservation) when the reservation would exceed
  /// maxPages — the session must be shed, nothing is allocated. Throws if
  /// the session already exists or totalTokens < 1.
  bool tryReserve(const std::string& session, std::int64_t totalTokens);

  /// Appends one token (K row + V row, each tokenFloats/2 floats) to the
  /// session, allocating a page on a page boundary. Never fails for a
  /// session within its reservation; overrunning the reservation throws.
  void append(const std::string& session, std::span<const float> kRow,
              std::span<const float> vRow);

  /// Tokens appended to `session` so far.
  std::int64_t tokens(const std::string& session) const;

  /// Copies the session's history into caller-owned contiguous buffers of
  /// `bucket` rows each (kOut/vOut hold bucket × tokenFloats/2 floats),
  /// zero-padding rows past the session's length — exactly the layout the
  /// bucketed decode_step workload consumes. Throws if bucket < tokens.
  void gather(const std::string& session, std::int64_t bucket, float* kOut,
              float* vOut) const;

  /// Ends the session: its pages go back to the free list in one splice and
  /// its reservation is released. Unknown sessions are ignored (a shed
  /// session may never have reserved).
  void release(const std::string& session);

  /// Releases every session and returns all slabs to the arena pool.
  void clear();

  Stats stats() const;
  const KvCacheOptions& options() const { return options_; }

 private:
  struct SessionState {
    std::vector<std::int32_t> pageTable;
    std::int64_t tokens = 0;
    std::int64_t reservedPages = 0;
  };

  /// Pointer to the first float of page `id` (mutex_ held).
  float* pageData(std::int32_t id);
  const float* pageData(std::int32_t id) const;
  /// Grabs a page from the free list, growing a new slab if needed
  /// (mutex_ held; capacity was checked at reservation time).
  std::int32_t allocPage();

  const KvCacheOptions options_;
  mutable std::mutex mutex_;
  Arena arena_;  ///< backs the slabs; touched only under mutex_
  std::vector<StoragePtr> slabs_;
  std::vector<std::int32_t> freePages_;
  std::int64_t pagesAllocated_ = 0;  ///< pages carved out of slabs so far
  std::unordered_map<std::string, SessionState> sessions_;
  Stats stats_;
};

}  // namespace tssa
