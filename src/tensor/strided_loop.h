// Typed strided element loops for the general (non-contiguous / broadcast /
// mixed-dtype) paths of elementwise ops and copies. The historical fallback
// re-derived every operand offset from the full coordinate and re-dispatched
// the dtype per element; these helpers dispatch once per call and walk the
// offsets incrementally (odometer with carry), which is what makes
// transposed-operand ops cheap (see bench/micro_ops.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "src/support/error.h"
#include "src/tensor/dtype.h"
#include "src/tensor/shape.h"
#include "src/tensor/storage.h"

namespace tssa::detail {

/// Strides of an operand aligned to a (possibly broadcast) result shape: one
/// stride per result dim, 0 where the operand broadcasts (size-1 dims and
/// missing leading dims). Mirrors broadcastOffset()'s trailing-dim alignment,
/// so walking these strides visits exactly the elements broadcastOffset would
/// have produced.
inline Strides alignedStrides(std::span<const std::int64_t> outShape,
                              const Shape& sizes, const Strides& strides) {
  Strides out(outShape.size(), 0);
  const std::size_t shift = outShape.size() - sizes.size();
  for (std::size_t d = 0; d < sizes.size(); ++d)
    out[shift + d] = sizes[d] == 1 ? 0 : strides[d];
  return out;
}

/// Row-major odometer over `shape` maintaining the element offset of K
/// operands incrementally: advancing dim d adds stride[d]; a carry out of
/// dim d subtracts stride[d] * (extent[d] - 1).
template <std::size_t K>
class StridedLoop {
 public:
  StridedLoop(std::span<const std::int64_t> shape,
              const std::array<const Strides*, K>& strides,
              const std::array<std::int64_t, K>& base)
      : shape_(shape.begin(), shape.end()),
        coord_(shape.size(), 0),
        offsets_(base) {
    for (std::size_t k = 0; k < K; ++k) strides_[k] = *strides[k];
  }

  std::int64_t offset(std::size_t k) const { return offsets_[k]; }

  void advance() {
    for (std::int64_t d = static_cast<std::int64_t>(shape_.size()) - 1; d >= 0;
         --d) {
      const auto du = static_cast<std::size_t>(d);
      if (++coord_[du] < shape_[du]) {
        for (std::size_t k = 0; k < K; ++k) offsets_[k] += strides_[k][du];
        return;
      }
      coord_[du] = 0;
      for (std::size_t k = 0; k < K; ++k)
        offsets_[k] -= strides_[k][du] * (shape_[du] - 1);
    }
  }

 private:
  Shape shape_;
  Shape coord_;
  std::array<Strides, K> strides_;
  std::array<std::int64_t, K> offsets_;
};

/// Element load/store through function pointers selected once per call.
/// Values travel as double with exactly the conversions the per-element
/// dispatch used (bool reads as 0/1, stores as static_cast<uint8_t>), so the
/// strided path is bitwise identical to the historical one.
using LoadFn = double (*)(const Storage&, std::int64_t);
using StoreFn = void (*)(Storage&, std::int64_t, double);

template <typename T>
inline double loadElem(const Storage& s, std::int64_t off) {
  return static_cast<double>(s.as<T>()[off]);
}
inline double loadBoolElem(const Storage& s, std::int64_t off) {
  return s.as<std::uint8_t>()[off] ? 1.0 : 0.0;
}

inline LoadFn loadFnFor(DType dtype) {
  switch (dtype) {
    case DType::Float32:
      return &loadElem<float>;
    case DType::Int64:
      return &loadElem<std::int64_t>;
    case DType::Bool:
      return &loadBoolElem;
  }
  TSSA_THROW("unknown dtype");
}

template <typename T>
inline void storeElem(Storage& s, std::int64_t off, double v) {
  s.as<T>()[off] = static_cast<T>(v);
}

inline StoreFn storeFnFor(DType dtype) {
  switch (dtype) {
    case DType::Float32:
      return &storeElem<float>;
    case DType::Int64:
      return &storeElem<std::int64_t>;
    case DType::Bool:
      return &storeElem<std::uint8_t>;
  }
  TSSA_THROW("unknown dtype");
}

}  // namespace tssa::detail
