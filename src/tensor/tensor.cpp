#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/tensor/arena.h"
#include "src/tensor/strided_loop.h"

namespace tssa {
namespace {

/// Dispatches `fn` with a type tag matching `dtype`.
template <typename Fn>
decltype(auto) dispatchDType(DType dtype, Fn&& fn) {
  switch (dtype) {
    case DType::Float32:
      return fn(float{});
    case DType::Int64:
      return fn(std::int64_t{});
    case DType::Bool:
      return fn(std::uint8_t{});
  }
  TSSA_THROW("unknown dtype");
}

}  // namespace

// ---- Factories --------------------------------------------------------------

Tensor Tensor::empty(Shape sizes, DType dtype) {
  const std::int64_t n = numelOf(sizes);
  TSSA_CHECK(n >= 0, "negative element count");
  // Inside a planned program run, intermediates come from the execution
  // context's arena (zeroed either way, so planner on/off is bitwise
  // identical); outside any Arena::Scope this is a plain heap allocation.
  Arena* arena = Arena::current();
  StoragePtr storage = arena != nullptr ? arena->allocate(n, dtype)
                                        : std::make_shared<Storage>(n, dtype);
  Strides strides = contiguousStrides(sizes);
  return Tensor(std::move(storage), 0, std::move(sizes), std::move(strides),
                dtype);
}

Tensor Tensor::zeros(Shape sizes, DType dtype) {
  Tensor t = empty(std::move(sizes), dtype);
  t.fill_(Scalar(0));
  return t;
}

Tensor Tensor::ones(Shape sizes, DType dtype) {
  Tensor t = empty(std::move(sizes), dtype);
  t.fill_(Scalar(1));
  return t;
}

Tensor Tensor::full(Shape sizes, Scalar value, DType dtype) {
  Tensor t = empty(std::move(sizes), dtype);
  t.fill_(value);
  return t;
}

Tensor Tensor::arange(std::int64_t end) { return arange(0, end, 1); }

Tensor Tensor::arange(std::int64_t start, std::int64_t end,
                      std::int64_t step) {
  TSSA_CHECK(step != 0, "arange step must be nonzero");
  std::int64_t n = 0;
  if (step > 0 && end > start) n = (end - start + step - 1) / step;
  if (step < 0 && end < start) n = (start - end + (-step) - 1) / (-step);
  Tensor t = empty({n}, DType::Int64);
  std::int64_t v = start;
  for (std::int64_t i = 0; i < n; ++i, v += step) t.data<std::int64_t>()[i] = v;
  return t;
}

Tensor Tensor::scalar(Scalar value, DType dtype) {
  Tensor t = empty({}, dtype);
  t.fill_(value);
  return t;
}

Tensor Tensor::fromData(std::span<const float> values, Shape sizes) {
  TSSA_CHECK(static_cast<std::int64_t>(values.size()) == numelOf(sizes),
             "value count " << values.size() << " does not match shape "
                            << bracketed(sizes));
  Tensor t = empty(std::move(sizes), DType::Float32);
  std::copy(values.begin(), values.end(), t.data<float>());
  return t;
}

Tensor Tensor::fromData(std::span<const std::int64_t> values, Shape sizes) {
  TSSA_CHECK(static_cast<std::int64_t>(values.size()) == numelOf(sizes),
             "value count does not match shape");
  Tensor t = empty(std::move(sizes), DType::Int64);
  std::copy(values.begin(), values.end(), t.data<std::int64_t>());
  return t;
}

Tensor Tensor::fromData(std::span<const bool> values, Shape sizes) {
  TSSA_CHECK(static_cast<std::int64_t>(values.size()) == numelOf(sizes),
             "value count does not match shape");
  Tensor t = empty(std::move(sizes), DType::Bool);
  std::transform(values.begin(), values.end(), t.data<std::uint8_t>(),
                 [](bool b) { return static_cast<std::uint8_t>(b); });
  return t;
}

Tensor Tensor::fromData(std::initializer_list<float> values, Shape sizes) {
  return fromData(std::span<const float>(values.begin(), values.size()),
                  std::move(sizes));
}

// ---- Element access ----------------------------------------------------------

std::int64_t Tensor::elementOffset(std::span<const std::int64_t> index) const {
  TSSA_CHECK(static_cast<std::int64_t>(index.size()) == dim(),
             "coordinate rank " << index.size() << " != tensor rank " << dim());
  return offset_ + offsetOf(index, strides_);
}

double Tensor::scalarAt(std::span<const std::int64_t> index) const {
  const std::int64_t off = elementOffset(index);
  return dispatchDType(dtype_, [&](auto tag) {
    using T = decltype(tag);
    return static_cast<double>(storage_->as<T>()[off]);
  });
}

void Tensor::setScalarAt(std::span<const std::int64_t> index, double value) {
  const std::int64_t off = elementOffset(index);
  dispatchDType(dtype_, [&](auto tag) {
    using T = decltype(tag);
    storage_->as<T>()[off] = static_cast<T>(value);
  });
}

double Tensor::scalarAtLinear(std::int64_t linear) const {
  if (isContiguous()) {
    return dispatchDType(dtype_, [&](auto tag) {
      using T = decltype(tag);
      return static_cast<double>(storage_->as<T>()[offset_ + linear]);
    });
  }
  // Decompose `linear` into a coordinate of this view.
  Shape index(sizes_.size());
  std::int64_t rem = linear;
  for (std::int64_t d = dim() - 1; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    index[du] = rem % sizes_[du];
    rem /= sizes_[du];
  }
  return scalarAt(index);
}

void Tensor::setScalarAtLinear(std::int64_t linear, double value) {
  if (isContiguous()) {
    dispatchDType(dtype_, [&](auto tag) {
      using T = decltype(tag);
      storage_->as<T>()[offset_ + linear] = static_cast<T>(value);
    });
    return;
  }
  Shape index(sizes_.size());
  std::int64_t rem = linear;
  for (std::int64_t d = dim() - 1; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    index[du] = rem % sizes_[du];
    rem /= sizes_[du];
  }
  setScalarAt(index, value);
}

Scalar Tensor::item() const {
  TSSA_CHECK(numel() == 1, "item() requires exactly one element, have "
                               << numel());
  const double v = scalarAtLinear(0);
  switch (dtype_) {
    case DType::Float32:
      return Scalar(v);
    case DType::Int64:
      return Scalar(static_cast<std::int64_t>(v));
    case DType::Bool:
      return Scalar(v != 0.0);
  }
  TSSA_THROW("unknown dtype");
}

// ---- Views -------------------------------------------------------------------

Tensor Tensor::select(std::int64_t dim, std::int64_t index) const {
  const std::int64_t d = normalizeDim(dim, this->dim());
  const std::int64_t i = normalizeIndex(index, size(d));
  Shape sizes = sizes_;
  Strides strides = strides_;
  const std::int64_t off =
      offset_ + i * strides[static_cast<std::size_t>(d)];
  sizes.erase(sizes.begin() + d);
  strides.erase(strides.begin() + d);
  return Tensor(storage_, off, std::move(sizes), std::move(strides), dtype_);
}

Tensor Tensor::slice(std::int64_t dim, std::int64_t start, std::int64_t end,
                     std::int64_t step) const {
  const std::int64_t d = normalizeDim(dim, this->dim());
  TSSA_CHECK(step > 0, "slice step must be positive");
  normalizeSliceBounds(size(d), start, end);
  Shape sizes = sizes_;
  Strides strides = strides_;
  const auto du = static_cast<std::size_t>(d);
  const std::int64_t off = offset_ + start * strides[du];
  sizes[du] = (end - start + step - 1) / step;
  strides[du] *= step;
  return Tensor(storage_, off, std::move(sizes), std::move(strides), dtype_);
}

Tensor Tensor::narrow(std::int64_t dim, std::int64_t start,
                      std::int64_t length) const {
  return slice(dim, start, start + length, 1);
}

Tensor Tensor::permute(std::span<const std::int64_t> dims) const {
  TSSA_CHECK(static_cast<std::int64_t>(dims.size()) == dim(),
             "permute needs one entry per dimension");
  Shape sizes(dims.size());
  Strides strides(dims.size());
  std::vector<bool> seen(dims.size(), false);
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const std::int64_t d = normalizeDim(dims[i], dim());
    TSSA_CHECK(!seen[static_cast<std::size_t>(d)],
               "duplicate dimension in permute");
    seen[static_cast<std::size_t>(d)] = true;
    sizes[i] = sizes_[static_cast<std::size_t>(d)];
    strides[i] = strides_[static_cast<std::size_t>(d)];
  }
  return Tensor(storage_, offset_, std::move(sizes), std::move(strides),
                dtype_);
}

Tensor Tensor::permute(std::initializer_list<std::int64_t> dims) const {
  return permute(std::span<const std::int64_t>(dims.begin(), dims.size()));
}

Tensor Tensor::transpose(std::int64_t d0, std::int64_t d1) const {
  Shape perm(static_cast<std::size_t>(dim()));
  for (std::size_t i = 0; i < perm.size(); ++i)
    perm[i] = static_cast<std::int64_t>(i);
  std::swap(perm[static_cast<std::size_t>(normalizeDim(d0, dim()))],
            perm[static_cast<std::size_t>(normalizeDim(d1, dim()))]);
  return permute(perm);
}

Tensor Tensor::squeeze(std::int64_t dim) const {
  const std::int64_t d = normalizeDim(dim, this->dim());
  TSSA_CHECK(size(d) == 1, "squeeze of non-unit dimension " << d);
  Shape sizes = sizes_;
  Strides strides = strides_;
  sizes.erase(sizes.begin() + d);
  strides.erase(strides.begin() + d);
  return Tensor(storage_, offset_, std::move(sizes), std::move(strides),
                dtype_);
}

Tensor Tensor::unsqueeze(std::int64_t dim) const {
  const std::int64_t rank = this->dim();
  const std::int64_t d = dim < 0 ? dim + rank + 1 : dim;
  TSSA_CHECK(d >= 0 && d <= rank, "unsqueeze dim out of range");
  Shape sizes = sizes_;
  Strides strides = strides_;
  // Stride value for an extent-1 dim never matters; reuse the next stride so
  // the result remains contiguous when the input is.
  const std::int64_t stride =
      d < rank ? strides[static_cast<std::size_t>(d)] *
                     sizes[static_cast<std::size_t>(d)]
               : 1;
  sizes.insert(sizes.begin() + d, 1);
  strides.insert(strides.begin() + d, stride);
  return Tensor(storage_, offset_, std::move(sizes), std::move(strides),
                dtype_);
}

Tensor Tensor::expand(std::span<const std::int64_t> sizes) const {
  TSSA_CHECK(broadcastableTo(sizes_, sizes),
             "cannot expand " << bracketed(sizes_) << " to "
                              << bracketed(sizes));
  Shape outSizes(sizes.begin(), sizes.end());
  Strides outStrides(sizes.size(), 0);
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    const std::size_t srcDim = sizes_.size() - 1 - i;
    const std::size_t dstDim = sizes.size() - 1 - i;
    outStrides[dstDim] = sizes_[srcDim] == 1 ? 0 : strides_[srcDim];
  }
  return Tensor(storage_, offset_, std::move(outSizes), std::move(outStrides),
                dtype_);
}

Tensor Tensor::expand(std::initializer_list<std::int64_t> sizes) const {
  return expand(std::span<const std::int64_t>(sizes.begin(), sizes.size()));
}

Tensor Tensor::view(Shape sizes) const {
  // Support -1 inference like PyTorch.
  std::int64_t inferDim = -1;
  std::int64_t known = 1;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == -1) {
      TSSA_CHECK(inferDim == -1, "at most one -1 dimension in view");
      inferDim = static_cast<std::int64_t>(i);
    } else {
      known *= sizes[i];
    }
  }
  if (inferDim >= 0) {
    TSSA_CHECK(known != 0 && numel() % known == 0,
               "cannot infer view dimension");
    sizes[static_cast<std::size_t>(inferDim)] = numel() / known;
  }
  TSSA_CHECK(numelOf(sizes) == numel(),
             "view shape " << bracketed(sizes) << " has wrong element count");
  TSSA_CHECK(isContiguous(), "view() of non-contiguous tensor; use reshape()");
  Strides strides = contiguousStrides(sizes);
  return Tensor(storage_, offset_, std::move(sizes), std::move(strides),
                dtype_);
}

Tensor Tensor::reshape(Shape sizes) const {
  if (isContiguous()) return view(std::move(sizes));
  return contiguous().view(std::move(sizes));
}

Tensor Tensor::flatten(std::int64_t startDim, std::int64_t endDim) const {
  const std::int64_t s = normalizeDim(startDim, dim());
  const std::int64_t e = normalizeDim(endDim, dim());
  TSSA_CHECK(s <= e, "flatten start after end");
  Shape sizes;
  for (std::int64_t d = 0; d < s; ++d) sizes.push_back(size(d));
  std::int64_t merged = 1;
  for (std::int64_t d = s; d <= e; ++d) merged *= size(d);
  sizes.push_back(merged);
  for (std::int64_t d = e + 1; d < dim(); ++d) sizes.push_back(size(d));
  return reshape(std::move(sizes));
}

// ---- Copies ------------------------------------------------------------------

Tensor Tensor::clone() const {
  Tensor out = empty(sizes_, dtype_);
  out.copy_(*this);
  return out;
}

Tensor Tensor::contiguous() const {
  if (isContiguous()) return *this;
  return clone();
}

Tensor Tensor::to(DType dtype) const {
  Tensor out = empty(sizes_, dtype);
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i)
    out.setScalarAtLinear(i, scalarAtLinear(i));
  return out;
}

// ---- Mutation ------------------------------------------------------------------

void Tensor::copy_(const Tensor& src) {
  TSSA_CHECK(defined() && src.defined(), "copy_ on undefined tensor");
  TSSA_CHECK(broadcastableTo(src.sizes_, sizes_),
             "copy_ source shape " << bracketed(src.sizes_)
                                   << " not broadcastable to "
                                   << bracketed(sizes_));
  if (numel() == 0) return;  // extent-0: raw() may be null, memmove(null) is UB
  // Fast path: same dtype, both contiguous, same shape, no overlap concern
  // (bitwise copy is fine even for self-copy).
  if (src.dtype_ == dtype_ && isContiguous() && src.isContiguous() &&
      src.sizes_ == sizes_) {
    const std::size_t bytes =
        static_cast<std::size_t>(numel()) * dtypeSize(dtype_);
    std::memmove(storage_->raw() + static_cast<std::size_t>(offset_) *
                                       dtypeSize(dtype_),
                 src.storage_->raw() + static_cast<std::size_t>(src.offset_) *
                                           dtypeSize(dtype_),
                 bytes);
    return;
  }
  // General path. If source and destination may overlap in storage, snapshot
  // the source first (PyTorch semantics for overlapping copy_ are undefined;
  // we pick the snapshot semantics so programs are deterministic).
  Tensor source = src;
  if (sharesStorageWith(src)) {
    Tensor snapshot = Tensor::empty(src.sizes_, src.dtype_);
    const std::int64_t n = src.numel();
    for (std::int64_t i = 0; i < n; ++i)
      snapshot.setScalarAtLinear(i, src.scalarAtLinear(i));
    source = snapshot;
  }
  // Strided walk: dtype pair dispatched once, destination and (broadcast-
  // aligned) source offsets updated incrementally per element.
  const std::int64_t n = numel();
  if (n == 0) return;
  const Strides srcStrides =
      detail::alignedStrides(sizes_, source.sizes_, source.strides_);
  detail::StridedLoop<2> loop(sizes_, {&strides_, &srcStrides},
                              {offset_, source.offset_});
  if (dtype_ == DType::Float32 && source.dtype_ == DType::Float32) {
    const float* ps = source.storage_->as<float>();
    float* pd = storage_->as<float>();
    for (std::int64_t i = 0; i < n; ++i, loop.advance())
      pd[loop.offset(0)] = ps[loop.offset(1)];
    return;
  }
  const detail::LoadFn load = detail::loadFnFor(source.dtype_);
  const detail::StoreFn store = detail::storeFnFor(dtype_);
  const Storage& ss = *source.storage_;
  Storage& ds = *storage_;
  for (std::int64_t i = 0; i < n; ++i, loop.advance())
    store(ds, loop.offset(0), load(ss, loop.offset(1)));
}

void Tensor::fill_(Scalar value) {
  TSSA_CHECK(defined(), "fill_ on undefined tensor");
  const double v = value.toDouble();
  if (isContiguous()) {
    const std::int64_t n = numel();
    dispatchDType(dtype_, [&](auto tag) {
      using T = decltype(tag);
      T* p = storage_->as<T>() + offset_;
      std::fill(p, p + n, static_cast<T>(v));
    });
    return;
  }
  for (IndexIterator it(sizes_); it.valid(); it.next())
    setScalarAt(it.index(), v);
}

// ---- Printing / comparison ------------------------------------------------------

std::string Tensor::toString(std::int64_t maxElems) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor(" << dtypeName(dtype_) << bracketed(sizes_) << ", [";
  const std::int64_t n = std::min(numel(), maxElems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << scalarAtLinear(i);
  }
  if (numel() > maxElems) os << ", ...";
  os << "])";
  return os.str();
}

bool allClose(const Tensor& a, const Tensor& b, double tolerance) {
  if (!a.defined() || !b.defined()) return false;
  if (a.dtype() != b.dtype() || a.sizes() != b.sizes()) return false;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double va = a.scalarAtLinear(i);
    const double vb = b.scalarAtLinear(i);
    if (a.dtype() == DType::Float32) {
      if (std::isnan(va) && std::isnan(vb)) continue;
      if (std::abs(va - vb) > tolerance + tolerance * std::abs(vb))
        return false;
    } else if (va != vb) {
      return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  return os << t.toString();
}

}  // namespace tssa
