#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/tensor/strided_loop.h"

namespace tssa::ops {
namespace {

/// Generic broadcasting elementwise binary op evaluated in double precision,
/// with a fast path for same-shape contiguous Float32 operands.
template <typename Fn>
Tensor binaryOp(const Tensor& a, const Tensor& b, DType outDType, Fn&& fn) {
  Shape outShape = broadcastShapes(a.sizes(), b.sizes());
  Tensor out = Tensor::empty(outShape, outDType);
  if (a.dtype() == DType::Float32 && b.dtype() == DType::Float32 &&
      outDType == DType::Float32 && a.isContiguous() && b.isContiguous() &&
      a.sizes() == outShape && b.sizes() == outShape) {
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* po = out.data<float>();
    const std::int64_t n = out.numel();
    for (std::int64_t i = 0; i < n; ++i)
      po[i] = static_cast<float>(fn(pa[i], pb[i]));
    return out;
  }
  // General path: dtypes dispatched once per call, operand offsets walked
  // incrementally with broadcast-aligned strides (transposed and broadcast
  // layouts included). `out` is fresh and contiguous, so its element offset
  // is simply the loop counter.
  const std::int64_t n = out.numel();
  if (n == 0) return out;
  const Strides sa = detail::alignedStrides(outShape, a.sizes(), a.strides());
  const Strides sb = detail::alignedStrides(outShape, b.sizes(), b.strides());
  detail::StridedLoop<2> loop(outShape, {&sa, &sb},
                              {a.storageOffset(), b.storageOffset()});
  if (a.dtype() == DType::Float32 && b.dtype() == DType::Float32 &&
      outDType == DType::Float32) {
    const float* pa = a.storage()->as<float>();
    const float* pb = b.storage()->as<float>();
    float* po = out.data<float>();
    for (std::int64_t i = 0; i < n; ++i, loop.advance())
      po[i] = static_cast<float>(fn(pa[loop.offset(0)], pb[loop.offset(1)]));
    return out;
  }
  const detail::LoadFn la = detail::loadFnFor(a.dtype());
  const detail::LoadFn lb = detail::loadFnFor(b.dtype());
  const detail::StoreFn store = detail::storeFnFor(outDType);
  const Storage& stA = *a.storage();
  const Storage& stB = *b.storage();
  Storage& stOut = *out.storage();
  for (std::int64_t i = 0; i < n; ++i, loop.advance())
    store(stOut, i, fn(la(stA, loop.offset(0)), lb(stB, loop.offset(1))));
  return out;
}

template <typename Fn>
Tensor arith(const Tensor& a, const Tensor& b, Fn&& fn) {
  return binaryOp(a, b, promoteTypes(a.dtype(), b.dtype()),
                  std::forward<Fn>(fn));
}

template <typename Fn>
Tensor compare(const Tensor& a, const Tensor& b, Fn&& fn) {
  return binaryOp(a, b, DType::Bool,
                  [&](double x, double y) { return fn(x, y) ? 1.0 : 0.0; });
}

/// Generic elementwise unary op with Float32 fast path.
template <typename Fn>
Tensor unaryOp(const Tensor& a, DType outDType, Fn&& fn) {
  Tensor out = Tensor::empty(a.sizes(), outDType);
  if (a.dtype() == DType::Float32 && outDType == DType::Float32 &&
      a.isContiguous()) {
    const float* pa = a.data<float>();
    float* po = out.data<float>();
    const std::int64_t n = out.numel();
    for (std::int64_t i = 0; i < n; ++i)
      po[i] = static_cast<float>(fn(pa[i]));
    return out;
  }
  const std::int64_t n = out.numel();
  if (n == 0) return out;
  const Strides sa = detail::alignedStrides(a.sizes(), a.sizes(), a.strides());
  detail::StridedLoop<1> loop(a.sizes(), {&sa}, {a.storageOffset()});
  const detail::LoadFn load = detail::loadFnFor(a.dtype());
  const detail::StoreFn store = detail::storeFnFor(outDType);
  const Storage& stA = *a.storage();
  Storage& stOut = *out.storage();
  for (std::int64_t i = 0; i < n; ++i, loop.advance())
    store(stOut, i, fn(load(stA, loop.offset(0))));
  return out;
}

Tensor scalarTensor(Scalar s, DType like) {
  return Tensor::scalar(s, isFloatingPoint(like) ? DType::Float32 : s.dtype());
}

/// Casts a reduction accumulator through the output dtype after every step.
/// This matches the historical behaviour of accumulating directly in the
/// output buffer (Float32 sums round per step, Int64 truncates per step), so
/// the rewrite below stays bitwise identical for finite inputs — but the
/// cast is only ever applied to values that are representable: max/min seed
/// from the first element instead of casting ±inf into Int64/Bool, which is
/// undefined behaviour.
double roundToDType(DType dtype, double v) {
  switch (dtype) {
    case DType::Float32:
      return static_cast<double>(static_cast<float>(v));
    case DType::Int64:
      return static_cast<double>(static_cast<std::int64_t>(v));
    case DType::Bool:
      return v != 0.0 ? 1.0 : 0.0;
  }
  TSSA_THROW("unknown dtype");
}

/// Shared driver for dim reductions: reduces `dim` of `a` with `fn`. The
/// accumulator starts at `init`, or — when `seedFromFirst` is set — at the
/// first element along the reduced dim (for reductions like max/min that
/// have no dtype-safe identity). Each accumulated value is post-processed
/// with `finish`.
template <typename Fn, typename Finish>
Tensor reduceDim(const Tensor& a, std::int64_t dim, bool keepDim,
                 DType outDType, bool seedFromFirst, double init, Fn&& fn,
                 Finish&& finish) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  const auto du = static_cast<std::size_t>(d);
  const std::int64_t extent = a.size(d);
  TSSA_CHECK(!seedFromFirst || extent > 0,
             "reduction over an empty dimension has no identity");
  Shape outShape = a.sizes();
  outShape[du] = 1;
  Tensor out = Tensor::empty(outShape, outDType);
  Shape idx;
  for (IndexIterator it(outShape); it.valid(); it.next()) {
    idx.assign(it.index().begin(), it.index().end());
    double acc = init;
    std::int64_t j = 0;
    if (seedFromFirst) {
      idx[du] = 0;
      acc = roundToDType(outDType, a.scalarAt(idx));
      j = 1;
    }
    for (; j < extent; ++j) {
      idx[du] = j;
      acc = roundToDType(outDType, fn(acc, a.scalarAt(idx)));
    }
    out.setScalarAt(it.index(), finish(acc));
  }
  if (!keepDim) {
    return out.squeeze(d);
  }
  return out;
}

}  // namespace

// ---- Binary -------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binaryOp(a, b, DType::Float32,
                  [](double x, double y) { return x / y; });
}
Tensor pow(const Tensor& a, const Tensor& b) {
  return binaryOp(a, b, DType::Float32,
                  [](double x, double y) { return std::pow(x, y); });
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return std::min(x, y); });
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return std::max(x, y); });
}

Tensor add(const Tensor& a, Scalar b) {
  return add(a, scalarTensor(b, a.dtype()));
}
Tensor sub(const Tensor& a, Scalar b) {
  return sub(a, scalarTensor(b, a.dtype()));
}
Tensor mul(const Tensor& a, Scalar b) {
  return mul(a, scalarTensor(b, a.dtype()));
}
Tensor div(const Tensor& a, Scalar b) {
  return div(a, scalarTensor(b, a.dtype()));
}

// ---- Comparisons -----------------------------------------------------------------

Tensor eq(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x == y; });
}
Tensor ne(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x != y; });
}
Tensor lt(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x < y; });
}
Tensor le(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x <= y; });
}
Tensor gt(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x > y; });
}
Tensor ge(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x >= y; });
}
Tensor logicalAnd(const Tensor& a, const Tensor& b) {
  return compare(a, b,
                 [](double x, double y) { return x != 0.0 && y != 0.0; });
}
Tensor logicalOr(const Tensor& a, const Tensor& b) {
  return compare(a, b,
                 [](double x, double y) { return x != 0.0 || y != 0.0; });
}
Tensor logicalNot(const Tensor& a) {
  return unaryOp(a, DType::Bool,
                 [](double x) { return x == 0.0 ? 1.0 : 0.0; });
}

// ---- Unary ------------------------------------------------------------------------

Tensor neg(const Tensor& a) {
  return unaryOp(a, a.dtype(), [](double x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::sqrt(x); });
}
Tensor abs(const Tensor& a) {
  return unaryOp(a, a.dtype(), [](double x) { return std::abs(x); });
}
Tensor sigmoid(const Tensor& a) {
  return unaryOp(a, DType::Float32,
                 [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor tanh(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::tanh(x); });
}
Tensor relu(const Tensor& a) {
  return unaryOp(a, a.dtype(), [](double x) { return x > 0 ? x : 0.0; });
}
Tensor clamp(const Tensor& a, Scalar lo, Scalar hi) {
  const double l = lo.toDouble();
  const double h = hi.toDouble();
  return unaryOp(a, a.dtype(),
                 [=](double x) { return std::clamp(x, l, h); });
}

// ---- Selection -----------------------------------------------------------------------

Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  TSSA_CHECK(cond.dtype() == DType::Bool, "where condition must be Bool");
  Shape shape = broadcastShapes(cond.sizes(), a.sizes());
  shape = broadcastShapes(shape, b.sizes());
  Tensor out = Tensor::empty(shape, promoteTypes(a.dtype(), b.dtype()));
  // One strided walk over (cond, a, b); dtypes dispatched once per call.
  const std::int64_t n = out.numel();
  if (n == 0) return out;
  const Strides sc =
      detail::alignedStrides(shape, cond.sizes(), cond.strides());
  const Strides sa = detail::alignedStrides(shape, a.sizes(), a.strides());
  const Strides sb = detail::alignedStrides(shape, b.sizes(), b.strides());
  detail::StridedLoop<3> loop(
      shape, {&sc, &sa, &sb},
      {cond.storageOffset(), a.storageOffset(), b.storageOffset()});
  const std::uint8_t* pc = cond.storage()->as<std::uint8_t>();
  if (a.dtype() == DType::Float32 && b.dtype() == DType::Float32) {
    const float* pa = a.storage()->as<float>();
    const float* pb = b.storage()->as<float>();
    float* po = out.data<float>();
    for (std::int64_t i = 0; i < n; ++i, loop.advance())
      po[i] = pc[loop.offset(0)] != 0 ? pa[loop.offset(1)]
                                      : pb[loop.offset(2)];
    return out;
  }
  const detail::LoadFn la = detail::loadFnFor(a.dtype());
  const detail::LoadFn lb = detail::loadFnFor(b.dtype());
  const detail::StoreFn store = detail::storeFnFor(out.dtype());
  const Storage& stA = *a.storage();
  const Storage& stB = *b.storage();
  Storage& stOut = *out.storage();
  for (std::int64_t i = 0; i < n; ++i, loop.advance())
    store(stOut, i,
          pc[loop.offset(0)] != 0 ? la(stA, loop.offset(1))
                                  : lb(stB, loop.offset(2)));
  return out;
}

Tensor maskedFill(const Tensor& a, const Tensor& mask, Scalar value) {
  return where(mask, Tensor::full(Shape{}, value,
                                  isFloatingPoint(a.dtype()) ? DType::Float32
                                                             : a.dtype()),
               a);
}

// ---- Reductions ------------------------------------------------------------------------

Tensor sum(const Tensor& a) {
  double acc = 0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += a.scalarAtLinear(i);
  const DType dt = a.dtype() == DType::Bool ? DType::Int64 : a.dtype();
  return Tensor::scalar(Scalar(acc), dt);
}

Tensor sum(const Tensor& a, std::int64_t dim, bool keepDim) {
  const DType dt = a.dtype() == DType::Bool ? DType::Int64 : a.dtype();
  return reduceDim(
      a, dim, keepDim, dt, /*seedFromFirst=*/false, 0.0,
      [](double acc, double v) { return acc + v; },
      [](double v) { return v; });
}

Tensor mean(const Tensor& a, std::int64_t dim, bool keepDim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  const double count = static_cast<double>(a.size(d));
  return reduceDim(
      a, dim, keepDim, DType::Float32, /*seedFromFirst=*/false, 0.0,
      [](double acc, double v) { return acc + v; },
      [=](double v) { return v / count; });
}

// max/min seed the accumulator from the first element along the reduced dim
// rather than a ±inf sentinel: casting ±inf into an Int64/Bool output is
// undefined behaviour, and an all--inf Float32 row must reduce to -inf, not
// to the sentinel. NaN propagates like PyTorch: any NaN in the row wins.

Tensor maxReduce(const Tensor& a, std::int64_t dim, bool keepDim) {
  return reduceDim(
      a, dim, keepDim, a.dtype(), /*seedFromFirst=*/true, 0.0,
      [](double acc, double v) {
        return (std::isnan(v) || v > acc) ? v : acc;
      },
      [](double v) { return v; });
}

Tensor minReduce(const Tensor& a, std::int64_t dim, bool keepDim) {
  return reduceDim(
      a, dim, keepDim, a.dtype(), /*seedFromFirst=*/true, 0.0,
      [](double acc, double v) {
        return (std::isnan(v) || v < acc) ? v : acc;
      },
      [](double v) { return v; });
}

Tensor argmax(const Tensor& a, std::int64_t dim, bool keepDim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  const auto du = static_cast<std::size_t>(d);
  const std::int64_t extent = a.size(d);
  TSSA_CHECK(extent > 0, "argmax over an empty dimension");
  Shape outShape = a.sizes();
  outShape[du] = 1;
  Tensor out = Tensor::empty(outShape, DType::Int64);
  Shape idx;
  for (IndexIterator it(outShape); it.valid(); it.next()) {
    idx.assign(it.index().begin(), it.index().end());
    idx[du] = 0;
    double best = a.scalarAt(idx);
    std::int64_t bestIndex = 0;
    for (std::int64_t j = 1; j < extent; ++j) {
      idx[du] = j;
      const double v = a.scalarAt(idx);
      // PyTorch semantics: NaN compares greater than everything, the first
      // NaN wins; among ordinary values ties keep the earlier index.
      if ((std::isnan(v) && !std::isnan(best)) || v > best) {
        best = v;
        bestIndex = j;
      }
    }
    out.setScalarAt(it.index(), static_cast<double>(bestIndex));
  }
  return keepDim ? out : out.squeeze(d);
}

Tensor softmax(const Tensor& a, std::int64_t dim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  Tensor m = maxReduce(a, d, /*keepDim=*/true);
  Tensor e = exp(sub(a, m));
  Tensor s = sum(e, d, /*keepDim=*/true);
  return div(e, s);
}

// ---- Linear algebra -----------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.dim() == 3 && b.dim() == 3) return bmm(a, b);
  TSSA_CHECK(a.dim() == 2 && b.dim() == 2,
             "matmul expects 2-D operands, got " << a.dim() << " and "
                                                 << b.dim());
  TSSA_CHECK(a.size(1) == b.size(0), "matmul inner dimensions disagree: "
                                         << a.size(1) << " vs " << b.size(0));
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor ac = a.to(DType::Float32).contiguous();
  Tensor bc = b.to(DType::Float32).contiguous();
  Tensor out = Tensor::zeros({m, n}, DType::Float32);
  const float* pa = ac.data<float>();
  const float* pb = bc.data<float>();
  float* po = out.data<float>();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float va = pa[i * k + kk];
      const float* rowB = pb + kk * n;
      float* rowO = po + i * n;
      for (std::int64_t j = 0; j < n; ++j) rowO[j] += va * rowB[j];
    }
  }
  return out;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  TSSA_CHECK(a.dim() == 3 && b.dim() == 3, "bmm expects 3-D operands");
  TSSA_CHECK(a.size(0) == b.size(0), "bmm batch dims disagree");
  const std::int64_t batch = a.size(0);
  std::vector<Tensor> outs;
  outs.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i)
    outs.push_back(matmul(a.select(0, i), b.select(0, i)));
  return stack(outs, 0);
}

// ---- Shape combinators -----------------------------------------------------------------------

Tensor cat(std::span<const Tensor> tensors, std::int64_t dim) {
  TSSA_CHECK(!tensors.empty(), "cat of zero tensors");
  const std::int64_t d = normalizeDim(dim, tensors.front().dim());
  Shape outShape = tensors.front().sizes();
  std::int64_t total = 0;
  DType dt = tensors.front().dtype();
  for (const Tensor& t : tensors) {
    TSSA_CHECK(t.dim() == tensors.front().dim(), "cat rank mismatch");
    for (std::int64_t i = 0; i < t.dim(); ++i) {
      if (i != d) {
        TSSA_CHECK(t.size(i) == outShape[static_cast<std::size_t>(i)],
                   "cat shape mismatch on dim " << i);
      }
    }
    total += t.size(d);
    dt = promoteTypes(dt, t.dtype());
  }
  outShape[static_cast<std::size_t>(d)] = total;
  Tensor out = Tensor::empty(outShape, dt);
  std::int64_t at = 0;
  for (const Tensor& t : tensors) {
    out.narrow(d, at, t.size(d)).copy_(t);
    at += t.size(d);
  }
  return out;
}

Tensor stack(std::span<const Tensor> tensors, std::int64_t dim) {
  TSSA_CHECK(!tensors.empty(), "stack of zero tensors");
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  const std::int64_t rank = tensors.front().dim();
  const std::int64_t d = dim < 0 ? dim + rank + 1 : dim;
  for (const Tensor& t : tensors) expanded.push_back(t.unsqueeze(d));
  return cat(expanded, d);
}

// ---- Indexing -----------------------------------------------------------------------

Tensor indexSelect(const Tensor& a, std::int64_t dim, const Tensor& index) {
  TSSA_CHECK(index.dtype() == DType::Int64 && index.dim() == 1,
             "indexSelect needs a 1-D Int64 index");
  const std::int64_t d = normalizeDim(dim, a.dim());
  std::vector<Tensor> rows;
  const std::int64_t n = index.numel();
  rows.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::int64_t>(index.scalarAtLinear(i));
    rows.push_back(a.select(d, idx).unsqueeze(d));
  }
  return cat(rows, d);
}

Tensor gather(const Tensor& a, std::int64_t dim, const Tensor& index) {
  TSSA_CHECK(index.dtype() == DType::Int64, "gather needs Int64 indices");
  TSSA_CHECK(index.dim() == a.dim(), "gather index rank must match input");
  const std::int64_t d = normalizeDim(dim, a.dim());
  Tensor out = Tensor::empty(index.sizes(), a.dtype());
  for (IndexIterator it(index.sizes()); it.valid(); it.next()) {
    Shape srcIndex(it.index().begin(), it.index().end());
    srcIndex[static_cast<std::size_t>(d)] =
        static_cast<std::int64_t>(index.scalarAt(it.index()));
    out.setScalarAt(it.index(), a.scalarAt(srcIndex));
  }
  return out;
}

std::pair<Tensor, Tensor> topk(const Tensor& a, std::int64_t k) {
  TSSA_CHECK(a.dim() >= 1, "topk needs rank >= 1");
  const std::int64_t last = a.dim() - 1;
  const std::int64_t extent = a.size(last);
  TSSA_CHECK(k >= 0 && k <= extent, "topk k out of range");
  Shape outShape = a.sizes();
  outShape[static_cast<std::size_t>(last)] = k;
  Tensor values = Tensor::empty(outShape, a.dtype());
  Tensor indices = Tensor::empty(outShape, DType::Int64);
  Shape rowShape(a.sizes().begin(), a.sizes().end() - 1);
  for (IndexIterator it(rowShape); it.valid(); it.next()) {
    std::vector<std::pair<double, std::int64_t>> row;
    row.reserve(static_cast<std::size_t>(extent));
    Shape idx(it.index().begin(), it.index().end());
    idx.push_back(0);
    for (std::int64_t j = 0; j < extent; ++j) {
      idx.back() = j;
      row.emplace_back(a.scalarAt(idx), j);
    }
    std::stable_sort(row.begin(), row.end(), [](const auto& x, const auto& y) {
      return x.first > y.first;
    });
    for (std::int64_t j = 0; j < k; ++j) {
      idx.back() = j;
      values.setScalarAt(idx, row[static_cast<std::size_t>(j)].first);
      indices.setScalarAt(
          idx, static_cast<double>(row[static_cast<std::size_t>(j)].second));
    }
  }
  return {values, indices};
}

Tensor argsort(const Tensor& a, bool descending) {
  const std::int64_t last = a.dim() - 1;
  const std::int64_t extent = a.size(last);
  Tensor out = Tensor::empty(a.sizes(), DType::Int64);
  Shape rowShape(a.sizes().begin(), a.sizes().end() - 1);
  for (IndexIterator it(rowShape); it.valid(); it.next()) {
    std::vector<std::int64_t> order(static_cast<std::size_t>(extent));
    std::iota(order.begin(), order.end(), 0);
    Shape idx(it.index().begin(), it.index().end());
    idx.push_back(0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int64_t x, std::int64_t y) {
                       Shape ix = idx, iy = idx;
                       ix.back() = x;
                       iy.back() = y;
                       const double vx = a.scalarAt(ix);
                       const double vy = a.scalarAt(iy);
                       return descending ? vx > vy : vx < vy;
                     });
    for (std::int64_t j = 0; j < extent; ++j) {
      idx.back() = j;
      out.setScalarAt(idx,
                      static_cast<double>(order[static_cast<std::size_t>(j)]));
    }
  }
  return out;
}

Tensor cumsum(const Tensor& a, std::int64_t dim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  Tensor out = a.clone();
  const std::int64_t extent = a.size(d);
  Shape outer = a.sizes();
  outer[static_cast<std::size_t>(d)] = 1;
  for (IndexIterator it(outer); it.valid(); it.next()) {
    Shape idx(it.index().begin(), it.index().end());
    double acc = 0;
    for (std::int64_t j = 0; j < extent; ++j) {
      idx[static_cast<std::size_t>(d)] = j;
      acc += a.scalarAt(idx);
      out.setScalarAt(idx, acc);
    }
  }
  return out;
}

}  // namespace tssa::ops
