#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tssa::ops {
namespace {

/// Generic broadcasting elementwise binary op evaluated in double precision,
/// with a fast path for same-shape contiguous Float32 operands.
template <typename Fn>
Tensor binaryOp(const Tensor& a, const Tensor& b, DType outDType, Fn&& fn) {
  Shape outShape = broadcastShapes(a.sizes(), b.sizes());
  Tensor out = Tensor::empty(outShape, outDType);
  if (a.dtype() == DType::Float32 && b.dtype() == DType::Float32 &&
      outDType == DType::Float32 && a.isContiguous() && b.isContiguous() &&
      a.sizes() == outShape && b.sizes() == outShape) {
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* po = out.data<float>();
    const std::int64_t n = out.numel();
    for (std::int64_t i = 0; i < n; ++i)
      po[i] = static_cast<float>(fn(pa[i], pb[i]));
    return out;
  }
  // General path: compute operand offsets with broadcast alignment.
  for (IndexIterator it(outShape); it.valid(); it.next()) {
    const std::int64_t offA =
        a.storageOffset() + broadcastOffset(it.index(), a.sizes(), a.strides());
    const std::int64_t offB =
        b.storageOffset() + broadcastOffset(it.index(), b.sizes(), b.strides());
    double va = 0, vb = 0;
    switch (a.dtype()) {
      case DType::Float32:
        va = a.storage()->as<float>()[offA];
        break;
      case DType::Int64:
        va = static_cast<double>(a.storage()->as<std::int64_t>()[offA]);
        break;
      case DType::Bool:
        va = a.storage()->as<std::uint8_t>()[offA] ? 1.0 : 0.0;
        break;
    }
    switch (b.dtype()) {
      case DType::Float32:
        vb = b.storage()->as<float>()[offB];
        break;
      case DType::Int64:
        vb = static_cast<double>(b.storage()->as<std::int64_t>()[offB]);
        break;
      case DType::Bool:
        vb = b.storage()->as<std::uint8_t>()[offB] ? 1.0 : 0.0;
        break;
    }
    out.setScalarAt(it.index(), fn(va, vb));
  }
  return out;
}

template <typename Fn>
Tensor arith(const Tensor& a, const Tensor& b, Fn&& fn) {
  return binaryOp(a, b, promoteTypes(a.dtype(), b.dtype()),
                  std::forward<Fn>(fn));
}

template <typename Fn>
Tensor compare(const Tensor& a, const Tensor& b, Fn&& fn) {
  return binaryOp(a, b, DType::Bool,
                  [&](double x, double y) { return fn(x, y) ? 1.0 : 0.0; });
}

/// Generic elementwise unary op with Float32 fast path.
template <typename Fn>
Tensor unaryOp(const Tensor& a, DType outDType, Fn&& fn) {
  Tensor out = Tensor::empty(a.sizes(), outDType);
  if (a.dtype() == DType::Float32 && outDType == DType::Float32 &&
      a.isContiguous()) {
    const float* pa = a.data<float>();
    float* po = out.data<float>();
    const std::int64_t n = out.numel();
    for (std::int64_t i = 0; i < n; ++i)
      po[i] = static_cast<float>(fn(pa[i]));
    return out;
  }
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i)
    out.setScalarAtLinear(i, fn(a.scalarAtLinear(i)));
  return out;
}

Tensor scalarTensor(Scalar s, DType like) {
  return Tensor::scalar(s, isFloatingPoint(like) ? DType::Float32 : s.dtype());
}

/// Shared driver for dim reductions: reduces `dim` of `a` with `fn` starting
/// from `init`; post-processes each accumulated value with `finish`.
template <typename Fn, typename Finish>
Tensor reduceDim(const Tensor& a, std::int64_t dim, bool keepDim, DType outDType,
                 double init, Fn&& fn, Finish&& finish) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  Shape outShape = a.sizes();
  outShape[static_cast<std::size_t>(d)] = 1;
  Tensor out = Tensor::full(outShape, Scalar(init), outDType);
  for (IndexIterator it(a.sizes()); it.valid(); it.next()) {
    Shape outIndex(it.index().begin(), it.index().end());
    outIndex[static_cast<std::size_t>(d)] = 0;
    const double cur = out.scalarAt(outIndex);
    out.setScalarAt(outIndex, fn(cur, a.scalarAt(it.index()), it.index()));
  }
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i)
    out.setScalarAtLinear(i, finish(out.scalarAtLinear(i)));
  if (!keepDim) {
    return out.squeeze(d);
  }
  return out;
}

}  // namespace

// ---- Binary -------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binaryOp(a, b, DType::Float32,
                  [](double x, double y) { return x / y; });
}
Tensor pow(const Tensor& a, const Tensor& b) {
  return binaryOp(a, b, DType::Float32,
                  [](double x, double y) { return std::pow(x, y); });
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return std::min(x, y); });
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return arith(a, b, [](double x, double y) { return std::max(x, y); });
}

Tensor add(const Tensor& a, Scalar b) {
  return add(a, scalarTensor(b, a.dtype()));
}
Tensor sub(const Tensor& a, Scalar b) {
  return sub(a, scalarTensor(b, a.dtype()));
}
Tensor mul(const Tensor& a, Scalar b) {
  return mul(a, scalarTensor(b, a.dtype()));
}
Tensor div(const Tensor& a, Scalar b) {
  return div(a, scalarTensor(b, a.dtype()));
}

// ---- Comparisons -----------------------------------------------------------------

Tensor eq(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x == y; });
}
Tensor ne(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x != y; });
}
Tensor lt(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x < y; });
}
Tensor le(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x <= y; });
}
Tensor gt(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x > y; });
}
Tensor ge(const Tensor& a, const Tensor& b) {
  return compare(a, b, [](double x, double y) { return x >= y; });
}
Tensor logicalAnd(const Tensor& a, const Tensor& b) {
  return compare(a, b,
                 [](double x, double y) { return x != 0.0 && y != 0.0; });
}
Tensor logicalOr(const Tensor& a, const Tensor& b) {
  return compare(a, b,
                 [](double x, double y) { return x != 0.0 || y != 0.0; });
}
Tensor logicalNot(const Tensor& a) {
  return unaryOp(a, DType::Bool,
                 [](double x) { return x == 0.0 ? 1.0 : 0.0; });
}

// ---- Unary ------------------------------------------------------------------------

Tensor neg(const Tensor& a) {
  return unaryOp(a, a.dtype(), [](double x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::sqrt(x); });
}
Tensor abs(const Tensor& a) {
  return unaryOp(a, a.dtype(), [](double x) { return std::abs(x); });
}
Tensor sigmoid(const Tensor& a) {
  return unaryOp(a, DType::Float32,
                 [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor tanh(const Tensor& a) {
  return unaryOp(a, DType::Float32, [](double x) { return std::tanh(x); });
}
Tensor relu(const Tensor& a) {
  return unaryOp(a, a.dtype(), [](double x) { return x > 0 ? x : 0.0; });
}
Tensor clamp(const Tensor& a, Scalar lo, Scalar hi) {
  const double l = lo.toDouble();
  const double h = hi.toDouble();
  return unaryOp(a, a.dtype(),
                 [=](double x) { return std::clamp(x, l, h); });
}

// ---- Selection -----------------------------------------------------------------------

Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  TSSA_CHECK(cond.dtype() == DType::Bool, "where condition must be Bool");
  Shape shape = broadcastShapes(cond.sizes(), a.sizes());
  shape = broadcastShapes(shape, b.sizes());
  Tensor out = Tensor::empty(shape, promoteTypes(a.dtype(), b.dtype()));
  for (IndexIterator it(shape); it.valid(); it.next()) {
    const std::int64_t offC =
        cond.storageOffset() +
        broadcastOffset(it.index(), cond.sizes(), cond.strides());
    const bool c = cond.storage()->as<std::uint8_t>()[offC] != 0;
    const Tensor& src = c ? a : b;
    const std::int64_t off =
        src.storageOffset() +
        broadcastOffset(it.index(), src.sizes(), src.strides());
    double v = 0;
    switch (src.dtype()) {
      case DType::Float32:
        v = src.storage()->as<float>()[off];
        break;
      case DType::Int64:
        v = static_cast<double>(src.storage()->as<std::int64_t>()[off]);
        break;
      case DType::Bool:
        v = src.storage()->as<std::uint8_t>()[off] ? 1.0 : 0.0;
        break;
    }
    out.setScalarAt(it.index(), v);
  }
  return out;
}

Tensor maskedFill(const Tensor& a, const Tensor& mask, Scalar value) {
  return where(mask, Tensor::full(Shape{}, value,
                                  isFloatingPoint(a.dtype()) ? DType::Float32
                                                             : a.dtype()),
               a);
}

// ---- Reductions ------------------------------------------------------------------------

Tensor sum(const Tensor& a) {
  double acc = 0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += a.scalarAtLinear(i);
  const DType dt = a.dtype() == DType::Bool ? DType::Int64 : a.dtype();
  return Tensor::scalar(Scalar(acc), dt);
}

Tensor sum(const Tensor& a, std::int64_t dim, bool keepDim) {
  const DType dt = a.dtype() == DType::Bool ? DType::Int64 : a.dtype();
  return reduceDim(
      a, dim, keepDim, dt, 0.0,
      [](double acc, double v, std::span<const std::int64_t>) {
        return acc + v;
      },
      [](double v) { return v; });
}

Tensor mean(const Tensor& a, std::int64_t dim, bool keepDim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  const double count = static_cast<double>(a.size(d));
  return reduceDim(
      a, dim, keepDim, DType::Float32, 0.0,
      [](double acc, double v, std::span<const std::int64_t>) {
        return acc + v;
      },
      [=](double v) { return v / count; });
}

Tensor maxReduce(const Tensor& a, std::int64_t dim, bool keepDim) {
  return reduceDim(
      a, dim, keepDim, a.dtype(), -std::numeric_limits<double>::infinity(),
      [](double acc, double v, std::span<const std::int64_t>) {
        return std::max(acc, v);
      },
      [](double v) { return v; });
}

Tensor minReduce(const Tensor& a, std::int64_t dim, bool keepDim) {
  return reduceDim(
      a, dim, keepDim, a.dtype(), std::numeric_limits<double>::infinity(),
      [](double acc, double v, std::span<const std::int64_t>) {
        return std::min(acc, v);
      },
      [](double v) { return v; });
}

Tensor argmax(const Tensor& a, std::int64_t dim, bool keepDim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  Shape outShape = a.sizes();
  outShape[static_cast<std::size_t>(d)] = 1;
  Tensor best = Tensor::full(outShape,
                             Scalar(-std::numeric_limits<double>::infinity()),
                             DType::Float32);
  Tensor out = Tensor::zeros(outShape, DType::Int64);
  for (IndexIterator it(a.sizes()); it.valid(); it.next()) {
    Shape outIndex(it.index().begin(), it.index().end());
    const std::int64_t pos = outIndex[static_cast<std::size_t>(d)];
    outIndex[static_cast<std::size_t>(d)] = 0;
    const double v = a.scalarAt(it.index());
    if (v > best.scalarAt(outIndex)) {
      best.setScalarAt(outIndex, v);
      out.setScalarAt(outIndex, static_cast<double>(pos));
    }
  }
  return keepDim ? out : out.squeeze(d);
}

Tensor softmax(const Tensor& a, std::int64_t dim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  Tensor m = maxReduce(a, d, /*keepDim=*/true);
  Tensor e = exp(sub(a, m));
  Tensor s = sum(e, d, /*keepDim=*/true);
  return div(e, s);
}

// ---- Linear algebra -----------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.dim() == 3 && b.dim() == 3) return bmm(a, b);
  TSSA_CHECK(a.dim() == 2 && b.dim() == 2,
             "matmul expects 2-D operands, got " << a.dim() << " and "
                                                 << b.dim());
  TSSA_CHECK(a.size(1) == b.size(0), "matmul inner dimensions disagree: "
                                         << a.size(1) << " vs " << b.size(0));
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor ac = a.to(DType::Float32).contiguous();
  Tensor bc = b.to(DType::Float32).contiguous();
  Tensor out = Tensor::zeros({m, n}, DType::Float32);
  const float* pa = ac.data<float>();
  const float* pb = bc.data<float>();
  float* po = out.data<float>();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float va = pa[i * k + kk];
      const float* rowB = pb + kk * n;
      float* rowO = po + i * n;
      for (std::int64_t j = 0; j < n; ++j) rowO[j] += va * rowB[j];
    }
  }
  return out;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  TSSA_CHECK(a.dim() == 3 && b.dim() == 3, "bmm expects 3-D operands");
  TSSA_CHECK(a.size(0) == b.size(0), "bmm batch dims disagree");
  const std::int64_t batch = a.size(0);
  std::vector<Tensor> outs;
  outs.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i)
    outs.push_back(matmul(a.select(0, i), b.select(0, i)));
  return stack(outs, 0);
}

// ---- Shape combinators -----------------------------------------------------------------------

Tensor cat(std::span<const Tensor> tensors, std::int64_t dim) {
  TSSA_CHECK(!tensors.empty(), "cat of zero tensors");
  const std::int64_t d = normalizeDim(dim, tensors.front().dim());
  Shape outShape = tensors.front().sizes();
  std::int64_t total = 0;
  DType dt = tensors.front().dtype();
  for (const Tensor& t : tensors) {
    TSSA_CHECK(t.dim() == tensors.front().dim(), "cat rank mismatch");
    for (std::int64_t i = 0; i < t.dim(); ++i) {
      if (i != d) {
        TSSA_CHECK(t.size(i) == outShape[static_cast<std::size_t>(i)],
                   "cat shape mismatch on dim " << i);
      }
    }
    total += t.size(d);
    dt = promoteTypes(dt, t.dtype());
  }
  outShape[static_cast<std::size_t>(d)] = total;
  Tensor out = Tensor::empty(outShape, dt);
  std::int64_t at = 0;
  for (const Tensor& t : tensors) {
    out.narrow(d, at, t.size(d)).copy_(t);
    at += t.size(d);
  }
  return out;
}

Tensor stack(std::span<const Tensor> tensors, std::int64_t dim) {
  TSSA_CHECK(!tensors.empty(), "stack of zero tensors");
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  const std::int64_t rank = tensors.front().dim();
  const std::int64_t d = dim < 0 ? dim + rank + 1 : dim;
  for (const Tensor& t : tensors) expanded.push_back(t.unsqueeze(d));
  return cat(expanded, d);
}

// ---- Indexing -----------------------------------------------------------------------

Tensor indexSelect(const Tensor& a, std::int64_t dim, const Tensor& index) {
  TSSA_CHECK(index.dtype() == DType::Int64 && index.dim() == 1,
             "indexSelect needs a 1-D Int64 index");
  const std::int64_t d = normalizeDim(dim, a.dim());
  std::vector<Tensor> rows;
  const std::int64_t n = index.numel();
  rows.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::int64_t>(index.scalarAtLinear(i));
    rows.push_back(a.select(d, idx).unsqueeze(d));
  }
  return cat(rows, d);
}

Tensor gather(const Tensor& a, std::int64_t dim, const Tensor& index) {
  TSSA_CHECK(index.dtype() == DType::Int64, "gather needs Int64 indices");
  TSSA_CHECK(index.dim() == a.dim(), "gather index rank must match input");
  const std::int64_t d = normalizeDim(dim, a.dim());
  Tensor out = Tensor::empty(index.sizes(), a.dtype());
  for (IndexIterator it(index.sizes()); it.valid(); it.next()) {
    Shape srcIndex(it.index().begin(), it.index().end());
    srcIndex[static_cast<std::size_t>(d)] =
        static_cast<std::int64_t>(index.scalarAt(it.index()));
    out.setScalarAt(it.index(), a.scalarAt(srcIndex));
  }
  return out;
}

std::pair<Tensor, Tensor> topk(const Tensor& a, std::int64_t k) {
  TSSA_CHECK(a.dim() >= 1, "topk needs rank >= 1");
  const std::int64_t last = a.dim() - 1;
  const std::int64_t extent = a.size(last);
  TSSA_CHECK(k >= 0 && k <= extent, "topk k out of range");
  Shape outShape = a.sizes();
  outShape[static_cast<std::size_t>(last)] = k;
  Tensor values = Tensor::empty(outShape, a.dtype());
  Tensor indices = Tensor::empty(outShape, DType::Int64);
  Shape rowShape(a.sizes().begin(), a.sizes().end() - 1);
  for (IndexIterator it(rowShape); it.valid(); it.next()) {
    std::vector<std::pair<double, std::int64_t>> row;
    row.reserve(static_cast<std::size_t>(extent));
    Shape idx(it.index().begin(), it.index().end());
    idx.push_back(0);
    for (std::int64_t j = 0; j < extent; ++j) {
      idx.back() = j;
      row.emplace_back(a.scalarAt(idx), j);
    }
    std::stable_sort(row.begin(), row.end(), [](const auto& x, const auto& y) {
      return x.first > y.first;
    });
    for (std::int64_t j = 0; j < k; ++j) {
      idx.back() = j;
      values.setScalarAt(idx, row[static_cast<std::size_t>(j)].first);
      indices.setScalarAt(
          idx, static_cast<double>(row[static_cast<std::size_t>(j)].second));
    }
  }
  return {values, indices};
}

Tensor argsort(const Tensor& a, bool descending) {
  const std::int64_t last = a.dim() - 1;
  const std::int64_t extent = a.size(last);
  Tensor out = Tensor::empty(a.sizes(), DType::Int64);
  Shape rowShape(a.sizes().begin(), a.sizes().end() - 1);
  for (IndexIterator it(rowShape); it.valid(); it.next()) {
    std::vector<std::int64_t> order(static_cast<std::size_t>(extent));
    std::iota(order.begin(), order.end(), 0);
    Shape idx(it.index().begin(), it.index().end());
    idx.push_back(0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int64_t x, std::int64_t y) {
                       Shape ix = idx, iy = idx;
                       ix.back() = x;
                       iy.back() = y;
                       const double vx = a.scalarAt(ix);
                       const double vy = a.scalarAt(iy);
                       return descending ? vx > vy : vx < vy;
                     });
    for (std::int64_t j = 0; j < extent; ++j) {
      idx.back() = j;
      out.setScalarAt(idx,
                      static_cast<double>(order[static_cast<std::size_t>(j)]));
    }
  }
  return out;
}

Tensor cumsum(const Tensor& a, std::int64_t dim) {
  const std::int64_t d = normalizeDim(dim, a.dim());
  Tensor out = a.clone();
  const std::int64_t extent = a.size(d);
  Shape outer = a.sizes();
  outer[static_cast<std::size_t>(d)] = 1;
  for (IndexIterator it(outer); it.valid(); it.next()) {
    Shape idx(it.index().begin(), it.index().end());
    double acc = 0;
    for (std::int64_t j = 0; j < extent; ++j) {
      idx[static_cast<std::size_t>(d)] = j;
      acc += a.scalarAt(idx);
      out.setScalarAt(idx, acc);
    }
  }
  return out;
}

}  // namespace tssa::ops
