#include "src/tensor/shape.h"

#include <algorithm>

namespace tssa {

std::int64_t numelOf(std::span<const std::int64_t> sizes) {
  std::int64_t n = 1;
  for (std::int64_t s : sizes) n *= s;
  return n;
}

Strides contiguousStrides(std::span<const std::int64_t> sizes) {
  Strides strides(sizes.size());
  std::int64_t running = 1;
  for (std::int64_t d = static_cast<std::int64_t>(sizes.size()) - 1; d >= 0;
       --d) {
    strides[static_cast<std::size_t>(d)] = running;
    running *= sizes[static_cast<std::size_t>(d)];
  }
  return strides;
}

bool isContiguousLayout(std::span<const std::int64_t> sizes,
                        std::span<const std::int64_t> strides) {
  std::int64_t expected = 1;
  for (std::int64_t d = static_cast<std::int64_t>(sizes.size()) - 1; d >= 0;
       --d) {
    const auto du = static_cast<std::size_t>(d);
    if (sizes[du] == 1) continue;  // stride is irrelevant for extent-1 dims
    if (strides[du] != expected) return false;
    expected *= sizes[du];
  }
  return true;
}

Shape broadcastShapes(std::span<const std::int64_t> a,
                      std::span<const std::int64_t> b) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t da =
        i < a.size() ? a[a.size() - 1 - i] : 1;  // align trailing dims
    const std::int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) {
      TSSA_THROW("cannot broadcast shapes " << bracketed(a) << " and "
                                            << bracketed(b));
    }
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

bool broadcastableTo(std::span<const std::int64_t> from,
                     std::span<const std::int64_t> to) {
  if (from.size() > to.size()) return false;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const std::int64_t df = from[from.size() - 1 - i];
    const std::int64_t dt = to[to.size() - 1 - i];
    if (df != dt && df != 1) return false;
  }
  return true;
}

std::int64_t normalizeDim(std::int64_t dim, std::int64_t rank) {
  const std::int64_t adjusted = dim < 0 ? dim + rank : dim;
  TSSA_CHECK(adjusted >= 0 && adjusted < rank,
             "dimension " << dim << " out of range for rank " << rank);
  return adjusted;
}

std::int64_t normalizeIndex(std::int64_t index, std::int64_t extent) {
  const std::int64_t adjusted = index < 0 ? index + extent : index;
  TSSA_CHECK(adjusted >= 0 && adjusted < extent,
             "index " << index << " out of range for extent " << extent);
  return adjusted;
}

void normalizeSliceBounds(std::int64_t extent, std::int64_t& start,
                          std::int64_t& end) {
  if (start < 0) start += extent;
  if (end < 0) end += extent;
  start = std::clamp<std::int64_t>(start, 0, extent);
  end = std::clamp<std::int64_t>(end, start, extent);
}

std::int64_t broadcastOffset(std::span<const std::int64_t> resultIndex,
                             std::span<const std::int64_t> sizes,
                             std::span<const std::int64_t> strides) {
  std::int64_t off = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t srcDim = sizes.size() - 1 - i;
    const std::size_t resDim = resultIndex.size() - 1 - i;
    if (sizes[srcDim] != 1) off += resultIndex[resDim] * strides[srcDim];
  }
  return off;
}

}  // namespace tssa
