// Pool allocator backing Storage with recycled buffers (the runtime half of
// liveness-driven memory planning, see src/analysis/liveness.h and DESIGN.md
// §8).
//
// An Arena keeps dead buffers in power-of-two size-class buckets and hands
// them back to `Tensor::empty` instead of the heap. Buffers enter the pool
// through two routes:
//
//  1. Automatically: ~Storage() donates its byte buffer to the thread's
//     scope-current arena. The destructor only runs at the *final* release,
//     so this is safe by construction — an output, view, list slot, or
//     cached constant that still references the storage keeps it alive, and
//     escaping memory simply never reaches the pool. This route captures
//     everything the liveness plan cannot see, most importantly the
//     temporaries ops allocate internally (softmax's reduction buffers,
//     matmul scratch, per-iteration kernel results).
//
//  2. Explicitly: `recycle()` offers a specific StoragePtr, accepted only
//     when its refcount proves sole ownership. The interpreter's planned
//     deaths work by dropping env bindings (route 1); recycle() exists for
//     callers that hold the last handle themselves.
//
// Either way only raw byte buffers are pooled, never Storage objects — so
// destroying an Arena cannot re-enter it, and identity of recycled storage
// is never observable.
//
// Arenas are deliberately NOT thread-safe. Each execution context uses its
// own instance (the interpreter owns one for the root thread; pool workers
// use `Arena::threadLocal()`), so worker threads never contend on a shared
// free list. The thread-current arena is published with `Arena::Scope`, a
// stack-like save/restore guard — stack-like because the thread pool's
// helping barrier can run a worker chunk on the thread that already has a
// root scope installed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/tensor/dtype.h"
#include "src/tensor/storage.h"

namespace tssa {

class Arena {
 public:
  /// Allocation accounting. `fresh` counts pool misses that went to the
  /// heap, `reused` counts pool hits; `recycled`/`recycleMisses` count the
  /// producer side (buffers accepted into vs. rejected from the pool —
  /// rejected because still referenced elsewhere or the bucket was full).
  struct Stats {
    std::int64_t freshAllocs = 0;
    std::int64_t reusedAllocs = 0;
    std::int64_t freshBytes = 0;
    std::int64_t reusedBytes = 0;
    std::int64_t recycled = 0;
    std::int64_t recycleMisses = 0;

    Stats& operator+=(const Stats& o) {
      freshAllocs += o.freshAllocs;
      reusedAllocs += o.reusedAllocs;
      freshBytes += o.freshBytes;
      reusedBytes += o.reusedBytes;
      recycled += o.recycled;
      recycleMisses += o.recycleMisses;
      return *this;
    }
    friend Stats operator-(Stats a, const Stats& b) {
      a.freshAllocs -= b.freshAllocs;
      a.reusedAllocs -= b.reusedAllocs;
      a.freshBytes -= b.freshBytes;
      a.reusedBytes -= b.reusedBytes;
      a.recycled -= b.recycled;
      a.recycleMisses -= b.recycleMisses;
      return a;
    }
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a storage for `numel` elements of `dtype`, recycled from the
  /// pool when a buffer of the right size class is available, freshly
  /// heap-allocated otherwise. Either way the contents are zeroed, exactly
  /// like a fresh value-initialized Storage — planner on/off stays bitwise
  /// identical even for code that (incorrectly) reads "uninitialized" memory.
  StoragePtr allocate(std::int64_t numel, DType dtype);

  /// Offers a dead value's storage to the pool. Accepted only when this
  /// StoragePtr is the sole owner (`use_count() == 1`); a storage that
  /// escaped — still held by an output, a view, or another binding — is left
  /// alive untouched and simply not pooled.
  void recycle(StoragePtr&& storage);

  /// Accepts a raw byte buffer into the pool (the ~Storage donation route).
  /// Refuses buffers below the smallest size class and full buckets; a
  /// refused buffer is simply freed by the caller.
  void donate(std::vector<std::byte>&& buffer);

  const Stats& stats() const { return stats_; }
  std::size_t pooledBuffers() const;
  /// Drops every pooled buffer (stats are kept).
  void clear();

  // ---- Thread-current arena ------------------------------------------------

  /// The arena consulted by Tensor::empty on this thread; nullptr when no
  /// Scope is active (allocations then go straight to the heap).
  static Arena* current();

  /// RAII publication of `arena` as the thread-current arena; restores the
  /// previous one on destruction (scopes nest).
  class Scope {
   public:
    explicit Scope(Arena* arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena* prev_;
  };

  /// This thread's own arena instance (used by pool workers so parallel
  /// regions never share a free list).
  static Arena& threadLocal();

 private:
  static constexpr int kMinClassLog2 = 6;  // smallest class: 64 bytes
  static constexpr int kNumClasses = 40;
  static constexpr std::size_t kMaxPerClass = 64;  // per-bucket entry cap

  static std::size_t classBytes(int c) {
    return std::size_t{1} << (kMinClassLog2 + c);
  }
  /// Smallest class whose capacity covers `bytes` (ceil).
  static int classFor(std::size_t bytes);

  std::array<std::vector<std::vector<std::byte>>, kNumClasses> pool_;
  Stats stats_;
};

}  // namespace tssa
