// Shapes, strides, broadcasting, and multi-dimensional index iteration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/support/error.h"
#include "src/support/strings.h"

namespace tssa {

/// A tensor shape: one extent per dimension. Rank-0 (scalar) tensors have an
/// empty shape and one element.
using Shape = std::vector<std::int64_t>;
using Strides = std::vector<std::int64_t>;

/// Number of elements of a shape (product of extents; 1 for rank-0).
std::int64_t numelOf(std::span<const std::int64_t> sizes);

/// Row-major ("C") contiguous strides for `sizes`.
Strides contiguousStrides(std::span<const std::int64_t> sizes);

/// True if (sizes, strides) describe a row-major contiguous layout.
bool isContiguousLayout(std::span<const std::int64_t> sizes,
                        std::span<const std::int64_t> strides);

/// Broadcasts two shapes per NumPy rules; throws tssa::Error on mismatch.
Shape broadcastShapes(std::span<const std::int64_t> a,
                      std::span<const std::int64_t> b);

/// True if `from` can broadcast to exactly `to`.
bool broadcastableTo(std::span<const std::int64_t> from,
                     std::span<const std::int64_t> to);

/// Normalizes a possibly-negative dimension index (Python style); throws if
/// out of range for `rank` dimensions.
std::int64_t normalizeDim(std::int64_t dim, std::int64_t rank);

/// Normalizes a possibly-negative element index along an extent; throws if out
/// of range.
std::int64_t normalizeIndex(std::int64_t index, std::int64_t extent);

/// Clamps python-style slice bounds (start/end may be negative or
/// out-of-range) to [0, extent].
void normalizeSliceBounds(std::int64_t extent, std::int64_t& start,
                          std::int64_t& end);

/// Iterates over all coordinates of a shape in row-major order.
///
///   for (IndexIterator it(sizes); it.valid(); it.next()) use(it.index());
class IndexIterator {
 public:
  explicit IndexIterator(std::span<const std::int64_t> sizes)
      : sizes_(sizes.begin(), sizes.end()),
        index_(sizes.size(), 0),
        remaining_(numelOf(sizes)) {}

  bool valid() const { return remaining_ > 0; }

  std::span<const std::int64_t> index() const { return index_; }

  void next() {
    --remaining_;
    for (std::int64_t d = static_cast<std::int64_t>(index_.size()) - 1; d >= 0;
         --d) {
      if (++index_[static_cast<std::size_t>(d)] <
          sizes_[static_cast<std::size_t>(d)]) {
        return;
      }
      index_[static_cast<std::size_t>(d)] = 0;
    }
  }

 private:
  Shape sizes_;
  Shape index_;
  std::int64_t remaining_;
};

/// Dot product of a coordinate with strides: the linear element offset.
inline std::int64_t offsetOf(std::span<const std::int64_t> index,
                             std::span<const std::int64_t> strides) {
  std::int64_t off = 0;
  for (std::size_t d = 0; d < index.size(); ++d) off += index[d] * strides[d];
  return off;
}

/// Maps a coordinate in a broadcast result shape back to an element offset of
/// an operand with shape `sizes` / strides `strides` (operand dims are aligned
/// to the *trailing* dims of the result; size-1 dims contribute offset 0).
std::int64_t broadcastOffset(std::span<const std::int64_t> resultIndex,
                             std::span<const std::int64_t> sizes,
                             std::span<const std::int64_t> strides);

}  // namespace tssa
