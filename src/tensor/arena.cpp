#include "src/tensor/arena.h"

#include <bit>
#include <memory>
#include <utility>

namespace tssa {

namespace {
thread_local Arena* tlsCurrentArena = nullptr;
}  // namespace

// The automatic recycling route: the destructor only runs once no tensor,
// view, list, output, or cached constant references this storage anymore, so
// whatever buffer is left here is provably dead. Donating it to the
// scope-current arena (the arena of the run that is executing on this
// thread right now) captures every allocation the liveness plan cannot name:
// op-internal temporaries, per-iteration kernel results, worker-local
// scratch. Off-thread releases (a serving client dropping a response) see no
// current arena and free normally.
Storage::~Storage() {
  if (data_.capacity() == 0) return;  // moved-out by Arena::recycle
  if (Arena* arena = Arena::current()) arena->donate(std::move(data_));
}

int Arena::classFor(std::size_t bytes) {
  if (bytes <= classBytes(0)) return 0;
  // ceil(log2(bytes)) via bit_width of bytes-1, shifted to class indexing.
  const int log2 = std::bit_width(bytes - 1);
  const int c = log2 - kMinClassLog2;
  return c < kNumClasses ? c : kNumClasses - 1;
}

StoragePtr Arena::allocate(std::int64_t numel, DType dtype) {
  const auto bytes = static_cast<std::size_t>(numel) * dtypeSize(dtype);
  if (bytes == 0) return std::make_shared<Storage>(numel, dtype);
  const int c = classFor(bytes);
  auto& bucket = pool_[static_cast<std::size_t>(c)];
  // Oversized requests all land in the top bucket; its entries are only
  // guaranteed to be >= classBytes(top), so check the actual capacity there.
  if (!bucket.empty() &&
      (c + 1 < kNumClasses || bucket.back().capacity() >= bytes)) {
    std::vector<std::byte> buffer = std::move(bucket.back());
    bucket.pop_back();
    ++stats_.reusedAllocs;
    stats_.reusedBytes += static_cast<std::int64_t>(bytes);
    return std::make_shared<Storage>(numel, dtype, std::move(buffer));
  }
  ++stats_.freshAllocs;
  stats_.freshBytes += static_cast<std::int64_t>(bytes);
  return std::make_shared<Storage>(numel, dtype, classBytes(c));
}

void Arena::recycle(StoragePtr&& storage) {
  if (storage == nullptr) return;
  StoragePtr s = std::move(storage);
  // use_count()==1 means this local handle is the only owner left: nobody
  // else can concurrently create a reference (they would need to hold one),
  // so taking the buffer is race-free. Any larger count means the value
  // escaped — an output, view, list slot, or cached constant still uses it.
  if (s.use_count() != 1) {
    ++stats_.recycleMisses;
    return;
  }
  // Empty the storage here; its destructor then has nothing left to donate.
  donate(std::move(s->data_));
}

void Arena::donate(std::vector<std::byte>&& buffer) {
  if (buffer.capacity() < classBytes(0)) {
    ++stats_.recycleMisses;
    return;
  }
  // Bucket by floor(log2(capacity)): every entry of bucket c can satisfy any
  // request that classFor maps to c without reallocating.
  const int log2 = std::bit_width(buffer.capacity()) - 1;
  int c = log2 - kMinClassLog2;
  if (c >= kNumClasses) c = kNumClasses - 1;
  auto& bucket = pool_[static_cast<std::size_t>(c)];
  if (bucket.size() >= kMaxPerClass) {
    ++stats_.recycleMisses;
    return;
  }
  bucket.push_back(std::move(buffer));
  ++stats_.recycled;
}

std::size_t Arena::pooledBuffers() const {
  std::size_t n = 0;
  for (const auto& bucket : pool_) n += bucket.size();
  return n;
}

void Arena::clear() {
  for (auto& bucket : pool_) bucket.clear();
}

Arena* Arena::current() { return tlsCurrentArena; }

Arena::Scope::Scope(Arena* arena) : prev_(tlsCurrentArena) {
  tlsCurrentArena = arena;
}

Arena::Scope::~Scope() { tlsCurrentArena = prev_; }

Arena& Arena::threadLocal() {
  static thread_local Arena instance;
  return instance;
}

}  // namespace tssa
