// Element types supported by the tensor library.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "src/support/error.h"

namespace tssa {

/// Element type of a tensor. The library supports the three types that the
/// paper's imperative workloads need: floating point data, integer indices,
/// and boolean masks.
enum class DType : std::uint8_t {
  Float32,
  Int64,
  Bool,
};

/// Size in bytes of one element of `dtype`.
inline std::size_t dtypeSize(DType dtype) {
  switch (dtype) {
    case DType::Float32:
      return sizeof(float);
    case DType::Int64:
      return sizeof(std::int64_t);
    case DType::Bool:
      return sizeof(std::uint8_t);
  }
  TSSA_THROW("unknown dtype");
}

/// Human-readable dtype name ("f32", "i64", "bool").
inline const char* dtypeName(DType dtype) {
  switch (dtype) {
    case DType::Float32:
      return "f32";
    case DType::Int64:
      return "i64";
    case DType::Bool:
      return "bool";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, DType dtype) {
  return os << dtypeName(dtype);
}

/// Maps a C++ scalar type to its DType tag.
template <typename T>
struct DTypeOf;

template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::Float32;
};
template <>
struct DTypeOf<std::int64_t> {
  static constexpr DType value = DType::Int64;
};
template <>
struct DTypeOf<bool> {
  static constexpr DType value = DType::Bool;
};
// Bool tensors are stored as one uint8 per element; allow typed access
// through either spelling.
template <>
struct DTypeOf<std::uint8_t> {
  static constexpr DType value = DType::Bool;
};

/// True when arithmetic on this dtype should be carried out in floating point.
inline bool isFloatingPoint(DType dtype) { return dtype == DType::Float32; }

/// Result dtype of a binary arithmetic op (simple promotion lattice:
/// Bool < Int64 < Float32).
inline DType promoteTypes(DType a, DType b) {
  if (a == DType::Float32 || b == DType::Float32) return DType::Float32;
  if (a == DType::Int64 || b == DType::Int64) return DType::Int64;
  return DType::Bool;
}

}  // namespace tssa
