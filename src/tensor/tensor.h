// Dense tensors with shared-storage views and in-place mutation.
//
// This is the data substrate of the reproduction: it deliberately implements
// the PyTorch aliasing model — `select` / `slice` / `permute` / ... return
// *views* that share the base tensor's Storage, and in-place operators such as
// `copy_` write through views, implicitly mutating every alias. TensorSSA's
// whole purpose is to compile programs written against this model into pure
// functional form; the reference interpreter executes both forms on this
// library so every transformation can be checked for bit-equal behaviour.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/tensor/dtype.h"
#include "src/tensor/scalar.h"
#include "src/tensor/shape.h"
#include "src/tensor/storage.h"

namespace tssa {

class Tensor {
 public:
  /// An undefined tensor (no storage). `defined()` is false.
  Tensor() = default;

  // ---- Factories -----------------------------------------------------------

  /// Uninitialized tensor of the given shape/dtype.
  static Tensor empty(Shape sizes, DType dtype = DType::Float32);
  static Tensor zeros(Shape sizes, DType dtype = DType::Float32);
  static Tensor ones(Shape sizes, DType dtype = DType::Float32);
  static Tensor full(Shape sizes, Scalar value, DType dtype = DType::Float32);
  /// 1-D tensor [start, end) with step `step`.
  static Tensor arange(std::int64_t end);
  static Tensor arange(std::int64_t start, std::int64_t end,
                       std::int64_t step = 1);
  /// Rank-0 scalar tensor.
  static Tensor scalar(Scalar value, DType dtype = DType::Float32);

  /// Builds a tensor from a flat row-major buffer.
  static Tensor fromData(std::span<const float> values, Shape sizes);
  static Tensor fromData(std::span<const std::int64_t> values, Shape sizes);
  static Tensor fromData(std::span<const bool> values, Shape sizes);
  static Tensor fromData(std::initializer_list<float> values, Shape sizes);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return storage_ != nullptr; }
  DType dtype() const { return dtype_; }
  const Shape& sizes() const { return sizes_; }
  const Strides& strides() const { return strides_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(sizes_.size()); }
  std::int64_t size(std::int64_t d) const {
    return sizes_[static_cast<std::size_t>(normalizeDim(d, dim()))];
  }
  std::int64_t numel() const { return numelOf(sizes_); }
  std::int64_t storageOffset() const { return offset_; }
  const StoragePtr& storage() const { return storage_; }
  bool isContiguous() const { return isContiguousLayout(sizes_, strides_); }
  /// True when the two tensors alias the same underlying buffer.
  bool sharesStorageWith(const Tensor& other) const {
    return defined() && storage_ == other.storage_;
  }

  // ---- Element access ------------------------------------------------------

  /// Typed base pointer at this tensor's storage offset. dtype-checked.
  template <typename T>
  T* data() {
    TSSA_CHECK(DTypeOf<T>::value == dtype_, "dtype mismatch in data()");
    return storage_->as<T>() + offset_;
  }
  template <typename T>
  const T* data() const {
    TSSA_CHECK(DTypeOf<T>::value == dtype_, "dtype mismatch in data()");
    return storage_->as<T>() + offset_;
  }

  /// Reads the element at a full coordinate as double (bool → 0/1).
  double scalarAt(std::span<const std::int64_t> index) const;
  /// Writes the element at a full coordinate from a double.
  void setScalarAt(std::span<const std::int64_t> index, double value);
  /// Reads/writes by linear element offset *relative to this view's layout*
  /// (i.e. offsets walk the view in row-major order).
  double scalarAtLinear(std::int64_t linear) const;
  void setScalarAtLinear(std::int64_t linear, double value);

  /// The single element of a one-element tensor, as Scalar.
  Scalar item() const;

  // ---- Views (share storage) -----------------------------------------------

  Tensor select(std::int64_t dim, std::int64_t index) const;
  Tensor slice(std::int64_t dim, std::int64_t start, std::int64_t end,
               std::int64_t step = 1) const;
  Tensor narrow(std::int64_t dim, std::int64_t start,
                std::int64_t length) const;
  Tensor permute(std::span<const std::int64_t> dims) const;
  Tensor permute(std::initializer_list<std::int64_t> dims) const;
  Tensor transpose(std::int64_t d0, std::int64_t d1) const;
  Tensor squeeze(std::int64_t dim) const;
  Tensor unsqueeze(std::int64_t dim) const;
  Tensor expand(std::span<const std::int64_t> sizes) const;
  Tensor expand(std::initializer_list<std::int64_t> sizes) const;
  /// View with a new shape; throws if the layout does not permit a view.
  Tensor view(Shape sizes) const;
  /// Like `view`, but silently copies when a view is impossible.
  Tensor reshape(Shape sizes) const;
  Tensor flatten(std::int64_t startDim = 0, std::int64_t endDim = -1) const;

  // ---- Copies --------------------------------------------------------------

  /// Deep copy into fresh contiguous storage.
  Tensor clone() const;
  /// Returns *this if already contiguous, else a contiguous clone.
  Tensor contiguous() const;
  /// Casts to another dtype (always copies).
  Tensor to(DType dtype) const;

  // ---- In-place mutation (writes through views) ------------------------------

  /// Copies `src` into this tensor, broadcasting src to this shape.
  /// This is THE Mutate operator of the paper (Definition 3.2).
  void copy_(const Tensor& src);
  void fill_(Scalar value);

  /// Detaches and returns this tensor's storage handle, leaving the tensor
  /// undefined. Used by the runtime memory planner when a value dies: the
  /// Arena re-checks sole ownership via the refcount before pooling, so
  /// calling this on a still-aliased tensor is safe (the buffer just stays
  /// alive with its other owners).
  StoragePtr releaseStorage() {
    offset_ = 0;
    sizes_.clear();
    strides_.clear();
    return std::move(storage_);
  }

  /// Renders the tensor (shape, dtype, and up to `maxElems` values).
  std::string toString(std::int64_t maxElems = 64) const;

 private:
  Tensor(StoragePtr storage, std::int64_t offset, Shape sizes, Strides strides,
         DType dtype)
      : storage_(std::move(storage)),
        offset_(offset),
        sizes_(std::move(sizes)),
        strides_(std::move(strides)),
        dtype_(dtype) {}

  /// Element offset (within storage) of a coordinate of this view.
  std::int64_t elementOffset(std::span<const std::int64_t> index) const;

  StoragePtr storage_;
  std::int64_t offset_ = 0;
  Shape sizes_;
  Strides strides_;
  DType dtype_ = DType::Float32;
};

/// True when both tensors are defined, have identical shape/dtype, and all
/// elements compare equal within `tolerance` (exact for int/bool).
bool allClose(const Tensor& a, const Tensor& b, double tolerance = 1e-5);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace tssa
