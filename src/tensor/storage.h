// Reference-counted flat buffer shared by tensor views.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "src/tensor/dtype.h"

namespace tssa {

/// The underlying data buffer of one or more tensors. Tensor views alias the
/// same Storage with different (offset, sizes, strides) interpretations —
/// exactly the aliasing mechanism whose side effects TensorSSA removes.
class Storage {
 public:
  Storage(std::int64_t numel, DType dtype)
      : dtype_(dtype),
        data_(static_cast<std::size_t>(numel) * dtypeSize(dtype)) {}

  DType dtype() const { return dtype_; }

  std::int64_t numel() const {
    return static_cast<std::int64_t>(data_.size() / dtypeSize(dtype_));
  }

  std::byte* raw() { return data_.data(); }
  const std::byte* raw() const { return data_.data(); }

  /// Typed base pointer. The caller is responsible for dtype agreement
  /// (checked by Tensor accessors).
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_.data());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_.data());
  }

 private:
  DType dtype_;
  std::vector<std::byte> data_;
};

using StoragePtr = std::shared_ptr<Storage>;

}  // namespace tssa
