// Reference-counted flat buffer shared by tensor views.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "src/tensor/dtype.h"

namespace tssa {

/// The underlying data buffer of one or more tensors. Tensor views alias the
/// same Storage with different (offset, sizes, strides) interpretations —
/// exactly the aliasing mechanism whose side effects TensorSSA removes.
class Storage {
 public:
  Storage(std::int64_t numel, DType dtype)
      : dtype_(dtype),
        data_(static_cast<std::size_t>(numel) * dtypeSize(dtype)) {}

  /// Constructs with at least `reserveBytes` of capacity (the Arena rounds
  /// fresh allocations up to their size class so a later recycle lands back
  /// in the same bucket). Contents are zeroed like the plain constructor.
  Storage(std::int64_t numel, DType dtype, std::size_t reserveBytes)
      : dtype_(dtype) {
    const auto bytes = static_cast<std::size_t>(numel) * dtypeSize(dtype);
    data_.reserve(reserveBytes > bytes ? reserveBytes : bytes);
    data_.resize(bytes);  // value-initializes: zeroed, no reallocation
  }

  /// Adopts a recycled byte buffer from an Arena bucket (its capacity covers
  /// the request by bucket invariant) and zeroes the logical size, making
  /// the result bitwise identical to a freshly constructed Storage.
  Storage(std::int64_t numel, DType dtype, std::vector<std::byte>&& recycled)
      : dtype_(dtype), data_(std::move(recycled)) {
    const auto bytes = static_cast<std::size_t>(numel) * dtypeSize(dtype);
    data_.resize(bytes);
    std::memset(data_.data(), 0, bytes);
  }

  /// On the final release, donates the byte buffer to the thread's
  /// scope-current arena (if any) — see Arena route 1 in src/tensor/arena.h.
  /// Defined in arena.cpp.
  ~Storage();

  /// Re-initializes a recycled buffer in place: new logical size and dtype,
  /// contents zeroed so it is bitwise identical to a freshly constructed
  /// Storage. Only the Arena calls this, and only on buffers it proved to be
  /// solely owned.
  void reinit(std::int64_t numel, DType dtype) {
    dtype_ = dtype;
    const auto bytes = static_cast<std::size_t>(numel) * dtypeSize(dtype);
    data_.resize(bytes);
    std::memset(data_.data(), 0, bytes);
  }

  std::size_t capacityBytes() const { return data_.capacity(); }

  DType dtype() const { return dtype_; }

  std::int64_t numel() const {
    return static_cast<std::int64_t>(data_.size() / dtypeSize(dtype_));
  }

  std::byte* raw() { return data_.data(); }
  const std::byte* raw() const { return data_.data(); }

  /// Typed base pointer. The caller is responsible for dtype agreement
  /// (checked by Tensor accessors).
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_.data());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_.data());
  }

 private:
  friend class Arena;  // recycle() moves data_ out of a solely-owned storage

  DType dtype_;
  std::vector<std::byte> data_;
};

using StoragePtr = std::shared_ptr<Storage>;

}  // namespace tssa
