// Deterministic random tensor generation for tests and workloads.
#pragma once

#include <cstdint>
#include <random>

#include "src/tensor/tensor.h"

namespace tssa {

/// A seeded random number generator producing reproducible tensors. Every
/// workload and property test draws from an explicitly-seeded Rng so runs are
/// bit-for-bit repeatable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform floats in [lo, hi).
  Tensor uniform(Shape sizes, double lo = 0.0, double hi = 1.0) {
    Tensor t = Tensor::empty(std::move(sizes), DType::Float32);
    std::uniform_real_distribution<float> dist(static_cast<float>(lo),
                                               static_cast<float>(hi));
    float* p = t.data<float>();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i) p[i] = dist(engine_);
    return t;
  }

  /// Approximately normal floats (sum of uniforms is fine for workloads).
  Tensor normal(Shape sizes, double mean = 0.0, double stddev = 1.0) {
    Tensor t = Tensor::empty(std::move(sizes), DType::Float32);
    std::normal_distribution<float> dist(static_cast<float>(mean),
                                         static_cast<float>(stddev));
    float* p = t.data<float>();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i) p[i] = dist(engine_);
    return t;
  }

  /// Uniform integers in [lo, hi].
  Tensor randint(Shape sizes, std::int64_t lo, std::int64_t hi) {
    Tensor t = Tensor::empty(std::move(sizes), DType::Int64);
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    std::int64_t* p = t.data<std::int64_t>();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i) p[i] = dist(engine_);
    return t;
  }

  /// Bernoulli mask with probability `p` of true.
  Tensor bernoulli(Shape sizes, double p = 0.5) {
    Tensor t = Tensor::empty(std::move(sizes), DType::Bool);
    std::bernoulli_distribution dist(p);
    std::uint8_t* d = t.data<std::uint8_t>();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i)
      d[i] = dist(engine_) ? 1 : 0;
    return t;
  }

  std::int64_t nextInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  double nextDouble(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  bool nextBool(double p = 0.5) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tssa
