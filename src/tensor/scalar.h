// A runtime-typed scalar value, used for IR constants and op attributes.
#pragma once

#include <cstdint>
#include <ostream>
#include <variant>

#include "src/support/error.h"
#include "src/tensor/dtype.h"

namespace tssa {

/// A scalar of one of the supported element types. Mirrors the Python-level
/// int/float/bool values that flow through imperative tensor programs.
class Scalar {
 public:
  Scalar() : value_(std::int64_t{0}) {}
  Scalar(double v) : value_(v) {}             // NOLINT(google-explicit-constructor)
  Scalar(float v) : value_(double{v}) {}      // NOLINT(google-explicit-constructor)
  Scalar(std::int64_t v) : value_(v) {}       // NOLINT(google-explicit-constructor)
  Scalar(int v) : value_(std::int64_t{v}) {}  // NOLINT(google-explicit-constructor)
  Scalar(bool v) : value_(v) {}               // NOLINT(google-explicit-constructor)

  bool isFloat() const { return std::holds_alternative<double>(value_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(value_); }
  bool isBool() const { return std::holds_alternative<bool>(value_); }

  /// Numeric value as double (bool maps to 0/1).
  double toDouble() const {
    if (isFloat()) return std::get<double>(value_);
    if (isInt()) return static_cast<double>(std::get<std::int64_t>(value_));
    return std::get<bool>(value_) ? 1.0 : 0.0;
  }

  std::int64_t toInt() const {
    if (isInt()) return std::get<std::int64_t>(value_);
    if (isBool()) return std::get<bool>(value_) ? 1 : 0;
    return static_cast<std::int64_t>(std::get<double>(value_));
  }

  bool toBool() const { return toDouble() != 0.0; }

  DType dtype() const {
    if (isFloat()) return DType::Float32;
    if (isInt()) return DType::Int64;
    return DType::Bool;
  }

  friend bool operator==(const Scalar& a, const Scalar& b) {
    return a.value_ == b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Scalar& s) {
    if (s.isFloat()) return os << std::get<double>(s.value_);
    if (s.isInt()) return os << std::get<std::int64_t>(s.value_);
    return os << (std::get<bool>(s.value_) ? "true" : "false");
  }

 private:
  std::variant<double, std::int64_t, bool> value_;
};

}  // namespace tssa
