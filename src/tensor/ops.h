// Out-of-place tensor operators (the "aten" compute library).
//
// Every operator here is pure: inputs are never modified and results own fresh
// storage. In-place variants live on Tensor itself (`copy_`, `fill_`) or are
// composed by the runtime as pure-compute + copy_ — mirroring how the
// TensorSSA lower-inplace canonicalization treats them.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace tssa::ops {

// ---- Elementwise binary (broadcasting) --------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor pow(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);

/// Scalar right-hand sides broadcast as rank-0 tensors.
Tensor add(const Tensor& a, Scalar b);
Tensor sub(const Tensor& a, Scalar b);
Tensor mul(const Tensor& a, Scalar b);
Tensor div(const Tensor& a, Scalar b);

// ---- Comparisons (result dtype Bool) ------------------------------------------

Tensor eq(const Tensor& a, const Tensor& b);
Tensor ne(const Tensor& a, const Tensor& b);
Tensor lt(const Tensor& a, const Tensor& b);
Tensor le(const Tensor& a, const Tensor& b);
Tensor gt(const Tensor& a, const Tensor& b);
Tensor ge(const Tensor& a, const Tensor& b);
Tensor logicalAnd(const Tensor& a, const Tensor& b);
Tensor logicalOr(const Tensor& a, const Tensor& b);
Tensor logicalNot(const Tensor& a);

// ---- Elementwise unary -----------------------------------------------------------

Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor clamp(const Tensor& a, Scalar lo, Scalar hi);

// ---- Selection -------------------------------------------------------------------

/// Elementwise `cond ? a : b` with broadcasting. `cond` must be Bool.
Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b);
/// Copy of `a` with elements where `mask` is true replaced by `value`.
Tensor maskedFill(const Tensor& a, const Tensor& mask, Scalar value);

// ---- Reductions ----------------------------------------------------------------

Tensor sum(const Tensor& a);                       // rank-0 result
Tensor sum(const Tensor& a, std::int64_t dim, bool keepDim = false);
Tensor mean(const Tensor& a, std::int64_t dim, bool keepDim = false);
Tensor maxReduce(const Tensor& a, std::int64_t dim, bool keepDim = false);
Tensor minReduce(const Tensor& a, std::int64_t dim, bool keepDim = false);
/// Index of the maximum along `dim` (Int64 result).
Tensor argmax(const Tensor& a, std::int64_t dim, bool keepDim = false);
/// Numerically-stable softmax along `dim` (Float32 result).
Tensor softmax(const Tensor& a, std::int64_t dim);

// ---- Linear algebra ---------------------------------------------------------------

/// 2-D matrix product [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// Batched matrix product [b,m,k] x [b,k,n] -> [b,m,n].
Tensor bmm(const Tensor& a, const Tensor& b);

// ---- Shape combinators ---------------------------------------------------------------

/// Concatenates along `dim`; all inputs must match on the other dims.
Tensor cat(std::span<const Tensor> tensors, std::int64_t dim);
/// Stacks along a new leading-at-`dim` dimension.
Tensor stack(std::span<const Tensor> tensors, std::int64_t dim);

// ---- Gather-style indexing (produces copies, not views) ---------------------------------

/// index_select: picks rows of `a` along `dim` by 1-D Int64 `index`.
Tensor indexSelect(const Tensor& a, std::int64_t dim, const Tensor& index);
/// Gathers elements: out[i...] = a[..., index[i...], ...] along `dim`.
Tensor gather(const Tensor& a, std::int64_t dim, const Tensor& index);
/// topk values+indices along last dim, descending. Returns {values, indices}.
std::pair<Tensor, Tensor> topk(const Tensor& a, std::int64_t k);
/// Indices that sort the last dim (descending when `descending`).
Tensor argsort(const Tensor& a, bool descending);
/// Cumulative sum along `dim`.
Tensor cumsum(const Tensor& a, std::int64_t dim);

}  // namespace tssa::ops
