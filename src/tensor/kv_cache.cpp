#include "src/tensor/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "src/support/error.h"

namespace tssa {

KvCache::KvCache(KvCacheOptions options) : options_(options) {
  TSSA_CHECK(options_.pageTokens > 0, "pageTokens must be positive");
  TSSA_CHECK(options_.tokenFloats > 0 && options_.tokenFloats % 2 == 0,
             "tokenFloats must be a positive even number (K row + V row)");
  TSSA_CHECK(options_.slabPages > 0, "slabPages must be positive");
  TSSA_CHECK(options_.maxPages >= 0, "maxPages must be >= 0");
}

std::int64_t KvCache::pagesNeededFor(std::int64_t totalTokens) const {
  return (totalTokens + options_.pageTokens - 1) / options_.pageTokens;
}

bool KvCache::tryReserve(const std::string& session,
                         std::int64_t totalTokens) {
  TSSA_CHECK(totalTokens > 0, "session '" << session
                                          << "' must reserve >= 1 token");
  const std::int64_t pages = pagesNeededFor(totalTokens);
  std::lock_guard<std::mutex> lock(mutex_);
  TSSA_CHECK(!sessions_.contains(session),
             "session '" << session << "' already holds a KV reservation");
  if (options_.maxPages > 0 &&
      stats_.pagesReserved + pages > options_.maxPages) {
    ++stats_.exhaustedReservations;
    return false;
  }
  SessionState state;
  state.reservedPages = pages;
  sessions_.emplace(session, std::move(state));
  stats_.pagesReserved += pages;
  stats_.activeSessions = static_cast<std::int64_t>(sessions_.size());
  return true;
}

float* KvCache::pageData(std::int32_t id) {
  const std::int64_t pageFloats = options_.pageTokens * options_.tokenFloats;
  const std::int64_t slab = id / options_.slabPages;
  const std::int64_t inSlab = id % options_.slabPages;
  return slabs_[static_cast<std::size_t>(slab)]->as<float>() +
         inSlab * pageFloats;
}

const float* KvCache::pageData(std::int32_t id) const {
  return const_cast<KvCache*>(this)->pageData(id);
}

std::int32_t KvCache::allocPage() {
  if (freePages_.empty()) {
    const std::int64_t pageFloats = options_.pageTokens * options_.tokenFloats;
    slabs_.push_back(
        arena_.allocate(options_.slabPages * pageFloats, DType::Float32));
    stats_.slabBytes += options_.slabPages * pageFloats *
                        static_cast<std::int64_t>(sizeof(float));
    // Newest pages go to the back of the free list so low page ids (and
    // their slabs) are reused first.
    for (std::int64_t i = options_.slabPages; i > 0; --i)
      freePages_.push_back(
          static_cast<std::int32_t>(pagesAllocated_ + i - 1));
    pagesAllocated_ += options_.slabPages;
  }
  const std::int32_t id = freePages_.back();
  freePages_.pop_back();
  ++stats_.pagesInUse;
  ++stats_.pageAllocs;
  stats_.pagesHighWater = std::max(stats_.pagesHighWater, stats_.pagesInUse);
  return id;
}

void KvCache::append(const std::string& session, std::span<const float> kRow,
                     std::span<const float> vRow) {
  const std::int64_t rowFloats = options_.tokenFloats / 2;
  TSSA_CHECK(static_cast<std::int64_t>(kRow.size()) == rowFloats &&
                 static_cast<std::int64_t>(vRow.size()) == rowFloats,
             "KV rows must each hold tokenFloats/2 = " << rowFloats
                                                       << " floats");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  TSSA_CHECK(it != sessions_.end(),
             "append to unknown KV session '" << session << "'");
  SessionState& state = it->second;
  const std::int64_t slot = state.tokens % options_.pageTokens;
  if (slot == 0) {
    TSSA_CHECK(static_cast<std::int64_t>(state.pageTable.size()) <
                   state.reservedPages,
               "session '" << session << "' overran its KV reservation of "
                           << state.reservedPages << " pages");
    state.pageTable.push_back(allocPage());
  }
  float* page = pageData(state.pageTable.back());
  float* tokenBase = page + slot * options_.tokenFloats;
  std::memcpy(tokenBase, kRow.data(), sizeof(float) * kRow.size());
  std::memcpy(tokenBase + rowFloats, vRow.data(), sizeof(float) * vRow.size());
  ++state.tokens;
  ++stats_.appendedTokens;
}

std::int64_t KvCache::tokens(const std::string& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  TSSA_CHECK(it != sessions_.end(),
             "unknown KV session '" << session << "'");
  return it->second.tokens;
}

void KvCache::gather(const std::string& session, std::int64_t bucket,
                     float* kOut, float* vOut) const {
  const std::int64_t rowFloats = options_.tokenFloats / 2;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  TSSA_CHECK(it != sessions_.end(),
             "gather from unknown KV session '" << session << "'");
  const SessionState& state = it->second;
  TSSA_CHECK(bucket >= state.tokens,
             "context bucket " << bucket << " cannot hold "
                               << state.tokens << " cached tokens");
  std::memset(kOut, 0, sizeof(float) * static_cast<std::size_t>(
                                           bucket * rowFloats));
  std::memset(vOut, 0, sizeof(float) * static_cast<std::size_t>(
                                           bucket * rowFloats));
  for (std::int64_t t = 0; t < state.tokens; ++t) {
    const std::int32_t page =
        state.pageTable[static_cast<std::size_t>(t / options_.pageTokens)];
    const float* tokenBase = pageData(page) +
                             (t % options_.pageTokens) * options_.tokenFloats;
    std::memcpy(kOut + t * rowFloats, tokenBase, sizeof(float) * rowFloats);
    std::memcpy(vOut + t * rowFloats, tokenBase + rowFloats,
                sizeof(float) * rowFloats);
  }
}

void KvCache::release(const std::string& session) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  SessionState& state = it->second;
  // Bulk free: the whole page table goes back in one splice.
  const std::int64_t freed =
      static_cast<std::int64_t>(state.pageTable.size());
  freePages_.insert(freePages_.end(), state.pageTable.begin(),
                    state.pageTable.end());
  stats_.pagesInUse -= freed;
  stats_.pageFrees += freed;
  stats_.pagesReserved -= state.reservedPages;
  sessions_.erase(it);
  stats_.activeSessions = static_cast<std::int64_t>(sessions_.size());
}

void KvCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.pageFrees += stats_.pagesInUse;
  stats_.pagesInUse = 0;
  stats_.pagesReserved = 0;
  stats_.activeSessions = 0;
  stats_.slabBytes = 0;
  sessions_.clear();
  freePages_.clear();
  pagesAllocated_ = 0;
  for (StoragePtr& slab : slabs_) arena_.recycle(std::move(slab));
  slabs_.clear();
}

KvCache::Stats KvCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.pageCapacity = options_.maxPages;
  return s;
}

}  // namespace tssa
