// Error handling utilities for the TensorSSA library.
//
// All user-visible failures (shape mismatches, malformed IR, unsupported
// lowering) are reported by throwing `tssa::Error`, which carries a formatted
// message and the throw site. Internal invariants use TSSA_CHECK, which also
// throws (never aborts) so tests can assert on failure behaviour.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace tssa {

/// Exception type thrown on any library failure.
class Error : public std::runtime_error {
 public:
  Error(std::string message, const char* file, int line)
      : std::runtime_error(format(message, file, line)),
        message_(std::move(message)) {}

  /// The raw message without the file/line decoration.
  const std::string& message() const noexcept { return message_; }

 private:
  static std::string format(const std::string& message, const char* file,
                            int line) {
    std::ostringstream os;
    os << message << " (at " << file << ":" << line << ")";
    return os.str();
  }

  std::string message_;
};

namespace detail {

/// Stream-style message builder used by the TSSA_CHECK / TSSA_THROW macros.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace tssa

/// Throws tssa::Error with a stream-formatted message.
#define TSSA_THROW(msg_stream)                                            \
  do {                                                                    \
    ::tssa::detail::MessageBuilder tssa_mb__;                             \
    tssa_mb__ << msg_stream;                                              \
    throw ::tssa::Error(tssa_mb__.str(), __FILE__, __LINE__);             \
  } while (false)

/// Checks a condition; on failure throws tssa::Error describing it.
#define TSSA_CHECK(cond, msg_stream)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tssa::detail::MessageBuilder tssa_mb__;                           \
      tssa_mb__ << "check failed: " #cond ": " << msg_stream;             \
      throw ::tssa::Error(tssa_mb__.str(), __FILE__, __LINE__);           \
    }                                                                     \
  } while (false)
