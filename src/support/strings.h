// Small string-formatting helpers shared across the library.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace tssa {

/// Joins the elements of `items` with `sep`, streaming each through
/// operator<<. Works for any streamable element type.
template <typename Container>
std::string join(const Container& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

/// Renders a container as "[a, b, c]".
template <typename Container>
std::string bracketed(const Container& items) {
  return "[" + join(items, ", ") + "]";
}

/// True if `text` starts with `prefix`.
inline bool startsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

/// Splits `text` on `sep`, keeping empty fields.
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace tssa
