#include "src/analysis/alias_graph.h"

#include <algorithm>
#include <functional>

namespace tssa::analysis {

using ir::Block;
using ir::Graph;
using ir::Node;
using ir::OpKind;
using ir::Value;

namespace {

/// Simple union-find over values.
class UnionFind {
 public:
  std::size_t find(const Value* v) {
    auto it = id_.find(v);
    if (it == id_.end()) {
      const std::size_t fresh = parent_.size();
      id_[v] = fresh;
      parent_.push_back(fresh);
      return fresh;
    }
    return findRoot(it->second);
  }

  void unite(const Value* a, const Value* b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra != rb) parent_[ra] = rb;
  }

  bool connected(const Value* a, const Value* b) {
    return find(a) == find(b);
  }

 private:
  std::size_t findRoot(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  std::unordered_map<const Value*, std::size_t> id_;
  std::vector<std::size_t> parent_;
};

void collectEdges(const Block& block, std::vector<AliasEdge>& edges) {
  for (const Node* node : block) {
    const OpKind kind = node->kind();
    if (ir::isViewOp(kind)) {
      edges.push_back({node->output(0), node->input(0), AliasEdgeKind::Memory});
    } else if (ir::isMutationOp(kind)) {
      // The returned value aliases the mutated operand (identity view).
      edges.push_back({node->output(0), node->input(0), AliasEdgeKind::Memory});
    } else if (kind == OpKind::ListConstruct) {
      for (const Value* in : node->inputs())
        edges.push_back({node->output(0), in, AliasEdgeKind::Container});
    } else if (kind == OpKind::ListIndex) {
      edges.push_back(
          {node->output(0), node->input(0), AliasEdgeKind::Container});
    } else if (kind == OpKind::If) {
      for (std::size_t i = 0; i < node->numOutputs(); ++i) {
        for (const Block* b : node->blocks()) {
          edges.push_back({node->output(i), b->returns()[i],
                           AliasEdgeKind::ControlFlow});
        }
      }
    } else if (kind == OpKind::Loop || kind == OpKind::ParallelMap) {
      const Block* body = node->block(0);
      for (std::size_t i = 0; i < node->numOutputs(); ++i) {
        edges.push_back({node->output(i), body->returns()[i],
                         AliasEdgeKind::ControlFlow});
        edges.push_back({body->param(i + 1), node->input(i + 1),
                         AliasEdgeKind::ControlFlow});
        edges.push_back({body->param(i + 1), body->returns()[i],
                         AliasEdgeKind::ControlFlow});
      }
    }
    for (const Block* b : node->blocks()) collectEdges(*b, edges);
  }
}

/// Collects every mutation node under `block` in program order.
void collectMutations(const Block& block, std::vector<Node*>& out) {
  for (Node* node : block) {
    if (ir::isMutationOp(node->kind())) out.push_back(node);
    for (Block* b : node->blocks()) collectMutations(*b, out);
  }
}

/// Collects every view-producing node under `block` in program order.
void collectViewNodes(const Block& block, std::vector<Node*>& out) {
  for (Node* node : block) {
    if (ir::isViewOp(node->kind())) out.push_back(node);
    for (Block* b : node->blocks()) collectViewNodes(*b, out);
  }
}

/// Collects ListConstruct nodes in program order.
void collectListNodes(const Block& block, std::vector<Node*>& out) {
  for (Node* node : block) {
    if (node->kind() == OpKind::ListConstruct) out.push_back(node);
    for (Block* b : node->blocks()) collectListNodes(*b, out);
  }
}

/// Innermost Loop/ParallelMap block enclosing `n`, or nullptr.
const Block* enclosingLoopBlock(const Node* n) {
  for (const Block* b = n->owningBlock(); b != nullptr;
       b = b->owningNode() ? b->owningNode()->owningBlock() : nullptr) {
    const Node* owner = b->owningNode();
    if (owner != nullptr && (owner->kind() == OpKind::Loop ||
                             owner->kind() == OpKind::ParallelMap)) {
      return b;
    }
  }
  return nullptr;
}

/// True when `a` and `b` are both nested (at any depth) inside one common
/// loop body — mutation effects can then wrap around iterations.
bool shareEnclosingLoop(const Node* a, const Node* b) {
  for (const Block* la = enclosingLoopBlock(a); la != nullptr;
       la = la->owningNode() ? enclosingLoopBlock(la->owningNode()) : nullptr) {
    if (la->encloses(b->owningBlock())) return true;
  }
  return false;
}

}  // namespace

AliasInfo AliasInfo::analyze(Graph& graph) {
  AliasInfo info;
  collectEdges(*graph.topBlock(), info.edges_);

  // May-alias: union over all edge kinds.
  UnionFind may;
  for (const AliasEdge& e : info.edges_) may.unite(e.from, e.to);

  // Memory components: follow the unique memory out-edge to the root.
  std::unordered_map<const Value*, const Value*> memParent;
  for (const AliasEdge& e : info.edges_) {
    if (e.kind == AliasEdgeKind::Memory) memParent[e.from] = e.to;
  }
  std::function<const Value*(const Value*)> rootOf =
      [&](const Value* v) -> const Value* {
    auto it = memParent.find(v);
    return it == memParent.end() ? v : rootOf(it->second);
  };
  for (const auto& [from, to] : memParent) {
    info.memRoot_[from] = rootOf(from);
    info.memRoot_[to] = rootOf(to);
  }
  for (const AliasEdge& e : info.edges_) {
    info.mayGroup_[e.from] = may.find(e.from);
    info.mayGroup_[e.to] = may.find(e.to);
  }

  // ---- T-set extraction -----------------------------------------------------
  std::unordered_map<const Value*, std::size_t> setOfOrigin;
  auto setFor = [&](Value* origin) -> TensorSet& {
    auto it = setOfOrigin.find(origin);
    if (it == setOfOrigin.end()) {
      setOfOrigin[origin] = info.sets_.size();
      info.sets_.push_back(TensorSet{});
      info.sets_.back().origin = origin;
      return info.sets_.back();
    }
    return info.sets_[it->second];
  };

  std::vector<Node*> viewNodes;
  collectViewNodes(*graph.topBlock(), viewNodes);
  for (Node* v : viewNodes) {
    Value* origin =
        const_cast<Value*>(info.memoryRoot(v->output(0)));
    setFor(origin).views.push_back(v->output(0));
  }
  std::vector<Node*> mutations;
  collectMutations(*graph.topBlock(), mutations);
  for (Node* m : mutations) {
    Value* origin = const_cast<Value*>(info.memoryRoot(m->input(0)));
    TensorSet& set = setFor(origin);
    set.mutations.push_back(m);
    // The mutation's returned alias is part of V as well.
    set.views.push_back(m->output(0));
  }

  // ---- Functionalizability --------------------------------------------------
  std::vector<Node*> listNodes;
  collectListNodes(*graph.topBlock(), listNodes);

  for (TensorSet& set : info.sets_) {
    if (set.mutations.empty()) {
      set.functionalizable = false;
      set.reason = "no mutation (already functional)";
      continue;
    }
    // Container hazard: a list holding one of our aliases observes mutations
    // that happen after the list is built (or may wrap around a shared loop).
    bool hazard = false;
    for (const Node* lc : listNodes) {
      bool holdsAlias = false;
      for (const Value* in : lc->inputs()) {
        if (in == set.origin || info.mustAlias(in, set.origin)) {
          holdsAlias = true;
          break;
        }
      }
      if (!holdsAlias) continue;
      for (const Node* m : set.mutations) {
        if (!m->isBefore(lc) || shareEnclosingLoop(m, lc)) {
          hazard = true;
          set.reason = "container holds alias observed by later mutation";
          break;
        }
      }
      if (hazard) break;
    }
    if (hazard) {
      set.functionalizable = false;
      continue;
    }
    set.functionalizable = true;
    set.reason = "memory-dependency sub-graph (must-alias)";
  }
  return info;
}

bool AliasInfo::mayAlias(const Value* a, const Value* b) const {
  if (a == b) return true;
  auto ia = mayGroup_.find(a);
  auto ib = mayGroup_.find(b);
  if (ia == mayGroup_.end() || ib == mayGroup_.end()) return false;
  return ia->second == ib->second;
}

bool AliasInfo::mustAlias(const Value* a, const Value* b) const {
  if (a == b) return true;
  return memoryRoot(a) == memoryRoot(b);
}

const Value* AliasInfo::memoryRoot(const Value* v) const {
  auto it = memRoot_.find(v);
  return it == memRoot_.end() ? v : it->second;
}

}  // namespace tssa::analysis
