// Per-node flops/bytes accounting over graph-level IR (ROADMAP item 5).
//
// estimateCost() walks a graph with *metadata semantics*: every value is
// reduced to its shape/dtype (tensors), its concrete value (scalars — loop
// trips, slice bounds and view extents depend on them), or a list of tensor
// metas. No tensor data is allocated or moved. The walk mirrors the
// reference interpreter's charging rules exactly — the same per-op bytes and
// flops formulas (matmul = 2·M·N·K, softmax = 5·numel, ...), the same
// ParallelMap launch merging, the same FusionGroup external-traffic pricing
// (texpr-backed groups priced by the texpr RunStats rules, interpreted
// bodies by the suppress-scope rules) — and prices them with the same
// DeviceSpec/HostSpec math as the Profiler. For a program whose control
// flow and shapes are fully determined by the inputs' metadata (all eight
// paper workloads qualify), the report equals what Profiler would observe:
// identical launches, bytes, flops, per-kernel histogram, and simulated
// latency. Property tests in tests/cost_model_test.cpp hold this equality
// differentially against real execution.
//
// Symbolic dims: bindSymbolic() turns a workload's SymbolicPattern input
// types plus a symbol->extent binding into cost inputs, so one polymorphic
// program yields a cost as a function of the bound extents — the offline
// scoring oracle of the autotuner (src/tune).
//
// Ops whose outcome the metadata cannot determine (an If on a data-derived
// condition, a loop with unknown trip count) are counted in `unknownOps`
// (chainer-compiler's num_unknown_ops idiom): their outputs become unknown
// and they charge nothing, so a report with unknownOps > 0 is a lower
// bound, flagged by exact() == false.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "src/ir/ir.h"
#include "src/runtime/device.h"
#include "src/runtime/rt_value.h"
#include "src/tensor/dtype.h"
#include "src/tensor/scalar.h"
#include "src/tensor/shape.h"

namespace tssa::analysis {

/// Shape/dtype of one tensor, without storage.
struct TensorMeta {
  Shape sizes;
  DType dtype = DType::Float32;

  std::int64_t numel() const { return numelOf(sizes); }
  std::int64_t bytes() const {
    return numel() * static_cast<std::int64_t>(dtypeSize(dtype));
  }
  friend bool operator==(const TensorMeta&, const TensorMeta&) = default;
};

/// Abstract runtime value of the cost walk: tensor metadata, a known scalar,
/// a list of tensor metas, or unknown (data-dependent).
class CostValue {
 public:
  CostValue() : value_(Unknown{}) {}

  static CostValue tensor(Shape sizes, DType dtype) {
    CostValue v;
    v.value_ = TensorMeta{std::move(sizes), dtype};
    return v;
  }
  static CostValue tensor(TensorMeta meta) {
    CostValue v;
    v.value_ = std::move(meta);
    return v;
  }
  static CostValue scalar(Scalar s) {
    CostValue v;
    v.value_ = s;
    return v;
  }
  static CostValue list(std::vector<TensorMeta> items) {
    CostValue v;
    v.value_ = std::move(items);
    return v;
  }
  static CostValue unknown() { return CostValue(); }

  bool isTensor() const { return std::holds_alternative<TensorMeta>(value_); }
  bool isScalar() const { return std::holds_alternative<Scalar>(value_); }
  bool isList() const {
    return std::holds_alternative<std::vector<TensorMeta>>(value_);
  }
  bool isUnknown() const { return std::holds_alternative<Unknown>(value_); }

  /// Typed accessors; throw tssa::Error when the value is of another kind
  /// (estimateCost turns that into an unknown-op, never a crash).
  const TensorMeta& tensorMeta() const;
  Scalar scalarValue() const;
  const std::vector<TensorMeta>& listMeta() const;

 private:
  struct Unknown {};
  std::variant<Unknown, TensorMeta, Scalar, std::vector<TensorMeta>> value_;
};

/// Metadata of concrete runtime inputs (what the serving engine holds at
/// admission time).
std::vector<CostValue> costInputs(std::span<const runtime::RtValue> inputs);

/// Instantiates symbolic input types (a workload's SymbolicPattern) under a
/// symbol->extent binding: each `Dim` resolves to binding[sym] + offset.
/// Scalar input types become unknown scalars unless `scalarInputs` overrides
/// them positionally (index -> value). Throws on an unbound symbol.
std::vector<CostValue> bindSymbolic(
    std::span<const ir::Type> inputs,
    const std::map<std::string, std::int64_t>& extents,
    const std::map<std::size_t, Scalar>& scalarInputs = {});

struct CostOptions {
  runtime::DeviceSpec device = runtime::DeviceSpec::dataCenter();
  runtime::HostSpec host = runtime::HostSpec::torchscriptVm();
  /// Price FusionGroups whose body the texpr backend supports by the texpr
  /// RunStats rules (what the interpreter charges with useTexpr on);
  /// otherwise every group is priced by the interpreted-body rules.
  bool useTexpr = true;
  /// Loops beyond this trip count are not unrolled by the walk; they count
  /// as one unknown op instead (guards pathological generated programs).
  std::int64_t maxLoopTrip = 1 << 20;
};

/// The accounting result; field semantics match runtime::Profiler exactly.
struct CostReport {
  std::int64_t launches = 0;  ///< modelled kernel launches
  std::int64_t bytes = 0;     ///< external memory traffic
  std::int64_t flops = 0;
  double gpuUs = 0;   ///< device busy time under `device`
  double hostUs = 0;  ///< framework time under `host`
  double simUs = 0;   ///< modelled end-to-end latency
  /// Ops the metadata walk could not resolve; > 0 means every other field
  /// is a lower bound.
  std::int64_t unknownOps = 0;
  /// Launches per kernel name (Profiler::kernelHistogram layout).
  std::map<std::string, std::int64_t> perKernel;

  bool exact() const { return unknownOps == 0; }
};

/// Accounts `graph` run on inputs described by `inputs` (one per graph
/// input). Never executes tensor code and never throws on unsupported
/// structure — unresolvable ops degrade into `unknownOps`.
CostReport estimateCost(const ir::Graph& graph,
                        std::span<const CostValue> inputs,
                        const CostOptions& options = {});

}  // namespace tssa::analysis
