// Liveness-driven memory planning over the structured SSA graph.
//
// Because functionalization leaves every value in SSA form, "last use" is
// well-defined per block: a value defined in block B dies right after the
// B-level node that (transitively) contains its lexically last user. Uses
// inside nested regions (`prim::If` branches, `prim::Loop` bodies,
// FusionGroup / ParallelMap bodies) are attributed to the containing node at
// B's level, so carried values stay live across every iteration of a loop
// that reads them and die only once the loop completes. A value consumed by
// its own block's Return sentinel escapes the block and never dies inside
// it — this is the static half of the escape rule (the Arena's refcount
// check is the dynamic half, see src/tensor/arena.h and DESIGN.md §8).
//
// The plan has two products: per-node death lists the interpreter uses to
// release bindings (and recycle their buffers) as soon as they can no longer
// be read, and a linear-scan slot assignment that documents the static reuse
// structure (how many distinct buffers a planned program actually needs).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"

namespace tssa::analysis {

/// The static buffer plan for one compiled graph. Keys are Node*/Value*
/// identities of that exact graph instance.
struct MemoryPlan {
  /// Values whose last use (in their defining block) is this node: their
  /// bindings can be dropped right after the node executes. Inside a loop
  /// body the release re-runs every iteration; the value is re-bound when
  /// its defining node executes again.
  std::unordered_map<const ir::Node*, std::vector<const ir::Value*>>
      deathsAfter;

  /// Liveness-driven slot assignment: values that are never live at the same
  /// time share a slot. The runtime realizes slot sharing dynamically via
  /// the Arena's size-class pool; these numbers document the static
  /// structure and feed the planner's tests.
  std::unordered_map<const ir::Value*, int> slots;
  int slotCount = 0;            ///< distinct slots after reuse
  std::size_t totalValues = 0;  ///< values the analysis considered
  std::size_t plannedDeaths = 0;  ///< values that die somewhere

  const std::vector<const ir::Value*>* deathsFor(const ir::Node* node) const {
    auto it = deathsAfter.find(node);
    return it == deathsAfter.end() ? nullptr : &it->second;
  }
};

/// Builds the memory plan for `graph`. Valid for any graph the interpreter
/// can run (pre- or post-TensorSSA): the plan only encodes earliest release
/// points, and the runtime still proves sole ownership via the storage
/// refcount before recycling anything.
MemoryPlan planMemory(const ir::Graph& graph);

}  // namespace tssa::analysis
