// Tensor-level alias analysis (paper §2.3).
//
// Builds the alias graph of a graph-level IR program: a directed graph over
// tensor Values whose points-to edges record the three dependency classes of
// the paper — memory (views), control flow (block args/returns), and
// container (lists). From the memory-dependency sub-graphs it extracts the
// T-sets of Eq. (1)-(2):
//
//     T := (t, V, M)
//
// where `t` is the origin tensor owning the storage, `V` all values reachable
// from `t` through view edges, and `M` every Mutate operator whose target is
// in {t} ∪ V. Each T-set is additionally classified as functionalizable or
// not (with a reason), implementing the paper's restriction to sub-graphs
// that consist solely of must-alias memory dependencies.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"

namespace tssa::analysis {

enum class AliasEdgeKind : std::uint8_t {
  Memory,       ///< p is a view of q (or the returned alias of a mutation)
  ControlFlow,  ///< p is a block argument of q / q is a block return of p
  Container,    ///< a list q contains p
};

struct AliasEdge {
  const ir::Value* from = nullptr;
  const ir::Value* to = nullptr;
  AliasEdgeKind kind = AliasEdgeKind::Memory;
};

/// One memory-dependent sub-graph, Eq. (1)-(2) of the paper.
struct TensorSet {
  /// The origin tensor that owns the storage.
  ir::Value* origin = nullptr;
  /// All aliasing values reachable from `origin` via view edges (including
  /// mutation-returned aliases), in program order of their definitions.
  std::vector<ir::Value*> views;
  /// All mutation nodes writing into this storage, in program order.
  std::vector<ir::Node*> mutations;
  /// Whether the TensorSSA conversion may functionalize this set.
  bool functionalizable = false;
  /// Human-readable reason when not functionalizable.
  std::string reason;
};

class AliasInfo {
 public:
  /// Analyzes `graph` (which must be verified IR).
  static AliasInfo analyze(ir::Graph& graph);

  const std::vector<AliasEdge>& edges() const { return edges_; }
  const std::vector<TensorSet>& sets() const { return sets_; }
  std::vector<TensorSet>& sets() { return sets_; }

  /// Values connected by any chain of alias edges (any kind, undirected).
  bool mayAlias(const ir::Value* a, const ir::Value* b) const;
  /// Values connected purely by memory edges: in our structured setting each
  /// view has exactly one points-to edge, so memory connectivity is
  /// must-alias (paper §2.3).
  bool mustAlias(const ir::Value* a, const ir::Value* b) const;

  /// The origin tensor of `v`'s memory component (v itself if it is one).
  const ir::Value* memoryRoot(const ir::Value* v) const;

 private:
  std::vector<AliasEdge> edges_;
  std::vector<TensorSet> sets_;
  std::unordered_map<const ir::Value*, const ir::Value*> memRoot_;
  std::unordered_map<const ir::Value*, std::size_t> mayGroup_;
};

}  // namespace tssa::analysis
