#include "src/analysis/liveness.h"

#include "src/support/error.h"

namespace tssa::analysis {
namespace {

using ir::Block;
using ir::Node;
using ir::Use;
using ir::Value;

/// Walks `user` up the region nesting until reaching the node that lives
/// directly in `scope` (possibly `user` itself). Returns nullptr when `user`
/// is not nested under `scope` — with SSA dominance that cannot happen for a
/// use of a value defined in `scope`, but the walk is kept defensive: an
/// unattributable use simply means "never release", which is always safe.
const Node* ancestorIn(const Node* user, const Block* scope) {
  const Node* n = user;
  while (n != nullptr) {
    const Block* b = n->owningBlock();
    if (b == scope) return n;
    n = b == nullptr ? nullptr : b->owningNode();
  }
  return nullptr;
}

class Planner {
 public:
  MemoryPlan take() && { return std::move(plan_); }

  void planBlock(const Block& block) {
    // Lexical position of every node in this block (the Return sentinel is
    // not part of the iteration and is handled separately as "escape").
    std::unordered_map<const Node*, std::size_t> order;
    std::vector<const Node*> nodes;
    for (const Node* node : block) {
      order.emplace(node, nodes.size());
      nodes.push_back(node);
    }

    // Death point of one value defined in this block (param or node output):
    // the block-level node containing its last use, or nullptr when the
    // value escapes through the block's Return sentinel (or has no use at
    // all as a param).
    auto deathOf = [&](const Value* v, const Node* def) -> const Node* {
      const Node* last = def;  // unused node outputs die where they are born
      std::size_t lastPos = def != nullptr ? order.at(def) : 0;
      for (const Use& use : v->uses()) {
        if (use.user == block.returnNode()) return nullptr;  // escapes
        const Node* at = ancestorIn(use.user, &block);
        if (at == nullptr || at == block.returnNode()) return nullptr;
        const std::size_t pos = order.at(at);
        if (last == nullptr || pos >= lastPos) {
          last = at;
          lastPos = pos;
        }
      }
      return last;
    };

    auto consider = [&](const Value* v, const Node* def) {
      ++plan_.totalValues;
      if (const Node* death = deathOf(v, def)) {
        plan_.deathsAfter[death].push_back(v);
        ++plan_.plannedDeaths;
      }
    };

    for (const Value* param : block.params()) consider(param, nullptr);
    for (const Node* node : nodes)
      for (const Value* out : node->outputs()) consider(out, node);

    // Linear-scan slot assignment over the block in program order, recursing
    // into nested regions so their values interleave with ours on the shared
    // free list (a nested region's scratch can reuse a slot our dead value
    // just released, and vice versa once the region's own values are done).
    std::vector<const Value*> blockOwned;
    for (const Value* param : block.params()) {
      plan_.slots.emplace(param, acquireSlot());
      blockOwned.push_back(param);
    }
    for (const Node* node : nodes) {
      for (const Block* nested : node->blocks()) planBlock(*nested);
      for (const Value* out : node->outputs()) {
        plan_.slots.emplace(out, acquireSlot());
        blockOwned.push_back(out);
      }
      if (const auto* deaths = plan_.deathsFor(node))
        for (const Value* v : *deaths) releaseSlot(plan_.slots.at(v));
    }
    // The block's frame is gone once it returns: slots of values that never
    // died inside it (escapers, unused params) become free for whatever runs
    // after the owning node.
    for (const Value* v : blockOwned) {
      const int slot = plan_.slots.at(v);
      if (!released_[static_cast<std::size_t>(slot)]) releaseSlot(slot);
    }
  }

 private:
  int acquireSlot() {
    if (!freeSlots_.empty()) {
      const int s = freeSlots_.back();
      freeSlots_.pop_back();
      released_[static_cast<std::size_t>(s)] = false;
      return s;
    }
    const int s = plan_.slotCount++;
    released_.push_back(false);
    return s;
  }

  void releaseSlot(int slot) {
    if (released_[static_cast<std::size_t>(slot)]) return;
    released_[static_cast<std::size_t>(slot)] = true;
    freeSlots_.push_back(slot);
  }

  MemoryPlan plan_;
  std::vector<int> freeSlots_;
  std::vector<bool> released_;
};

}  // namespace

MemoryPlan planMemory(const ir::Graph& graph) {
  Planner planner;
  planner.planBlock(*graph.topBlock());
  return std::move(planner).take();
}

}  // namespace tssa::analysis
