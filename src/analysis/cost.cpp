#include "src/analysis/cost.h"

#include <algorithm>

#include "src/support/error.h"
#include "src/texpr/texpr.h"

namespace tssa::analysis {

using ir::Node;
using ir::OpKind;

const TensorMeta& CostValue::tensorMeta() const {
  const TensorMeta* t = std::get_if<TensorMeta>(&value_);
  TSSA_CHECK(t != nullptr, "cost value is not a tensor");
  return *t;
}

Scalar CostValue::scalarValue() const {
  const Scalar* s = std::get_if<Scalar>(&value_);
  TSSA_CHECK(s != nullptr, "cost value is not a known scalar");
  return *s;
}

const std::vector<TensorMeta>& CostValue::listMeta() const {
  const auto* l = std::get_if<std::vector<TensorMeta>>(&value_);
  TSSA_CHECK(l != nullptr, "cost value is not a tensor list");
  return *l;
}

std::vector<CostValue> costInputs(std::span<const runtime::RtValue> inputs) {
  std::vector<CostValue> out;
  out.reserve(inputs.size());
  for (const runtime::RtValue& v : inputs) {
    if (v.isTensor()) {
      out.push_back(
          CostValue::tensor(v.tensor().sizes(), v.tensor().dtype()));
    } else if (v.isScalar()) {
      out.push_back(CostValue::scalar(v.scalar()));
    } else {
      std::vector<TensorMeta> items;
      items.reserve(v.list().size());
      for (const Tensor& t : v.list())
        items.push_back(TensorMeta{t.sizes(), t.dtype()});
      out.push_back(CostValue::list(std::move(items)));
    }
  }
  return out;
}

std::vector<CostValue> bindSymbolic(
    std::span<const ir::Type> inputs,
    const std::map<std::string, std::int64_t>& extents,
    const std::map<std::size_t, Scalar>& scalarInputs) {
  std::vector<CostValue> out;
  out.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const ir::Type& t = inputs[i];
    if (t.isTensor()) {
      TSSA_CHECK(t.hasDims(), "bindSymbolic: tensor input " << i
                                  << " carries no dims");
      Shape sizes;
      sizes.reserve(t.dims().size());
      for (const ir::Dim& d : t.dims()) {
        if (!d.symbolic()) {
          sizes.push_back(d.extent);
          continue;
        }
        auto it = extents.find(d.sym);
        TSSA_CHECK(it != extents.end(),
                   "bindSymbolic: unbound symbol '" << d.sym << "'");
        sizes.push_back(it->second + d.offset);
      }
      out.push_back(
          CostValue::tensor(std::move(sizes), t.dtype().value_or(DType::Float32)));
    } else if (auto it = scalarInputs.find(i); it != scalarInputs.end()) {
      out.push_back(CostValue::scalar(it->second));
    } else {
      out.push_back(CostValue::unknown());
    }
  }
  return out;
}

namespace {

std::int64_t ceilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// The metadata interpreter. Mirrors runtime::Interpreter's charging rules
/// node for node (see interpreter.cpp); any divergence between the two is a
/// bug caught by the differential property tests.
class CostWalker {
 public:
  CostWalker(const CostOptions& opts) : opts_(opts) {}

  CostReport walk(const ir::Graph& graph, std::span<const CostValue> inputs) {
    TSSA_CHECK(inputs.size() == graph.inputs().size(),
               "estimateCost: expected " << graph.inputs().size()
                                         << " inputs, got " << inputs.size());
    Env env;
    for (std::size_t i = 0; i < inputs.size(); ++i)
      env[graph.inputs()[i]] = inputs[i];
    Ctx ctx;
    walkBlock(*graph.topBlock(), env, ctx);
    return std::move(report_);
  }

 private:
  using Env = std::unordered_map<const ir::Value*, CostValue>;

  struct Slot {
    std::string name;
    std::int64_t bytes = 0;
    std::int64_t flops = 0;
  };

  struct Ctx {
    int mergeDepth = 0;
    std::size_t mergePos = 0;
    std::vector<Slot> mergeSlots;
    int suppressDepth = 0;
    std::int64_t suppressFlops = 0;
    std::int64_t suppressSavedBytes = 0;
    /// >0 while pricing a texpr-backed FusionGroup body: shapes propagate
    /// but nothing is charged (the group is priced from RunStats rules).
    int silentDepth = 0;
    bool silentFailed = false;
  };

  // ---- Profiler math (Profiler::kernel / hostOnly, verbatim) -------------

  void recordKernel(const std::string& name, std::int64_t bytes,
                    std::int64_t flops) {
    const double k = opts_.device.kernelTimeUs(bytes, flops);
    const double hostUs = opts_.host.perOpUs;
    ++report_.launches;
    report_.bytes += bytes;
    report_.flops += flops;
    report_.gpuUs += k;
    report_.hostUs += hostUs;
    report_.simUs +=
        opts_.host.serialDispatch ? k + hostUs : (k > hostUs ? k : hostUs);
    report_.perKernel[name] += 1;
  }

  void hostOnly(double us) {
    report_.hostUs += us;
    report_.simUs += us;
  }

  // ---- Interpreter charge plumbing (chargeKernel / chargeOpDispatch) -----

  void chargeKernel(const Node& node, std::int64_t bytes, std::int64_t flops,
                    Ctx& ctx) {
    if (ctx.silentDepth > 0) return;
    if (ctx.suppressDepth > 0) {
      ctx.suppressFlops += flops;
      return;
    }
    if (ctx.mergeDepth > 0) {
      if (ctx.mergePos >= ctx.mergeSlots.size())
        ctx.mergeSlots.push_back(Slot{std::string(opName(node.kind())), 0, 0});
      ctx.mergeSlots[ctx.mergePos].bytes += bytes;
      ctx.mergeSlots[ctx.mergePos].flops += flops;
      ++ctx.mergePos;
      return;
    }
    recordKernel(std::string(opName(node.kind())), bytes, flops);
  }

  void chargeOpDispatch(Ctx& ctx) {
    if (ctx.silentDepth > 0 || ctx.mergeDepth > 0) return;
    hostOnly(opts_.host.perOpUs);
  }

  // ---- Environment helpers ----------------------------------------------

  const CostValue& get(const ir::Value* v, const Env& env) const {
    auto it = env.find(v);
    TSSA_CHECK(it != env.end(), "cost value %" << v->id() << " not bound");
    return it->second;
  }

  const TensorMeta& tensorIn(const Node& node, std::size_t i,
                             const Env& env) const {
    return get(node.input(i), env).tensorMeta();
  }

  Scalar scalarIn(const Node& node, std::size_t i, const Env& env) const {
    return get(node.input(i), env).scalarValue();
  }

  std::vector<CostValue> blockReturns(const ir::Block& block, const Env& env) {
    std::vector<CostValue> out;
    out.reserve(block.numReturns());
    for (const ir::Value* r : block.returns()) out.push_back(get(r, env));
    return out;
  }

  void bindOutputsUnknown(const Node& node, Env& env) {
    for (const ir::Value* out : node.outputs())
      env[out] = CostValue::unknown();
  }

  void markUnknown(const Node& node, Env& env, Ctx& ctx) {
    if (ctx.silentDepth > 0) {
      ctx.silentFailed = true;
    } else {
      ++report_.unknownOps;
    }
    bindOutputsUnknown(node, env);
  }

  // ---- Block walk --------------------------------------------------------

  void walkBlock(const ir::Block& block, Env& env, Ctx& ctx) {
    // Region-call charge at block entry (Interpreter::runBlockBody).
    if (ctx.silentDepth == 0 && ctx.mergeDepth == 0 &&
        ctx.suppressDepth == 0 && opts_.host.perRegionCallUs > 0) {
      bool hasFusion = false;
      for (const Node* node : block) {
        if (node->kind() == OpKind::FusionGroup) {
          hasFusion = true;
          break;
        }
      }
      if (hasFusion) hostOnly(opts_.host.perRegionCallUs);
    }
    for (const Node* node : block) execNodeGuarded(*node, env, ctx);
  }

  void execNodeGuarded(const Node& node, Env& env, Ctx& ctx) {
    try {
      execNode(node, env, ctx);
    } catch (const Error&) {
      // Unknown operands, out-of-metadata structure, shape mismatches: the
      // node's effect cannot be priced. Charges are always issued after a
      // node's metadata resolved, so a throwing node charged nothing.
      markUnknown(node, env, ctx);
    }
  }

  // ---- View metadata (Interpreter::applyView / resolvedSizes) ------------

  Shape resolvedSizes(const Node& node, std::size_t operandStart,
                      const Env& env) const {
    Shape sizes = node.attrs().ints("sizes");
    if (!node.attrs().has("dyn")) return sizes;
    std::size_t k = operandStart;
    for (std::int64_t& s : sizes) {
      if (s != -1) continue;
      TSSA_CHECK(k < node.numInputs(), "dyn sizes: missing extent operand");
      s = scalarIn(node, k++, env).toInt();
      TSSA_CHECK(s >= 0, "dyn sizes: negative runtime extent " << s);
    }
    return sizes;
  }

  TensorMeta applyView(OpKind viewKind, const Node& node,
                       const TensorMeta& base, std::size_t operandStart,
                       const Env& env) const {
    const auto& attrs = node.attrs();
    const auto rank = static_cast<std::int64_t>(base.sizes.size());
    TensorMeta out = base;
    switch (viewKind) {
      case OpKind::Identity:
        return out;
      case OpKind::Select: {
        const std::int64_t d = normalizeDim(attrs.i("dim"), rank);
        normalizeIndex(scalarIn(node, operandStart, env).toInt(),
                       base.sizes[static_cast<std::size_t>(d)]);
        out.sizes.erase(out.sizes.begin() + d);
        return out;
      }
      case OpKind::Slice: {
        const std::int64_t d = normalizeDim(attrs.i("dim"), rank);
        const std::int64_t step = attrs.i("step");
        TSSA_CHECK(step > 0, "slice step must be positive");
        std::int64_t start = scalarIn(node, operandStart, env).toInt();
        std::int64_t end = scalarIn(node, operandStart + 1, env).toInt();
        normalizeSliceBounds(base.sizes[static_cast<std::size_t>(d)], start,
                             end);
        out.sizes[static_cast<std::size_t>(d)] = ceilDiv(end - start, step);
        return out;
      }
      case OpKind::Reshape:
        out.sizes =
            inferView(base, resolvedSizes(node, operandStart, env));
        return out;
      case OpKind::Permute: {
        const std::vector<std::int64_t>& dims = attrs.ints("dims");
        TSSA_CHECK(static_cast<std::int64_t>(dims.size()) == rank,
                   "permute needs one entry per dimension");
        Shape sizes(dims.size());
        for (std::size_t i = 0; i < dims.size(); ++i)
          sizes[i] = base.sizes[static_cast<std::size_t>(
              normalizeDim(dims[i], rank))];
        out.sizes = std::move(sizes);
        return out;
      }
      case OpKind::Transpose: {
        const std::int64_t d0 = normalizeDim(attrs.i("dim0"), rank);
        const std::int64_t d1 = normalizeDim(attrs.i("dim1"), rank);
        std::swap(out.sizes[static_cast<std::size_t>(d0)],
                  out.sizes[static_cast<std::size_t>(d1)]);
        return out;
      }
      case OpKind::Expand: {
        Shape target = resolvedSizes(node, operandStart, env);
        TSSA_CHECK(broadcastableTo(base.sizes, target),
                   "cannot expand to target shape");
        out.sizes = std::move(target);
        return out;
      }
      case OpKind::Squeeze: {
        const std::int64_t d = normalizeDim(attrs.i("dim"), rank);
        TSSA_CHECK(base.sizes[static_cast<std::size_t>(d)] == 1,
                   "squeeze of non-unit dimension");
        out.sizes.erase(out.sizes.begin() + d);
        return out;
      }
      case OpKind::Unsqueeze: {
        std::int64_t d = attrs.i("dim");
        if (d < 0) d += rank + 1;
        TSSA_CHECK(d >= 0 && d <= rank, "unsqueeze dim out of range");
        out.sizes.insert(out.sizes.begin() + d, 1);
        return out;
      }
      case OpKind::Flatten: {
        const std::int64_t s = normalizeDim(attrs.i("start_dim"), rank);
        const std::int64_t e = normalizeDim(attrs.i("end_dim"), rank);
        TSSA_CHECK(s <= e, "flatten start after end");
        Shape sizes(base.sizes.begin(), base.sizes.begin() + s);
        std::int64_t merged = 1;
        for (std::int64_t d = s; d <= e; ++d)
          merged *= base.sizes[static_cast<std::size_t>(d)];
        sizes.push_back(merged);
        sizes.insert(sizes.end(), base.sizes.begin() + e + 1,
                     base.sizes.end());
        out.sizes = std::move(sizes);
        return out;
      }
      default:
        TSSA_THROW("not a view kind: " << opName(viewKind));
    }
  }

  /// Tensor::view's -1 inference on metadata.
  static Shape inferView(const TensorMeta& base, Shape sizes) {
    std::int64_t inferDim = -1;
    std::int64_t known = 1;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] == -1) {
        TSSA_CHECK(inferDim == -1, "at most one -1 dimension in view");
        inferDim = static_cast<std::int64_t>(i);
      } else {
        known *= sizes[i];
      }
    }
    if (inferDim >= 0) {
      TSSA_CHECK(known != 0 && base.numel() % known == 0,
                 "cannot infer view dimension");
      sizes[static_cast<std::size_t>(inferDim)] = base.numel() / known;
    }
    TSSA_CHECK(numelOf(sizes) == base.numel(),
               "view shape has wrong element count");
    return sizes;
  }

  // ---- Node walk ---------------------------------------------------------

  void execNode(const Node& node, Env& env, Ctx& ctx) {
    const OpKind kind = node.kind();
    const auto& attrs = node.attrs();

    auto bindOut = [&](std::size_t i, CostValue v) {
      env[node.output(i)] = std::move(v);
    };
    auto bindTensor = [&](std::size_t i, TensorMeta m) {
      env[node.output(i)] = CostValue::tensor(std::move(m));
    };

    auto evalBinary = [&](DType outDType, bool promote) {
      const TensorMeta& a = tensorIn(node, 0, env);
      const TensorMeta& b = tensorIn(node, 1, env);
      TensorMeta out{broadcastShapes(a.sizes, b.sizes),
                     promote ? promoteTypes(a.dtype, b.dtype) : outDType};
      chargeKernel(node, a.bytes() + b.bytes() + out.bytes(), out.numel(),
                   ctx);
      bindTensor(0, std::move(out));
    };
    auto evalUnary = [&](DType outDType) {
      const TensorMeta& a = tensorIn(node, 0, env);
      TensorMeta out{a.sizes, outDType};
      chargeKernel(node, a.bytes() + out.bytes(), out.numel(), ctx);
      bindTensor(0, std::move(out));
    };
    // evalInplace: the result aliases the target; shape/dtype unchanged.
    // Charged as one kernel over the target (interpreter's evalInplace).
    auto evalInplace = [&](std::size_t extraTensorOperands) {
      const TensorMeta target = tensorIn(node, 0, env);
      for (std::size_t i = 1; i <= extraTensorOperands; ++i)
        (void)tensorIn(node, i, env);  // unknown operand -> unknown op
      chargeKernel(node, 2 * target.bytes(), target.numel(), ctx);
      bindTensor(0, target);
    };

    switch (kind) {
      // ---- structural ----
      case OpKind::Constant:
        if (attrs.has("tensor")) {
          const Tensor& t = attrs.tensor("tensor");
          bindTensor(0, TensorMeta{t.sizes(), t.dtype()});
        } else {
          bindOut(0, CostValue::scalar(attrs.scalar("value")));
        }
        return;
      case OpKind::ListConstruct: {
        std::vector<TensorMeta> list;
        list.reserve(node.numInputs());
        for (std::size_t i = 0; i < node.numInputs(); ++i)
          list.push_back(tensorIn(node, i, env));
        chargeOpDispatch(ctx);
        bindOut(0, CostValue::list(std::move(list)));
        return;
      }
      case OpKind::ListIndex: {
        const auto& list = get(node.input(0), env).listMeta();
        const std::int64_t i = scalarIn(node, 1, env).toInt();
        TSSA_CHECK(i >= 0 && i < static_cast<std::int64_t>(list.size()),
                   "list index out of range");
        chargeOpDispatch(ctx);
        bindTensor(0, list[static_cast<std::size_t>(i)]);
        return;
      }
      case OpKind::Return:
      case OpKind::Update:
        TSSA_THROW("not executable: " << opName(kind));

      // ---- control flow ----
      case OpKind::If: {
        const bool cond = scalarIn(node, 0, env).toBool();
        if (ctx.silentDepth == 0 && ctx.mergeDepth == 0)
          hostOnly(opts_.host.perIfUs);
        const ir::Block& block = *node.block(cond ? 0 : 1);
        walkBlock(block, env, ctx);
        auto rets = blockReturns(block, env);
        for (std::size_t i = 0; i < rets.size(); ++i)
          bindOut(i, std::move(rets[i]));
        return;
      }
      case OpKind::Loop: {
        const std::int64_t trip = scalarIn(node, 0, env).toInt();
        TSSA_CHECK(trip <= opts_.maxLoopTrip, "loop trip beyond cost budget");
        const ir::Block& body = *node.block(0);
        std::vector<CostValue> carried;
        for (std::size_t i = 1; i < node.numInputs(); ++i)
          carried.push_back(get(node.input(i), env));
        for (std::int64_t it = 0; it < trip; ++it) {
          if (ctx.silentDepth == 0 && ctx.mergeDepth == 0)
            hostOnly(opts_.host.perLoopIterUs);
          env[body.param(0)] = CostValue::scalar(Scalar(it));
          for (std::size_t i = 0; i < carried.size(); ++i)
            env[body.param(i + 1)] = std::move(carried[i]);
          walkBlock(body, env, ctx);
          carried = blockReturns(body, env);
        }
        for (std::size_t i = 0; i < carried.size(); ++i)
          bindOut(i, std::move(carried[i]));
        return;
      }
      case OpKind::ParallelMap: {
        // Always the serial-merge accounting: the threaded executor merges
        // per-worker slots into identical totals by construction.
        const std::int64_t trip = scalarIn(node, 0, env).toInt();
        TSSA_CHECK(trip <= opts_.maxLoopTrip, "loop trip beyond cost budget");
        const ir::Block& body = *node.block(0);
        std::vector<CostValue> carried;
        for (std::size_t i = 1; i < node.numInputs(); ++i)
          carried.push_back(get(node.input(i), env));
        std::vector<Slot> slots;
        {
          ++ctx.mergeDepth;
          for (std::int64_t it = 0; it < trip; ++it) {
            ctx.mergePos = 0;
            env[body.param(0)] = CostValue::scalar(Scalar(it));
            for (std::size_t i = 0; i < carried.size(); ++i)
              env[body.param(i + 1)] = std::move(carried[i]);
            walkBlock(body, env, ctx);
            carried = blockReturns(body, env);
          }
          slots.swap(ctx.mergeSlots);
          --ctx.mergeDepth;
        }
        if (ctx.silentDepth == 0 && ctx.mergeDepth == 0) {
          for (const Slot& slot : slots) {
            recordKernel("tssa::ParallelMap(" + slot.name + ")", slot.bytes,
                         slot.flops);
          }
        }
        for (std::size_t i = 0; i < carried.size(); ++i)
          bindOut(i, std::move(carried[i]));
        return;
      }
      case OpKind::FusionGroup: {
        const ir::Block& body = *node.block(0);
        std::int64_t bytes = 0;
        std::vector<CostValue> groupInputs;
        groupInputs.reserve(node.numInputs());
        for (std::size_t i = 0; i < node.numInputs(); ++i) {
          const CostValue& v = get(node.input(i), env);
          TSSA_CHECK(!v.isUnknown(), "fusion group input unknown");
          if (v.isTensor()) bytes += v.tensorMeta().bytes();
          groupInputs.push_back(v);
        }
        const bool viaTexpr =
            opts_.useTexpr && texpr::Kernel::supports(body);
        std::int64_t flops = 0;
        std::int64_t savedBytes = 0;
        std::vector<CostValue> rets;
        for (std::size_t i = 0; i < groupInputs.size(); ++i)
          env[body.param(i)] = groupInputs[i];
        if (viaTexpr) {
          // texpr RunStats pricing: flops = sum of every body node's
          // output-0 element count; savedBytes per in-place Assign.
          ++ctx.silentDepth;
          bool bad = false;
          for (const Node* bn : body) {
            execNodeGuarded(*bn, env, ctx);
            const CostValue& ov = get(bn->output(0), env);
            if (ov.isTensor()) {
              flops += ov.tensorMeta().numel();
            } else if (ov.isScalar()) {
              flops += 1;
            } else {
              bad = true;
            }
            if (bn->kind() == OpKind::Assign &&
                bn->attrs().bOr("inplace", false)) {
              const CostValue& base = get(bn->input(0), env);
              const CostValue& src = get(bn->input(1), env);
              if (base.isTensor() && src.isTensor()) {
                savedBytes += std::max<std::int64_t>(
                    0, 2 * (base.tensorMeta().bytes() -
                            src.tensorMeta().bytes()));
              } else {
                bad = true;
              }
            }
          }
          --ctx.silentDepth;
          if (bad || ctx.silentFailed) {
            ctx.silentFailed = false;
            markUnknown(node, env, ctx);
            return;
          }
          rets = blockReturns(body, env);
        } else {
          // Interpreted body: suppress scope counts elementwise flops and
          // in-place savings; views/scalars inside still pay op dispatch.
          const std::int64_t savedF = ctx.suppressFlops;
          const std::int64_t savedB = ctx.suppressSavedBytes;
          ctx.suppressFlops = 0;
          ctx.suppressSavedBytes = 0;
          ++ctx.suppressDepth;
          walkBlock(body, env, ctx);
          flops = ctx.suppressFlops;
          savedBytes = ctx.suppressSavedBytes;
          ctx.suppressFlops = savedF;
          ctx.suppressSavedBytes = savedB;
          --ctx.suppressDepth;
          rets = blockReturns(body, env);
        }
        for (const CostValue& r : rets) {
          if (r.isUnknown()) {
            bindOutputsUnknown(node, env);
            return;
          }
          if (r.isTensor()) bytes += r.tensorMeta().bytes();
        }
        bytes = std::max<std::int64_t>(0, bytes - savedBytes);
        chargeKernel(node, bytes, flops, ctx);
        for (std::size_t i = 0; i < rets.size(); ++i)
          bindOut(i, std::move(rets[i]));
        return;
      }

      // ---- scalar arithmetic ----
      case OpKind::ScalarAdd:
      case OpKind::ScalarSub:
      case OpKind::ScalarMul:
      case OpKind::ScalarMod:
      case OpKind::ScalarMin:
      case OpKind::ScalarMax: {
        const Scalar a = scalarIn(node, 0, env);
        const Scalar b = scalarIn(node, 1, env);
        chargeOpDispatch(ctx);
        if (a.isFloat() || b.isFloat()) {
          const double x = a.toDouble(), y = b.toDouble();
          double r = 0;
          switch (kind) {
            case OpKind::ScalarAdd: r = x + y; break;
            case OpKind::ScalarSub: r = x - y; break;
            case OpKind::ScalarMul: r = x * y; break;
            case OpKind::ScalarMin: r = std::min(x, y); break;
            case OpKind::ScalarMax: r = std::max(x, y); break;
            default: TSSA_THROW("mod of float scalars");
          }
          bindOut(0, CostValue::scalar(Scalar(r)));
        } else {
          const std::int64_t x = a.toInt(), y = b.toInt();
          std::int64_t r = 0;
          switch (kind) {
            case OpKind::ScalarAdd: r = x + y; break;
            case OpKind::ScalarSub: r = x - y; break;
            case OpKind::ScalarMul: r = x * y; break;
            case OpKind::ScalarMod:
              TSSA_CHECK(y != 0, "mod by zero");
              r = x % y;
              break;
            case OpKind::ScalarMin: r = std::min(x, y); break;
            case OpKind::ScalarMax: r = std::max(x, y); break;
            default: break;
          }
          bindOut(0, CostValue::scalar(Scalar(r)));
        }
        return;
      }
      case OpKind::SizeOf: {
        const TensorMeta& t = tensorIn(node, 0, env);
        std::int64_t d = attrs.i("dim");
        if (d < 0) d += static_cast<std::int64_t>(t.sizes.size());
        TSSA_CHECK(d >= 0 && d < static_cast<std::int64_t>(t.sizes.size()),
                   "size dim out of range");
        chargeOpDispatch(ctx);
        bindOut(0, CostValue::scalar(
                       Scalar(t.sizes[static_cast<std::size_t>(d)])));
        return;
      }
      case OpKind::ScalarLt:
      case OpKind::ScalarLe:
      case OpKind::ScalarGt:
      case OpKind::ScalarGe:
      case OpKind::ScalarEq:
      case OpKind::ScalarNe: {
        const double x = scalarIn(node, 0, env).toDouble();
        const double y = scalarIn(node, 1, env).toDouble();
        chargeOpDispatch(ctx);
        bool r = false;
        switch (kind) {
          case OpKind::ScalarLt: r = x < y; break;
          case OpKind::ScalarLe: r = x <= y; break;
          case OpKind::ScalarGt: r = x > y; break;
          case OpKind::ScalarGe: r = x >= y; break;
          case OpKind::ScalarEq: r = x == y; break;
          case OpKind::ScalarNe: r = x != y; break;
          default: break;
        }
        bindOut(0, CostValue::scalar(Scalar(r)));
        return;
      }

      // ---- elementwise binary ----
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Minimum:
      case OpKind::Maximum:
        return evalBinary(DType::Float32, /*promote=*/true);
      case OpKind::Div:
      case OpKind::Pow:
        return evalBinary(DType::Float32, /*promote=*/false);
      case OpKind::Eq:
      case OpKind::Ne:
      case OpKind::Lt:
      case OpKind::Le:
      case OpKind::Gt:
      case OpKind::Ge:
      case OpKind::LogicalAnd:
      case OpKind::LogicalOr:
        return evalBinary(DType::Bool, /*promote=*/false);

      // ---- elementwise unary ----
      case OpKind::Neg:
      case OpKind::Abs:
      case OpKind::Relu:
      case OpKind::Clamp:
        return evalUnary(tensorIn(node, 0, env).dtype);
      case OpKind::Exp:
      case OpKind::Log:
      case OpKind::Sqrt:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
        return evalUnary(DType::Float32);
      case OpKind::LogicalNot:
        return evalUnary(DType::Bool);
      case OpKind::Cast:
        return evalUnary(attrs.dtype("dtype"));

      // ---- elementwise n-ary ----
      case OpKind::Where: {
        const TensorMeta& c = tensorIn(node, 0, env);
        const TensorMeta& a = tensorIn(node, 1, env);
        const TensorMeta& b = tensorIn(node, 2, env);
        TensorMeta out{
            broadcastShapes(broadcastShapes(c.sizes, a.sizes), b.sizes),
            promoteTypes(a.dtype, b.dtype)};
        chargeKernel(node, c.bytes() + a.bytes() + b.bytes() + out.bytes(),
                     out.numel(), ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::MaskedFill: {
        const TensorMeta& a = tensorIn(node, 0, env);
        const TensorMeta& mask = tensorIn(node, 1, env);
        (void)scalarIn(node, 2, env);
        // ops::maskedFill = where(mask, full-scalar, a): the rank-0 fill
        // never widens the broadcast and its dtype promotes back to a's.
        TensorMeta out{broadcastShapes(mask.sizes, a.sizes), a.dtype};
        chargeKernel(node, a.bytes() + mask.bytes() + out.bytes(),
                     out.numel(), ctx);
        bindTensor(0, std::move(out));
        return;
      }

      // ---- reductions ----
      case OpKind::Sum: {
        const TensorMeta& a = tensorIn(node, 0, env);
        TensorMeta out{Shape{},
                       a.dtype == DType::Bool ? DType::Int64 : a.dtype};
        chargeKernel(node, a.bytes(), a.numel(), ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::SumDim:
      case OpKind::Mean:
      case OpKind::MaxDim:
      case OpKind::MinDim:
      case OpKind::Argmax: {
        const TensorMeta& a = tensorIn(node, 0, env);
        const std::int64_t d = normalizeDim(
            attrs.i("dim"), static_cast<std::int64_t>(a.sizes.size()));
        const bool keep = attrs.bOr("keepdim", false);
        TensorMeta out = a;
        if (keep) {
          out.sizes[static_cast<std::size_t>(d)] = 1;
        } else {
          out.sizes.erase(out.sizes.begin() + d);
        }
        switch (kind) {
          case OpKind::SumDim:
            out.dtype = a.dtype == DType::Bool ? DType::Int64 : a.dtype;
            break;
          case OpKind::Mean: out.dtype = DType::Float32; break;
          case OpKind::Argmax: out.dtype = DType::Int64; break;
          default: break;  // Max/MinDim keep a's dtype
        }
        chargeKernel(node, a.bytes() + out.bytes(), a.numel(), ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Softmax: {
        const TensorMeta& a = tensorIn(node, 0, env);
        normalizeDim(attrs.i("dim"),
                     static_cast<std::int64_t>(a.sizes.size()));
        TensorMeta out{a.sizes, DType::Float32};
        chargeKernel(node, 2 * a.bytes() + out.bytes(), 5 * a.numel(), ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Cumsum: {
        const TensorMeta& a = tensorIn(node, 0, env);
        normalizeDim(attrs.i("dim"),
                     static_cast<std::int64_t>(a.sizes.size()));
        TensorMeta out = a;
        chargeKernel(node, a.bytes() + out.bytes(), a.numel(), ctx);
        bindTensor(0, std::move(out));
        return;
      }

      // ---- linear algebra ----
      case OpKind::Matmul: {
        const TensorMeta& a = tensorIn(node, 0, env);
        const TensorMeta& b = tensorIn(node, 1, env);
        TensorMeta out;
        out.dtype = DType::Float32;
        std::int64_t flops = 0;
        if (a.sizes.size() == 3 && b.sizes.size() == 3) {
          TSSA_CHECK(a.sizes[0] == b.sizes[0] && a.sizes[2] == b.sizes[1],
                     "bmm dims disagree");
          out.sizes = {a.sizes[0], a.sizes[1], b.sizes[2]};
          flops = 2 * a.sizes[0] * a.sizes[1] * a.sizes[2] * b.sizes[2];
        } else {
          TSSA_CHECK(a.sizes.size() == 2 && b.sizes.size() == 2 &&
                         a.sizes[1] == b.sizes[0],
                     "matmul dims disagree");
          out.sizes = {a.sizes[0], b.sizes[1]};
          flops = 2 * a.sizes[0] * a.sizes[1] * b.sizes[1];
        }
        chargeKernel(node, a.bytes() + b.bytes() + out.bytes(), flops, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Bmm: {
        const TensorMeta& a = tensorIn(node, 0, env);
        const TensorMeta& b = tensorIn(node, 1, env);
        TSSA_CHECK(a.sizes.size() == 3 && b.sizes.size() == 3 &&
                       a.sizes[0] == b.sizes[0] && a.sizes[2] == b.sizes[1],
                   "bmm dims disagree");
        TensorMeta out{{a.sizes[0], a.sizes[1], b.sizes[2]}, DType::Float32};
        chargeKernel(node, a.bytes() + b.bytes() + out.bytes(),
                     2 * a.sizes[0] * a.sizes[1] * a.sizes[2] * b.sizes[2],
                     ctx);
        bindTensor(0, std::move(out));
        return;
      }

      // ---- shape / data movement ----
      case OpKind::Cat:
      case OpKind::Stack: {
        const auto& list = get(node.input(0), env).listMeta();
        TSSA_CHECK(!list.empty(), "cat/stack of zero tensors");
        std::vector<TensorMeta> items = list;
        std::int64_t d = attrs.i("dim");
        if (kind == OpKind::Stack) {
          const auto rank = static_cast<std::int64_t>(items[0].sizes.size());
          if (d < 0) d += rank + 1;
          for (TensorMeta& m : items)
            m.sizes.insert(m.sizes.begin() + d, 1);
        } else {
          d = normalizeDim(d,
                           static_cast<std::int64_t>(items[0].sizes.size()));
        }
        TensorMeta out = items[0];
        std::int64_t total = 0;
        for (const TensorMeta& m : items) {
          TSSA_CHECK(m.sizes.size() == out.sizes.size(),
                     "cat rank mismatch");
          for (std::size_t i = 0; i < m.sizes.size(); ++i) {
            if (static_cast<std::int64_t>(i) != d)
              TSSA_CHECK(m.sizes[i] == out.sizes[i], "cat shape mismatch");
          }
          total += m.sizes[static_cast<std::size_t>(d)];
          out.dtype = promoteTypes(out.dtype, m.dtype);
        }
        out.sizes[static_cast<std::size_t>(d)] = total;
        chargeKernel(node, 2 * out.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::IndexSelect: {
        const TensorMeta& a = tensorIn(node, 0, env);
        const TensorMeta& idx = tensorIn(node, 1, env);
        const std::int64_t d = normalizeDim(
            attrs.i("dim"), static_cast<std::int64_t>(a.sizes.size()));
        TensorMeta out = a;
        out.sizes[static_cast<std::size_t>(d)] = idx.numel();
        chargeKernel(node, out.bytes() * 2 + idx.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Gather: {
        const TensorMeta& a = tensorIn(node, 0, env);
        const TensorMeta& idx = tensorIn(node, 1, env);
        TensorMeta out{idx.sizes, a.dtype};
        chargeKernel(node, out.bytes() * 2 + idx.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Topk: {
        const TensorMeta& a = tensorIn(node, 0, env);
        TSSA_CHECK(!a.sizes.empty(), "topk needs rank >= 1");
        const std::int64_t k = attrs.i("k");
        TSSA_CHECK(k >= 0 && k <= a.sizes.back(), "topk k out of range");
        TensorMeta values = a;
        values.sizes.back() = k;
        TensorMeta indices{values.sizes, DType::Int64};
        for (int pass = 0; pass < 4; ++pass)
          chargeKernel(node, a.bytes() + values.bytes(), a.numel(), ctx);
        if (ctx.silentDepth == 0 && ctx.mergeDepth == 0 &&
            ctx.suppressDepth == 0)
          hostOnly(2 * opts_.device.syncLatencyUs);
        bindTensor(0, std::move(values));
        bindTensor(1, std::move(indices));
        return;
      }
      case OpKind::Argsort: {
        const TensorMeta& a = tensorIn(node, 0, env);
        TensorMeta out{a.sizes, DType::Int64};
        for (int pass = 0; pass < 4; ++pass)
          chargeKernel(node, a.bytes() + out.bytes(), a.numel(), ctx);
        if (ctx.silentDepth == 0 && ctx.mergeDepth == 0 &&
            ctx.suppressDepth == 0)
          hostOnly(2 * opts_.device.syncLatencyUs);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Clone:
      case OpKind::Contiguous: {
        const TensorMeta& a = tensorIn(node, 0, env);
        chargeKernel(node, 2 * a.bytes(), 0, ctx);
        bindTensor(0, a);
        return;
      }

      // ---- factories ----
      case OpKind::Zeros:
      case OpKind::Ones: {
        TensorMeta out{resolvedSizes(node, 0, env), attrs.dtype("dtype")};
        chargeKernel(node, out.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Full: {
        (void)scalarIn(node, 0, env);
        TensorMeta out{resolvedSizes(node, 1, env), attrs.dtype("dtype")};
        chargeKernel(node, out.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Arange: {
        const std::int64_t start = scalarIn(node, 0, env).toInt();
        const std::int64_t end = scalarIn(node, 1, env).toInt();
        const std::int64_t step = scalarIn(node, 2, env).toInt();
        TSSA_CHECK(step != 0, "arange step must be nonzero");
        std::int64_t n = 0;
        if (step > 0 && end > start) n = ceilDiv(end - start, step);
        if (step < 0 && end < start) n = ceilDiv(start - end, -step);
        TensorMeta out{{n}, DType::Int64};
        chargeKernel(node, out.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }

      // ---- tensor views ----
      case OpKind::Select:
      case OpKind::Slice:
      case OpKind::Reshape:
      case OpKind::Permute:
      case OpKind::Transpose:
      case OpKind::Expand:
      case OpKind::Squeeze:
      case OpKind::Unsqueeze:
      case OpKind::Flatten:
      case OpKind::Identity: {
        const TensorMeta& base = tensorIn(node, 0, env);
        TensorMeta out = applyView(kind, node, base, 1, env);
        chargeOpDispatch(ctx);
        bindTensor(0, std::move(out));
        return;
      }

      // ---- mutation ----
      case OpKind::Copy_: {
        const TensorMeta& dst = tensorIn(node, 0, env);
        const TensorMeta& src = tensorIn(node, 1, env);
        chargeKernel(node, dst.bytes() + src.bytes(), 0, ctx);
        bindTensor(0, dst);
        return;
      }
      case OpKind::Fill_:
      case OpKind::Zero_: {
        const TensorMeta& dst = tensorIn(node, 0, env);
        if (kind == OpKind::Fill_) (void)scalarIn(node, 1, env);
        chargeKernel(node, dst.bytes(), 0, ctx);
        bindTensor(0, dst);
        return;
      }
      case OpKind::Add_:
      case OpKind::Sub_:
      case OpKind::Mul_:
      case OpKind::Div_:
        return evalInplace(1);
      case OpKind::Relu_:
      case OpKind::Sigmoid_:
      case OpKind::Tanh_:
        return evalInplace(0);
      case OpKind::MaskedFill_: {
        (void)tensorIn(node, 1, env);
        (void)scalarIn(node, 2, env);
        return evalInplace(0);
      }

      // ---- TensorSSA ----
      case OpKind::Access: {
        const TensorMeta& base = tensorIn(node, 0, env);
        const auto viewKind = static_cast<OpKind>(attrs.i("view"));
        TensorMeta out = applyView(viewKind, node, base, 1, env);
        chargeKernel(node, 2 * out.bytes(), 0, ctx);
        bindTensor(0, std::move(out));
        return;
      }
      case OpKind::Assign: {
        const TensorMeta& base = tensorIn(node, 0, env);
        const TensorMeta& src = tensorIn(node, 1, env);
        const auto viewKind = static_cast<OpKind>(attrs.i("view"));
        (void)applyView(viewKind, node, base, 2, env);
        const bool inplace = attrs.bOr("inplace", false);
        if (inplace) {
          if (ctx.suppressDepth > 0) {
            ctx.suppressSavedBytes += std::max<std::int64_t>(
                0, 2 * (base.bytes() - src.bytes()));
          }
          chargeKernel(node, 2 * src.bytes(), 0, ctx);
        } else {
          chargeKernel(node, 2 * base.bytes() + src.bytes(), 0, ctx);
        }
        bindTensor(0, base);
        return;
      }
    }
    TSSA_THROW("cost model: unhandled op " << opName(kind));
  }

  CostOptions opts_;
  CostReport report_;
};

}  // namespace

CostReport estimateCost(const ir::Graph& graph,
                        std::span<const CostValue> inputs,
                        const CostOptions& options) {
  return CostWalker(options).walk(graph, inputs);
}

}  // namespace tssa::analysis
