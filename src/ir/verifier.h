// Structural verifier for graph-level IR.
#pragma once

#include "src/ir/ir.h"

namespace tssa::ir {

/// Checks structural invariants and throws tssa::Error on the first
/// violation:
///   * every operand is visible at its use (defined earlier in the same
///     block or in an enclosing block — SSA scoping);
///   * prim::If has exactly two blocks with no params, and both blocks
///     return exactly numOutputs values;
///   * prim::Loop / tssa::ParallelMap has one block whose params are
///     (i:int, carried...) matching the node's carried inputs, and whose
///     returns match the node's outputs;
///   * tssa::update has two inputs and no outputs;
///   * use records on values are consistent with node operand lists.
void verify(const Graph& graph);

}  // namespace tssa::ir
