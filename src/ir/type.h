// Static types of IR values.
//
// The reproduction keeps graph-level types deliberately light: a value is a
// Tensor (dtype optionally known, shapes resolved at runtime like
// TorchScript's unshaped `Tensor`), a scalar int/float/bool, or a list of
// tensors. Shape inference is not required by Algorithm 1; the interpreter and
// cost model observe concrete shapes during execution.
//
// Symbolic dimensions (ROADMAP item 3): a tensor type may additionally carry
// per-dimension extents, each either a static integer or a *named symbol*
// with an affine offset (`B`, `T`, `C+1`). Symbols are the capture/guard
// idiom of torch.fx applied here: a graph built against symbolic input types
// is compiled once and serves every concrete shape that binds the symbols
// consistently (the serving engine checks that guard at admission,
// src/serve/engine.cpp). Dims are advisory exactly like dtype — execution
// still observes concrete shapes at run time, and type equality stays
// kind-only, so passes that rebuild values never have to re-derive them.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/support/error.h"
#include "src/tensor/dtype.h"

namespace tssa::ir {

/// One tensor dimension: a static extent, or a named symbol plus an affine
/// offset (value = binding(sym) + offset; decode's mask dim is `C+1`).
struct Dim {
  std::int64_t extent = -1;  ///< static extent; ignored when symbolic
  std::string sym;           ///< symbol name; empty = static
  std::int64_t offset = 0;   ///< added to the symbol's binding

  Dim() = default;
  /*implicit*/ Dim(std::int64_t staticExtent) : extent(staticExtent) {}
  Dim(std::string name, std::int64_t off) : sym(std::move(name)), offset(off) {}

  bool symbolic() const { return !sym.empty(); }

  static Dim symbol(std::string name, std::int64_t offset = 0) {
    return Dim(std::move(name), offset);
  }

  std::string toString() const {
    if (!symbolic()) return std::to_string(extent);
    if (offset == 0) return sym;
    return offset > 0 ? sym + "+" + std::to_string(offset)
                      : sym + std::to_string(offset);
  }

  friend bool operator==(const Dim& a, const Dim& b) {
    if (a.symbolic() != b.symbolic()) return false;
    return a.symbolic() ? a.sym == b.sym && a.offset == b.offset
                        : a.extent == b.extent;
  }
};

enum class TypeKind : std::uint8_t {
  Tensor,
  Int,
  Float,
  Bool,
  TensorList,
  None,
};

/// A value type. Value-semantic and cheap to copy.
class Type {
 public:
  Type() : kind_(TypeKind::None) {}

  static Type tensor() { return Type(TypeKind::Tensor); }
  static Type tensor(DType dtype) {
    Type t(TypeKind::Tensor);
    t.dtype_ = dtype;
    return t;
  }
  /// Dtype-qualified tensor with (possibly symbolic) dims, e.g.
  /// `f32[B,T,32] Tensor`.
  static Type tensor(DType dtype, std::vector<Dim> dims) {
    Type t(TypeKind::Tensor);
    t.dtype_ = dtype;
    t.dims_ = std::move(dims);
    t.hasDims_ = true;
    return t;
  }
  static Type integer() { return Type(TypeKind::Int); }
  static Type floating() { return Type(TypeKind::Float); }
  static Type boolean() { return Type(TypeKind::Bool); }
  static Type tensorList() { return Type(TypeKind::TensorList); }
  static Type none() { return Type(TypeKind::None); }

  TypeKind kind() const { return kind_; }
  bool isTensor() const { return kind_ == TypeKind::Tensor; }
  bool isTensorList() const { return kind_ == TypeKind::TensorList; }
  bool isScalar() const {
    return kind_ == TypeKind::Int || kind_ == TypeKind::Float ||
           kind_ == TypeKind::Bool;
  }
  std::optional<DType> dtype() const { return dtype_; }

  /// Whether the type carries per-dimension extents (a rank-0 tensor with
  /// dims has an empty vector, so a separate flag is needed).
  bool hasDims() const { return hasDims_; }
  const std::vector<Dim>& dims() const { return dims_; }
  bool hasSymbolicDims() const {
    for (const Dim& d : dims_)
      if (d.symbolic()) return true;
    return false;
  }

  std::string toString() const {
    switch (kind_) {
      case TypeKind::Tensor: {
        if (!dtype_) return "Tensor";
        std::string s(dtypeName(*dtype_));
        if (hasDims_) {
          s += "[";
          for (std::size_t i = 0; i < dims_.size(); ++i) {
            if (i) s += ",";
            s += dims_[i].toString();
          }
          s += "]";
        }
        return s + " Tensor";
      }
      case TypeKind::Int:
        return "int";
      case TypeKind::Float:
        return "float";
      case TypeKind::Bool:
        return "bool";
      case TypeKind::TensorList:
        return "Tensor[]";
      case TypeKind::None:
        return "none";
    }
    return "?";
  }

  friend bool operator==(const Type& a, const Type& b) {
    return a.kind_ == b.kind_;  // dtype and dims are advisory
  }

 private:
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::optional<DType> dtype_;
  bool hasDims_ = false;
  std::vector<Dim> dims_;
};

inline std::ostream& operator<<(std::ostream& os, const Type& t) {
  return os << t.toString();
}

}  // namespace tssa::ir
