// Static types of IR values.
//
// The reproduction keeps graph-level types deliberately light: a value is a
// Tensor (dtype optionally known, shapes resolved at runtime like
// TorchScript's unshaped `Tensor`), a scalar int/float/bool, or a list of
// tensors. Shape inference is not required by Algorithm 1; the interpreter and
// cost model observe concrete shapes during execution.
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "src/support/error.h"
#include "src/tensor/dtype.h"

namespace tssa::ir {

enum class TypeKind : std::uint8_t {
  Tensor,
  Int,
  Float,
  Bool,
  TensorList,
  None,
};

/// A value type. Value-semantic and cheap to copy.
class Type {
 public:
  Type() : kind_(TypeKind::None) {}

  static Type tensor() { return Type(TypeKind::Tensor); }
  static Type tensor(DType dtype) {
    Type t(TypeKind::Tensor);
    t.dtype_ = dtype;
    return t;
  }
  static Type integer() { return Type(TypeKind::Int); }
  static Type floating() { return Type(TypeKind::Float); }
  static Type boolean() { return Type(TypeKind::Bool); }
  static Type tensorList() { return Type(TypeKind::TensorList); }
  static Type none() { return Type(TypeKind::None); }

  TypeKind kind() const { return kind_; }
  bool isTensor() const { return kind_ == TypeKind::Tensor; }
  bool isTensorList() const { return kind_ == TypeKind::TensorList; }
  bool isScalar() const {
    return kind_ == TypeKind::Int || kind_ == TypeKind::Float ||
           kind_ == TypeKind::Bool;
  }
  std::optional<DType> dtype() const { return dtype_; }

  std::string toString() const {
    switch (kind_) {
      case TypeKind::Tensor:
        return dtype_ ? std::string(dtypeName(*dtype_)) + " Tensor" : "Tensor";
      case TypeKind::Int:
        return "int";
      case TypeKind::Float:
        return "float";
      case TypeKind::Bool:
        return "bool";
      case TypeKind::TensorList:
        return "Tensor[]";
      case TypeKind::None:
        return "none";
    }
    return "?";
  }

  friend bool operator==(const Type& a, const Type& b) {
    return a.kind_ == b.kind_;  // dtype is advisory
  }

 private:
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::optional<DType> dtype_;
};

inline std::ostream& operator<<(std::ostream& os, const Type& t) {
  return os << t.toString();
}

}  // namespace tssa::ir
