// Graph-level IR: values, nodes, blocks, graphs.
//
// Mirrors the TorchScript IR structure the paper builds on (§2.2):
//   * A Graph owns a top-level Block.
//   * A Block has parameters, a doubly-linked list of Nodes, and returns.
//   * Control flow is structured: `prim::If` / `prim::Loop` nodes own nested
//     Blocks; values cross block boundaries only as block parameters and
//     block returns ("functional form of SSA" — block propagation in
//     Algorithm 1 manipulates exactly these).
//   * Every Value is defined once (node output or block parameter) and its
//     uses are tracked, enabling replace-all-uses rewrites.
//
// Ownership: the Graph arena owns all nodes/values/blocks; list pointers and
// operand pointers are non-owning. Destroyed nodes are unlinked and marked
// dead but reclaimed only with the graph (TorchScript does the same), which
// keeps iterator and pointer discipline simple for passes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/attrs.h"
#include "src/ir/op_kind.h"
#include "src/ir/type.h"

namespace tssa::ir {

class Node;
class Block;
class Graph;

/// One use of a Value: `user`'s `index`-th operand.
struct Use {
  Node* user = nullptr;
  std::size_t index = 0;
  friend bool operator==(const Use&, const Use&) = default;
};

/// An SSA value: the output of a node or a block parameter.
class Value {
 public:
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  std::size_t id() const { return id_; }
  const Type& type() const { return type_; }
  void setType(Type type) { type_ = std::move(type); }

  /// Defining node; nullptr when this value is a block parameter.
  Node* definingNode() const { return def_; }
  /// Owning block when this value is a block parameter; nullptr otherwise.
  Block* paramBlock() const { return paramBlock_; }
  bool isParam() const { return paramBlock_ != nullptr; }
  /// Output index within the defining node (or parameter index).
  std::size_t defIndex() const { return defIndex_; }

  /// The block whose scope this value is defined in (the param's block, or
  /// the defining node's owning block).
  Block* definingBlock() const;

  const std::vector<Use>& uses() const { return uses_; }
  bool hasUses() const { return !uses_.empty(); }

  /// Rewrites every use of this value to `other`.
  void replaceAllUsesWith(Value* other);

  /// Optional debug name shown by the printer alongside %id.
  const std::string& debugName() const { return debugName_; }
  void setDebugName(std::string name) { debugName_ = std::move(name); }

  Graph& graph() const { return *graph_; }

 private:
  friend class Node;
  friend class Block;
  friend class Graph;

  Value(Graph* graph, std::size_t id, Type type)
      : graph_(graph), id_(id), type_(std::move(type)) {}

  void addUse(Use use) { uses_.push_back(use); }
  void removeUse(Use use);

  Graph* graph_;
  std::size_t id_;
  Type type_;
  Node* def_ = nullptr;
  Block* paramBlock_ = nullptr;
  std::size_t defIndex_ = 0;
  std::vector<Use> uses_;
  std::string debugName_;
};

/// An operator instance.
class Node {
 public:
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  OpKind kind() const { return kind_; }
  /// Re-tags the node's operator. Only valid between structurally identical
  /// kinds (used by parallelization: prim::Loop -> tssa::ParallelMap).
  void setKind(OpKind kind) { kind_ = kind; }

  // ---- Operands ----
  std::span<Value* const> inputs() const { return inputs_; }
  std::size_t numInputs() const { return inputs_.size(); }
  Value* input(std::size_t i) const;
  void setInput(std::size_t i, Value* v);
  void addInput(Value* v);
  void insertInput(std::size_t i, Value* v);
  void removeInput(std::size_t i);
  void removeAllInputs();

  // ---- Results ----
  std::span<Value* const> outputs() const { return outputs_; }
  std::size_t numOutputs() const { return outputs_.size(); }
  Value* output(std::size_t i = 0) const;
  /// Appends a fresh output value (used by block propagation).
  Value* addOutput(Type type);

  // ---- Nested blocks ----
  std::span<Block* const> blocks() const { return blocks_; }
  std::size_t numBlocks() const { return blocks_.size(); }
  Block* block(std::size_t i) const;
  Block* addBlock();

  // ---- Attributes ----
  AttrMap& attrs() { return attrs_; }
  const AttrMap& attrs() const { return attrs_; }

  // ---- Position ----
  Block* owningBlock() const { return owningBlock_; }
  Graph& graph() const { return *graph_; }
  bool isInList() const { return owningBlock_ != nullptr; }
  /// Next/previous node in the owning block; the block's return node acts as
  /// the list sentinel (never returned by iteration helpers).
  Node* prev() const { return prev_; }
  Node* next() const { return next_; }

  void insertBefore(Node* anchor);
  void insertAfter(Node* anchor);
  /// Unlinks from the current block (if any) and re-inserts elsewhere.
  void moveBefore(Node* anchor);
  void moveAfter(Node* anchor);
  /// Appends at the end of `block` (before its return sentinel).
  void appendTo(Block* block);
  /// Inserts at the beginning of `block`.
  void prependTo(Block* block);

  /// Unlinks the node and releases its operand uses. Outputs must be unused.
  /// Nested blocks are destroyed recursively.
  void destroy();
  bool isDestroyed() const { return destroyed_; }

  /// True when `this` appears strictly before `other` in program order.
  /// Nodes in different blocks are compared at their common ancestor block
  /// (a node containing another via nested blocks is "before" its contents'
  /// successors but "containing" the contents; see dominates()).
  bool isBefore(const Node* other) const;
  /// Structured dominance: `this` dominates `other` when this is before
  /// other and this's block is `other`'s block or an ancestor of it.
  bool dominates(const Node* other) const;

 private:
  friend class Block;
  friend class Graph;

  Node(Graph* graph, OpKind kind) : graph_(graph), kind_(kind) {}

  void unlink();

  Graph* graph_;
  OpKind kind_;
  std::vector<Value*> inputs_;
  std::vector<Value*> outputs_;
  std::vector<Block*> blocks_;
  AttrMap attrs_;
  Block* owningBlock_ = nullptr;
  Node* prev_ = nullptr;
  Node* next_ = nullptr;
  bool destroyed_ = false;
};

/// A sequence of nodes with parameters and returns.
class Block {
 public:
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  Graph& graph() const { return *graph_; }
  /// The If/Loop/FusionGroup node containing this block; nullptr for the
  /// graph's top block.
  Node* owningNode() const { return owningNode_; }

  // ---- Parameters ----
  std::span<Value* const> params() const { return params_; }
  std::size_t numParams() const { return params_.size(); }
  Value* param(std::size_t i) const;
  Value* addParam(Type type, std::string debugName = {});
  Value* insertParam(std::size_t i, Type type, std::string debugName = {});

  // ---- Returns ----
  /// The sentinel prim::Return node; its inputs are the block's returns.
  Node* returnNode() const { return returnNode_; }
  std::span<Value* const> returns() const { return returnNode_->inputs(); }
  std::size_t numReturns() const { return returnNode_->numInputs(); }
  void addReturn(Value* v) { returnNode_->addInput(v); }
  void insertReturn(std::size_t i, Value* v) {
    returnNode_->insertInput(i, v);
  }
  void setReturn(std::size_t i, Value* v) { returnNode_->setInput(i, v); }

  // ---- Node list ----
  bool empty() const { return returnNode_->next_ == returnNode_; }
  Node* front() const;
  Node* back() const;

  /// Forward iteration over real nodes (excludes the return sentinel).
  class iterator {
   public:
    explicit iterator(Node* at) : at_(at) {}
    Node* operator*() const { return at_; }
    iterator& operator++() {
      at_ = at_->next();
      return *this;
    }
    bool operator==(const iterator&) const = default;

   private:
    Node* at_;
  };
  iterator begin() const { return iterator(returnNode_->next_); }
  iterator end() const { return iterator(returnNode_); }

  /// Snapshot of current nodes (safe to mutate the list while visiting).
  std::vector<Node*> nodesSnapshot() const;

  /// True if `this` is `other` or an ancestor block of `other`.
  bool encloses(const Block* other) const;
  /// Nesting depth (top block = 0).
  std::size_t depth() const;

 private:
  friend class Graph;
  friend class Node;

  Block(Graph* graph, Node* owningNode);

  Graph* graph_;
  Node* owningNode_;
  std::vector<Value*> params_;
  Node* returnNode_;  // circular-list sentinel; kind Return
};

/// A whole function: top-level block plus the ownership arena.
class Graph {
 public:
  Graph();
  ~Graph();
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  Block* topBlock() const { return topBlock_; }

  /// Graph inputs/outputs are the top block's params/returns.
  Value* addInput(Type type, std::string debugName = {}) {
    return topBlock_->addParam(std::move(type), std::move(debugName));
  }
  std::span<Value* const> inputs() const { return topBlock_->params(); }
  void addOutput(Value* v) { topBlock_->addReturn(v); }
  std::span<Value* const> outputs() const { return topBlock_->returns(); }

  /// Creates a node (not yet inserted into any block).
  Node* create(OpKind kind, std::span<Value* const> inputs,
               std::size_t numOutputs = 1);
  Node* create(OpKind kind, std::initializer_list<Value*> inputs,
               std::size_t numOutputs = 1);

  /// Number of live (non-destroyed) nodes across all blocks.
  std::size_t countNodes() const;

  std::string toString() const;

 private:
  friend class Node;
  friend class Block;

  Value* newValue(Type type);
  Block* newBlock(Node* owningNode);
  Node* newRawNode(OpKind kind);

  std::vector<std::unique_ptr<Node>> nodeArena_;
  std::vector<std::unique_ptr<Value>> valueArena_;
  std::vector<std::unique_ptr<Block>> blockArena_;
  Block* topBlock_ = nullptr;
  std::size_t nextValueId_ = 0;
};

/// Deep-copies `graph` (values, nodes, nested blocks, attributes).
std::unique_ptr<Graph> cloneGraph(const Graph& graph);

/// Clones the contents of `src` into `dst` (which must be empty), rewriting
/// operands through `valueMap`; `valueMap` must already map src's outer-scope
/// values (including src's params) to their replacements. New mappings for
/// node outputs are added as cloning proceeds.
void cloneBlockContents(const Block& src, Block* dst,
                        std::unordered_map<const Value*, Value*>& valueMap);

}  // namespace tssa::ir
