#include "src/ir/ir.h"

#include <algorithm>

namespace tssa::ir {

// ---- Value -------------------------------------------------------------------

Block* Value::definingBlock() const {
  if (paramBlock_ != nullptr) return paramBlock_;
  return def_ != nullptr ? def_->owningBlock() : nullptr;
}

void Value::removeUse(Use use) {
  auto it = std::find(uses_.begin(), uses_.end(), use);
  TSSA_CHECK(it != uses_.end(), "use not found on value %" << id_);
  uses_.erase(it);
}

void Value::replaceAllUsesWith(Value* other) {
  TSSA_CHECK(other != nullptr, "cannot replace uses with null");
  // Copy the use list: setInput mutates it.
  std::vector<Use> uses = uses_;
  for (const Use& use : uses) use.user->setInput(use.index, other);
}

// ---- Node ---------------------------------------------------------------------

Value* Node::input(std::size_t i) const {
  TSSA_CHECK(i < inputs_.size(), "input index " << i << " out of range on "
                                                << kind_);
  return inputs_[i];
}

void Node::setInput(std::size_t i, Value* v) {
  TSSA_CHECK(i < inputs_.size(), "input index out of range");
  TSSA_CHECK(v != nullptr, "null operand");
  inputs_[i]->removeUse(Use{this, i});
  inputs_[i] = v;
  v->addUse(Use{this, i});
}

void Node::addInput(Value* v) {
  TSSA_CHECK(v != nullptr, "null operand");
  v->addUse(Use{this, inputs_.size()});
  inputs_.push_back(v);
}

void Node::insertInput(std::size_t i, Value* v) {
  TSSA_CHECK(v != nullptr, "null operand");
  TSSA_CHECK(i <= inputs_.size(), "insert index out of range");
  // Shift the recorded indices of later uses.
  for (std::size_t j = i; j < inputs_.size(); ++j) {
    inputs_[j]->removeUse(Use{this, j});
    inputs_[j]->addUse(Use{this, j + 1});
  }
  inputs_.insert(inputs_.begin() + static_cast<std::ptrdiff_t>(i), v);
  v->addUse(Use{this, i});
}

void Node::removeInput(std::size_t i) {
  TSSA_CHECK(i < inputs_.size(), "input index out of range");
  inputs_[i]->removeUse(Use{this, i});
  for (std::size_t j = i + 1; j < inputs_.size(); ++j) {
    inputs_[j]->removeUse(Use{this, j});
    inputs_[j]->addUse(Use{this, j - 1});
  }
  inputs_.erase(inputs_.begin() + static_cast<std::ptrdiff_t>(i));
}

void Node::removeAllInputs() {
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    inputs_[i]->removeUse(Use{this, i});
  inputs_.clear();
}

Value* Node::output(std::size_t i) const {
  TSSA_CHECK(i < outputs_.size(),
             "output index " << i << " out of range on " << kind_);
  return outputs_[i];
}

Value* Node::addOutput(Type type) {
  Value* v = graph_->newValue(std::move(type));
  v->def_ = this;
  v->defIndex_ = outputs_.size();
  outputs_.push_back(v);
  return v;
}

Block* Node::block(std::size_t i) const {
  TSSA_CHECK(i < blocks_.size(), "block index out of range");
  return blocks_[i];
}

Block* Node::addBlock() {
  Block* b = graph_->newBlock(this);
  blocks_.push_back(b);
  return b;
}

void Node::insertBefore(Node* anchor) {
  TSSA_CHECK(anchor != nullptr && anchor->owningBlock_ != nullptr,
             "anchor not in a block");
  TSSA_CHECK(owningBlock_ == nullptr, "node already in a block; use moveBefore");
  prev_ = anchor->prev_;
  next_ = anchor;
  anchor->prev_->next_ = this;
  anchor->prev_ = this;
  owningBlock_ = anchor->owningBlock_;
}

void Node::insertAfter(Node* anchor) {
  TSSA_CHECK(anchor != nullptr && anchor->owningBlock_ != nullptr,
             "anchor not in a block");
  TSSA_CHECK(anchor->kind_ != OpKind::Return,
             "cannot insert after the return sentinel");
  TSSA_CHECK(owningBlock_ == nullptr, "node already in a block; use moveAfter");
  next_ = anchor->next_;
  prev_ = anchor;
  anchor->next_->prev_ = this;
  anchor->next_ = this;
  owningBlock_ = anchor->owningBlock_;
}

void Node::moveBefore(Node* anchor) {
  unlink();
  insertBefore(anchor);
}

void Node::moveAfter(Node* anchor) {
  unlink();
  insertAfter(anchor);
}

void Node::appendTo(Block* block) {
  TSSA_CHECK(owningBlock_ == nullptr, "node already in a block");
  insertBefore(block->returnNode());
}

void Node::prependTo(Block* block) {
  TSSA_CHECK(owningBlock_ == nullptr, "node already in a block");
  // The sentinel is circular: its next_ is the first node.
  prev_ = block->returnNode();
  next_ = block->returnNode()->next_;
  next_->prev_ = this;
  block->returnNode()->next_ = this;
  owningBlock_ = block;
}

void Node::unlink() {
  if (owningBlock_ == nullptr) return;
  prev_->next_ = next_;
  next_->prev_ = prev_;
  prev_ = next_ = nullptr;
  owningBlock_ = nullptr;
}

void Node::destroy() {
  TSSA_CHECK(!destroyed_, "double destroy");
  for (Value* out : outputs_) {
    TSSA_CHECK(!out->hasUses(),
               "destroying node " << kind_ << " whose output %" << out->id()
                                  << " still has uses");
  }
  // Destroy nested blocks' contents first: release return uses, then destroy
  // nodes in reverse order so uses are gone before their defs.
  for (Block* b : blocks_) {
    b->returnNode()->removeAllInputs();
    auto nodes = b->nodesSnapshot();
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) (*it)->destroy();
  }
  removeAllInputs();
  unlink();
  destroyed_ = true;
}

bool Node::isBefore(const Node* other) const {
  TSSA_CHECK(other != nullptr, "null node");
  if (this == other) return false;
  // Ancestor-node chains from each node up to the top block.
  auto chainOf = [](const Node* n) {
    std::vector<const Node*> chain;
    for (const Node* cur = n; cur != nullptr;) {
      chain.push_back(cur);
      Block* b = cur->owningBlock();
      cur = b != nullptr ? b->owningNode() : nullptr;
    }
    return chain;  // innermost first, top-level last
  };
  const auto ca = chainOf(this);
  const auto cb = chainOf(other);
  auto ia = ca.rbegin();
  auto ib = cb.rbegin();
  while (ia != ca.rend() && ib != cb.rend() && *ia == *ib) {
    ++ia;
    ++ib;
  }
  // One is a structural ancestor of the other: the container begins first.
  if (ia == ca.rend()) return true;
  if (ib == cb.rend()) return false;
  // *ia and *ib may sit in sibling blocks of one control-flow node (e.g.
  // then/else): order textually by block index.
  if ((*ia)->owningBlock() != (*ib)->owningBlock()) {
    const Block* ba = (*ia)->owningBlock();
    const Block* bb = (*ib)->owningBlock();
    TSSA_CHECK(ba->owningNode() == bb->owningNode(),
               "nodes not in the same graph");
    const Node* owner = ba->owningNode();
    for (const Block* b : owner->blocks()) {
      if (b == ba) return true;
      if (b == bb) return false;
    }
    TSSA_THROW("block not found on owning node");
  }
  // Distinct siblings in the same block: walk the list.
  for (const Node* n = (*ia)->next_; n != nullptr && n->kind_ != OpKind::Return;
       n = n->next_) {
    if (n == *ib) return true;
  }
  return false;
}

bool Node::dominates(const Node* other) const {
  TSSA_CHECK(other != nullptr, "null node");
  if (this == other) return true;
  if (!owningBlock_->encloses(other->owningBlock())) return false;
  // Raise `other` to this block, then check list order.
  const Node* o = other;
  while (o->owningBlock() != owningBlock_) o = o->owningBlock()->owningNode();
  if (o == this) return false;  // `other` is inside this node's blocks
  for (const Node* n = next_; n != nullptr && n->kind() != OpKind::Return;
       n = n->next()) {
    if (n == o) return true;
  }
  return false;
}

// ---- Block ---------------------------------------------------------------------

Block::Block(Graph* graph, Node* owningNode)
    : graph_(graph), owningNode_(owningNode) {
  returnNode_ = graph->newRawNode(OpKind::Return);
  returnNode_->owningBlock_ = this;
  returnNode_->prev_ = returnNode_;
  returnNode_->next_ = returnNode_;
}

Value* Block::param(std::size_t i) const {
  TSSA_CHECK(i < params_.size(), "param index out of range");
  return params_[i];
}

Value* Block::addParam(Type type, std::string debugName) {
  Value* v = graph_->newValue(std::move(type));
  v->paramBlock_ = this;
  v->defIndex_ = params_.size();
  v->setDebugName(std::move(debugName));
  params_.push_back(v);
  return v;
}

Value* Block::insertParam(std::size_t i, Type type, std::string debugName) {
  TSSA_CHECK(i <= params_.size(), "param index out of range");
  Value* v = graph_->newValue(std::move(type));
  v->paramBlock_ = this;
  v->setDebugName(std::move(debugName));
  params_.insert(params_.begin() + static_cast<std::ptrdiff_t>(i), v);
  for (std::size_t j = i; j < params_.size(); ++j) params_[j]->defIndex_ = j;
  return v;
}

Node* Block::front() const {
  TSSA_CHECK(!empty(), "front() of empty block");
  return returnNode_->next_;
}

Node* Block::back() const {
  TSSA_CHECK(!empty(), "back() of empty block");
  return returnNode_->prev_;
}

std::vector<Node*> Block::nodesSnapshot() const {
  std::vector<Node*> out;
  for (Node* n : *this) out.push_back(n);
  return out;
}

bool Block::encloses(const Block* other) const {
  for (const Block* b = other; b != nullptr;
       b = b->owningNode() ? b->owningNode()->owningBlock() : nullptr) {
    if (b == this) return true;
  }
  return false;
}

std::size_t Block::depth() const {
  std::size_t d = 0;
  for (const Block* b = this; b->owningNode() != nullptr;
       b = b->owningNode()->owningBlock()) {
    ++d;
  }
  return d;
}

// ---- Graph ----------------------------------------------------------------------

Graph::Graph() { topBlock_ = newBlock(nullptr); }

Graph::~Graph() = default;

Node* Graph::create(OpKind kind, std::span<Value* const> inputs,
                    std::size_t numOutputs) {
  Node* n = newRawNode(kind);
  for (Value* v : inputs) n->addInput(v);
  for (std::size_t i = 0; i < numOutputs; ++i) n->addOutput(Type::tensor());
  return n;
}

Node* Graph::create(OpKind kind, std::initializer_list<Value*> inputs,
                    std::size_t numOutputs) {
  return create(kind,
                std::span<Value* const>(inputs.begin(), inputs.size()),
                numOutputs);
}

namespace {
std::size_t countBlockNodes(const Block& block) {
  std::size_t n = 0;
  for (Node* node : block) {
    ++n;
    for (Block* b : node->blocks()) n += countBlockNodes(*b);
  }
  return n;
}
}  // namespace

std::size_t Graph::countNodes() const { return countBlockNodes(*topBlock_); }

Value* Graph::newValue(Type type) {
  valueArena_.push_back(
      std::unique_ptr<Value>(new Value(this, nextValueId_++, std::move(type))));
  return valueArena_.back().get();
}

Block* Graph::newBlock(Node* owningNode) {
  blockArena_.push_back(std::unique_ptr<Block>(new Block(this, owningNode)));
  return blockArena_.back().get();
}

Node* Graph::newRawNode(OpKind kind) {
  nodeArena_.push_back(std::unique_ptr<Node>(new Node(this, kind)));
  return nodeArena_.back().get();
}

// ---- Cloning --------------------------------------------------------------------

void cloneBlockContents(const Block& src, Block* dst,
                        std::unordered_map<const Value*, Value*>& valueMap) {
  Graph& g = dst->graph();
  auto mapped = [&](Value* v) {
    auto it = valueMap.find(v);
    TSSA_CHECK(it != valueMap.end(),
               "clone: operand %" << v->id() << " has no mapping");
    return it->second;
  };
  for (const Node* n : src) {
    Node* copy = g.create(n->kind(), std::initializer_list<Value*>{},
                          /*numOutputs=*/0);
    for (Value* in : n->inputs()) copy->addInput(mapped(in));
    for (Value* out : n->outputs()) {
      Value* newOut = copy->addOutput(out->type());
      newOut->setDebugName(out->debugName());
      valueMap[out] = newOut;
    }
    for (const auto& [name, value] : n->attrs().all())
      copy->attrs().set(name, value);
    for (const Block* b : n->blocks()) {
      Block* newBlock = copy->addBlock();
      for (Value* p : b->params()) {
        Value* newParam = newBlock->addParam(p->type(), p->debugName());
        valueMap[p] = newParam;
      }
      cloneBlockContents(*b, newBlock, valueMap);
    }
    copy->appendTo(dst);
  }
  for (Value* r : src.returns()) dst->addReturn(mapped(r));
}

std::unique_ptr<Graph> cloneGraph(const Graph& graph) {
  auto out = std::make_unique<Graph>();
  std::unordered_map<const Value*, Value*> valueMap;
  for (Value* in : graph.inputs())
    valueMap[in] = out->addInput(in->type(), in->debugName());
  cloneBlockContents(*graph.topBlock(), out->topBlock(), valueMap);
  return out;
}

}  // namespace tssa::ir
