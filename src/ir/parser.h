// Parser for the textual IR format emitted by the printer.
//
// Round-trips with printGraph(): parse(toString(g)) produces a structurally
// identical graph (same ops, operands, attributes, blocks). One documented
// lossy case: tensor-valued attributes print only their dtype/shape
// ("<f32[2, 3]>"), so parsing reconstructs a zero tensor of that shape —
// structure and types survive, weights do not.
#pragma once

#include <memory>
#include <string>

#include "src/ir/ir.h"

namespace tssa::ir {

/// Parses one graph from `text`; throws tssa::Error with a line/column
/// message on malformed input.
std::unique_ptr<Graph> parseGraph(const std::string& text);

}  // namespace tssa::ir
