#include "src/ir/op_kind.h"

#include "src/support/error.h"

namespace tssa::ir {

std::string_view opName(OpKind kind) {
  switch (kind) {
#define TSSA_OPKIND_NAME(name, str, cat) \
  case OpKind::name:                     \
    return str;
    TSSA_FOREACH_OPKIND(TSSA_OPKIND_NAME)
#undef TSSA_OPKIND_NAME
  }
  return "<invalid>";
}

OpCategory opCategory(OpKind kind) {
  switch (kind) {
#define TSSA_OPKIND_CAT(name, str, cat) \
  case OpKind::name:                    \
    return OpCategory::cat;
    TSSA_FOREACH_OPKIND(TSSA_OPKIND_CAT)
#undef TSSA_OPKIND_CAT
  }
  TSSA_THROW("invalid op kind");
}

bool isViewOp(OpKind kind) { return opCategory(kind) == OpCategory::ViewOp; }

bool isMutationOp(OpKind kind) {
  return opCategory(kind) == OpCategory::Mutation;
}

bool isPureOp(OpKind kind) {
  switch (opCategory(kind)) {
    case OpCategory::Scalar:
    case OpCategory::EwiseUnary:
    case OpCategory::EwiseBinary:
    case OpCategory::EwiseTernary:
    case OpCategory::Reduction:
    case OpCategory::Linalg:
    case OpCategory::ShapeOp:
    case OpCategory::Factory:
      return true;
    case OpCategory::Immut:
      // Access/Assign are pure; Update is annotation-only and excluded.
      return kind == OpKind::Access || kind == OpKind::Assign;
    case OpCategory::Primitive:
      return kind == OpKind::Constant || kind == OpKind::ListConstruct ||
             kind == OpKind::ListIndex;
    case OpCategory::ViewOp:
    case OpCategory::Mutation:
    case OpCategory::ControlFlow:
    case OpCategory::Fusion:
      return false;
  }
  return false;
}

bool isFusableOp(OpKind kind) {
  switch (opCategory(kind)) {
    case OpCategory::EwiseUnary:
    case OpCategory::EwiseBinary:
    case OpCategory::EwiseTernary:
      return true;
    case OpCategory::Immut:
      return kind == OpKind::Access || kind == OpKind::Assign;
    default:
      return false;
  }
}

OpKind pureEquivalent(OpKind kind) {
  switch (kind) {
    case OpKind::Add_:
      return OpKind::Add;
    case OpKind::Sub_:
      return OpKind::Sub;
    case OpKind::Mul_:
      return OpKind::Mul;
    case OpKind::Div_:
      return OpKind::Div;
    case OpKind::Relu_:
      return OpKind::Relu;
    case OpKind::Sigmoid_:
      return OpKind::Sigmoid;
    case OpKind::Tanh_:
      return OpKind::Tanh;
    case OpKind::MaskedFill_:
      return OpKind::MaskedFill;
    default:
      return kind;
  }
}

std::ostream& operator<<(std::ostream& os, OpKind kind) {
  return os << opName(kind);
}

}  // namespace tssa::ir
