// Node attributes: named static operands of IR nodes.
//
// Dynamic operands (anything data- or loop-dependent) are Value inputs;
// attributes hold static configuration: dims of a permute, sizes of a factory
// op, the payload of a prim::Constant, the view rule of an Access/Assign.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/support/error.h"
#include "src/tensor/scalar.h"
#include "src/tensor/tensor.h"

namespace tssa::ir {

using AttrValue =
    std::variant<Scalar, std::string, std::vector<std::int64_t>, Tensor,
                 DType>;

/// Ordered attribute map (std::map keeps printing deterministic).
class AttrMap {
 public:
  bool has(const std::string& name) const { return attrs_.count(name) > 0; }

  void set(const std::string& name, AttrValue value) {
    attrs_[name] = std::move(value);
  }

  /// Typed getters; throw when absent or of the wrong type.
  Scalar scalar(const std::string& name) const {
    return get<Scalar>(name);
  }
  std::int64_t i(const std::string& name) const {
    return get<Scalar>(name).toInt();
  }
  double f(const std::string& name) const {
    return get<Scalar>(name).toDouble();
  }
  bool b(const std::string& name) const { return get<Scalar>(name).toBool(); }
  const std::string& s(const std::string& name) const {
    return get<std::string>(name);
  }
  const std::vector<std::int64_t>& ints(const std::string& name) const {
    return get<std::vector<std::int64_t>>(name);
  }
  const Tensor& tensor(const std::string& name) const {
    return get<Tensor>(name);
  }
  DType dtype(const std::string& name) const { return get<DType>(name); }

  std::int64_t iOr(const std::string& name, std::int64_t fallback) const {
    if (!has(name)) return fallback;
    return i(name);
  }
  bool bOr(const std::string& name, bool fallback) const {
    if (!has(name)) return fallback;
    return b(name);
  }

  const std::map<std::string, AttrValue>& all() const { return attrs_; }
  bool empty() const { return attrs_.empty(); }

 private:
  template <typename T>
  const T& get(const std::string& name) const {
    auto it = attrs_.find(name);
    TSSA_CHECK(it != attrs_.end(), "missing attribute '" << name << "'");
    const T* v = std::get_if<T>(&it->second);
    TSSA_CHECK(v != nullptr, "attribute '" << name << "' has wrong type");
    return *v;
  }

  std::map<std::string, AttrValue> attrs_;
};

/// Renders an attribute value for the printer.
std::string attrToString(const AttrValue& value);

}  // namespace tssa::ir
