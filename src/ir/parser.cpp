#include "src/ir/parser.h"

#include <cctype>
#include <unordered_map>

#include "src/ir/builder.h"

namespace tssa::ir {
namespace {

// ---- Tokenizer -----------------------------------------------------------------

struct Token {
  enum Kind {
    Ident,     // graph, block0, aten::add, f32, true, 3, 0.5, -1e9 ...
    ValueRef,  // %name.3 or %3
    Punct,     // ( ) [ ] , : =
    Arrow,     // ->
    End,
  };
  Kind kind = End;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  /// Consumes a punct token with exactly this text.
  void expect(const std::string& punct) {
    Token t = next();
    TSSA_CHECK(t.text == punct, "parse error at line "
                                    << t.line << ": expected '" << punct
                                    << "', got '" << t.text << "'");
  }

  bool accept(const std::string& punct) {
    if (current_.text == punct) {
      advance();
      return true;
    }
    return false;
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    current_ = Token{Token::End, "", line_};
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (c == '%') {
      std::size_t start = pos_++;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                         text_[pos_])) != 0 ||
                                     text_[pos_] == '_' || text_[pos_] == '.'))
        ++pos_;
      current_ = Token{Token::ValueRef, text_.substr(start, pos_ - start),
                       line_};
      return;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      current_ = Token{Token::Arrow, "->", line_};
      return;
    }
    if (std::string("()[],:=<>").find(c) != std::string::npos) {
      // "::" inside op names is handled by the identifier branch below; a
      // bare ':' is punctuation.
      ++pos_;
      current_ = Token{Token::Punct, std::string(1, c), line_};
      return;
    }
    if (c == '"') {  // quoted string attr
      std::size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      std::string s = text_.substr(start, pos_ - start);
      ++pos_;  // closing quote
      current_ = Token{Token::Ident, "\"" + s + "\"", line_};
      return;
    }
    // Identifier / number: letters, digits, '.', '-', '+', '_', and "::".
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(d)) != 0 || d == '_' ||
          d == '.' || d == '-' || d == '+') {
        ++pos_;
        continue;
      }
      if (d == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
        pos_ += 2;
        continue;
      }
      break;
    }
    TSSA_CHECK(pos_ > start, "parse error at line " << line_
                                                    << ": unexpected '" << c
                                                    << "'");
    current_ = Token{Token::Ident, text_.substr(start, pos_ - start), line_};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ---- Parser --------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  std::unique_ptr<Graph> run() {
    auto graph = std::make_unique<Graph>();
    Token kw = lex_.next();
    TSSA_CHECK(kw.text == "graph", "expected 'graph' at line " << kw.line);
    lex_.expect("(");
    if (!lex_.accept(")")) {
      do {
        Token ref = lex_.next();
        lex_.expect(":");
        Type type = parseType();
        Value* v = graph->addInput(type, debugNameOf(ref.text));
        values_[ref.text] = v;
      } while (lex_.accept(","));
      lex_.expect(")");
    }
    lex_.expect(":");
    parseStatements(*graph, graph->topBlock());
    // 'return (...)' terminates the top block.
    Token ret = lex_.next();
    TSSA_CHECK(ret.text == "return", "expected 'return' at line " << ret.line);
    for (Value* v : parseValueList()) graph->addOutput(v);
    return graph;
  }

 private:
  static std::string debugNameOf(const std::string& ref) {
    // "%name.3" -> "name"; "%3" -> "".
    const std::size_t dot = ref.rfind('.');
    if (dot == std::string::npos) return "";
    return ref.substr(1, dot - 1);
  }

  Type parseType() {
    Token t = lex_.next();
    if (t.text == "Tensor") {
      if (lex_.accept("[")) {
        lex_.expect("]");
        return Type::tensorList();
      }
      return Type::tensor();
    }
    if (t.text == "int") return Type::integer();
    if (t.text == "float") return Type::floating();
    if (t.text == "bool") return Type::boolean();
    if (t.text == "none") return Type::none();
    // dtype-qualified tensor: "f32 Tensor" or, with (symbolic) dims,
    // "f32[B,C+1,32] Tensor".
    for (DType dt : {DType::Float32, DType::Int64, DType::Bool}) {
      if (t.text == dtypeName(dt)) {
        bool hasDims = false;
        std::vector<Dim> dims;
        if (lex_.accept("[")) {
          hasDims = true;
          if (!lex_.accept("]")) {
            do {
              dims.push_back(parseDim(lex_.next()));
            } while (lex_.accept(","));
            lex_.expect("]");
          }
        }
        Token tensor = lex_.next();
        TSSA_CHECK(tensor.text == "Tensor",
                   "expected 'Tensor' after dtype at line " << tensor.line);
        return hasDims ? Type::tensor(dt, std::move(dims)) : Type::tensor(dt);
      }
    }
    TSSA_THROW("unknown type '" << t.text << "' at line " << t.line);
  }

  // One dim list entry. The lexer folds '+'/'-' into identifier tokens, so a
  // symbol-with-offset like "C+1" arrives as a single token to split here.
  static Dim parseDim(const Token& t) {
    const std::string& s = t.text;
    TSSA_CHECK(!s.empty(), "empty dim at line " << t.line);
    bool numeric = true;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (!(std::isdigit(static_cast<unsigned char>(c)) ||
            (i == 0 && c == '-'))) {
        numeric = false;
        break;
      }
    }
    if (numeric) return Dim(std::stoll(s));
    const std::size_t cut = s.find_first_of("+-", 1);
    if (cut == std::string::npos) return Dim::symbol(s);
    return Dim::symbol(s.substr(0, cut), std::stoll(s.substr(cut)));
  }

  OpKind parseOpKind(const std::string& name, int line) {
#define TSSA_PARSE_OPKIND(enumName, str, cat) \
  if (name == str) return OpKind::enumName;
    TSSA_FOREACH_OPKIND(TSSA_PARSE_OPKIND)
#undef TSSA_PARSE_OPKIND
    TSSA_THROW("unknown operator '" << name << "' at line " << line);
  }

  Value* lookup(const std::string& ref, int line) {
    auto it = values_.find(ref);
    TSSA_CHECK(it != values_.end(),
               "use of undefined value " << ref << " at line " << line);
    return it->second;
  }

  std::vector<Value*> parseValueList() {
    std::vector<Value*> out;
    lex_.expect("(");
    if (lex_.accept(")")) return out;
    do {
      Token ref = lex_.next();
      out.push_back(lookup(ref.text, ref.line));
    } while (lex_.accept(","));
    lex_.expect(")");
    return out;
  }

  AttrValue parseAttrValue() {
    if (lex_.accept("[")) {  // int list
      std::vector<std::int64_t> ints;
      if (!lex_.accept("]")) {
        do {
          ints.push_back(std::stoll(lex_.next().text));
        } while (lex_.accept(","));
        lex_.expect("]");
      }
      return ints;
    }
    if (lex_.accept("<")) {  // tensor attr: <f32[2, 3]> — zeros reconstruction
      Token dt = lex_.next();
      DType dtype = DType::Float32;
      for (DType d : {DType::Float32, DType::Int64, DType::Bool}) {
        if (dt.text == dtypeName(d)) dtype = d;
      }
      lex_.expect("[");
      Shape shape;
      if (!lex_.accept("]")) {
        do {
          shape.push_back(std::stoll(lex_.next().text));
        } while (lex_.accept(","));
        lex_.expect("]");
      }
      lex_.expect(">");
      return Tensor::zeros(std::move(shape), dtype);
    }
    Token t = lex_.next();
    if (!t.text.empty() && t.text.front() == '"') {
      return t.text.substr(1, t.text.size() - 2);
    }
    if (t.text == "true") return Scalar(true);
    if (t.text == "false") return Scalar(false);
    for (DType d : {DType::Float32, DType::Int64, DType::Bool}) {
      if (t.text == dtypeName(d)) return d;
    }
    // Number: float when it has a decimal point or exponent.
    if (t.text.find('.') != std::string::npos ||
        t.text.find('e') != std::string::npos ||
        t.text.find("inf") != std::string::npos ||
        t.text.find("nan") != std::string::npos) {
      return Scalar(std::stod(t.text));
    }
    return Scalar(static_cast<std::int64_t>(std::stoll(t.text)));
  }

  /// Parses statements until the stream reaches 'return' or '->'.
  void parseStatements(Graph& graph, Block* block) {
    while (lex_.peek().kind != Token::End && lex_.peek().text != "return" &&
           lex_.peek().kind != Token::Arrow) {
      parseNode(graph, block);
    }
  }

  void parseNode(Graph& graph, Block* block) {
    // Outputs (optional): "%a : T, %b : T = "
    std::vector<std::pair<std::string, Type>> outputs;
    while (lex_.peek().kind == Token::ValueRef) {
      Token ref = lex_.next();
      lex_.expect(":");
      Type type = parseType();
      outputs.emplace_back(ref.text, type);
      if (lex_.accept(",")) continue;
      break;
    }
    if (!outputs.empty()) lex_.expect("=");

    Token opTok = lex_.next();
    const OpKind kind = parseOpKind(opTok.text, opTok.line);
    Node* node = graph.create(kind, {}, 0);

    // Attributes.
    if (lex_.accept("[")) {
      do {
        Token name = lex_.next();
        lex_.expect("=");
        node->attrs().set(name.text, parseAttrValue());
      } while (lex_.accept(","));
      lex_.expect("]");
    }
    // Operands.
    lex_.expect("(");
    if (!lex_.accept(")")) {
      do {
        Token ref = lex_.next();
        node->addInput(lookup(ref.text, ref.line));
      } while (lex_.accept(","));
      lex_.expect(")");
    }
    for (const auto& [ref, type] : outputs) {
      Value* v = node->addOutput(type);
      v->setDebugName(debugNameOf(ref));
      values_[ref] = v;
    }
    node->appendTo(block);

    // Nested blocks: "blockN(params...):" ... "-> (returns)".
    while (lex_.peek().kind == Token::Ident &&
           lex_.peek().text.rfind("block", 0) == 0) {
      lex_.next();  // blockN
      Block* nested = node->addBlock();
      lex_.expect("(");
      if (!lex_.accept(")")) {
        do {
          Token ref = lex_.next();
          lex_.expect(":");
          Type type = parseType();
          Value* p = nested->addParam(type, debugNameOf(ref.text));
          values_[ref.text] = p;
        } while (lex_.accept(","));
        lex_.expect(")");
      }
      lex_.expect(":");
      parseStatements(graph, nested);
      Token arrow = lex_.next();
      TSSA_CHECK(arrow.kind == Token::Arrow,
                 "expected '->' at line " << arrow.line);
      for (Value* v : parseValueList()) nested->addReturn(v);
    }
  }

  Lexer lex_;
  std::unordered_map<std::string, Value*> values_;
};

}  // namespace

std::unique_ptr<Graph> parseGraph(const std::string& text) {
  return Parser(text).run();
}

}  // namespace tssa::ir
