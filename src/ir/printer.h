// Textual rendering of graph-level IR (TorchScript-like format).
#pragma once

#include <ostream>
#include <string>

#include "src/ir/ir.h"

namespace tssa::ir {

/// Prints `graph` in a TorchScript-like textual format:
///
///   graph(%a : Tensor, %n : int):
///     %2 : int = prim::Constant[value=0]()
///     %3 : Tensor = aten::select[dim=0](%a, %2)
///     %4 : Tensor = prim::Loop(%n, %3)
///       block0(%i : int, %acc : Tensor):
///         ...
///         -> (%7)
///     return (%4)
void printGraph(std::ostream& os, const Graph& graph);

std::string toString(const Graph& graph);

/// Prints one node (without nested block bodies' indentation context).
std::string toString(const Node& node);

}  // namespace tssa::ir
