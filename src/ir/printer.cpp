#include "src/ir/printer.h"

#include <sstream>

#include "src/support/strings.h"

namespace tssa::ir {
namespace {

std::string valueRef(const Value* v) {
  std::ostringstream os;
  os << "%";
  if (!v->debugName().empty()) {
    os << v->debugName() << "." << v->id();
  } else {
    os << v->id();
  }
  return os.str();
}

std::string attrsSuffix(const Node& node) {
  if (node.attrs().empty()) return "";
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& [name, value] : node.attrs().all()) {
    if (!first) os << ", ";
    os << name << "=" << attrToString(value);
    first = false;
  }
  os << "]";
  return os.str();
}

void printNodeLine(std::ostream& os, const Node& node, int indent);

void printBlock(std::ostream& os, const Block& block, int indent,
                std::size_t blockIndex) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << "block" << blockIndex << "(";
  bool first = true;
  for (const Value* p : block.params()) {
    if (!first) os << ", ";
    os << valueRef(p) << " : " << p->type();
    first = false;
  }
  os << "):\n";
  for (const Node* n : block) printNodeLine(os, *n, indent + 1);
  const std::string innerPad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  std::vector<std::string> rets;
  for (const Value* r : block.returns()) rets.push_back(valueRef(r));
  os << innerPad << "-> (" << join(rets, ", ") << ")\n";
}

void printNodeLine(std::ostream& os, const Node& node, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad;
  if (node.numOutputs() > 0) {
    std::vector<std::string> outs;
    for (const Value* out : node.outputs()) {
      outs.push_back(valueRef(out) + " : " + out->type().toString());
    }
    os << join(outs, ", ") << " = ";
  }
  os << opName(node.kind()) << attrsSuffix(node) << "(";
  std::vector<std::string> ins;
  for (const Value* in : node.inputs()) ins.push_back(valueRef(in));
  os << join(ins, ", ") << ")\n";
  for (std::size_t i = 0; i < node.numBlocks(); ++i)
    printBlock(os, *node.block(i), indent + 1, i);
}

}  // namespace

std::string attrToString(const AttrValue& value) {
  std::ostringstream os;
  if (const auto* s = std::get_if<Scalar>(&value)) {
    os << *s;
  } else if (const auto* str = std::get_if<std::string>(&value)) {
    os << '"' << *str << '"';
  } else if (const auto* ints = std::get_if<std::vector<std::int64_t>>(&value)) {
    os << bracketed(*ints);
  } else if (const auto* t = std::get_if<Tensor>(&value)) {
    os << "<" << dtypeName(t->dtype()) << bracketed(t->sizes()) << ">";
  } else if (const auto* dt = std::get_if<DType>(&value)) {
    os << dtypeName(*dt);
  }
  return os.str();
}

void printGraph(std::ostream& os, const Graph& graph) {
  os << "graph(";
  bool first = true;
  for (const Value* in : graph.inputs()) {
    if (!first) os << ", ";
    os << valueRef(in) << " : " << in->type();
    first = false;
  }
  os << "):\n";
  for (const Node* n : *graph.topBlock()) printNodeLine(os, *n, 1);
  std::vector<std::string> rets;
  for (const Value* r : graph.outputs()) rets.push_back(valueRef(r));
  os << "  return (" << join(rets, ", ") << ")\n";
}

std::string toString(const Graph& graph) {
  std::ostringstream os;
  printGraph(os, graph);
  return os.str();
}

std::string toString(const Node& node) {
  std::ostringstream os;
  printNodeLine(os, node, 0);
  return os.str();
}

}  // namespace tssa::ir

namespace tssa::ir {
std::string Graph::toString() const { return ::tssa::ir::toString(*this); }
}  // namespace tssa::ir
