// Operator vocabulary of the graph-level IR.
//
// The kinds mirror the paper's TorchScript setting:
//   * `prim::*`   — structural operators (constants, control flow, lists)
//   * `scalar::*` — Python-level int/float arithmetic (loop indices etc.)
//   * `aten::*`   — tensor compute, tensor *views*, and in-place *mutation*
//   * `immut::*`  — TensorSSA's Access / Assign (Definitions 3.3 / 3.4)
//   * `tssa::*`   — Update annotation (Definition 3.5) and fusion results
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace tssa::ir {

// X-macro master list: TSSA_FOREACH_OPKIND(X) expands X(EnumName, "printed
// name", Category) for every operator. Keeping it in one place guarantees the
// enum, the name table, and the category table never drift apart.
#define TSSA_FOREACH_OPKIND(X)                                     \
  /* --- structural --- */                                         \
  X(Constant, "prim::Constant", Primitive)                         \
  X(ListConstruct, "prim::ListConstruct", Primitive)               \
  X(ListIndex, "prim::ListIndex", Primitive)                       \
  X(If, "prim::If", ControlFlow)                                   \
  X(Loop, "prim::Loop", ControlFlow)                               \
  X(Return, "prim::Return", Primitive)                             \
  /* --- scalar arithmetic --- */                                  \
  X(ScalarAdd, "scalar::add", Scalar)                              \
  X(ScalarSub, "scalar::sub", Scalar)                              \
  X(ScalarMul, "scalar::mul", Scalar)                              \
  X(ScalarMod, "scalar::mod", Scalar)                              \
  X(ScalarMin, "scalar::min", Scalar)                              \
  X(ScalarMax, "scalar::max", Scalar)                              \
  X(ScalarLt, "scalar::lt", Scalar)                                \
  X(ScalarLe, "scalar::le", Scalar)                                \
  X(ScalarGt, "scalar::gt", Scalar)                                \
  X(ScalarGe, "scalar::ge", Scalar)                                \
  X(ScalarEq, "scalar::eq", Scalar)                                \
  X(ScalarNe, "scalar::ne", Scalar)                                \
  X(SizeOf, "aten::size", Scalar)                                  \
  /* --- elementwise binary --- */                                 \
  X(Add, "aten::add", EwiseBinary)                                 \
  X(Sub, "aten::sub", EwiseBinary)                                 \
  X(Mul, "aten::mul", EwiseBinary)                                 \
  X(Div, "aten::div", EwiseBinary)                                 \
  X(Pow, "aten::pow", EwiseBinary)                                 \
  X(Minimum, "aten::minimum", EwiseBinary)                         \
  X(Maximum, "aten::maximum", EwiseBinary)                         \
  X(Eq, "aten::eq", EwiseBinary)                                   \
  X(Ne, "aten::ne", EwiseBinary)                                   \
  X(Lt, "aten::lt", EwiseBinary)                                   \
  X(Le, "aten::le", EwiseBinary)                                   \
  X(Gt, "aten::gt", EwiseBinary)                                   \
  X(Ge, "aten::ge", EwiseBinary)                                   \
  X(LogicalAnd, "aten::logical_and", EwiseBinary)                  \
  X(LogicalOr, "aten::logical_or", EwiseBinary)                    \
  /* --- elementwise unary --- */                                  \
  X(Neg, "aten::neg", EwiseUnary)                                  \
  X(Exp, "aten::exp", EwiseUnary)                                  \
  X(Log, "aten::log", EwiseUnary)                                  \
  X(Sqrt, "aten::sqrt", EwiseUnary)                                \
  X(Abs, "aten::abs", EwiseUnary)                                  \
  X(Sigmoid, "aten::sigmoid", EwiseUnary)                          \
  X(Tanh, "aten::tanh", EwiseUnary)                                \
  X(Relu, "aten::relu", EwiseUnary)                                \
  X(LogicalNot, "aten::logical_not", EwiseUnary)                   \
  X(Clamp, "aten::clamp", EwiseUnary)                              \
  X(Cast, "aten::to", EwiseUnary)                                  \
  /* --- elementwise n-ary --- */                                  \
  X(Where, "aten::where", EwiseTernary)                            \
  X(MaskedFill, "aten::masked_fill", EwiseTernary)                 \
  /* --- reductions --- */                                         \
  X(Sum, "aten::sum", Reduction)                                   \
  X(SumDim, "aten::sum.dim", Reduction)                            \
  X(Mean, "aten::mean.dim", Reduction)                             \
  X(MaxDim, "aten::max.dim", Reduction)                            \
  X(MinDim, "aten::min.dim", Reduction)                            \
  X(Argmax, "aten::argmax", Reduction)                             \
  X(Softmax, "aten::softmax", Reduction)                           \
  X(Cumsum, "aten::cumsum", Reduction)                             \
  /* --- linear algebra --- */                                     \
  X(Matmul, "aten::matmul", Linalg)                                \
  X(Bmm, "aten::bmm", Linalg)                                      \
  /* --- shape / data movement --- */                              \
  X(Cat, "aten::cat", ShapeOp)                                     \
  X(Stack, "aten::stack", ShapeOp)                                 \
  X(IndexSelect, "aten::index_select", ShapeOp)                    \
  X(Gather, "aten::gather", ShapeOp)                               \
  X(Topk, "aten::topk", ShapeOp)                                   \
  X(Argsort, "aten::argsort", ShapeOp)                             \
  X(Clone, "aten::clone", ShapeOp)                                 \
  X(Contiguous, "aten::contiguous", ShapeOp)                       \
  /* --- factories --- */                                          \
  X(Zeros, "aten::zeros", Factory)                                 \
  X(Ones, "aten::ones", Factory)                                   \
  X(Full, "aten::full", Factory)                                   \
  X(Arange, "aten::arange", Factory)                               \
  /* --- tensor views (share storage; Definition 3.1) --- */       \
  X(Select, "aten::select", ViewOp)                                \
  X(Slice, "aten::slice", ViewOp)                                  \
  X(Reshape, "aten::reshape", ViewOp)                              \
  X(Permute, "aten::permute", ViewOp)                              \
  X(Transpose, "aten::transpose", ViewOp)                          \
  X(Expand, "aten::expand", ViewOp)                                \
  X(Squeeze, "aten::squeeze", ViewOp)                              \
  X(Unsqueeze, "aten::unsqueeze", ViewOp)                          \
  X(Flatten, "aten::flatten", ViewOp)                              \
  X(Identity, "immut::identity", ViewOp)                           \
  /* --- in-place mutation (Definition 3.2) --- */                 \
  X(Copy_, "aten::copy_", Mutation)                                \
  X(Fill_, "aten::fill_", Mutation)                                \
  X(Zero_, "aten::zero_", Mutation)                                \
  X(Add_, "aten::add_", Mutation)                                  \
  X(Sub_, "aten::sub_", Mutation)                                  \
  X(Mul_, "aten::mul_", Mutation)                                  \
  X(Div_, "aten::div_", Mutation)                                  \
  X(Relu_, "aten::relu_", Mutation)                                \
  X(Sigmoid_, "aten::sigmoid_", Mutation)                          \
  X(Tanh_, "aten::tanh_", Mutation)                                \
  X(MaskedFill_, "aten::masked_fill_", Mutation)                   \
  /* --- TensorSSA (Definitions 3.3-3.5) --- */                    \
  X(Access, "immut::access", Immut)                                \
  X(Assign, "immut::assign", Immut)                                \
  X(Update, "tssa::update", Immut)                                 \
  /* --- fusion results --- */                                     \
  X(FusionGroup, "tssa::FusionGroup", Fusion)                      \
  X(ParallelMap, "tssa::ParallelMap", ControlFlow)

enum class OpKind : std::uint16_t {
#define TSSA_OPKIND_ENUM(name, str, cat) name,
  TSSA_FOREACH_OPKIND(TSSA_OPKIND_ENUM)
#undef TSSA_OPKIND_ENUM
};

enum class OpCategory : std::uint8_t {
  Primitive,
  Scalar,
  EwiseUnary,
  EwiseBinary,
  EwiseTernary,
  Reduction,
  Linalg,
  ShapeOp,
  Factory,
  ViewOp,
  Mutation,
  Immut,
  ControlFlow,
  Fusion,
};

/// Printed operator name, e.g. "aten::copy_".
std::string_view opName(OpKind kind);

/// Coarse classification used by analyses and the fusion pass.
OpCategory opCategory(OpKind kind);

/// True for view operators (Definition 3.1): output aliases input 0.
bool isViewOp(OpKind kind);

/// True for in-place mutation operators (Definition 3.2): input 0 is mutated
/// (and returned, PyTorch-style).
bool isMutationOp(OpKind kind);

/// True for operators whose results depend only on their inputs and that
/// neither mutate nor alias anything (candidates for reordering/fusion).
bool isPureOp(OpKind kind);

/// True for operators the vertical fuser may put inside a FusionGroup:
/// elementwise compute, Access/Assign, and scalar/constant support ops.
bool isFusableOp(OpKind kind);

/// For a mutation op kind, the equivalent pure compute kind when one exists
/// (aten::add_ -> aten::add). Copy_/Fill_/Zero_ return the kind itself.
OpKind pureEquivalent(OpKind kind);

std::ostream& operator<<(std::ostream& os, OpKind kind);

}  // namespace tssa::ir
