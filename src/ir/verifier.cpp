#include "src/ir/verifier.h"

#include <algorithm>
#include <unordered_set>

#include "src/ir/printer.h"

namespace tssa::ir {
namespace {

class Verifier {
 public:
  void run(const Graph& graph) { verifyBlock(*graph.topBlock()); }

 private:
  void verifyBlock(const Block& block) {
    for (const Node* node : block) verifyNode(*node);
  }

  void verifyNode(const Node& node) {
    TSSA_CHECK(!node.isDestroyed(), "destroyed node still linked");
    TSSA_CHECK(node.kind() != OpKind::Return,
               "return sentinel reachable via node iteration");
    for (std::size_t i = 0; i < node.numInputs(); ++i) {
      const Value* in = node.input(i);
      // The value must record this use.
      const auto& uses = in->uses();
      const bool recorded =
          std::find(uses.begin(), uses.end(),
                    Use{const_cast<Node*>(&node), i}) != uses.end();
      TSSA_CHECK(recorded, "missing use record for operand " << i << " of "
                                                             << toString(node));
    }
    for (const Value* out : node.outputs()) {
      TSSA_CHECK(out->definingNode() == &node, "output def mismatch");
    }

    switch (node.kind()) {
      case OpKind::If:
        verifyIf(node);
        break;
      case OpKind::Loop:
      case OpKind::ParallelMap:
        verifyLoop(node);
        break;
      case OpKind::Update:
        TSSA_CHECK(node.numInputs() == 2 && node.numOutputs() == 0,
                   "tssa::update must have 2 inputs and no outputs");
        break;
      case OpKind::FusionGroup:
        verifyFusionGroup(node);
        break;
      default:
        TSSA_CHECK(node.numBlocks() == 0,
                   "unexpected nested blocks on " << opName(node.kind()));
        break;
    }
  }

  void verifyIf(const Node& node) {
    TSSA_CHECK(node.numBlocks() == 2, "prim::If needs two blocks");
    TSSA_CHECK(node.numInputs() == 1, "prim::If takes exactly the condition");
    for (const Block* b : node.blocks()) {
      TSSA_CHECK(b->numParams() == 0, "prim::If blocks take no params");
      TSSA_CHECK(b->numReturns() == node.numOutputs(),
                 "prim::If block returns " << b->numReturns()
                                           << " values but node has "
                                           << node.numOutputs() << " outputs");
      verifyNested(*b);
    }
  }

  void verifyLoop(const Node& node) {
    TSSA_CHECK(node.numBlocks() == 1, "loop needs one body block");
    TSSA_CHECK(node.numInputs() >= 1, "loop needs a trip count");
    const std::size_t carried = node.numInputs() - 1;
    const Block& body = *node.block(0);
    TSSA_CHECK(body.numParams() == carried + 1,
               "loop body params must be (i, carried...): have "
                   << body.numParams() << ", want " << carried + 1);
    TSSA_CHECK(node.numOutputs() == carried,
               "loop outputs must match carried inputs");
    TSSA_CHECK(body.numReturns() == carried,
               "loop body returns must match carried inputs");
    verifyNested(body);
  }

  void verifyFusionGroup(const Node& node) {
    TSSA_CHECK(node.numBlocks() == 1, "FusionGroup needs one block");
    const Block& body = *node.block(0);
    TSSA_CHECK(body.numParams() == node.numInputs(),
               "FusionGroup block params must mirror node inputs");
    TSSA_CHECK(body.numReturns() == node.numOutputs(),
               "FusionGroup block returns must mirror node outputs");
    // The subgraph must be self-contained: operands come from params or
    // nodes inside the block, never captured from outside.
    std::unordered_set<const Value*> inner(body.params().begin(),
                                           body.params().end());
    for (const Node* n : body) {
      for (const Value* in : n->inputs()) {
        TSSA_CHECK(inner.count(in) > 0,
                   "FusionGroup body captures outer value %" << in->id());
      }
      for (const Value* out : n->outputs()) inner.insert(out);
    }
    verifyNested(body);
  }

  void verifyNested(const Block& block) { verifyBlock(block); }
};

/// Scope-exact visibility check (values defined in a block are not visible
/// to siblings). Separate walk for precision.
class ScopeChecker {
 public:
  void run(const Graph& graph) {
    std::unordered_set<const Value*> top;
    for (const Value* in : graph.inputs()) top.insert(in);
    checkBlock(*graph.topBlock(), top);
  }

 private:
  void checkBlock(const Block& block,
                  std::unordered_set<const Value*> visible) {
    for (const Node* node : block) {
      for (const Value* in : node->inputs()) {
        TSSA_CHECK(visible.count(in) > 0,
                   "operand %" << in->id() << " of " << opName(node->kind())
                               << " is not visible at its use (SSA scope "
                                  "violation)");
      }
      for (const Block* b : node->blocks()) {
        auto nested = visible;
        for (const Value* p : b->params()) nested.insert(p);
        checkBlock(*b, std::move(nested));
      }
      for (const Value* out : node->outputs()) visible.insert(out);
    }
    for (const Value* r : block.returns()) {
      TSSA_CHECK(visible.count(r) > 0,
                 "block return %" << r->id() << " not visible");
    }
  }
};

}  // namespace

void verify(const Graph& graph) {
  Verifier().run(graph);
  ScopeChecker().run(graph);
}

}  // namespace tssa::ir
