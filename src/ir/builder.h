// IRBuilder: insertion-point-based construction of graph-level IR.
//
// Operand conventions (what is a Value input vs. a static attribute):
// anything that can be data- or loop-dependent (select indices, slice bounds,
// scalar fill values, loop trip counts) is a Value input; static
// configuration (dims, sizes, dtypes, keepdim flags) is an attribute.
//
//   aten::select(t, index:int)            attrs: dim
//   aten::slice(t, start:int, end:int)    attrs: dim, step
//   aten::reshape(t)                      attrs: sizes
//   aten::permute(t)                      attrs: dims
//   aten::transpose(t)                    attrs: dim0, dim1
//   aten::expand(t)                       attrs: sizes
//   aten::squeeze/unsqueeze(t)            attrs: dim
//   aten::flatten(t)                      attrs: start_dim, end_dim
//   immut::access(base, view-operands...)       attrs: view op's attrs + view
//   immut::assign(base, src, view-operands...)  attrs: view op's attrs + view
#pragma once

#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace tssa::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Graph& graph) : graph_(graph) {
    setInsertionPointToEnd(graph.topBlock());
  }

  Graph& graph() const { return graph_; }

  // ---- Insertion point ------------------------------------------------------
  /// New nodes are inserted immediately before `anchor`.
  void setInsertionPoint(Node* anchor) { insertBefore_ = anchor; }
  void setInsertionPointToEnd(Block* block) {
    insertBefore_ = block->returnNode();
  }
  void setInsertionPointToStart(Block* block) {
    insertBefore_ = block->empty() ? block->returnNode() : block->front();
  }
  Node* insertionPoint() const { return insertBefore_; }
  Block* insertionBlock() const { return insertBefore_->owningBlock(); }

  /// Inserts an already-created node at the insertion point.
  Node* insert(Node* node) {
    node->insertBefore(insertBefore_);
    return node;
  }

  /// Creates and inserts a node; the single-output overloads return the value.
  Node* emitNode(OpKind kind, std::vector<Value*> inputs,
                 std::size_t numOutputs = 1);
  Value* emit(OpKind kind, std::vector<Value*> inputs);

  // ---- Constants ---------------------------------------------------------------
  Value* constInt(std::int64_t v);
  Value* constFloat(double v);
  Value* constBool(bool v);
  Value* constTensor(Tensor t);

  // ---- Scalar arithmetic ----------------------------------------------------------
  /// `aten::size(t)` with attr dim: the runtime extent of one dimension as a
  /// scalar int. This is how symbolic-dim graphs stay shape-polymorphic:
  /// trip counts and dynamic factory sizes are read off the inputs instead
  /// of being baked in as constants.
  Value* sizeOf(Value* t, std::int64_t dim);
  Value* scalarAdd(Value* a, Value* b);
  Value* scalarSub(Value* a, Value* b);
  Value* scalarMul(Value* a, Value* b);
  Value* scalarLt(Value* a, Value* b);
  Value* scalarGe(Value* a, Value* b);
  Value* scalarEq(Value* a, Value* b);

  // ---- Elementwise compute -----------------------------------------------------------
  Value* add(Value* a, Value* b) { return emit(OpKind::Add, {a, b}); }
  Value* sub(Value* a, Value* b) { return emit(OpKind::Sub, {a, b}); }
  Value* mul(Value* a, Value* b) { return emit(OpKind::Mul, {a, b}); }
  Value* div(Value* a, Value* b) { return emit(OpKind::Div, {a, b}); }
  Value* pow(Value* a, Value* b) { return emit(OpKind::Pow, {a, b}); }
  Value* minimum(Value* a, Value* b) { return emit(OpKind::Minimum, {a, b}); }
  Value* maximum(Value* a, Value* b) { return emit(OpKind::Maximum, {a, b}); }
  Value* neg(Value* a) { return emit(OpKind::Neg, {a}); }
  Value* exp(Value* a) { return emit(OpKind::Exp, {a}); }
  Value* log(Value* a) { return emit(OpKind::Log, {a}); }
  Value* sqrt(Value* a) { return emit(OpKind::Sqrt, {a}); }
  Value* abs(Value* a) { return emit(OpKind::Abs, {a}); }
  Value* sigmoid(Value* a) { return emit(OpKind::Sigmoid, {a}); }
  Value* tanh(Value* a) { return emit(OpKind::Tanh, {a}); }
  Value* relu(Value* a) { return emit(OpKind::Relu, {a}); }
  Value* clamp(Value* a, Scalar lo, Scalar hi);
  Value* cast(Value* a, DType dtype);
  Value* where(Value* cond, Value* a, Value* b) {
    return emit(OpKind::Where, {cond, a, b});
  }
  Value* maskedFill(Value* a, Value* mask, Value* value) {
    return emit(OpKind::MaskedFill, {a, mask, value});
  }
  Value* logicalAnd(Value* a, Value* b) {
    return emit(OpKind::LogicalAnd, {a, b});
  }
  Value* logicalOr(Value* a, Value* b) {
    return emit(OpKind::LogicalOr, {a, b});
  }
  Value* logicalNot(Value* a) { return emit(OpKind::LogicalNot, {a}); }
  Value* eq(Value* a, Value* b) { return emit(OpKind::Eq, {a, b}); }
  Value* lt(Value* a, Value* b) { return emit(OpKind::Lt, {a, b}); }
  Value* le(Value* a, Value* b) { return emit(OpKind::Le, {a, b}); }
  Value* gt(Value* a, Value* b) { return emit(OpKind::Gt, {a, b}); }
  Value* ge(Value* a, Value* b) { return emit(OpKind::Ge, {a, b}); }

  // ---- Reductions / linalg ------------------------------------------------------------
  Value* sum(Value* a) { return emit(OpKind::Sum, {a}); }
  Value* sumDim(Value* a, std::int64_t dim, bool keepDim = false);
  Value* mean(Value* a, std::int64_t dim, bool keepDim = false);
  Value* maxDim(Value* a, std::int64_t dim, bool keepDim = false);
  Value* minDim(Value* a, std::int64_t dim, bool keepDim = false);
  Value* argmax(Value* a, std::int64_t dim, bool keepDim = false);
  Value* softmax(Value* a, std::int64_t dim);
  Value* cumsum(Value* a, std::int64_t dim);
  Value* matmul(Value* a, Value* b) { return emit(OpKind::Matmul, {a, b}); }
  Value* bmm(Value* a, Value* b) { return emit(OpKind::Bmm, {a, b}); }

  // ---- Shape / data movement ------------------------------------------------------------
  Value* listConstruct(std::vector<Value*> elems);
  Value* cat(std::vector<Value*> tensors, std::int64_t dim);
  Value* stack(std::vector<Value*> tensors, std::int64_t dim);
  Value* indexSelect(Value* a, std::int64_t dim, Value* index);
  Value* gather(Value* a, std::int64_t dim, Value* index);
  Node* topk(Value* a, std::int64_t k);  // outputs: values, indices
  Value* argsort(Value* a, bool descending);
  Value* clone(Value* a) { return emit(OpKind::Clone, {a}); }

  // ---- Factories ---------------------------------------------------------------------------
  Value* zeros(std::vector<std::int64_t> sizes, DType dtype = DType::Float32);
  Value* ones(std::vector<std::int64_t> sizes, DType dtype = DType::Float32);
  Value* full(std::vector<std::int64_t> sizes, Value* value,
              DType dtype = DType::Float32);
  Value* arange(Value* start, Value* end, Value* step);

  // Dynamic-extent variants: `sizes` holds -1 at each runtime-determined
  // position; `dynSizes` supplies those extents as scalar int Values, in
  // order, appended as trailing operands. The node carries a "dyn" attr so
  // consumers can tell these -1s from aten::reshape's static infer sentinel.
  Value* zeros(std::vector<std::int64_t> sizes, std::vector<Value*> dynSizes,
               DType dtype = DType::Float32);
  Value* ones(std::vector<std::int64_t> sizes, std::vector<Value*> dynSizes,
              DType dtype = DType::Float32);

  // ---- Views -----------------------------------------------------------------------------
  Value* select(Value* t, std::int64_t dim, Value* index);
  Value* slice(Value* t, std::int64_t dim, Value* start, Value* end,
               std::int64_t step = 1);
  Value* reshape(Value* t, std::vector<std::int64_t> sizes);
  Value* reshape(Value* t, std::vector<std::int64_t> sizes,
                 std::vector<Value*> dynSizes);
  Value* permute(Value* t, std::vector<std::int64_t> dims);
  Value* transpose(Value* t, std::int64_t d0, std::int64_t d1);
  Value* expand(Value* t, std::vector<std::int64_t> sizes);
  Value* expand(Value* t, std::vector<std::int64_t> sizes,
                std::vector<Value*> dynSizes);
  Value* squeeze(Value* t, std::int64_t dim);
  Value* unsqueeze(Value* t, std::int64_t dim);
  Value* flatten(Value* t, std::int64_t startDim = 0,
                 std::int64_t endDim = -1);

  // ---- Mutation ---------------------------------------------------------------------------
  /// In-place ops return the node; output(0) is the mutated alias of input 0.
  Node* copy_(Value* dst, Value* src);
  Node* fill_(Value* dst, Value* value);
  Node* zero_(Value* dst);
  Node* add_(Value* dst, Value* other);
  Node* sub_(Value* dst, Value* other);
  Node* mul_(Value* dst, Value* other);
  Node* div_(Value* dst, Value* other);
  Node* relu_(Value* dst);
  Node* sigmoid_(Value* dst);
  Node* tanh_(Value* dst);
  Node* maskedFill_(Value* dst, Value* mask, Value* value);

  // ---- Control flow ---------------------------------------------------------------------------
  /// Creates `prim::If(cond)` with `numOutputs` outputs and two empty blocks.
  Node* makeIf(Value* cond, std::size_t numOutputs);
  /// Creates `prim::Loop(tripCount, carried...)`; the body block has params
  /// (i:int, carried...) and the node has one output per carried value.
  Node* makeLoop(Value* tripCount, std::vector<Value*> carried);

 private:
  Graph& graph_;
  Node* insertBefore_ = nullptr;
};

/// RAII guard restoring the builder's insertion point.
class InsertionGuard {
 public:
  explicit InsertionGuard(IRBuilder& builder)
      : builder_(builder), saved_(builder.insertionPoint()) {}
  ~InsertionGuard() { builder_.setInsertionPoint(saved_); }
  InsertionGuard(const InsertionGuard&) = delete;
  InsertionGuard& operator=(const InsertionGuard&) = delete;

 private:
  IRBuilder& builder_;
  Node* saved_;
};

}  // namespace tssa::ir
