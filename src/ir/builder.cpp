#include "src/ir/builder.h"

namespace tssa::ir {

Node* IRBuilder::emitNode(OpKind kind, std::vector<Value*> inputs,
                          std::size_t numOutputs) {
  Node* n = graph_.create(kind, inputs, numOutputs);
  return insert(n);
}

Value* IRBuilder::emit(OpKind kind, std::vector<Value*> inputs) {
  return emitNode(kind, std::move(inputs), 1)->output();
}

// ---- Constants -----------------------------------------------------------------

Value* IRBuilder::constInt(std::int64_t v) {
  Node* n = emitNode(OpKind::Constant, {}, 1);
  n->attrs().set("value", Scalar(v));
  n->output()->setType(Type::integer());
  return n->output();
}

Value* IRBuilder::constFloat(double v) {
  Node* n = emitNode(OpKind::Constant, {}, 1);
  n->attrs().set("value", Scalar(v));
  n->output()->setType(Type::floating());
  return n->output();
}

Value* IRBuilder::constBool(bool v) {
  Node* n = emitNode(OpKind::Constant, {}, 1);
  n->attrs().set("value", Scalar(v));
  n->output()->setType(Type::boolean());
  return n->output();
}

Value* IRBuilder::constTensor(Tensor t) {
  Node* n = emitNode(OpKind::Constant, {}, 1);
  n->output()->setType(Type::tensor(t.dtype()));
  n->attrs().set("tensor", std::move(t));
  return n->output();
}

// ---- Scalars ---------------------------------------------------------------------

namespace {
Value* scalarBinary(IRBuilder& b, OpKind kind, Value* x, Value* y, Type type) {
  Node* n = b.emitNode(kind, {x, y}, 1);
  n->output()->setType(type);
  return n->output();
}
}  // namespace

Value* IRBuilder::sizeOf(Value* t, std::int64_t dim) {
  Node* n = emitNode(OpKind::SizeOf, {t}, 1);
  n->attrs().set("dim", Scalar(dim));
  n->output()->setType(Type::integer());
  return n->output();
}

Value* IRBuilder::scalarAdd(Value* a, Value* b) {
  return scalarBinary(*this, OpKind::ScalarAdd, a, b, Type::integer());
}
Value* IRBuilder::scalarSub(Value* a, Value* b) {
  return scalarBinary(*this, OpKind::ScalarSub, a, b, Type::integer());
}
Value* IRBuilder::scalarMul(Value* a, Value* b) {
  return scalarBinary(*this, OpKind::ScalarMul, a, b, Type::integer());
}
Value* IRBuilder::scalarLt(Value* a, Value* b) {
  return scalarBinary(*this, OpKind::ScalarLt, a, b, Type::boolean());
}
Value* IRBuilder::scalarGe(Value* a, Value* b) {
  return scalarBinary(*this, OpKind::ScalarGe, a, b, Type::boolean());
}
Value* IRBuilder::scalarEq(Value* a, Value* b) {
  return scalarBinary(*this, OpKind::ScalarEq, a, b, Type::boolean());
}

// ---- Elementwise with attrs ----------------------------------------------------------

Value* IRBuilder::clamp(Value* a, Scalar lo, Scalar hi) {
  Node* n = emitNode(OpKind::Clamp, {a}, 1);
  n->attrs().set("lo", lo);
  n->attrs().set("hi", hi);
  return n->output();
}

Value* IRBuilder::cast(Value* a, DType dtype) {
  Node* n = emitNode(OpKind::Cast, {a}, 1);
  n->attrs().set("dtype", dtype);
  n->output()->setType(Type::tensor(dtype));
  return n->output();
}

// ---- Reductions ----------------------------------------------------------------------

namespace {
Value* dimReduce(IRBuilder& b, OpKind kind, Value* a, std::int64_t dim,
                 bool keepDim) {
  Node* n = b.emitNode(kind, {a}, 1);
  n->attrs().set("dim", Scalar(dim));
  n->attrs().set("keepdim", Scalar(keepDim));
  return n->output();
}
}  // namespace

Value* IRBuilder::sumDim(Value* a, std::int64_t dim, bool keepDim) {
  return dimReduce(*this, OpKind::SumDim, a, dim, keepDim);
}
Value* IRBuilder::mean(Value* a, std::int64_t dim, bool keepDim) {
  return dimReduce(*this, OpKind::Mean, a, dim, keepDim);
}
Value* IRBuilder::maxDim(Value* a, std::int64_t dim, bool keepDim) {
  return dimReduce(*this, OpKind::MaxDim, a, dim, keepDim);
}
Value* IRBuilder::minDim(Value* a, std::int64_t dim, bool keepDim) {
  return dimReduce(*this, OpKind::MinDim, a, dim, keepDim);
}
Value* IRBuilder::argmax(Value* a, std::int64_t dim, bool keepDim) {
  Value* v = dimReduce(*this, OpKind::Argmax, a, dim, keepDim);
  v->setType(Type::tensor(DType::Int64));
  return v;
}

Value* IRBuilder::softmax(Value* a, std::int64_t dim) {
  Node* n = emitNode(OpKind::Softmax, {a}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::cumsum(Value* a, std::int64_t dim) {
  Node* n = emitNode(OpKind::Cumsum, {a}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

// ---- Shape / data movement -----------------------------------------------------------------

Value* IRBuilder::listConstruct(std::vector<Value*> elems) {
  Node* n = emitNode(OpKind::ListConstruct, std::move(elems), 1);
  n->output()->setType(Type::tensorList());
  return n->output();
}

Value* IRBuilder::cat(std::vector<Value*> tensors, std::int64_t dim) {
  Value* list = listConstruct(std::move(tensors));
  Node* n = emitNode(OpKind::Cat, {list}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::stack(std::vector<Value*> tensors, std::int64_t dim) {
  Value* list = listConstruct(std::move(tensors));
  Node* n = emitNode(OpKind::Stack, {list}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::indexSelect(Value* a, std::int64_t dim, Value* index) {
  Node* n = emitNode(OpKind::IndexSelect, {a, index}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::gather(Value* a, std::int64_t dim, Value* index) {
  Node* n = emitNode(OpKind::Gather, {a, index}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Node* IRBuilder::topk(Value* a, std::int64_t k) {
  Node* n = emitNode(OpKind::Topk, {a}, 2);
  n->attrs().set("k", Scalar(k));
  n->output(1)->setType(Type::tensor(DType::Int64));
  return n;
}

Value* IRBuilder::argsort(Value* a, bool descending) {
  Node* n = emitNode(OpKind::Argsort, {a}, 1);
  n->attrs().set("descending", Scalar(descending));
  n->output()->setType(Type::tensor(DType::Int64));
  return n->output();
}

// ---- Factories ----------------------------------------------------------------------------

namespace {
Value* factory(IRBuilder& b, OpKind kind, std::vector<Value*> inputs,
               std::vector<std::int64_t> sizes, DType dtype) {
  Node* n = b.emitNode(kind, std::move(inputs), 1);
  n->attrs().set("sizes", std::move(sizes));
  n->attrs().set("dtype", dtype);
  n->output()->setType(Type::tensor(dtype));
  return n->output();
}
}  // namespace

Value* IRBuilder::zeros(std::vector<std::int64_t> sizes, DType dtype) {
  return factory(*this, OpKind::Zeros, {}, std::move(sizes), dtype);
}
Value* IRBuilder::ones(std::vector<std::int64_t> sizes, DType dtype) {
  return factory(*this, OpKind::Ones, {}, std::move(sizes), dtype);
}
Value* IRBuilder::full(std::vector<std::int64_t> sizes, Value* value,
                       DType dtype) {
  return factory(*this, OpKind::Full, {value}, std::move(sizes), dtype);
}

namespace {
// Validates the dynamic-size convention (one trailing scalar operand per -1
// placeholder) and stamps the "dyn" marker attr that distinguishes these -1s
// from aten::reshape's static infer sentinel.
void markDynSizes(Node* n, const std::vector<std::int64_t>& sizes,
                  std::size_t numDyn) {
  std::size_t holes = 0;
  for (std::int64_t s : sizes) holes += (s == -1);
  TSSA_CHECK(holes == numDyn, "dynamic-size op wants " << holes
                                                       << " extents but got "
                                                       << numDyn);
  TSSA_CHECK(numDyn > 0, "dynamic-size op without dynamic extents");
  n->attrs().set("dyn", Scalar(static_cast<std::int64_t>(numDyn)));
}
}  // namespace

Value* IRBuilder::zeros(std::vector<std::int64_t> sizes,
                        std::vector<Value*> dynSizes, DType dtype) {
  std::size_t numDyn = dynSizes.size();
  Value* v = factory(*this, OpKind::Zeros, std::move(dynSizes), sizes, dtype);
  markDynSizes(v->definingNode(), sizes, numDyn);
  return v;
}

Value* IRBuilder::ones(std::vector<std::int64_t> sizes,
                       std::vector<Value*> dynSizes, DType dtype) {
  std::size_t numDyn = dynSizes.size();
  Value* v = factory(*this, OpKind::Ones, std::move(dynSizes), sizes, dtype);
  markDynSizes(v->definingNode(), sizes, numDyn);
  return v;
}

Value* IRBuilder::arange(Value* start, Value* end, Value* step) {
  Node* n = emitNode(OpKind::Arange, {start, end, step}, 1);
  n->output()->setType(Type::tensor(DType::Int64));
  return n->output();
}

// ---- Views ----------------------------------------------------------------------------------

Value* IRBuilder::select(Value* t, std::int64_t dim, Value* index) {
  Node* n = emitNode(OpKind::Select, {t, index}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::slice(Value* t, std::int64_t dim, Value* start, Value* end,
                        std::int64_t step) {
  Node* n = emitNode(OpKind::Slice, {t, start, end}, 1);
  n->attrs().set("dim", Scalar(dim));
  n->attrs().set("step", Scalar(step));
  return n->output();
}

Value* IRBuilder::reshape(Value* t, std::vector<std::int64_t> sizes) {
  Node* n = emitNode(OpKind::Reshape, {t}, 1);
  n->attrs().set("sizes", std::move(sizes));
  return n->output();
}

Value* IRBuilder::reshape(Value* t, std::vector<std::int64_t> sizes,
                          std::vector<Value*> dynSizes) {
  std::vector<Value*> inputs{t};
  inputs.insert(inputs.end(), dynSizes.begin(), dynSizes.end());
  Node* n = emitNode(OpKind::Reshape, std::move(inputs), 1);
  n->attrs().set("sizes", sizes);
  markDynSizes(n, sizes, dynSizes.size());
  return n->output();
}

Value* IRBuilder::permute(Value* t, std::vector<std::int64_t> dims) {
  Node* n = emitNode(OpKind::Permute, {t}, 1);
  n->attrs().set("dims", std::move(dims));
  return n->output();
}

Value* IRBuilder::transpose(Value* t, std::int64_t d0, std::int64_t d1) {
  Node* n = emitNode(OpKind::Transpose, {t}, 1);
  n->attrs().set("dim0", Scalar(d0));
  n->attrs().set("dim1", Scalar(d1));
  return n->output();
}

Value* IRBuilder::expand(Value* t, std::vector<std::int64_t> sizes) {
  Node* n = emitNode(OpKind::Expand, {t}, 1);
  n->attrs().set("sizes", std::move(sizes));
  return n->output();
}

Value* IRBuilder::expand(Value* t, std::vector<std::int64_t> sizes,
                         std::vector<Value*> dynSizes) {
  std::vector<Value*> inputs{t};
  inputs.insert(inputs.end(), dynSizes.begin(), dynSizes.end());
  Node* n = emitNode(OpKind::Expand, std::move(inputs), 1);
  n->attrs().set("sizes", sizes);
  markDynSizes(n, sizes, dynSizes.size());
  return n->output();
}

Value* IRBuilder::squeeze(Value* t, std::int64_t dim) {
  Node* n = emitNode(OpKind::Squeeze, {t}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::unsqueeze(Value* t, std::int64_t dim) {
  Node* n = emitNode(OpKind::Unsqueeze, {t}, 1);
  n->attrs().set("dim", Scalar(dim));
  return n->output();
}

Value* IRBuilder::flatten(Value* t, std::int64_t startDim,
                          std::int64_t endDim) {
  Node* n = emitNode(OpKind::Flatten, {t}, 1);
  n->attrs().set("start_dim", Scalar(startDim));
  n->attrs().set("end_dim", Scalar(endDim));
  return n->output();
}

// ---- Mutation ----------------------------------------------------------------------------------

Node* IRBuilder::copy_(Value* dst, Value* src) {
  return emitNode(OpKind::Copy_, {dst, src}, 1);
}
Node* IRBuilder::fill_(Value* dst, Value* value) {
  return emitNode(OpKind::Fill_, {dst, value}, 1);
}
Node* IRBuilder::zero_(Value* dst) {
  return emitNode(OpKind::Zero_, {dst}, 1);
}
Node* IRBuilder::add_(Value* dst, Value* other) {
  return emitNode(OpKind::Add_, {dst, other}, 1);
}
Node* IRBuilder::sub_(Value* dst, Value* other) {
  return emitNode(OpKind::Sub_, {dst, other}, 1);
}
Node* IRBuilder::mul_(Value* dst, Value* other) {
  return emitNode(OpKind::Mul_, {dst, other}, 1);
}
Node* IRBuilder::div_(Value* dst, Value* other) {
  return emitNode(OpKind::Div_, {dst, other}, 1);
}
Node* IRBuilder::relu_(Value* dst) {
  return emitNode(OpKind::Relu_, {dst}, 1);
}
Node* IRBuilder::sigmoid_(Value* dst) {
  return emitNode(OpKind::Sigmoid_, {dst}, 1);
}
Node* IRBuilder::tanh_(Value* dst) {
  return emitNode(OpKind::Tanh_, {dst}, 1);
}
Node* IRBuilder::maskedFill_(Value* dst, Value* mask, Value* value) {
  return emitNode(OpKind::MaskedFill_, {dst, mask, value}, 1);
}

// ---- Control flow ----------------------------------------------------------------------------------

Node* IRBuilder::makeIf(Value* cond, std::size_t numOutputs) {
  Node* n = emitNode(OpKind::If, {cond}, numOutputs);
  n->addBlock();
  n->addBlock();
  return n;
}

Node* IRBuilder::makeLoop(Value* tripCount, std::vector<Value*> carried) {
  std::vector<Value*> inputs;
  inputs.push_back(tripCount);
  inputs.insert(inputs.end(), carried.begin(), carried.end());
  Node* n = emitNode(OpKind::Loop, std::move(inputs), carried.size());
  Block* body = n->addBlock();
  body->addParam(Type::integer(), "i");
  for (std::size_t i = 0; i < carried.size(); ++i) {
    body->addParam(carried[i]->type());
    n->output(i)->setType(carried[i]->type());
  }
  return n;
}

}  // namespace tssa::ir
