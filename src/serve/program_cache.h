// Shape-specialized compiled-program cache.
//
// Serving traffic re-runs the same few programs with the same few shapes, so
// compilation must be paid once per (workload, pipeline kind, shape
// signature, device, texpr flag) — the same unit of specialization that
// TorchDynamo guards on and TensorIR serves as compiled artifacts. The cache
// is an LRU map from ProgramKey to a ready-to-run Pipeline; concurrent
// requests for a key being compiled block on that entry (single-flight: one
// compile per key, everyone else reuses it), and eviction only unlinks an
// entry — in-flight executions keep it alive through their shared_ptr.
//
// Failed compiles are cached *negatively*: the entry stays in the map with
// its exception for `negativeTtlUs`, so traffic for a broken key pays one
// compile attempt per TTL window instead of re-compiling on every request
// (the serving engine degrades those requests to the fallback pipeline —
// DESIGN.md §10). getOrCompile never throws the compiler's exception; it is
// returned in Lookup::error so callers choose between fallback and reject.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/runtime/pipeline.h"

namespace tssa::serve {

/// The unit of specialization: everything that changes the compiled program
/// or the machine it is priced for.
struct ProgramKey {
  std::string workload;
  runtime::PipelineKind kind = runtime::PipelineKind::TensorSsa;
  /// Shape guard: dtype+shape of every runtime input plus the workload
  /// config parameters that are baked into the graph (batch, seqLen, seed).
  std::string signature;
  runtime::PipelineOptions options;

  friend bool operator==(const ProgramKey&, const ProgramKey&) = default;
  std::string toString() const;
};

struct ProgramKeyHash {
  std::size_t operator()(const ProgramKey& key) const;
};

/// One cached, shape-specialized compiled program. `execMutex` serializes
/// runs of the contained Pipeline (its interpreter and profiler are
/// per-program state); distinct programs execute concurrently.
struct CachedProgram {
  std::unique_ptr<runtime::Pipeline> pipeline;  ///< set once ready
  double compileUs = 0;
  std::mutex execMutex;

  // Single-flight rendezvous: the inserting thread compiles, everyone else
  // waits on `readyCv` until `ready`.
  std::mutex stateMutex;
  std::condition_variable readyCv;
  bool ready = false;
  std::exception_ptr error;
  /// When `error` is set: the instant the compile failed. The entry serves
  /// as a negative cache until failedAt + negativeTtl, then the next lookup
  /// starts a fresh generation (one new compile).
  std::chrono::steady_clock::time_point failedAt;
};

class ProgramCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;        ///< key present (ready or compiling)
    std::uint64_t misses = 0;      ///< key absent → a compile was started
    std::uint64_t evictions = 0;   ///< entries unlinked by LRU pressure
    std::uint64_t compiles = 0;    ///< successful compiles
    std::uint64_t compileFailures = 0;  ///< compiles that threw
    std::uint64_t negativeHits = 0;     ///< lookups served a cached failure
    double compileUsTotal = 0;     ///< wall-clock spent compiling
    std::size_t size = 0;          ///< entries currently cached
    std::size_t negativeSize = 0;  ///< of which negative (failures in TTL)
    double hitRate() const {
      const std::uint64_t n = hits + misses;
      return n == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(n);
    }
  };

  struct Lookup {
    std::shared_ptr<CachedProgram> program;  ///< ready: pipeline non-null
    bool hit = false;      ///< key was present (no compile started by us)
    /// True only when the compile had already finished at lookup time: the
    /// request paid no compilation latency. A single-flight waiter that
    /// blocked on a concurrent compile has hit=true but wasReady=false.
    bool wasReady = false;
    /// The compile failed — this lookup's own attempt, the single-flight
    /// compile it waited on, or a cached failure still inside its TTL
    /// (`negative` distinguishes the last case). `program->pipeline` is
    /// null; callers degrade or reject instead of executing.
    std::exception_ptr error;
    bool negative = false;  ///< error served from the negative cache
    double waitUs = 0;  ///< time spent compiling or waiting on the compiler
  };

  using CompileFn = std::function<std::unique_ptr<runtime::Pipeline>()>;

  /// `negativeTtlUs` <= 0 disables negative caching: a failed compile is
  /// forgotten immediately and the next lookup retries.
  explicit ProgramCache(std::size_t capacity, std::int64_t negativeTtlUs = 0);

  /// Returns the ready program for `key`, invoking `compile` at most once
  /// per cached key per generation (single-flight; a generation ends when
  /// the entry is evicted or its negative TTL expires). Never throws the
  /// compiler's exception — it is returned in Lookup::error.
  Lookup getOrCompile(const ProgramKey& key, const CompileFn& compile);

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::shared_ptr<CachedProgram> program;
    std::list<ProgramKey>::iterator lruIt;
    /// True for an entry holding a cached compile failure. Negative entries
    /// carry no compiled program, so they do not count toward the LRU
    /// capacity (a compile-fail storm must not evict healthy programs);
    /// they are bounded by their own capacity-sized budget instead.
    bool negative = false;
  };

  void evictExcess(const ProgramKey& justInserted);  // requires mutex_ held
  void forget(const ProgramKey& key, const CachedProgram* program);

  const std::size_t capacity_;
  const std::chrono::steady_clock::duration negativeTtl_;
  mutable std::mutex mutex_;
  std::list<ProgramKey> lru_;  ///< front = most recently used
  std::unordered_map<ProgramKey, Slot, ProgramKeyHash> map_;
  std::size_t negativeCount_ = 0;  ///< slots with negative == true
  Stats stats_;
};

}  // namespace tssa::serve
