#include "src/serve/batcher.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"
#include "src/serve/fault_injector.h"

namespace tssa::serve {

using Clock = std::chrono::steady_clock;

namespace {

/// Seal + hand-off span: records why a batch left the batcher (full window,
/// expired window, deadline-tight member, incompatible arrival, flush, or
/// batching disabled) and how many requests it coalesced — the two numbers
/// that explain every batching decision in a trace.
void dispatchSealed(const MicroBatcher::DispatchFn& dispatch,
                    FaultInjector* injector,
                    std::vector<std::unique_ptr<PendingRequest>> requests,
                    const char* reason) {
  SealedBatch batch;
  batch.requests = std::move(requests);
  batch.reason = reason;
  if (injector != nullptr) batch.virtualDelayUs = injector->onBatchSeal();
  obs::TraceSpan span("serve", "batcher.seal");
  span.arg("reason", reason);
  span.arg("batch_size", static_cast<std::int64_t>(batch.requests.size()));
  if (span.active() && !batch.requests.empty())
    span.arg("workload", batch.requests.front()->request.workload);
  dispatch(std::move(batch));
}

/// The latest instant a batch containing `request` may seal: half the
/// request's remaining budget is kept for execution. Requests with no
/// deadline don't constrain the seal (time_point::max()).
Clock::time_point sealBound(const PendingRequest& request,
                            Clock::time_point now) {
  if (!hasDeadline(request.deadline)) return Clock::time_point::max();
  if (request.deadline <= now) return now;  // already due: seal immediately
  return now + (request.deadline - now) / 2;
}

}  // namespace

MicroBatcher::MicroBatcher(Options options, DispatchFn dispatch)
    : options_(options), dispatch_(std::move(dispatch)) {
  timer_ = std::thread([this] { timerLoop(); });
}

MicroBatcher::~MicroBatcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  timer_.join();
  // The timer drained every open batch before exiting; nothing left here.
}

bool MicroBatcher::compatible(const PendingRequest& a,
                              const PendingRequest& b) {
  // Shared inputs (batch dim -1) must agree on their values; in the
  // registry those are always scalars (yolact num_dets, fcos normalize).
  // Batched tensor inputs must be concatenable along the batch dim: a
  // polymorphic key admits shape diversity (that is its point), so two
  // requests share a batch iff every *non-batch* extent agrees — the batch
  // extents themselves are free to differ (ragged coalescing). Under
  // exact-shape keys the concat check is vacuously true (same signature).
  for (std::size_t i = 0; i < a.traits.inputDims.size(); ++i) {
    const int d = a.traits.inputDims[i];
    const runtime::RtValue& x = a.request.inputs[i];
    const runtime::RtValue& y = b.request.inputs[i];
    if (d < 0) {
      if (x.isScalar() != y.isScalar()) return false;
      if (x.isScalar() && !(x.scalar() == y.scalar())) return false;
      if (!x.isScalar()) return false;  // shared tensors: be conservative
      continue;
    }
    const Tensor& s = x.tensor();
    const Tensor& t = y.tensor();
    if (s.dim() != t.dim() || s.dtype() != t.dtype()) return false;
    for (std::int64_t dim = 0; dim < s.dim(); ++dim)
      if (dim != d && s.size(dim) != t.size(dim)) return false;
  }
  return true;
}

void MicroBatcher::enqueue(std::unique_ptr<PendingRequest> request) {
  // Per-request tuner overrides (0 / -1 = keep the engine defaults). All
  // requests sharing a program key carry the same overrides, so using the
  // arriving request's values for its batch is consistent.
  const int maxBatch = request->maxBatchOverride > 0
                           ? request->maxBatchOverride
                           : options_.maxBatch;
  const std::int64_t maxWaitUs = request->maxWaitUsOverride >= 0
                                     ? request->maxWaitUsOverride
                                     : options_.maxWaitUs;
  const bool batchingOff = maxBatch <= 1 || maxWaitUs <= 0;
  if (batchingOff || !request->traits.batchable()) {
    std::vector<std::unique_ptr<PendingRequest>> solo;
    solo.push_back(std::move(request));
    dispatchSealed(dispatch_, options_.injector, std::move(solo), "solo");
    return;
  }

  std::vector<std::unique_ptr<PendingRequest>> sealed;
  const char* sealReason = "full";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = Clock::now();
    const auto bound = sealBound(*request, now);
    const std::string keyStr = request->key.toString();
    auto it = open_.find(keyStr);
    if (it != open_.end() &&
        !compatible(*it->second.requests.front(), *request)) {
      sealed = std::move(it->second.requests);  // incompatible: seal the old
      sealReason = "incompatible";
      open_.erase(it);
      it = open_.end();
    }
    if (it == open_.end()) {
      OpenBatch batch;
      batch.sealAt =
          std::min(now + std::chrono::microseconds(maxWaitUs), bound);
      batch.requests.push_back(std::move(request));
      const bool due = batch.sealAt <= now;
      open_.emplace(keyStr, std::move(batch));
      if (due) it = open_.find(keyStr);
    } else {
      // A deadline-carrying arrival pulls the whole batch's seal forward;
      // the notify below makes the timer recompute its wait from the new
      // earliest seal time (a tighter deadline shortens the wait).
      it->second.sealAt = std::min(it->second.sealAt, bound);
      it->second.requests.push_back(std::move(request));
      if (static_cast<int>(it->second.requests.size()) >= maxBatch) {
        // Full: seal right here, don't wait for the window.
        sealed = std::move(it->second.requests);
        open_.erase(it);
        it = open_.end();
      }
    }
    if (it != open_.end() && sealed.empty() && it->second.sealAt <= now) {
      // The new member's deadline leaves no room to wait: seal immediately
      // so execution gets whatever budget is left.
      sealed = std::move(it->second.requests);
      sealReason = "deadline";
      open_.erase(it);
    }
  }
  wake_.notify_all();  // seal times changed
  if (!sealed.empty())
    dispatchSealed(dispatch_, options_.injector, std::move(sealed),
                   sealReason);
}

void MicroBatcher::flush() {
  std::vector<std::vector<std::unique_ptr<PendingRequest>>> batches;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, batch] : open_)
      batches.push_back(std::move(batch.requests));
    open_.clear();
  }
  for (auto& b : batches)
    dispatchSealed(dispatch_, options_.injector, std::move(b), "flush");
}

void MicroBatcher::timerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_ && open_.empty()) return;
    if (open_.empty()) {
      wake_.wait(lock, [this] { return stopping_ || !open_.empty(); });
      continue;
    }
    // Recomputed on every wake: an enqueue that tightened a batch's seal
    // time notifies wake_, we fall out of wait_until, and the next
    // iteration waits until the new (earlier) seal time.
    auto earliest = Clock::time_point::max();
    for (const auto& [key, batch] : open_)
      earliest = std::min(earliest, batch.sealAt);
    // On shutdown every open batch is due immediately.
    if (!stopping_) {
      wake_.wait_until(lock, earliest);
      if (stopping_) continue;  // re-enter with everything due
    }
    const auto now = stopping_ ? Clock::time_point::max() : Clock::now();
    std::vector<std::vector<std::unique_ptr<PendingRequest>>> due;
    for (auto it = open_.begin(); it != open_.end();) {
      if (it->second.sealAt <= now) {
        due.push_back(std::move(it->second.requests));
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
    if (due.empty()) continue;
    lock.unlock();
    for (auto& b : due)
      dispatchSealed(dispatch_, options_.injector, std::move(b), "window");
    lock.lock();
  }
}

}  // namespace tssa::serve
