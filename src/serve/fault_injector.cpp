#include "src/serve/fault_injector.h"

#include <algorithm>

namespace tssa::serve {

void FaultInjector::failNthCompile(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  failCompileAt_.insert(n);
}

void FaultInjector::failCompilesForKeyContaining(std::string substring) {
  std::lock_guard<std::mutex> lock(mutex_);
  failCompileKeySubstrings_.push_back(std::move(substring));
}

void FaultInjector::throwOnKernelLaunch(std::uint64_t run,
                                        std::uint64_t launch) {
  std::lock_guard<std::mutex> lock(mutex_);
  failLaunchAt_.emplace(run, launch);
}

void FaultInjector::delayNthBatchSeal(std::uint64_t n, std::int64_t virtualUs) {
  std::lock_guard<std::mutex> lock(mutex_);
  sealDelays_.emplace_back(n, virtualUs);
}

std::uint64_t FaultInjector::compilesSeen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compiles_;
}

std::uint64_t FaultInjector::runsSeen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_;
}

std::uint64_t FaultInjector::sealsSeen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seals_;
}

std::uint64_t FaultInjector::faultsInjected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

void FaultInjector::onCompile(const std::string& keyString) {
  std::uint64_t index;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    index = ++compiles_;
    fire = failCompileAt_.count(index) > 0;
    if (!fire) {
      fire = std::any_of(failCompileKeySubstrings_.begin(),
                         failCompileKeySubstrings_.end(),
                         [&](const std::string& s) {
                           return keyString.find(s) != std::string::npos;
                         });
    }
    if (fire) ++faults_;
  }
  if (fire)
    throw InjectedFault("compile #" + std::to_string(index) + " of '" +
                        keyString + "'");
}

std::uint64_t FaultInjector::beginRun() {
  std::lock_guard<std::mutex> lock(mutex_);
  launchInRun_ = 0;
  return ++runs_;
}

void FaultInjector::onKernelLaunch() {
  std::uint64_t run, launch;
  bool fire;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run = runs_;
    launch = ++launchInRun_;
    fire = failLaunchAt_.count({run, launch}) > 0;
    if (fire) ++faults_;
  }
  if (fire)
    throw InjectedFault("kernel launch " + std::to_string(launch) +
                        " of run " + std::to_string(run));
}

std::int64_t FaultInjector::onBatchSeal() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t index = ++seals_;
  std::int64_t delay = 0;
  for (const auto& [n, us] : sealDelays_)
    if (n == index) delay += us;
  if (delay != 0) ++faults_;
  return delay;
}

}  // namespace tssa::serve
