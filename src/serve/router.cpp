#include "src/serve/router.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/runtime/thread_pool.h"
#include "src/support/error.h"

namespace tssa::serve {

// ---- HashRing --------------------------------------------------------------

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string shardLabel(int shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

}  // namespace

std::uint64_t HashRing::hashKey(std::string_view key) {
  // FNV-1a 64, splitmix64-finalized. Deliberately NOT std::hash: placement
  // must be identical across runs, standard libraries, and platforms.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return splitmix64(h);
}

HashRing::HashRing(int shards, int vnodesPerShard)
    : vnodesPerShard_(std::max(1, vnodesPerShard)) {
  TSSA_CHECK(shards >= 0, "shard count must be >= 0");
  for (int s = 0; s < shards; ++s) shardIds_.push_back(s);
  rebuild();
}

void HashRing::addShard(int shard) {
  if (std::find(shardIds_.begin(), shardIds_.end(), shard) != shardIds_.end())
    return;
  shardIds_.push_back(shard);
  std::sort(shardIds_.begin(), shardIds_.end());
  rebuild();
}

void HashRing::removeShard(int shard) {
  auto it = std::find(shardIds_.begin(), shardIds_.end(), shard);
  if (it == shardIds_.end()) return;
  shardIds_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(shardIds_.size() *
                  static_cast<std::size_t>(vnodesPerShard_));
  for (int shard : shardIds_)
    for (int v = 0; v < vnodesPerShard_; ++v)
      points_.emplace_back(hashKey("shard-" + std::to_string(shard) + "#" +
                                   std::to_string(v)),
                           shard);
  // Sort by hash; break (astronomically unlikely) hash ties by shard id so
  // the ring order itself is fully deterministic.
  std::sort(points_.begin(), points_.end());
}

int HashRing::shardFor(std::string_view key) const {
  TSSA_CHECK(!points_.empty(), "hash ring is empty");
  const std::uint64_t h = hashKey(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t hash) {
        return p.first < hash;
      });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<int> HashRing::preferenceFor(std::string_view key,
                                         int count) const {
  std::vector<int> order;
  if (points_.empty() || count <= 0) return order;
  const std::uint64_t h = hashKey(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t hash) {
        return p.first < hash;
      });
  const std::size_t start =
      it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(count),
                            shardIds_.size());
  for (std::size_t i = 0; i < points_.size() && order.size() < want; ++i) {
    const int shard = points_[(start + i) % points_.size()].second;
    if (std::find(order.begin(), order.end(), shard) == order.end())
      order.push_back(shard);
  }
  return order;
}

// ---- Router ----------------------------------------------------------------

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.shards, options_.vnodesPerShard) {
  TSSA_CHECK(options_.shards >= 1, "router needs >= 1 shard");
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool = std::make_unique<runtime::ThreadPool>();
    shard->engine =
        std::make_shared<Engine>(engineOptionsFor(s, shard->pool.get()));
    if (options_.enableDecode)
      shard->decode = std::make_unique<DecodeScheduler>(
          decodeOptionsFor(s, shard->pool.get()));
    shards_.push_back(std::move(shard));
  }
  // Every decode session resolves to the one polymorphic decode_step key,
  // so they all share a home shard; the ring key only has to be that key —
  // stable across runs — not the inner engine's exact rendering.
  Request decodeProbe;
  decodeProbe.workload = "decode_step";
  decodeProbe.config.seed = options_.decode.seed;
  EngineOptions decodeEngine;
  decodeEngine.kind = options_.decode.kind;
  decodeEngine.pipeline = options_.decode.pipeline;
  decodeKey_ = Engine::keyFor(decodeEngine, decodeProbe).toString();
}

Router::~Router() { shutdown(); }

EngineOptions Router::engineOptionsFor(int shard,
                                       runtime::ThreadPool* pool) const {
  EngineOptions eo = options_.engine;
  eo.executePool = pool;
  eo.shardId = shard;
  return eo;
}

DecodeOptions Router::decodeOptionsFor(int shard,
                                       runtime::ThreadPool* pool) const {
  DecodeOptions d = options_.decode;
  d.executePool = pool;
  d.shardId = shard;
  return d;
}

std::string Router::routingKey(const Request& request) const {
  return Engine::keyFor(options_.engine, request).toString();
}

int Router::homeShard(const Request& request) const {
  return ring_.shardFor(routingKey(request));
}

int Router::decodeHomeShard() const { return ring_.shardFor(decodeKey_); }

std::shared_ptr<Engine> Router::engineIfServing(int shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  return s.state == ShardState::Serving ? s.engine : nullptr;
}

std::shared_ptr<Engine> Router::engineOf(int shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[static_cast<std::size_t>(shard)]->engine;
}

std::future<Response> Router::submit(Request request) {
  ++routed_;
  const std::vector<int> order =
      ring_.preferenceFor(routingKey(request), shards());
  int hopsLeft = std::max(0, options_.maxRetryHops);
  std::exception_ptr lastRejection;
  bool attempted = false;
  for (int candidate : order) {
    // Skipping a non-serving (draining/drained) shard costs no retry hop —
    // the drain is the router's own doing, not overload. A hop is consumed
    // only when a second serving shard is actually tried after a shed.
    std::shared_ptr<Engine> engine = engineIfServing(candidate);
    if (engine == nullptr) {
      ++drainSkips_;
      continue;
    }
    if (attempted) {
      if (hopsLeft == 0) break;
      --hopsLeft;
      ++retryHops_;
    }
    attempted = true;
    std::future<Response> future = engine->submit(request);
    // Shed detection is synchronous by contract: the engine fulfills a
    // refused request's future *before* submit returns, so a future that is
    // not ready here has been admitted — it belongs to this shard now.
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      return future;
    try {
      // Ready this early is a refusal in practice, but a value is handled
      // all the same (re-wrapped, since get() consumed it).
      Response response = future.get();
      std::promise<Response> done;
      done.set_value(std::move(response));
      return done.get_future();
    } catch (const RejectedError& rejected) {
      lastRejection = std::current_exception();
      if (rejected.reason() != RejectReason::QueueFull &&
          rejected.reason() != RejectReason::ShuttingDown)
        break;  // deadline etc.: shard-independent, retrying cannot help
    } catch (...) {
      lastRejection = std::current_exception();
      break;
    }
  }
  ++exhausted_;
  std::promise<Response> done;
  done.set_exception(
      lastRejection != nullptr
          ? lastRejection
          : std::make_exception_ptr(RejectedError(
                RejectReason::ShuttingDown, "no serving shard available")));
  return done.get_future();
}

std::future<DecodeResult> Router::submitDecode(DecodeRequest request) {
  TSSA_CHECK(options_.enableDecode,
             "router was built without enableDecode");
  ++decodeRouted_;
  const std::vector<int> order = ring_.preferenceFor(decodeKey_, shards());
  int hopsLeft = std::max(0, options_.maxRetryHops);
  std::exception_ptr lastRejection;
  bool attempted = false;
  for (int candidate : order) {
    DecodeScheduler* scheduler = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Shard& s = *shards_[static_cast<std::size_t>(candidate)];
      if (s.state == ShardState::Serving) scheduler = s.decode.get();
    }
    if (scheduler == nullptr) {
      ++drainSkips_;
      continue;
    }
    if (attempted) {
      if (hopsLeft == 0) break;
      --hopsLeft;
      ++retryHops_;
    }
    attempted = true;
    std::future<DecodeResult> future = scheduler->submit(request);
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      return future;
    try {
      DecodeResult result = future.get();
      std::promise<DecodeResult> done;
      done.set_value(std::move(result));
      return done.get_future();
    } catch (const RejectedError& rejected) {
      lastRejection = std::current_exception();
      if (rejected.reason() != RejectReason::QueueFull &&
          rejected.reason() != RejectReason::ShuttingDown)
        break;
    } catch (...) {
      lastRejection = std::current_exception();
      break;
    }
  }
  ++exhausted_;
  std::promise<DecodeResult> done;
  done.set_exception(
      lastRejection != nullptr
          ? lastRejection
          : std::make_exception_ptr(RejectedError(
                RejectReason::ShuttingDown, "no serving shard available")));
  return done.get_future();
}

void Router::drainShard(int shard) {
  std::shared_ptr<Engine> engine;
  DecodeScheduler* decode = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Shard& s = *shards_[static_cast<std::size_t>(shard)];
    if (s.state != ShardState::Serving) return;
    s.state = ShardState::Draining;  // routing now skips this shard
    engine = s.engine;
    decode = s.decode.get();
  }
  // Outside the lock: shutdown blocks until in-flight requests deliver, and
  // traffic to the *other* shards must keep flowing meanwhile.
  if (decode != nullptr) decode->shutdown();
  engine->shutdown();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_[static_cast<std::size_t>(shard)]->state = ShardState::Drained;
  }
  ++drains_;
}

void Router::restartShard(int shard) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shards_[static_cast<std::size_t>(shard)]->state !=
        ShardState::Drained)
      return;
  }
  // Build the replacements outside the lock (engine construction spawns the
  // batcher thread), then swap them in. The old engine is destroyed after
  // the swap; it was already drained, so teardown is instant. The pool
  // pointer is stable for the router's lifetime (never reassigned).
  runtime::ThreadPool* pool =
      shards_[static_cast<std::size_t>(shard)]->pool.get();
  auto engine = std::make_shared<Engine>(engineOptionsFor(shard, pool));
  std::unique_ptr<DecodeScheduler> decode;
  if (options_.enableDecode)
    decode = std::make_unique<DecodeScheduler>(decodeOptionsFor(shard, pool));
  std::shared_ptr<Engine> retired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Shard& s = *shards_[static_cast<std::size_t>(shard)];
    retired = std::exchange(s.engine, std::move(engine));
    s.decode = std::move(decode);
    s.state = ShardState::Serving;
  }
  ++restarts_;
}

Router::ShardState Router::shardState(int shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[static_cast<std::size_t>(shard)]->state;
}

void Router::drain() {
  for (int s = 0; s < shards(); ++s) {
    DecodeScheduler* decode = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      decode = shards_[static_cast<std::size_t>(s)]->decode.get();
    }
    if (decode != nullptr) decode->drain();
    engineOf(s)->drain();
  }
}

void Router::shutdown() {
  for (int s = 0; s < shards(); ++s) {
    DecodeScheduler* decode = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      decode = shards_[static_cast<std::size_t>(s)]->decode.get();
    }
    if (decode != nullptr) decode->shutdown();
    engineOf(s)->shutdown();
  }
}

Router::Stats Router::stats() const {
  Stats s;
  s.routed = routed_.load();
  s.decodeRouted = decodeRouted_.load();
  s.retryHops = retryHops_.load();
  s.drainSkips = drainSkips_.load();
  s.exhausted = exhausted_.load();
  s.drains = drains_.load();
  s.restarts = restarts_.load();
  return s;
}

std::vector<MetricsSnapshot> Router::shardMetrics() const {
  std::vector<MetricsSnapshot> out;
  out.reserve(shards_.size());
  for (int s = 0; s < shards(); ++s) out.push_back(engineOf(s)->metrics());
  return out;
}

std::vector<DecodeMetricsSnapshot> Router::shardDecodeMetrics() const {
  std::vector<DecodeMetricsSnapshot> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(shards_.size());
  for (const auto& s : shards_)
    out.push_back(s->decode != nullptr ? s->decode->metrics()
                                       : DecodeMetricsSnapshot{});
  return out;
}

MetricsSnapshot Router::mergedMetrics() const {
  MetricsSnapshot merged;
  obs::MetricsRegistry samples;  // scratch: only its histograms are read
  double batchWeighted = 0;
  for (int i = 0; i < shards(); ++i) {
    std::shared_ptr<Engine> engine = engineOf(i);
    const MetricsSnapshot s = engine->metrics();
    merged.requests += s.requests;
    merged.errors += s.errors;
    merged.batches += s.batches;
    batchWeighted += s.meanBatchSize * static_cast<double>(s.batches);
    merged.throughputRps += s.throughputRps;
    merged.cacheHits += s.cacheHits;
    merged.cacheMisses += s.cacheMisses;
    merged.cacheEvictions += s.cacheEvictions;
    merged.cacheCompiles += s.cacheCompiles;
    merged.cacheCompileFailures += s.cacheCompileFailures;
    merged.cacheNegativeHits += s.cacheNegativeHits;
    merged.cacheSize += s.cacheSize;
    merged.compileUsTotal += s.compileUsTotal;
    merged.sessionsOpened += s.sessionsOpened;
    for (int r = 0; r < kNumRejectReasons; ++r)
      merged.rejected[r] += s.rejected[r];
    merged.fallbackRequests += s.fallbackRequests;
    merged.decoalescedBatches += s.decoalescedBatches;
    merged.arenaFreshAllocs += s.arenaFreshAllocs;
    merged.arenaReusedAllocs += s.arenaReusedAllocs;
    merged.simBusyUs += s.simBusyUs;
    // Merge the latency samples; scalar names collide in the scratch
    // registry but only the histograms are read back.
    engine->exportMetrics(samples);
  }
  merged.meanBatchSize =
      merged.batches == 0
          ? 0.0
          : batchWeighted / static_cast<double>(merged.batches);
  const obs::MetricsRegistry::Snapshot snap = samples.snapshot();
  merged.total = toLatencyStats(snap.histogram("tssa_serve_request_latency_us"));
  merged.queue = toLatencyStats(snap.histogram("tssa_serve_queue_latency_us"));
  merged.exec = toLatencyStats(snap.histogram("tssa_serve_exec_latency_us"));
  return merged;
}

void Router::exportMetrics(obs::MetricsRegistry& registry) const {
  for (int s = 0; s < shards(); ++s) {
    const std::string label = shardLabel(s);
    engineOf(s)->exportMetrics(registry, label);
    DecodeScheduler* decode = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      decode = shards_[static_cast<std::size_t>(s)]->decode.get();
    }
    if (decode != nullptr) decode->exportMetrics(registry, label);
  }
  // The unlabeled merged view. The histograms merge by exporting each
  // shard's samples unlabeled (observeMany appends, so shards accumulate
  // instead of overwriting); those calls also write transiently wrong
  // unlabeled scalars, which exportSnapshot(merged) below overwrites with
  // the true sums. KernelCache counters are process-global and idempotent,
  // so repeating them is harmless.
  for (int s = 0; s < shards(); ++s) engineOf(s)->exportMetrics(registry);
  exportSnapshot(mergedMetrics(), registry);
}

Engine& Router::engine(int shard) { return *engineOf(shard); }

DecodeScheduler* Router::decode(int shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[static_cast<std::size_t>(shard)]->decode.get();
}

}  // namespace tssa::serve
