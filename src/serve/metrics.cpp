#include "src/serve/metrics.h"

#include <cstdio>

namespace tssa::serve {

// The percentile/aggregation code that used to live here moved to
// src/obs/metrics.h (obs::Histogram, obs::percentileNearestRank): the
// serving engine and the runtime profiler now share one implementation and
// one set of canonical metric names instead of two divergent copies.

std::string_view rejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::Deadline: return "deadline";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::ShuttingDown: return "shutting_down";
    case RejectReason::CompileFailed: return "compile_failed";
    case RejectReason::KvExhausted: return "kv_exhausted";
    case RejectReason::BadRequest: return "bad_request";
  }
  return "unknown";
}

LatencyStats toLatencyStats(const obs::HistogramStats& stats) {
  LatencyStats s;
  s.p50Us = stats.p50;
  s.p95Us = stats.p95;
  s.p99Us = stats.p99;
  s.meanUs = stats.mean;
  s.maxUs = stats.max;
  return s;
}

void MetricsCollector::recordRequest(const RequestTiming& timing) {
  const auto now = std::chrono::steady_clock::now();
  totalUs_.observe(timing.totalUs());
  queueUs_.observe(timing.queueUs);
  execUs_.observe(timing.execUs);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!haveSpan_) {
    firstComplete_ = now;
    haveSpan_ = true;
  }
  lastComplete_ = now;
}

void MetricsCollector::recordBatch(int size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batchedRequests_ += static_cast<std::uint64_t>(size);
}

void MetricsCollector::recordError(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  errors_ += static_cast<std::uint64_t>(count);
}

void MetricsCollector::recordSessionOpened() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++sessions_;
}

void MetricsCollector::recordRejected(RejectReason reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_[static_cast<int>(reason)];
}

void MetricsCollector::recordFallback() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++fallbacks_;
}

void MetricsCollector::recordDecoalesced() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++decoalesced_;
}

void MetricsCollector::recordMemory(std::int64_t freshAllocs,
                                    std::int64_t reusedAllocs) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (freshAllocs > 0) arenaFresh_ += static_cast<std::uint64_t>(freshAllocs);
  if (reusedAllocs > 0)
    arenaReused_ += static_cast<std::uint64_t>(reusedAllocs);
}

void MetricsCollector::recordSimBusy(double simUs) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (simUs > 0) simBusyUs_ += simUs;
}

void MetricsCollector::fill(MetricsSnapshot& out) const {
  const obs::HistogramStats total = totalUs_.stats();
  out.requests = total.count;
  out.total = toLatencyStats(total);
  out.queue = toLatencyStats(queueUs_.stats());
  out.exec = toLatencyStats(execUs_.stats());

  std::lock_guard<std::mutex> lock(mutex_);
  out.errors = errors_;
  out.batches = batches_;
  out.meanBatchSize =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batchedRequests_) /
                          static_cast<double>(batches_);
  out.sessionsOpened = sessions_;
  out.arenaFreshAllocs = arenaFresh_;
  out.arenaReusedAllocs = arenaReused_;
  out.simBusyUs = simBusyUs_;
  for (int r = 0; r < kNumRejectReasons; ++r) out.rejected[r] = rejected_[r];
  out.fallbackRequests = fallbacks_;
  out.decoalescedBatches = decoalesced_;
  out.throughputRps = 0;
  if (haveSpan_ && total.count > 1) {
    const double spanUs = std::chrono::duration<double, std::micro>(
                              lastComplete_ - firstComplete_)
                              .count();
    if (spanUs > 0)
      out.throughputRps =
          static_cast<double>(total.count - 1) / (spanUs * 1e-6);
  }
}

void MetricsCollector::exportTo(obs::MetricsRegistry& registry,
                                std::string_view labels) const {
  const std::vector<double> total = totalUs_.samples();
  const std::vector<double> queue = queueUs_.samples();
  const std::vector<double> exec = execUs_.samples();
  registry.observeMany(
      obs::withLabels("tssa_serve_request_latency_us", labels), total);
  registry.observeMany(obs::withLabels("tssa_serve_queue_latency_us", labels),
                       queue);
  registry.observeMany(obs::withLabels("tssa_serve_exec_latency_us", labels),
                       exec);
}

void exportSnapshot(const MetricsSnapshot& snapshot,
                    obs::MetricsRegistry& registry, std::string_view labels) {
  const auto counter = [&](const char* name, std::uint64_t value) {
    registry.counterSet(obs::withLabels(name, labels),
                        static_cast<std::int64_t>(value));
  };
  const auto gauge = [&](const char* name, double value) {
    registry.gaugeSet(obs::withLabels(name, labels), value);
  };
  counter("tssa_serve_requests_total", snapshot.requests);
  counter("tssa_serve_errors_total", snapshot.errors);
  counter("tssa_serve_batches_total", snapshot.batches);
  counter("tssa_serve_sessions_total", snapshot.sessionsOpened);
  counter("tssa_serve_cache_hits_total", snapshot.cacheHits);
  counter("tssa_serve_cache_misses_total", snapshot.cacheMisses);
  counter("tssa_serve_cache_evictions_total", snapshot.cacheEvictions);
  counter("tssa_serve_cache_compiles_total", snapshot.cacheCompiles);
  counter("tssa_serve_cache_compile_failures_total",
          snapshot.cacheCompileFailures);
  counter("tssa_serve_cache_negative_hits_total", snapshot.cacheNegativeHits);
  gauge("tssa_serve_cache_size", static_cast<double>(snapshot.cacheSize));
  gauge("tssa_serve_compile_us_total", snapshot.compileUsTotal);
  gauge("tssa_serve_mean_batch_size", snapshot.meanBatchSize);
  gauge("tssa_serve_throughput_rps", snapshot.throughputRps);
  gauge("tssa_serve_sim_busy_us_total", snapshot.simBusyUs);
  for (int r = 0; r < kNumRejectReasons; ++r) {
    const RejectReason reason = static_cast<RejectReason>(r);
    registry.counterSet(
        obs::withLabels("tssa_serve_rejected_total{reason=\"" +
                            std::string(rejectReasonName(reason)) + "\"}",
                        labels),
        static_cast<std::int64_t>(snapshot.rejected[r]));
  }
  counter("tssa_serve_fallback_total", snapshot.fallbackRequests);
  counter("tssa_serve_decoalesced_total", snapshot.decoalescedBatches);
  // Same canonical names the Profiler exporter uses: one logical metric,
  // one name, whether it comes from a single pipeline or an engine-wide
  // aggregate. (Don't export a Profiler and the Engine that aggregates it
  // into the same registry — the values describe the same traffic.)
  registry.counterSet(
      obs::withLabels("tssa_arena_allocs_total{kind=\"fresh\"}", labels),
      static_cast<std::int64_t>(snapshot.arenaFreshAllocs));
  registry.counterSet(
      obs::withLabels("tssa_arena_allocs_total{kind=\"reused\"}", labels),
      static_cast<std::int64_t>(snapshot.arenaReusedAllocs));
}

std::string MetricsSnapshot::toString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu errors=%llu rejected=%llu fallback=%llu rps=%.1f "
      "p50=%.0fus p95=%.0fus p99=%.0fus "
      "batches=%llu mean_batch=%.2f cache_hit_rate=%.1f%% (hits=%llu "
      "misses=%llu evictions=%llu) compile_total=%.0fus "
      "arena_reuse=%.1f%% (fresh=%llu reused=%llu)",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(rejectedTotal()),
      static_cast<unsigned long long>(fallbackRequests), throughputRps,
      total.p50Us,
      total.p95Us, total.p99Us, static_cast<unsigned long long>(batches),
      meanBatchSize, cacheHitRate() * 100.0,
      static_cast<unsigned long long>(cacheHits),
      static_cast<unsigned long long>(cacheMisses),
      static_cast<unsigned long long>(cacheEvictions), compileUsTotal,
      arenaReuseRate() * 100.0,
      static_cast<unsigned long long>(arenaFreshAllocs),
      static_cast<unsigned long long>(arenaReusedAllocs));
  return buf;
}

}  // namespace tssa::serve
