#include "src/serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tssa::serve {

namespace {

/// Nearest-rank percentile over an unsorted sample copy: the smallest
/// sample x such that at least q·n samples are <= x, i.e. 1-based rank
/// ceil(q·n). (A floor here would be off by one: p50 of 2 samples must be
/// the lower one, and p99 of 100 samples the 99th, not the maximum.)
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = rank == 0 ? 0 : rank - 1;
  if (rank >= xs.size()) rank = xs.size() - 1;
  return xs[rank];
}

LatencyStats statsOf(const std::vector<double>& xs) {
  LatencyStats s;
  if (xs.empty()) return s;
  s.p50Us = percentile(xs, 0.50);
  s.p95Us = percentile(xs, 0.95);
  s.p99Us = percentile(xs, 0.99);
  double sum = 0, mx = 0;
  for (double x : xs) {
    sum += x;
    mx = std::max(mx, x);
  }
  s.meanUs = sum / static_cast<double>(xs.size());
  s.maxUs = mx;
  return s;
}

}  // namespace

void MetricsCollector::recordRequest(const RequestTiming& timing) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  totalUs_.push_back(timing.totalUs());
  queueUs_.push_back(timing.queueUs);
  execUs_.push_back(timing.execUs);
  if (!haveSpan_) {
    firstComplete_ = now;
    haveSpan_ = true;
  }
  lastComplete_ = now;
}

void MetricsCollector::recordBatch(int size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batchedRequests_ += static_cast<std::uint64_t>(size);
}

void MetricsCollector::recordError(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  errors_ += static_cast<std::uint64_t>(count);
}

void MetricsCollector::recordSessionOpened() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++sessions_;
}

void MetricsCollector::recordMemory(std::int64_t freshAllocs,
                                    std::int64_t reusedAllocs) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (freshAllocs > 0) arenaFresh_ += static_cast<std::uint64_t>(freshAllocs);
  if (reusedAllocs > 0)
    arenaReused_ += static_cast<std::uint64_t>(reusedAllocs);
}

void MetricsCollector::fill(MetricsSnapshot& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out.requests = totalUs_.size();
  out.errors = errors_;
  out.batches = batches_;
  out.meanBatchSize =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batchedRequests_) /
                          static_cast<double>(batches_);
  out.total = statsOf(totalUs_);
  out.queue = statsOf(queueUs_);
  out.exec = statsOf(execUs_);
  out.sessionsOpened = sessions_;
  out.arenaFreshAllocs = arenaFresh_;
  out.arenaReusedAllocs = arenaReused_;
  out.throughputRps = 0;
  if (haveSpan_ && totalUs_.size() > 1) {
    const double spanUs = std::chrono::duration<double, std::micro>(
                              lastComplete_ - firstComplete_)
                              .count();
    if (spanUs > 0)
      out.throughputRps = static_cast<double>(totalUs_.size() - 1) /
                          (spanUs * 1e-6);
  }
}

std::string MetricsSnapshot::toString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu errors=%llu rps=%.1f p50=%.0fus p95=%.0fus p99=%.0fus "
      "batches=%llu mean_batch=%.2f cache_hit_rate=%.1f%% (hits=%llu "
      "misses=%llu evictions=%llu) compile_total=%.0fus "
      "arena_reuse=%.1f%% (fresh=%llu reused=%llu)",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(errors), throughputRps, total.p50Us,
      total.p95Us, total.p99Us, static_cast<unsigned long long>(batches),
      meanBatchSize, cacheHitRate() * 100.0,
      static_cast<unsigned long long>(cacheHits),
      static_cast<unsigned long long>(cacheMisses),
      static_cast<unsigned long long>(cacheEvictions), compileUsTotal,
      arenaReuseRate() * 100.0,
      static_cast<unsigned long long>(arenaFreshAllocs),
      static_cast<unsigned long long>(arenaReusedAllocs));
  return buf;
}

}  // namespace tssa::serve
