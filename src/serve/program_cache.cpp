#include "src/serve/program_cache.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "src/support/error.h"

namespace tssa::serve {

std::string ProgramKey::toString() const {
  // Every config knob that splits the key must render here too: the batcher
  // groups open batches and the Router routes shards on this string, so a
  // knob missing from it would let two differently-configured programs share
  // a batch or a shard slot.
  // Tuned knobs render only at non-default values: a default-config key
  // keeps the exact string it had before the knob existed, so adding a knob
  // never re-shuffles untuned traffic across the Router's hash ring.
  std::ostringstream os;
  os << workload << "/" << runtime::pipelineName(kind) << "/" << signature
     << "/" << options.device.name << "/threads=" << options.threads
     << "/texpr=" << (options.useTexpr ? 1 : 0);
  if (!options.texprJit) os << "/jit=0";
  if (!options.memoryPlan) os << "/mem=0";
  if (options.fusionMaxOps != 0) os << "/fuse=" << options.fusionMaxOps;
  if (options.parallelizeMask != ~std::uint64_t{0})
    os << "/par=" << std::hex << options.parallelizeMask << std::dec;
  return os.str();
}

std::size_t ProgramKeyHash::operator()(const ProgramKey& key) const {
  std::size_t h = std::hash<std::string>{}(key.workload);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<int>{}(static_cast<int>(key.kind)));
  mix(std::hash<std::string>{}(key.signature));
  mix(runtime::hashValue(key.options));
  return h;
}

ProgramCache::ProgramCache(std::size_t capacity, std::int64_t negativeTtlUs)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      negativeTtl_(std::chrono::microseconds(std::max<std::int64_t>(
          negativeTtlUs, 0))) {}

ProgramCache::Lookup ProgramCache::getOrCompile(const ProgramKey& key,
                                                const CompileFn& compile) {
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsedUs = [&t0] {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::shared_ptr<CachedProgram> program;
  bool weCompile = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      // A ready entry holding an expired failure ends its generation here:
      // unlink it and fall through to the miss path, which starts exactly
      // one fresh compile. (Lock order is always mutex_ → stateMutex.)
      bool expired = false;
      {
        std::lock_guard<std::mutex> slock(it->second.program->stateMutex);
        expired = it->second.program->ready &&
                  it->second.program->error != nullptr &&
                  t0 - it->second.program->failedAt >= negativeTtl_;
      }
      if (expired) {
        if (it->second.negative) --negativeCount_;
        lru_.erase(it->second.lruIt);
        map_.erase(it);
        it = map_.end();
      }
    }
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lruIt);  // touch
      program = it->second.program;
    } else {
      ++stats_.misses;
      program = std::make_shared<CachedProgram>();
      lru_.push_front(key);
      map_.emplace(key, Slot{program, lru_.begin()});
      evictExcess(key);
      weCompile = true;
    }
  }

  if (weCompile) {
    std::unique_ptr<runtime::Pipeline> compiled;
    std::exception_ptr error;
    try {
      compiled = compile();
      TSSA_CHECK(compiled != nullptr, "program compile returned null");
    } catch (...) {
      error = std::current_exception();
    }
    const double us = elapsedUs();
    {
      std::lock_guard<std::mutex> lock(program->stateMutex);
      program->pipeline = std::move(compiled);
      program->compileUs = us;
      program->error = error;
      program->failedAt = std::chrono::steady_clock::now();
      program->ready = true;
    }
    program->readyCv.notify_all();
    if (error != nullptr) {
      // Negative-cache the failure for the TTL (the entry stays and later
      // lookups get the error without compiling); with no TTL, forget it so
      // the next lookup retries.
      if (negativeTtl_ == std::chrono::steady_clock::duration::zero())
        forget(key, program.get());
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.compileFailures;
      // Mark the surviving entry negative so it stops counting toward the
      // LRU capacity (it holds no program — see Slot::negative).
      auto failedIt = map_.find(key);
      if (failedIt != map_.end() &&
          failedIt->second.program.get() == program.get() &&
          !failedIt->second.negative) {
        failedIt->second.negative = true;
        ++negativeCount_;
      }
      // The entry just became ready (as a failure) and now counts toward
      // the negative budget; trim whichever class this pushed over.
      evictExcess(key);
      Lookup lookup;
      lookup.program = std::move(program);
      lookup.error = error;
      lookup.waitUs = us;
      return lookup;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.compiles;
      stats_.compileUsTotal += us;
      // Budgets count only ready entries, so the insert-time eviction saw
      // this entry as pending; now that it is ready, trim the excess.
      evictExcess(key);
    }
    Lookup lookup;
    lookup.program = std::move(program);
    lookup.waitUs = us;
    return lookup;
  }

  // Someone else is (or was) compiling: wait for the rendezvous.
  Lookup lookup;
  lookup.hit = true;
  {
    std::unique_lock<std::mutex> lock(program->stateMutex);
    lookup.wasReady = program->ready;
    program->readyCv.wait(lock, [&] { return program->ready; });
    if (program->error != nullptr) {
      lookup.error = program->error;
      lookup.negative = lookup.wasReady;  // served a cached failure
      lookup.wasReady = false;
    }
  }
  if (lookup.negative) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.negativeHits;
  }
  lookup.program = std::move(program);
  lookup.waitUs = elapsedUs();
  return lookup;
}

void ProgramCache::evictExcess(const ProgramKey& justInserted) {
  // Walk from the LRU tail; never evict the entry we are about to compile.
  // Healthy entries and negative (cached-failure) entries are budgeted
  // separately: a storm of failing keys fills the negative budget without
  // ever displacing a healthy compiled program, and vice versa.
  // Only ready entries are budgeted: an in-flight compile may turn out to
  // be a failure, and charging it to the healthy budget up front would let
  // a storm of failing keys displace healthy compiled programs. The map may
  // exceed capacity while compiles are in flight; the insert after they
  // finish trims whichever class went over.
  std::size_t ready = 0;
  for (const auto& [key, slot] : map_) {
    std::lock_guard<std::mutex> slock(slot.program->stateMutex);
    if (slot.program->ready) ++ready;
  }
  auto it = lru_.end();
  std::size_t negatives = negativeCount_;
  std::size_t healthy = ready - negatives;
  while ((healthy > capacity_ || negatives > capacity_) &&
         it != lru_.begin()) {
    --it;
    if (*it == justInserted) continue;
    auto mapIt = map_.find(*it);
    {
      // Never evict an entry whose compile is still in flight: a re-request
      // of the key would miss and start a duplicate compile of the same
      // program, breaking single-flight. The map may exceed capacity until
      // those compiles finish; a later insert evicts them. (Lock order is
      // always mutex_ → stateMutex, never the reverse.)
      std::lock_guard<std::mutex> slock(mapIt->second.program->stateMutex);
      if (!mapIt->second.program->ready) continue;
    }
    const bool negative = mapIt->second.negative;
    if (negative ? negatives <= capacity_ : healthy <= capacity_) continue;
    if (negative) {
      --negativeCount_;
      --negatives;
    } else {
      --healthy;
    }
    mapIt->second.program.reset();  // in-flight users keep their shared_ptr
    map_.erase(mapIt);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

void ProgramCache::forget(const ProgramKey& key, const CachedProgram* program) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.program.get() != program) return;
  if (it->second.negative) --negativeCount_;
  lru_.erase(it->second.lruIt);
  map_.erase(it);
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.size = map_.size();
  s.negativeSize = negativeCount_;
  return s;
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace tssa::serve
