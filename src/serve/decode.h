// Iteration-level continuous batching for autoregressive decode sessions.
//
// A DecodeSession is a chain of dependent steps: step s consumes the
// previous step's output token plus the session's whole K/V history, so the
// serving engine's one-shot request model cannot batch a session as a unit —
// two sessions are never at the same place at the same time. Following
// Orca's iteration-level scheduling, the DecodeScheduler re-forms the batch
// *every step*: each scheduler iteration collects one pending step from
// every live session, groups them by context-length bucket, and submits the
// groups to a dedicated inner Engine whose MicroBatcher coalesces same-
// bucket steps into one execution. Newly admitted sessions join the very
// next iteration and finished sessions leave mid-wave — no session ever
// waits for another's generation to end (the run-to-completion baseline,
// `continuous = false`, exists only as the thing to beat;
// bench/decode_throughput.cpp measures the gap).
//
// Context lengths are padded up to the smallest configured bucket that
// holds them, with an additive mask neutralizing the padded rows. Bucketing
// used to be what kept the compile count bounded (one program per bucket ×
// coalesced batch size); with the engine's symbolic-shape keys (DESIGN.md
// §13) ONE polymorphic decode_step program serves every bucket and batch
// size, and bucketing survives for what it still buys: same-bucket steps
// share a context extent, so the inner engine's batcher can coalesce them,
// and the largest bucket stays the admission bound. Padding and coalescing
// are both bitwise-invisible (tests/decode_test.cpp asserts a batched
// session equals its solo run bit for bit, including exactly at a bucket
// edge).
//
// Session state lives outside the graphs: the K/V history in a paged
// KvCache (src/tensor/kv_cache.h) reserved worst-case at admission — so a
// session admitted is a session that can finish — and the token vector in
// the session record. Admission extends the engine's semantics to sessions:
// a queue bound (QueueFull), a session-level deadline checked before every
// step (Deadline — a session whose deadline expires mid-generation does not
// re-join the next step batch), shutdown (ShuttingDown), and KV reservation
// failure (KvExhausted). Every refusal is the same typed RejectedError the
// engine uses. DESIGN.md §12 has the full state machine.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/engine.h"
#include "src/tensor/kv_cache.h"

namespace tssa::serve {

struct DecodeOptions {
  runtime::PipelineKind kind = runtime::PipelineKind::TensorSsa;
  runtime::PipelineOptions pipeline{};
  /// Compiled-program budget of the inner engine. With symbolic-shape keys
  /// decode needs exactly one polymorphic step program (plus its fallback);
  /// the old (#buckets × #batch sizes) sizing is kept as headroom for
  /// engines configured back to exact-shape specialization.
  std::size_t cacheCapacity = 64;
  /// Sessions coalesced into one step execution (the inner engine's
  /// micro-batch cap).
  int maxStepBatch = 8;
  /// Sessions generating concurrently; arrivals beyond it wait in the
  /// admission queue. Bounds both step-batch pressure and worst-case KV use.
  std::size_t maxActiveSessions = 16;
  /// Queued-arrival bound; a submit beyond it is shed with QueueFull.
  /// 0 = unbounded.
  std::size_t maxQueuedSessions = 0;
  /// Context-length buckets (ascending). A session whose context would
  /// outgrow the largest bucket is rejected at submit.
  std::vector<std::int64_t> ctxBuckets = {16, 32, 64, 128, 256};
  /// KV page size in tokens and total page budget (0 = unbounded); see
  /// KvCacheOptions.
  std::int64_t kvPageTokens = 16;
  std::int64_t kvMaxPages = 0;
  /// Seed the decode_step projection weights are drawn from (the same seed
  /// must be used when replaying a session for verification).
  std::uint64_t seed = 42;
  /// Iteration-level continuous batching (true) vs naive run-to-completion
  /// batching (false): admit a wave only when the previous wave has fully
  /// finished. The baseline bench/decode_throughput.cpp compares against.
  bool continuous = true;
  /// Forwarded to the inner engine (EngineOptions::executePool / shardId):
  /// a Router gives each shard's scheduler the shard's own pool and
  /// identity so decode step execution and trace spans stay shard-scoped.
  runtime::ThreadPool* executePool = nullptr;
  int shardId = -1;
};

/// One decode session: process `prompt` (one forced step per row), then
/// generate `generate` tokens autoregressively.
struct DecodeRequest {
  /// [promptLen, workloads::kDecodeDim] float32, promptLen >= 1.
  Tensor prompt;
  std::int64_t generate = 8;  ///< tokens to generate (>= 1)
  /// Session-level relative deadline: 0 = none, < 0 = already expired.
  /// Checked at admission and before every step the session would join.
  std::int64_t deadlineUs = 0;
  std::string id;  ///< optional; auto-assigned when empty
};

struct DecodeResult {
  Tensor generated;          ///< [generate, kDecodeDim]
  std::int64_t steps = 0;    ///< total steps executed (prompt + generation)
  /// Steps that shared their engine execution with >= 1 other session —
  /// the continuous-batching win measured per session.
  std::int64_t batchedSteps = 0;
  double queueUs = 0;        ///< submit → admitted into the active set
  double totalUs = 0;        ///< submit → finished
};

struct DecodeMetricsSnapshot {
  std::uint64_t sessionsSubmitted = 0;
  std::uint64_t sessionsCompleted = 0;
  std::uint64_t joins = 0;   ///< sessions admitted into the active set
  std::uint64_t leaves = 0;  ///< sessions that left it (any outcome)
  std::uint64_t rejected[kNumRejectReasons] = {};
  std::uint64_t steps = 0;           ///< session-steps executed
  std::uint64_t iterations = 0;      ///< scheduler step-batch iterations
  /// Mean sessions per iteration (batch occupancy of the step loop).
  double meanOccupancy = 0;
  double stepsPerSec = 0;  ///< session-steps / wall-clock span of the run
  KvCache::Stats kv;
  std::uint64_t rejectedFor(RejectReason reason) const {
    return rejected[static_cast<int>(reason)];
  }
  std::uint64_t rejectedTotal() const {
    std::uint64_t n = 0;
    for (std::uint64_t r : rejected) n += r;
    return n;
  }
  std::string toString() const;
};

/// The scheduler. Thread-safe: submit/drain/metrics may be called from any
/// thread; all stepping happens on one internal loop thread.
class DecodeScheduler {
 public:
  explicit DecodeScheduler(DecodeOptions options = {});
  /// Finishes every admitted session, rejects what is still queued, joins
  /// the loop.
  ~DecodeScheduler();

  DecodeScheduler(const DecodeScheduler&) = delete;
  DecodeScheduler& operator=(const DecodeScheduler&) = delete;

  /// Asynchronous submit. The future throws RejectedError on shedding
  /// (QueueFull, Deadline, ShuttingDown, KvExhausted) and tssa::Error when a
  /// step execution fails; malformed prompts throw synchronously.
  std::future<DecodeResult> submit(DecodeRequest request);

  /// Blocks until every submitted session has finished.
  void drain();
  /// Stops admitting (queued sessions are shed with ShuttingDown), finishes
  /// the active ones, then returns. Idempotent; the destructor implies it.
  void shutdown();

  DecodeMetricsSnapshot metrics() const;
  /// Exports the snapshot under the canonical tssa_decode_* names plus the
  /// per-iteration occupancy histogram. `labels` (e.g. `shard="1"`) is
  /// spliced into every name so several schedulers can share one registry
  /// (see serve::exportSnapshot for the disjoint-label-set contract).
  void exportMetrics(obs::MetricsRegistry& registry,
                     std::string_view labels = {}) const;
  /// The inner engine's view of the same traffic (batch sizes, cache hits,
  /// latency percentiles of individual steps).
  MetricsSnapshot engineMetrics() const { return engine_.metrics(); }
  const DecodeOptions& options() const { return options_; }

  /// A reproducible random prompt of `len` tokens (for tests and benches).
  static Tensor randomPrompt(std::int64_t len, std::uint64_t seed);

 private:
  struct ActiveSession;
  struct Arrival;

  void loop();
  /// Moves admissible arrivals into the active set (mutex_ held).
  void admitLocked(std::vector<std::unique_ptr<ActiveSession>>& admitted);
  /// Runs one scheduler iteration over `active_` (loop thread, no lock).
  void stepOnce();
  std::int64_t bucketFor(std::int64_t tokens) const;
  void finishSession(std::unique_ptr<ActiveSession> session);
  void rejectSession(std::unique_ptr<ActiveSession> session,
                     RejectReason reason, const std::string& detail);
  void failSession(std::unique_ptr<ActiveSession> session,
                   std::exception_ptr error);
  /// Terminal bookkeeping shared by the three outcomes above.
  void sessionDone(ActiveSession& session);

  const DecodeOptions options_;
  KvCache kv_;
  Engine engine_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::unique_ptr<Arrival>> arrivals_;
  bool stopping_ = false;

  /// Sessions currently generating; owned and touched only by the loop
  /// thread outside the mutex.
  std::vector<std::unique_ptr<ActiveSession>> active_;

  std::atomic<std::uint64_t> pendingSessions_{0};
  std::mutex drainMutex_;
  std::condition_variable drainCv_;
  std::atomic<std::uint64_t> sessionCounter_{0};

  // ---- Metrics (guarded by metricsMutex_) ---------------------------------
  mutable std::mutex metricsMutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t rejected_[kNumRejectReasons] = {};
  std::uint64_t steps_ = 0;
  std::uint64_t iterations_ = 0;
  obs::Histogram occupancy_;  ///< sessions stepped per iteration
  bool haveStepSpan_ = false;
  std::chrono::steady_clock::time_point firstStep_;
  std::chrono::steady_clock::time_point lastStep_;

  std::thread thread_;  ///< last member: joined before the rest dies
};

}  // namespace tssa::serve
