#include "src/serve/engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"
#include "src/support/error.h"
#include "src/tensor/ops.h"
#include "src/texpr/jit.h"
#include "src/tune/tuner.h"

namespace tssa::serve {

using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

double usBetween(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// The graph-structure guard of the cache key: config parameters that are
/// baked into the built graph (output buffer shapes, loop trip counts,
/// constant weights) beyond what the input shapes already pin down.
std::string configGuard(const workloads::WorkloadConfig& config) {
  std::ostringstream os;
  os << "|b=" << config.batch << "|t=" << config.seqLen
     << "|seed=" << config.seed;
  return os.str();
}

std::string describeError(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Tags a span with the engine's shard identity (EngineOptions::shardId);
/// no-op for standalone (shardId < 0) engines, so solo traces stay clean.
void tagShard(obs::TraceSpan& span, int shardId) {
  if (shardId >= 0) span.arg("shard", static_cast<std::int64_t>(shardId));
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      cache_(options.cacheCapacity, options.compileFailureTtlUs),
      anonymousInFlight_(std::make_shared<std::atomic<std::int64_t>>(0)) {
  MicroBatcher::Options batcherOptions;
  batcherOptions.maxBatch = options_.maxBatch;
  batcherOptions.maxWaitUs = options_.maxWaitUs;
  batcherOptions.injector = options_.faultInjector;
  batcher_ = std::make_unique<MicroBatcher>(
      batcherOptions,
      [this](SealedBatch batch) { onBatchDispatched(std::move(batch)); });
}

Engine::~Engine() {
  shuttingDown_.store(true, std::memory_order_relaxed);
  batcher_.reset();  // seal + dispatch everything still open, join the timer
  std::unique_lock<std::mutex> lock(drainMutex_);
  drainCv_.wait(lock, [this] { return pendingRequests_.load() == 0; });
}

Session Engine::openSession(std::string id) {
  const std::uint64_t n = ++sessionCounter_;
  if (id.empty()) id = "session-" + std::to_string(n);
  metrics_.recordSessionOpened();
  return Session(this, std::move(id));
}

std::future<Response> Engine::submit(Request request) {
  return submitInternal("anonymous", anonymousInFlight_, std::move(request));
}

std::future<Response> Session::submit(Request request) {
  ++*submitted_;
  return engine_->submitInternal(id_, inFlight_, std::move(request));
}

Response Session::infer(Request request) {
  return submit(std::move(request)).get();
}

ProgramKey Engine::keyFor(const EngineOptions& options, const Request& request,
                          bool* polymorphic) {
  ProgramKey key;
  key.workload = request.workload;
  key.kind = options.kind;
  // The tuned config (when a tuner is installed and has an entry for this
  // workload × kind) replaces the fixed heuristics *in the key*: programs
  // are compiled with key.options, so a config change is a different key —
  // distinct tuned configs can never collide in the cache, and routing on
  // the rendered key stays cache-affine per config.
  key.options = options.tuner != nullptr
                    ? options.tuner->pipelineFor(request.workload,
                                                 options.kind, options.pipeline)
                    : options.pipeline;
  if (options.symbolicShapes) {
    const workloads::SymbolicPattern& pattern =
        workloads::workloadSymbolicPattern(request.workload);
    // Empty inputs mean "use the defaults" (filled at admission); those
    // instantiate the pattern by construction, so the polymorphic key can be
    // decided without building the workload — a Router routes on it without
    // materializing tensors.
    if (request.inputs.empty() ||
        workloads::matchesSymbolicPattern(pattern, request.inputs)) {
      // Polymorphic guard: the pattern plus the one config parameter that is
      // still baked into the graph (the constant weights' seed). batch and
      // seqLen are runtime extents of a polymorphic program — they no longer
      // split the key, so the compile count stays flat as shape diversity
      // grows.
      key.signature =
          pattern.signature + "|seed=" + std::to_string(request.config.seed);
      if (polymorphic != nullptr) *polymorphic = true;
      return key;
    }
  }
  key.signature =
      workloads::inputSignature(request.inputs) + configGuard(request.config);
  if (polymorphic != nullptr) *polymorphic = false;
  return key;
}

ProgramKey Engine::keyFor(const Request& request, bool* polymorphic) const {
  return keyFor(options_, request, polymorphic);
}

std::vector<runtime::RtValue> Engine::defaultInputs(
    const std::string& workload, const workloads::WorkloadConfig& config) {
  return workloads::buildWorkload(workload, config).inputs;
}

std::future<Response> Engine::submitInternal(const std::string& sessionId,
                                             InFlightCounter inFlight,
                                             Request request) {
  obs::TraceSpan span("serve", "submit");
  span.arg("workload", request.workload);
  span.arg("session", sessionId);
  tagShard(span, options_.shardId);
  // Validation happens here, synchronously: a malformed request throws a
  // typed RejectedError(BadRequest) on the submitting thread — counted like
  // every other refusal — rather than escaping as a raw registry error or
  // poisoning a shared batch later.
  const workloads::BatchTraits* traits = nullptr;
  try {
    traits = &workloads::workloadBatchTraits(request.workload);
    if (request.inputs.empty())
      request.inputs = defaultInputs(request.workload, request.config);
    TSSA_CHECK(request.inputs.size() == traits->inputDims.size(),
               "workload '" << request.workload << "' takes "
                            << traits->inputDims.size() << " inputs, got "
                            << request.inputs.size());
    for (std::size_t i = 0; i < request.inputs.size(); ++i) {
      const int d = traits->inputDims[i];
      if (d < 0) continue;
      TSSA_CHECK(request.inputs[i].isTensor(),
                 "input " << i << " of '" << request.workload
                          << "' must be a tensor");
      const Tensor& t = request.inputs[i].tensor();
      TSSA_CHECK(t.dim() > d && t.size(d) == request.config.batch,
                 "input " << i << " of '" << request.workload
                          << "': batch dim " << d
                          << " must equal config.batch="
                          << request.config.batch);
    }
  } catch (const RejectedError&) {
    throw;  // already typed (should not happen; keep it intact regardless)
  } catch (const std::exception& ex) {
    span.arg("rejected", rejectReasonName(RejectReason::BadRequest));
    metrics_.recordRejected(RejectReason::BadRequest);
    throw RejectedError(RejectReason::BadRequest, ex.what());
  }

  auto pending = std::make_unique<PendingRequest>();
  pending->key = keyFor(request, &pending->polymorphic);
  if (options_.tuner != nullptr) {
    const tune::Autotuner::BatchOverride bo =
        options_.tuner->batchOverride(request.workload, options_.kind);
    pending->maxBatchOverride = bo.maxBatch;
    pending->maxWaitUsOverride = bo.maxWaitUs;
  }
  pending->enqueueTime = Clock::now();
  pending->deadline =
      absoluteDeadline(pending->enqueueTime, request.deadlineUs);
  pending->request = std::move(request);
  pending->traits = *traits;
  pending->sessionId = sessionId;
  pending->sessionInFlight = inFlight;
  std::future<Response> future = pending->promise.get_future();

  // Admission control: every refusal is a typed RejectedError on the future
  // plus a reason-labelled counter — never a silently dropped promise.
  // Nothing below has touched pendingRequests_ or the session counter yet,
  // so a rejection here releases nothing.
  auto rejectNow = [&](RejectReason reason, const std::string& detail) {
    span.arg("rejected", rejectReasonName(reason));
    metrics_.recordRejected(reason);
    pending->promise.set_exception(
        std::make_exception_ptr(RejectedError(reason, detail)));
    return std::move(future);
  };

  if (shuttingDown_.load(std::memory_order_relaxed))
    return rejectNow(RejectReason::ShuttingDown, "engine is shutting down");
  if (pending->deadline <= pending->enqueueTime)
    return rejectNow(RejectReason::Deadline,
                     "deadline expired before admission");
  if (options_.maxInFlightPerSession > 0 &&
      inFlight->load() >=
          static_cast<std::int64_t>(options_.maxInFlightPerSession))
    return rejectNow(RejectReason::QueueFull,
                     "session '" + sessionId + "' at its in-flight cap (" +
                         std::to_string(options_.maxInFlightPerSession) + ")");

  // Claim the engine-wide queue slot atomically: the increment itself is the
  // reservation, so concurrent submits cannot overshoot maxQueueDepth.
  const std::uint64_t depth = ++pendingRequests_;
  if (options_.maxQueueDepth > 0 && depth > options_.maxQueueDepth) {
    {
      std::lock_guard<std::mutex> lock(drainMutex_);
      --pendingRequests_;
      drainCv_.notify_all();
    }
    return rejectNow(RejectReason::QueueFull,
                     "engine queue full (maxQueueDepth=" +
                         std::to_string(options_.maxQueueDepth) + ")");
  }

  ++*inFlight;
  batcher_->enqueue(std::move(pending));
  return future;
}

void Engine::onBatchDispatched(SealedBatch batch) {
  // Hand the sealed batch to the shared pool. The wrapper owns the batch;
  // executeBatch itself never throws (errors go through the promises).
  auto shared = std::make_shared<SealedBatch>(std::move(batch));
  const int workers = options_.executeConcurrency > 0
                          ? options_.executeConcurrency
                          : runtime::ThreadPool::hardwareThreads();
  runtime::ThreadPool& pool = options_.executePool != nullptr
                                  ? *options_.executePool
                                  : runtime::ThreadPool::shared();
  pool.submit([this, shared] { executeBatch(std::move(*shared)); }, workers);
}

void Engine::drain() {
  batcher_->flush();
  std::unique_lock<std::mutex> lock(drainMutex_);
  drainCv_.wait(lock, [this] { return pendingRequests_.load() == 0; });
}

void Engine::shutdown() {
  shuttingDown_.store(true, std::memory_order_relaxed);
  drain();
}

// ---- Per-request terminal transitions --------------------------------------
// Each fulfills the promise exactly once, then releases the request's
// admission accounting (session in-flight, engine queue slot). The release
// is the very last engine-state access on behalf of this request: once
// pendingRequests_ hits zero the destructor may tear the engine down.

void Engine::finishOne(PendingRequest& request) {
  if (request.sessionInFlight) --*request.sessionInFlight;
  // Notify under the mutex: the destructor destroys drainCv_ as soon as
  // its wait observes pending == 0, so the notify must complete before
  // the waiter can reacquire the lock and return.
  std::lock_guard<std::mutex> lock(drainMutex_);
  --pendingRequests_;
  drainCv_.notify_all();
}

void Engine::deliver(std::unique_ptr<PendingRequest> request,
                     Response response) {
  metrics_.recordRequest(response.timing);
  PendingRequest& r = *request;
  r.promise.set_value(std::move(response));
  finishOne(r);
}

void Engine::deliverError(std::unique_ptr<PendingRequest> request,
                          std::exception_ptr error) {
  metrics_.recordError(1);
  PendingRequest& r = *request;
  r.promise.set_exception(std::move(error));
  finishOne(r);
}

void Engine::rejectRequest(std::unique_ptr<PendingRequest> request,
                           RejectReason reason, const std::string& detail) {
  metrics_.recordRejected(reason);
  PendingRequest& r = *request;
  r.promise.set_exception(
      std::make_exception_ptr(RejectedError(reason, detail)));
  finishOne(r);
}

// ---- Batch execution -------------------------------------------------------

void Engine::executeBatch(SealedBatch sealed) {
  std::vector<std::unique_ptr<PendingRequest>> batch =
      std::move(sealed.requests);
  const auto execStart = Clock::now();
  const PendingRequest& head = *batch.front();

  obs::TraceSpan batchSpan("serve", "batch");
  batchSpan.arg("workload", head.request.workload);
  batchSpan.arg("batch_size", static_cast<std::int64_t>(batch.size()));
  tagShard(batchSpan, options_.shardId);
  // Queue spans, recorded retroactively: a request's wait is only known once
  // its batch starts. One "X" event per request, anchored at its enqueue
  // time on this (executing) thread's timeline, so queue → exec reads as a
  // contiguous lifecycle in the trace.
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    for (const auto& r : batch) {
      obs::TraceEvent ev;
      ev.name = "queue";
      ev.cat = "serve";
      ev.startNs = tracer.sinceEpochNs(r->enqueueTime);
      ev.durNs = tracer.sinceEpochNs(execStart) - ev.startNs;
      ev.tid = obs::Tracer::currentThreadId();
      ev.args.emplace_back("session", obs::jsonQuote(r->sessionId));
      ev.args.emplace_back("workload",
                           obs::jsonQuote(r->request.workload));
      if (options_.shardId >= 0)
        ev.args.emplace_back("shard", std::to_string(options_.shardId));
      tracer.record(std::move(ev));
    }
  }

  // Pre-execution deadline check. `sealed.virtualDelayUs` is the injected
  // stall between seal and execution (0 in production): the check treats
  // "now + stall" as the effective clock, which makes queue-side deadline
  // expiry deterministic in tests without real sleeps.
  const auto effectiveNow =
      execStart + std::chrono::microseconds(sealed.virtualDelayUs);
  std::vector<std::unique_ptr<PendingRequest>> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    if (r->deadline <= effectiveNow)
      rejectRequest(std::move(r), RejectReason::Deadline,
                    "deadline expired before execution");
    else
      live.push_back(std::move(r));
  }
  if (live.empty()) return;

  const int k = static_cast<int>(live.size());
  const PendingRequest& first = *live.front();
  const workloads::BatchTraits& traits = first.traits;
  FaultInjector* const injector = options_.faultInjector;

  std::vector<Response> responses;
  std::exception_ptr failure;
  try {
    // 1. Coalesce inputs along the workload's batch dimension. Same program
    //    key + batcher compatibility ⇒ per-request shapes agree on every
    //    non-batch dimension; the batch extents themselves may be ragged
    //    (polymorphic keys coalesce requests of different batch sizes).
    std::vector<std::int64_t> rows(live.size());
    std::int64_t totalRows = 0;
    for (std::size_t j = 0; j < live.size(); ++j) {
      rows[j] = live[j]->request.config.batch;  // validated at admission
      totalRows += rows[j];
    }
    std::vector<runtime::RtValue> inputs;
    inputs.reserve(first.request.inputs.size());
    for (std::size_t i = 0; i < first.request.inputs.size(); ++i) {
      const int d = i < traits.inputDims.size() ? traits.inputDims[i] : -1;
      if (k == 1 || d < 0) {
        inputs.push_back(first.request.inputs[i]);
        continue;
      }
      std::vector<Tensor> parts;
      parts.reserve(live.size());
      for (const auto& r : live)
        parts.push_back(r->request.inputs[i].tensor());
      inputs.emplace_back(ops::cat(parts, d));
    }

    // 2. Look up (or compile) the program for the *batched* shapes. A
    //    polymorphic batch keeps the head request's pattern key —
    //    concatenating along a symbolic dim cannot leave the pattern, so the
    //    same compiled program serves solo and coalesced runs alike. A
    //    shape-specialized batch re-keys on the concatenated signature (a
    //    solo request at batch=N and a coalesced run of N batch-1 requests
    //    share the same program).
    workloads::WorkloadConfig compileConfig = first.request.config;
    ProgramKey key;
    if (first.polymorphic) {
      key = first.key;
      compileConfig.symbolicDims = true;
    } else {
      compileConfig.batch = totalRows;
      key.workload = first.request.workload;
      key.kind = options_.kind;
      key.signature =
          workloads::inputSignature(inputs) + configGuard(compileConfig);
      key.options =
          options_.tuner != nullptr
              ? options_.tuner->pipelineFor(key.workload, options_.kind,
                                            options_.pipeline)
              : options_.pipeline;
    }

    ProgramCache::Lookup lookup = cache_.getOrCompile(key, [&] {
      if (injector != nullptr) injector->onCompile(key.toString());
      // This span contains the whole compilation — the nested "pipeline"
      // pass spans (functionalize, fusion, parallelize, memory-plan) land
      // inside it on the same thread.
      obs::TraceSpan compileSpan("serve", "compile");
      compileSpan.arg("workload", key.workload);
      compileSpan.arg("signature", key.signature);
      tagShard(compileSpan, options_.shardId);
      workloads::Workload w =
          workloads::buildWorkload(key.workload, compileConfig);
      // Compile with the key's options, not the engine defaults: the key IS
      // the config contract (a tuned key must yield a tuned program).
      auto pipeline = std::make_unique<runtime::Pipeline>(
          options_.kind, *w.graph, key.options);
      // Every launch of an engine-compiled program reports to the injector
      // (the kernel-fault seam). The fallback pipeline never gets a probe.
      if (injector != nullptr)
        pipeline->setLaunchProbe([injector] { injector->onKernelLaunch(); });
      return pipeline;
    });

    if (lookup.error != nullptr) {
      // Compile failed (now, or negatively cached from an earlier attempt):
      // degrade each request individually — the batch as a unit is gone,
      // but every member still gets an answer.
      batchSpan.finish();
      for (auto& r : live)
        degradeOrReject(std::move(r), execStart, lookup.error);
      return;
    }

    // 3. Execute. One batch at a time per program; distinct programs (other
    //    shapes / workloads) run concurrently on other pool workers.
    const auto runStart = Clock::now();
    std::vector<runtime::RtValue> outputs;
    runtime::Profiler::MemoryCounters mem;
    double simUs = 0;
    std::exception_ptr runError;
    {
      obs::TraceSpan execSpan("serve", "exec");
      execSpan.arg("workload", key.workload);
      execSpan.arg("batch_size", k);
      tagShard(execSpan, options_.shardId);
      std::lock_guard<std::mutex> execLock(lookup.program->execMutex);
      if (injector != nullptr) injector->beginRun();
      try {
        outputs = lookup.program->pipeline->run(inputs);
        // Read the per-run memory counters and modelled device time while
        // still holding the exec lock: run() resets the profiler, so a
        // concurrent batch on this program could clobber them the moment
        // the lock drops.
        mem = lookup.program->pipeline->profiler().memoryCounters();
        simUs = lookup.program->pipeline->profiler().simTimeUs();
      } catch (...) {
        runError = std::current_exception();
      }
    }
    metrics_.recordBatch(k);

    if (runError != nullptr) {
      // A fault under a tuned config rejects the tuned entry immediately:
      // the retries below (and all future traffic) run on the defaults.
      if (options_.tuner != nullptr && key.options != options_.pipeline)
        options_.tuner->recordFailure(key.workload, options_.kind);
      if (k == 1) {
        batchSpan.finish();
        deliverError(std::move(live.front()), runError);
        return;
      }
      // A kernel threw mid-batch. The failure belongs to one request, not
      // to its co-batched peers: re-execute the batch de-coalesced, each
      // request solo through its own program, so only the faulty one fails.
      metrics_.recordDecoalesced();
      batchSpan.finish();
      for (auto& r : live) executeSolo(std::move(r), execStart);
      return;
    }
    metrics_.recordMemory(mem.freshAllocs, mem.reusedAllocs);
    metrics_.recordSimBusy(simUs);

    // 4. De-interleave: the j-th (possibly ragged) row block of every
    //    output belongs to request j.
    const double execUs = usSince(runStart);
    // Online refinement: runs under a tuned config report their measured
    // per-request latency back; a tuned entry whose served mean drifts past
    // the tuner's rejection threshold is dropped and serving falls back to
    // the defaults. Default-config runs carry no signal for the tuner.
    if (options_.tuner != nullptr && key.options != options_.pipeline)
      options_.tuner->recordMeasurement(key.workload, options_.kind,
                                        execUs * 1000.0 / k);
    std::int64_t rowOffset = 0;
    for (int j = 0; j < k; ++j) {
      std::vector<runtime::RtValue> mine;
      mine.reserve(outputs.size());
      if (k == 1) {
        mine = outputs;
      } else {
        for (std::size_t o = 0; o < outputs.size(); ++o) {
          const int d =
              o < traits.outputDims.size() ? traits.outputDims[o] : -1;
          TSSA_CHECK(d >= 0 && outputs[o].isTensor(),
                     "workload '" << key.workload
                                  << "' output " << o
                                  << " cannot be de-interleaved");
          mine.emplace_back(
              outputs[o]
                  .tensor()
                  .narrow(d, rowOffset, rows[static_cast<std::size_t>(j)])
                  .clone());
        }
      }
      rowOffset += rows[static_cast<std::size_t>(j)];
      Response resp;
      resp.outputs = std::move(mine);
      resp.timing.queueUs = usBetween(
          live[static_cast<std::size_t>(j)]->enqueueTime, execStart);
      // Every request in the batch waited out the same compile (or none):
      // compileUs is that shared wait, zero when the program was already
      // ready. cacheHit means "paid no compile", so a single-flight waiter
      // that blocked for the full compile reports a miss, not a hit.
      resp.timing.compileUs = lookup.wasReady ? 0.0 : lookup.waitUs;
      resp.timing.execUs = execUs;
      resp.batchedWith = k;
      resp.cacheHit = lookup.wasReady;
      responses.push_back(std::move(resp));
    }
  } catch (...) {
    failure = std::current_exception();
  }

  // Close the batch span before the promises are fulfilled: the moment a
  // client's future resolves, main may tear everything down and export the
  // trace, and a still-open RAII span would be missing from it. Delivery
  // itself is microseconds and not worth a span.
  batchSpan.finish();

  if (failure != nullptr) {
    // Engine-side failure outside the run itself (coalescing,
    // de-interleave): no per-request attribution possible.
    for (auto& r : live) deliverError(std::move(r), failure);
  } else {
    for (int j = 0; j < k; ++j)
      deliver(std::move(live[static_cast<std::size_t>(j)]),
              std::move(responses[static_cast<std::size_t>(j)]));
  }
}

void Engine::executeSolo(std::unique_ptr<PendingRequest> request,
                         Clock::time_point execStart) {
  FaultInjector* const injector = options_.faultInjector;
  const ProgramKey key = request->key;  // the per-request (unbatched) key
  workloads::WorkloadConfig config = request->request.config;
  config.symbolicDims = request->polymorphic;  // match what the key promises
  ProgramCache::Lookup lookup = cache_.getOrCompile(key, [&] {
    if (injector != nullptr) injector->onCompile(key.toString());
    obs::TraceSpan compileSpan("serve", "compile");
    compileSpan.arg("workload", key.workload);
    compileSpan.arg("signature", key.signature);
    tagShard(compileSpan, options_.shardId);
    workloads::Workload w = workloads::buildWorkload(key.workload, config);
    auto pipeline = std::make_unique<runtime::Pipeline>(
        options_.kind, *w.graph, key.options);
    if (injector != nullptr)
      pipeline->setLaunchProbe([injector] { injector->onKernelLaunch(); });
    return pipeline;
  });
  if (lookup.error != nullptr) {
    degradeOrReject(std::move(request), execStart, lookup.error);
    return;
  }

  const auto runStart = Clock::now();
  std::vector<runtime::RtValue> outputs;
  runtime::Profiler::MemoryCounters mem;
  double simUs = 0;
  try {
    obs::TraceSpan execSpan("serve", "exec");
    execSpan.arg("workload", key.workload);
    execSpan.arg("batch_size", 1);
    tagShard(execSpan, options_.shardId);
    std::lock_guard<std::mutex> execLock(lookup.program->execMutex);
    if (injector != nullptr) injector->beginRun();
    outputs = lookup.program->pipeline->run(request->request.inputs);
    mem = lookup.program->pipeline->profiler().memoryCounters();
    simUs = lookup.program->pipeline->profiler().simTimeUs();
  } catch (...) {
    if (options_.tuner != nullptr && key.options != options_.pipeline)
      options_.tuner->recordFailure(key.workload, options_.kind);
    deliverError(std::move(request), std::current_exception());
    return;
  }
  metrics_.recordMemory(mem.freshAllocs, mem.reusedAllocs);
  metrics_.recordSimBusy(simUs);
  if (options_.tuner != nullptr && key.options != options_.pipeline)
    options_.tuner->recordMeasurement(key.workload, options_.kind,
                                      usSince(runStart) * 1000.0);

  Response resp;
  resp.outputs = std::move(outputs);
  resp.timing.queueUs = usBetween(request->enqueueTime, execStart);
  resp.timing.compileUs = lookup.wasReady ? 0.0 : lookup.waitUs;
  resp.timing.execUs = usSince(runStart);
  resp.batchedWith = 1;
  resp.cacheHit = lookup.wasReady;
  deliver(std::move(request), std::move(resp));
}

void Engine::degradeOrReject(std::unique_ptr<PendingRequest> request,
                             Clock::time_point execStart,
                             const std::exception_ptr& compileError) {
  if (!options_.fallbackOnCompileFailure) {
    rejectRequest(std::move(request), RejectReason::CompileFailed,
                  describeError(compileError));
    return;
  }

  // Graceful degradation: serve through the reference (eager, unbatched)
  // pipeline. Cached under its own key — kind forced to Eager plus a
  // "|fallback" signature tag, so it cannot collide with a specialized
  // program even when the engine's kind already is Eager. Deliberately NOT
  // routed through the fault injector and never given a launch probe: the
  // recovery path must stay recoverable.
  ProgramKey key = request->key;
  key.kind = runtime::PipelineKind::Eager;
  key.signature += "|fallback";
  workloads::WorkloadConfig config = request->request.config;
  // A polymorphic key caches one fallback for every shape it guards, so the
  // fallback graph must be polymorphic too (the interpreter binds its
  // runtime extents the same way on the eager path).
  config.symbolicDims = request->polymorphic;
  ProgramCache::Lookup lookup = cache_.getOrCompile(key, [&] {
    obs::TraceSpan compileSpan("serve", "compile");
    compileSpan.arg("workload", key.workload);
    compileSpan.arg("signature", key.signature);
    tagShard(compileSpan, options_.shardId);
    workloads::Workload w = workloads::buildWorkload(key.workload, config);
    return std::make_unique<runtime::Pipeline>(runtime::PipelineKind::Eager,
                                               *w.graph, options_.pipeline);
  });
  if (lookup.error != nullptr) {
    rejectRequest(std::move(request), RejectReason::CompileFailed,
                  "specialized compile failed (" +
                      describeError(compileError) +
                      ") and so did the fallback (" +
                      describeError(lookup.error) + ")");
    return;
  }

  const auto runStart = Clock::now();
  std::vector<runtime::RtValue> outputs;
  try {
    obs::TraceSpan execSpan("serve", "exec");
    execSpan.arg("workload", key.workload);
    execSpan.arg("batch_size", 1);
    tagShard(execSpan, options_.shardId);
    execSpan.arg("fallback", std::int64_t{1});
    std::lock_guard<std::mutex> execLock(lookup.program->execMutex);
    outputs = lookup.program->pipeline->run(request->request.inputs);
  } catch (...) {
    deliverError(std::move(request), std::current_exception());
    return;
  }
  metrics_.recordFallback();

  Response resp;
  resp.outputs = std::move(outputs);
  resp.timing.queueUs = usBetween(request->enqueueTime, execStart);
  resp.timing.compileUs = lookup.wasReady ? 0.0 : lookup.waitUs;
  resp.timing.execUs = usSince(runStart);
  resp.batchedWith = 1;
  resp.cacheHit = false;  // the specialized program was never served
  resp.fallback = true;
  deliver(std::move(request), std::move(resp));
}

void Engine::exportMetrics(obs::MetricsRegistry& registry,
                           std::string_view labels) const {
  exportSnapshot(metrics(), registry, labels);
  metrics_.exportTo(registry, labels);
  // Compiled texpr kernels are shared process-wide (one KernelCache across
  // every shard and cached program), so their counters are NOT shard-scoped:
  // they export only on an unlabeled (whole-process) export — a labeled
  // per-shard export would attribute global state to one shard.
  if (labels.empty()) texpr::jit::KernelCache::instance().exportTo(registry);
}

MetricsSnapshot Engine::metrics() const {
  MetricsSnapshot snap;
  metrics_.fill(snap);
  const ProgramCache::Stats cs = cache_.stats();
  snap.cacheHits = cs.hits;
  snap.cacheMisses = cs.misses;
  snap.cacheEvictions = cs.evictions;
  snap.cacheCompiles = cs.compiles;
  snap.cacheCompileFailures = cs.compileFailures;
  snap.cacheNegativeHits = cs.negativeHits;
  snap.cacheSize = cs.size;
  snap.compileUsTotal = cs.compileUsTotal;
  return snap;
}

}  // namespace tssa::serve
