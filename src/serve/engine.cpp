#include "src/serve/engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"
#include "src/support/error.h"
#include "src/tensor/ops.h"

namespace tssa::serve {

using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// The graph-structure guard of the cache key: config parameters that are
/// baked into the built graph (output buffer shapes, loop trip counts,
/// constant weights) beyond what the input shapes already pin down.
std::string configGuard(const workloads::WorkloadConfig& config) {
  std::ostringstream os;
  os << "|b=" << config.batch << "|t=" << config.seqLen
     << "|seed=" << config.seed;
  return os.str();
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), cache_(options.cacheCapacity) {
  batcher_ = std::make_unique<MicroBatcher>(
      MicroBatcher::Options{options_.maxBatch, options_.maxWaitUs},
      [this](std::vector<std::unique_ptr<PendingRequest>> batch) {
        onBatchDispatched(std::move(batch));
      });
}

Engine::~Engine() {
  batcher_.reset();  // seal + dispatch everything still open, join the timer
  std::unique_lock<std::mutex> lock(drainMutex_);
  drainCv_.wait(lock, [this] { return pendingRequests_.load() == 0; });
}

Session Engine::openSession(std::string id) {
  const std::uint64_t n = ++sessionCounter_;
  if (id.empty()) id = "session-" + std::to_string(n);
  metrics_.recordSessionOpened();
  return Session(this, std::move(id));
}

std::future<Response> Engine::submit(Request request) {
  return submitInternal("anonymous", std::move(request));
}

std::future<Response> Session::submit(Request request) {
  ++*submitted_;
  return engine_->submitInternal(id_, std::move(request));
}

Response Session::infer(Request request) {
  return submit(std::move(request)).get();
}

ProgramKey Engine::keyFor(const Request& request) const {
  ProgramKey key;
  key.workload = request.workload;
  key.kind = options_.kind;
  key.signature =
      workloads::inputSignature(request.inputs) + configGuard(request.config);
  key.options = options_.pipeline;
  return key;
}

std::vector<runtime::RtValue> Engine::defaultInputs(
    const std::string& workload, const workloads::WorkloadConfig& config) {
  return workloads::buildWorkload(workload, config).inputs;
}

std::future<Response> Engine::submitInternal(const std::string& sessionId,
                                             Request request) {
  obs::TraceSpan span("serve", "submit");
  span.arg("workload", request.workload);
  span.arg("session", sessionId);
  // Validation happens here, synchronously: a malformed request throws on
  // the submitting thread rather than poisoning a shared batch later.
  const workloads::BatchTraits& traits =
      workloads::workloadBatchTraits(request.workload);
  if (request.inputs.empty())
    request.inputs = defaultInputs(request.workload, request.config);
  TSSA_CHECK(request.inputs.size() == traits.inputDims.size(),
             "workload '" << request.workload << "' takes "
                          << traits.inputDims.size() << " inputs, got "
                          << request.inputs.size());
  for (std::size_t i = 0; i < request.inputs.size(); ++i) {
    const int d = traits.inputDims[i];
    if (d < 0) continue;
    TSSA_CHECK(request.inputs[i].isTensor(),
               "input " << i << " of '" << request.workload
                        << "' must be a tensor");
    const Tensor& t = request.inputs[i].tensor();
    TSSA_CHECK(t.dim() > d && t.size(d) == request.config.batch,
               "input " << i << " of '" << request.workload
                        << "': batch dim " << d << " must equal config.batch="
                        << request.config.batch);
  }

  auto pending = std::make_unique<PendingRequest>();
  pending->key = keyFor(request);
  pending->request = std::move(request);
  pending->enqueueTime = Clock::now();
  pending->traits = traits;
  pending->sessionId = sessionId;
  std::future<Response> future = pending->promise.get_future();

  ++pendingRequests_;
  batcher_->enqueue(std::move(pending));
  return future;
}

void Engine::onBatchDispatched(
    std::vector<std::unique_ptr<PendingRequest>> batch) {
  // Hand the sealed batch to the shared pool. The wrapper owns the batch;
  // executeBatch itself never throws (errors go through the promises).
  auto shared =
      std::make_shared<std::vector<std::unique_ptr<PendingRequest>>>(
          std::move(batch));
  const int workers = options_.executeConcurrency > 0
                          ? options_.executeConcurrency
                          : runtime::ThreadPool::hardwareThreads();
  runtime::ThreadPool::shared().submit(
      [this, shared] { executeBatch(std::move(*shared)); }, workers);
}

void Engine::drain() {
  batcher_->flush();
  std::unique_lock<std::mutex> lock(drainMutex_);
  drainCv_.wait(lock, [this] { return pendingRequests_.load() == 0; });
}

void Engine::executeBatch(std::vector<std::unique_ptr<PendingRequest>> batch) {
  const auto execStart = Clock::now();
  const int k = static_cast<int>(batch.size());
  const PendingRequest& first = *batch.front();
  const workloads::BatchTraits& traits = first.traits;

  obs::TraceSpan batchSpan("serve", "batch");
  batchSpan.arg("workload", first.request.workload);
  batchSpan.arg("batch_size", k);
  // Queue spans, recorded retroactively: a request's wait is only known once
  // its batch starts. One "X" event per request, anchored at its enqueue
  // time on this (executing) thread's timeline, so queue → exec reads as a
  // contiguous lifecycle in the trace.
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    for (const auto& r : batch) {
      obs::TraceEvent ev;
      ev.name = "queue";
      ev.cat = "serve";
      ev.startNs = tracer.sinceEpochNs(r->enqueueTime);
      ev.durNs = tracer.sinceEpochNs(execStart) - ev.startNs;
      ev.tid = obs::Tracer::currentThreadId();
      ev.args.emplace_back("session", obs::jsonQuote(r->sessionId));
      ev.args.emplace_back("workload",
                           obs::jsonQuote(r->request.workload));
      tracer.record(std::move(ev));
    }
  }

  std::vector<Response> responses;
  std::exception_ptr failure;
  try {
    // 1. Coalesce inputs along the workload's batch dimension. Same program
    //    key ⇒ identical per-request shapes, so rows are uniform.
    const std::int64_t rowsPer = first.request.config.batch;
    const std::int64_t totalRows = rowsPer * k;
    std::vector<runtime::RtValue> inputs;
    inputs.reserve(first.request.inputs.size());
    for (std::size_t i = 0; i < first.request.inputs.size(); ++i) {
      const int d = i < traits.inputDims.size() ? traits.inputDims[i] : -1;
      if (k == 1 || d < 0) {
        inputs.push_back(first.request.inputs[i]);
        continue;
      }
      std::vector<Tensor> parts;
      parts.reserve(batch.size());
      for (const auto& r : batch)
        parts.push_back(r->request.inputs[i].tensor());
      inputs.emplace_back(ops::cat(parts, d));
    }

    // 2. Look up (or compile) the shape-specialized program for the
    //    *batched* shapes. A solo request at batch=N and a coalesced run of
    //    N batch-1 requests share the same program.
    workloads::WorkloadConfig batchedConfig = first.request.config;
    batchedConfig.batch = totalRows;
    ProgramKey key;
    key.workload = first.request.workload;
    key.kind = options_.kind;
    key.signature =
        workloads::inputSignature(inputs) + configGuard(batchedConfig);
    key.options = options_.pipeline;

    ProgramCache::Lookup lookup = cache_.getOrCompile(key, [&] {
      // This span contains the whole shape-specialized compilation — the
      // nested "pipeline" pass spans (functionalize, fusion, parallelize,
      // memory-plan) land inside it on the same thread.
      obs::TraceSpan compileSpan("serve", "compile");
      compileSpan.arg("workload", key.workload);
      compileSpan.arg("signature", key.signature);
      workloads::Workload w =
          workloads::buildWorkload(key.workload, batchedConfig);
      return std::make_unique<runtime::Pipeline>(options_.kind, *w.graph,
                                                 options_.pipeline);
    });

    // 3. Execute. One batch at a time per program; distinct programs (other
    //    shapes / workloads) run concurrently on other pool workers.
    const auto runStart = Clock::now();
    std::vector<runtime::RtValue> outputs;
    runtime::Profiler::MemoryCounters mem;
    {
      obs::TraceSpan execSpan("serve", "exec");
      execSpan.arg("workload", key.workload);
      execSpan.arg("batch_size", k);
      std::lock_guard<std::mutex> execLock(lookup.program->execMutex);
      outputs = lookup.program->pipeline->run(inputs);
      // Read the per-run memory counters while still holding the exec lock:
      // run() resets the profiler, so a concurrent batch on this program
      // could clobber them the moment the lock drops.
      mem = lookup.program->pipeline->profiler().memoryCounters();
    }
    metrics_.recordMemory(mem.freshAllocs, mem.reusedAllocs);

    // 4. De-interleave: row block j of every output belongs to request j.
    const double execUs = usSince(runStart);
    for (int j = 0; j < k; ++j) {
      std::vector<runtime::RtValue> mine;
      mine.reserve(outputs.size());
      if (k == 1) {
        mine = outputs;
      } else {
        for (std::size_t o = 0; o < outputs.size(); ++o) {
          const int d = o < traits.outputDims.size() ? traits.outputDims[o] : -1;
          TSSA_CHECK(d >= 0 && outputs[o].isTensor(),
                     "workload '" << key.workload
                                  << "' output " << o
                                  << " cannot be de-interleaved");
          mine.emplace_back(outputs[o]
                                .tensor()
                                .narrow(d, j * rowsPer, rowsPer)
                                .clone());
        }
      }
      Response resp;
      resp.outputs = std::move(mine);
      resp.timing.queueUs = std::chrono::duration<double, std::micro>(
                                execStart - batch[static_cast<std::size_t>(j)]
                                                ->enqueueTime)
                                .count();
      // Every request in the batch waited out the same compile (or none):
      // compileUs is that shared wait, zero when the program was already
      // ready. cacheHit means "paid no compile", so a single-flight waiter
      // that blocked for the full compile reports a miss, not a hit.
      resp.timing.compileUs = lookup.wasReady ? 0.0 : lookup.waitUs;
      resp.timing.execUs = execUs;
      resp.batchedWith = k;
      resp.cacheHit = lookup.wasReady;
      responses.push_back(std::move(resp));
    }
  } catch (...) {
    failure = std::current_exception();
  }

  // Close the batch span before the promises are fulfilled: the moment a
  // client's future resolves, main may tear everything down and export the
  // trace, and a still-open RAII span would be missing from it. Delivery
  // itself is microseconds and not worth a span.
  batchSpan.finish();

  // Deliver outside the try: each promise is touched exactly once.
  metrics_.recordBatch(k);
  if (failure != nullptr) {
    metrics_.recordError(k);
    for (auto& r : batch) r->promise.set_exception(failure);
  } else {
    for (int j = 0; j < k; ++j) {
      metrics_.recordRequest(responses[static_cast<std::size_t>(j)].timing);
      batch[static_cast<std::size_t>(j)]->promise.set_value(
          std::move(responses[static_cast<std::size_t>(j)]));
    }
  }

  {
    // Notify under the mutex: the destructor destroys drainCv_ as soon as
    // its wait observes pending == 0, so the notify must complete before
    // the waiter can reacquire the lock and return.
    std::lock_guard<std::mutex> lock(drainMutex_);
    pendingRequests_ -= static_cast<std::uint64_t>(k);
    drainCv_.notify_all();
  }
}

void Engine::exportMetrics(obs::MetricsRegistry& registry) const {
  exportSnapshot(metrics(), registry);
  metrics_.exportTo(registry);
}

MetricsSnapshot Engine::metrics() const {
  MetricsSnapshot snap;
  metrics_.fill(snap);
  const ProgramCache::Stats cs = cache_.stats();
  snap.cacheHits = cs.hits;
  snap.cacheMisses = cs.misses;
  snap.cacheEvictions = cs.evictions;
  snap.cacheCompiles = cs.compiles;
  snap.cacheSize = cs.size;
  snap.compileUsTotal = cs.compileUsTotal;
  return snap;
}

}  // namespace tssa::serve
