// Engine-wide serving metrics: per-request latency decomposition (queue /
// compile / exec), latency percentiles, throughput, and micro-batch
// occupancy. Cache statistics live in ProgramCache and are merged into the
// snapshot by the Engine.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace tssa::serve {

/// Why the engine refused to serve a request. Delivered to the client as a
/// typed RejectedError (src/serve/request.h) on the submit future, and
/// counted per reason in `tssa_serve_rejected_total{reason=...}`.
/// DESIGN.md §10 has the full request state machine.
enum class RejectReason : int {
  Deadline = 0,    ///< the request's deadline expired before execution
  QueueFull,       ///< admission control: engine or session at capacity
  ShuttingDown,    ///< submitted after Engine::shutdown() began
  CompileFailed,   ///< program compile failed and the fallback path did too
  KvExhausted,     ///< decode session shed: KV cache could not reserve pages
  BadRequest,      ///< malformed at submit: unknown workload, bad inputs
};
inline constexpr int kNumRejectReasons = 6;

/// Stable metric-label name: "deadline", "queue_full", "shutting_down",
/// "compile_failed", "kv_exhausted", "bad_request".
std::string_view rejectReasonName(RejectReason reason);

/// Latency decomposition of one served request, all in microseconds.
struct RequestTiming {
  double queueUs = 0;    ///< submit → the batch actually starts executing
  /// Time this request spent blocked on program compilation (its own batch's
  /// compile or a concurrent single-flight one); 0 on a cache hit. Shared by
  /// every request of a coalesced batch — the engine-wide compile wall-clock
  /// is MetricsSnapshot::compileUsTotal, which counts each compile once.
  double compileUs = 0;
  double execUs = 0;     ///< batched run + response de-interleave
  double totalUs() const { return queueUs + compileUs + execUs; }
};

struct LatencyStats {
  double p50Us = 0;
  double p95Us = 0;
  double p99Us = 0;
  double meanUs = 0;
  double maxUs = 0;
};

/// Percentile semantics (nearest-rank) live in obs::Histogram; this just
/// renames the fields into the serving vocabulary.
LatencyStats toLatencyStats(const obs::HistogramStats& stats);

/// Point-in-time view of everything the engine measures.
struct MetricsSnapshot {
  std::uint64_t requests = 0;  ///< completed successfully
  std::uint64_t errors = 0;    ///< completed with an exception
  std::uint64_t batches = 0;   ///< executed micro-batches
  double meanBatchSize = 0;    ///< requests per executed batch
  LatencyStats total;          ///< end-to-end request latency
  LatencyStats queue;          ///< queueing component only
  LatencyStats exec;           ///< execution component only
  double throughputRps = 0;    ///< completions / wall-clock completion span

  // Program-cache counters (filled by the Engine from ProgramCache::stats).
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
  std::uint64_t cacheCompiles = 0;
  std::uint64_t cacheCompileFailures = 0;  ///< compiles that threw
  std::uint64_t cacheNegativeHits = 0;  ///< lookups served a cached failure
  std::size_t cacheSize = 0;
  double compileUsTotal = 0;
  double cacheHitRate() const {
    const std::uint64_t n = cacheHits + cacheMisses;
    return n == 0 ? 0.0 : static_cast<double>(cacheHits) / static_cast<double>(n);
  }

  std::uint64_t sessionsOpened = 0;

  // Robustness counters (DESIGN.md §10). `rejected[r]` counts requests
  // refused with RejectReason r — load shedding and deadline misses are
  // first-class outcomes, not errors. `fallbackRequests` counts requests
  // served through the reference (eager, unbatched) pipeline after their
  // specialized compile failed; `decoalescedBatches` counts micro-batches
  // that were re-executed request-by-request after the batched run threw,
  // so one poisoned request cannot fail its co-batched peers.
  std::uint64_t rejected[kNumRejectReasons] = {};
  std::uint64_t fallbackRequests = 0;
  std::uint64_t decoalescedBatches = 0;
  std::uint64_t rejectedTotal() const {
    std::uint64_t n = 0;
    for (int r = 0; r < kNumRejectReasons; ++r) n += rejected[r];
    return n;
  }
  std::uint64_t rejectedFor(RejectReason reason) const {
    return rejected[static_cast<int>(reason)];
  }

  // Simulated device-busy time accumulated across executed batches: the sum
  // of each run's Profiler::simTimeUs(), i.e. total occupancy of the
  // engine's modelled device (DESIGN.md §1 — kernels are costed analytically,
  // numerics run on host). Each Engine models ONE device, so in a sharded
  // tier this is the per-device makespan contribution: deterministic,
  // machine-independent, and the honest basis for shard-scaling claims on
  // hosts whose physical core count cannot reflect N simulated devices.
  // Fallback (reference-pipeline) executions are not counted — they bypass
  // the device model's specialized path.
  double simBusyUs = 0;

  // Memory-planner counters accumulated across executed batches (read from
  // each program's Profiler after its run): arena allocations served fresh
  // from the heap vs. recycled from the pool. A warm engine should show the
  // reuse rate approaching 1 — cached programs keep their arenas across
  // requests.
  std::uint64_t arenaFreshAllocs = 0;
  std::uint64_t arenaReusedAllocs = 0;
  double arenaReuseRate() const {
    const std::uint64_t n = arenaFreshAllocs + arenaReusedAllocs;
    return n == 0 ? 0.0
                  : static_cast<double>(arenaReusedAllocs) /
                        static_cast<double>(n);
  }

  /// One-line human-readable summary (used by bench/serve_throughput).
  std::string toString() const;
};

/// Exports the snapshot's scalar counters/gauges into `registry` under the
/// canonical `tssa_serve_*` / `tssa_arena_*` names (DESIGN.md §9). The
/// latency histograms need the raw samples and are exported by
/// MetricsCollector::exportTo / Engine::exportMetrics.
///
/// `labels` is a rendered Prometheus label set (e.g. `shard="0"`) spliced
/// into every exported name via obs::withLabels. Two exporters writing the
/// same registry MUST use disjoint label sets: the canonical names are
/// engine-scoped, so two unlabeled Engines would silently overwrite each
/// other's counterSet values (the multi-shard collision DESIGN.md §14 fixes).
void exportSnapshot(const MetricsSnapshot& snapshot,
                    obs::MetricsRegistry& registry,
                    std::string_view labels = {});

/// Thread-safe recorder. All recording methods may be called from pool
/// workers; snapshots may be taken concurrently. Latency aggregation
/// (percentiles, mean, max) is delegated to obs::Histogram — this class
/// only owns the serving-specific scalar counters.
class MetricsCollector {
 public:
  /// Records one completed request and its batch context.
  void recordRequest(const RequestTiming& timing);
  /// Records one executed micro-batch of `size` requests.
  void recordBatch(int size);
  void recordError(int count);
  void recordSessionOpened();
  /// Records one rejected request (admission shed, deadline miss, ...).
  void recordRejected(RejectReason reason);
  /// Records one request served via the reference (fallback) pipeline.
  void recordFallback();
  /// Records one batch re-executed de-coalesced after its batched run threw.
  void recordDecoalesced();
  /// Records one executed batch's arena traffic (fresh vs. reused
  /// allocations, from the program profiler's memory counters).
  void recordMemory(std::int64_t freshAllocs, std::int64_t reusedAllocs);
  /// Records one executed batch's simulated device time (the program
  /// profiler's simTimeUs, read under the same exec lock as the memory
  /// counters — run() resets the profiler).
  void recordSimBusy(double simUs);

  /// Fills the latency / throughput / batching part of `out` (the engine
  /// adds cache stats on top).
  void fill(MetricsSnapshot& out) const;

  /// Copies the latency samples into `registry` as
  /// tssa_serve_{request,queue,exec}_latency_us histograms, with `labels`
  /// spliced into the names (see exportSnapshot). Histograms accumulate, so
  /// several collectors exporting *unlabeled* into one registry merge their
  /// samples — that is how a Router builds the tier-wide latency view.
  void exportTo(obs::MetricsRegistry& registry,
                std::string_view labels = {}) const;

 private:
  obs::Histogram totalUs_;
  obs::Histogram queueUs_;
  obs::Histogram execUs_;
  mutable std::mutex mutex_;  ///< guards the scalars + completion span below
  std::uint64_t errors_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batchedRequests_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t arenaFresh_ = 0;
  std::uint64_t arenaReused_ = 0;
  double simBusyUs_ = 0;
  std::uint64_t rejected_[kNumRejectReasons] = {};
  std::uint64_t fallbacks_ = 0;
  std::uint64_t decoalesced_ = 0;
  bool haveSpan_ = false;
  std::chrono::steady_clock::time_point firstComplete_;
  std::chrono::steady_clock::time_point lastComplete_;
};

}  // namespace tssa::serve
