// Sharded serving tier: a Router fronting N in-process Engine shards.
//
// One Engine on one pool is a single failure and capacity domain; the router
// turns the same machine (or, eventually, a fleet) into N isolated shards,
// each with its own ThreadPool, ProgramCache, and arenas. Placement is
// *cache-affine*: a request is routed by consistent hash of the program key
// Engine::keyFor resolves it to, so every request that would share a
// compiled program lands on the same shard and the tier-wide compile count
// stays exactly what one engine would pay — shard count scales throughput,
// not compilation (bench/shard_scaling.cpp gates this in CI). Decode
// sessions route the same way through the one polymorphic decode_step key.
//
// Overload and restarts are first-class (DESIGN.md §14):
//   * shed-and-retry — when the home shard's bounded admission sheds with
//     QueueFull, the router retries the next *distinct* shard in ring order,
//     up to maxRetryHops; the retried shard compiles its own copy of the
//     program, trading a compile for availability. Rejections are detected
//     synchronously: the engine fulfills a shed request's future before
//     submit returns, so a ready future at submit-return is inspected and
//     everything still pending belongs to the shard that admitted it.
//   * rolling restarts — drainShard() flips a shard Serving → Draining
//     (routing skips it without consuming retry budget), waits out its
//     in-flight requests via Engine::shutdown, and parks it Drained;
//     restartShard() replaces the engine with a fresh one (empty cache, warm
//     pool) and resumes routing to it.
//
// Observability: every shard exports its tssa_serve_* / tssa_decode_* series
// under a `shard="i"` label into one shared MetricsRegistry (the labels are
// what keeps N engines from overwriting each other's canonical names), the
// router adds an unlabeled merged view on top, and every trace span an
// engine emits carries the shard id — one Chrome trace shows the whole tier.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/serve/decode.h"
#include "src/serve/engine.h"

namespace tssa::serve {

/// Consistent-hash ring with virtual nodes. Deterministic by construction:
/// placement depends only on the key bytes and the member shard ids (FNV-1a
/// + splitmix64, never std::hash), so the same key maps to the same shard
/// across runs, builds, and platforms — routing decisions are reproducible
/// and benchable. Virtual nodes (vnodesPerShard ring points per shard) keep
/// the load split near-uniform; adding or removing one shard moves only the
/// keys whose arc changed hands, ~K/N of them (tests/router_test.cpp pins
/// both properties).
///
/// Not thread-safe for mutation; the Router only mutates membership during
/// construction. Reads are const and safe to share.
class HashRing {
 public:
  explicit HashRing(int shards = 0, int vnodesPerShard = 64);

  void addShard(int shard);
  void removeShard(int shard);
  int shardCount() const { return static_cast<int>(shardIds_.size()); }
  const std::vector<int>& shardIds() const { return shardIds_; }

  /// The key's home shard: the first ring point at or clockwise of
  /// hashKey(key). Requires a non-empty ring.
  int shardFor(std::string_view key) const;

  /// The first `count` *distinct* shards in ring order starting at the
  /// key's home — the shed-and-retry preference list. Deterministic for a
  /// given membership; always starts with shardFor(key).
  std::vector<int> preferenceFor(std::string_view key, int count) const;

  /// Stable 64-bit key hash (FNV-1a over the bytes, splitmix64-finalized).
  static std::uint64_t hashKey(std::string_view key);

 private:
  int vnodesPerShard_;
  std::vector<int> shardIds_;  ///< sorted member ids
  /// Ring points (hash, shard), sorted by hash.
  std::vector<std::pair<std::uint64_t, int>> points_;

  void rebuild();
};

struct RouterOptions {
  int shards = 2;
  int vnodesPerShard = 64;
  /// Shed-and-retry budget: how many *additional* ring positions a request
  /// may try after its home shard sheds it with QueueFull (or is found
  /// shutting down mid-flight). 0 disables retries — required when the
  /// tier-wide compile count must stay deterministic, because a retried
  /// request compiles its program on a non-home shard.
  int maxRetryHops = 1;
  /// Template for every shard's engine. executePool and shardId are
  /// overwritten per shard; everything else (pipeline, cache capacity,
  /// admission bounds, batching) applies to each shard individually.
  EngineOptions engine{};
  /// When true each shard also hosts a DecodeScheduler (built from
  /// `decode`, with executePool/shardId overwritten like the engine's).
  bool enableDecode = false;
  DecodeOptions decode{};
};

/// The shard tier front door. Thread-safe: submit / submitDecode / metrics
/// may be called from any thread; drainShard / restartShard are control-
/// plane calls that may run concurrently with traffic.
class Router {
 public:
  enum class ShardState : int { Serving = 0, Draining, Drained };

  struct Stats {
    std::uint64_t routed = 0;        ///< one-shot requests routed
    std::uint64_t decodeRouted = 0;  ///< decode sessions routed
    std::uint64_t retryHops = 0;     ///< shed-and-retry hops taken
    std::uint64_t drainSkips = 0;    ///< candidates skipped for not Serving
    std::uint64_t exhausted = 0;     ///< requests that ran out of shards/hops
    std::uint64_t drains = 0;        ///< drainShard transitions completed
    std::uint64_t restarts = 0;      ///< restartShard transitions completed
  };

  explicit Router(RouterOptions options);
  /// Shuts every shard down (outstanding futures are fulfilled first).
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes to the home shard of the request's program key; sheds-and-
  /// retries per RouterOptions::maxRetryHops. Futures behave exactly like
  /// Engine::submit's (RejectedError on refusal, tssa::Error on execution
  /// failure); BadRequest still throws synchronously.
  std::future<Response> submit(Request request);

  /// Routes a decode session to the decode_step key's home shard (all
  /// sessions share the one polymorphic step program, so they share a
  /// home). Requires RouterOptions::enableDecode.
  std::future<DecodeResult> submitDecode(DecodeRequest request);

  /// The shard submit(request) would try first.
  int homeShard(const Request& request) const;
  /// The home shard of every decode session.
  int decodeHomeShard() const;

  /// Serving → Draining (routing skips it) → engine drained → Drained.
  /// Blocks until the shard's in-flight requests have all been delivered.
  /// No-op unless the shard is currently Serving.
  void drainShard(int shard);
  /// Drained → Serving with a fresh Engine (and DecodeScheduler, when
  /// enabled): empty program cache, reset metrics, same warm pool. No-op
  /// unless the shard is currently Drained.
  void restartShard(int shard);
  ShardState shardState(int shard) const;

  /// Blocks until every in-flight request on every shard has completed.
  void drain();
  /// Drains and stops every shard; subsequent submits are rejected.
  void shutdown();

  int shards() const { return static_cast<int>(shards_.size()); }
  const HashRing& ring() const { return ring_; }
  Stats stats() const;

  /// Per-shard engine snapshots, indexed by shard id. A Drained shard
  /// reports the snapshot of its (stopped) engine.
  std::vector<MetricsSnapshot> shardMetrics() const;
  std::vector<DecodeMetricsSnapshot> shardDecodeMetrics() const;
  /// Tier-wide aggregate: scalar counters summed across shards, latency
  /// percentiles recomputed over the union of every shard's samples.
  /// throughputRps is the sum of per-shard rates (an approximation — the
  /// bench derives tier throughput from wall clock instead). Restarted
  /// shards report their fresh engine only.
  MetricsSnapshot mergedMetrics() const;

  /// Exports the whole tier into `registry`: every shard's engine (and
  /// decode scheduler) under `shard="i"` labels, plus the unlabeled merged
  /// serve aggregate. The process-wide texpr KernelCache counters are
  /// exported once, unlabeled.
  void exportMetrics(obs::MetricsRegistry& registry) const;

  /// Direct shard access for tests and benches (engine lifetime is only
  /// guaranteed while the shard is not concurrently restarted).
  Engine& engine(int shard);
  DecodeScheduler* decode(int shard);

 private:
  struct Shard {
    /// Declared before the engine so batches still executing during engine
    /// teardown keep a live pool.
    std::unique_ptr<runtime::ThreadPool> pool;
    std::shared_ptr<Engine> engine;
    std::unique_ptr<DecodeScheduler> decode;
    ShardState state = ShardState::Serving;
  };

  /// The ring key for a one-shot request (its program key, rendered).
  std::string routingKey(const Request& request) const;

  /// Snapshot a shard's engine (and state) under the lock.
  std::shared_ptr<Engine> engineIfServing(int shard);
  std::shared_ptr<Engine> engineOf(int shard) const;

  EngineOptions engineOptionsFor(int shard, runtime::ThreadPool* pool) const;
  DecodeOptions decodeOptionsFor(int shard, runtime::ThreadPool* pool) const;

  const RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Guards every shard's engine/decode pointers and state transitions.
  mutable std::mutex mutex_;
  std::string decodeKey_;  ///< ring key shared by every decode session

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> decodeRouted_{0};
  std::atomic<std::uint64_t> retryHops_{0};
  std::atomic<std::uint64_t> drainSkips_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> restarts_{0};
};

}  // namespace tssa::serve
