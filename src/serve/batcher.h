// Dynamic micro-batcher.
//
// Requests for the same program key arriving within a bounded window are
// coalesced into one batched execution along the workload's batch dimension.
// A batch is sealed and dispatched as soon as it reaches `maxBatch` requests
// or its window (`maxWaitUs`, counted from the first request that opened it)
// expires — the classic throughput/latency trade of serving stacks. The
// batcher only groups; executing a sealed batch is the dispatch callback's
// job (the Engine submits it to the shared runtime ThreadPool).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/serve/request.h"

namespace tssa::serve {

class MicroBatcher {
 public:
  struct Options {
    int maxBatch = 8;            ///< seal when this many requests coalesced
    std::int64_t maxWaitUs = 200;  ///< seal when the window expires
  };

  /// Called with every sealed batch (≥ 1 request, all same program key and
  /// compatible shared inputs). May run on the submitting thread (batch full
  /// or batching disabled) or on the batcher's timer thread (window expiry).
  using DispatchFn =
      std::function<void(std::vector<std::unique_ptr<PendingRequest>>)>;

  MicroBatcher(Options options, DispatchFn dispatch);
  /// Seals and dispatches everything still open, then joins the timer.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Adds a request to the open batch for its key (sealing first when the
  /// request is incompatible with it), or dispatches immediately when
  /// batching is disabled (maxBatch <= 1 or maxWaitUs <= 0) or the workload
  /// is not batchable.
  void enqueue(std::unique_ptr<PendingRequest> request);

  /// Seals and dispatches all open batches now (used by Engine::drain).
  void flush();

 private:
  struct OpenBatch {
    std::vector<std::unique_ptr<PendingRequest>> requests;
    std::chrono::steady_clock::time_point deadline;
  };

  /// Two requests may share a batch iff their shared (non-batched) inputs
  /// agree; batched tensor inputs are free to differ per request.
  static bool compatible(const PendingRequest& a, const PendingRequest& b);

  void timerLoop();

  const Options options_;
  const DispatchFn dispatch_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::map<std::string, OpenBatch> open_;  ///< keyed by ProgramKey::toString
  bool stopping_ = false;
  std::thread timer_;
};

}  // namespace tssa::serve
