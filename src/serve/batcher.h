// Dynamic micro-batcher.
//
// Requests for the same program key arriving within a bounded window are
// coalesced into one batched execution along the workload's batch dimension.
// A batch is sealed and dispatched as soon as it reaches `maxBatch` requests
// or its window (`maxWaitUs`, counted from the first request that opened it)
// expires — the classic throughput/latency trade of serving stacks. Requests
// carrying deadlines tighten the seal: the batch seals no later than the
// point where half the tightest member's remaining budget is spent, keeping
// the other half for execution. The batcher only groups; executing a sealed
// batch is the dispatch callback's job (the Engine submits it to the shared
// runtime ThreadPool).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/serve/request.h"

namespace tssa::serve {

class FaultInjector;

/// A batch leaving the batcher: ≥ 1 request, all same program key and
/// compatible shared inputs. `virtualDelayUs` is the fault-injected stall
/// between seal and execution (0 normally); the engine's pre-execution
/// deadline check treats seal time + this delay as "now".
struct SealedBatch {
  std::vector<std::unique_ptr<PendingRequest>> requests;
  std::int64_t virtualDelayUs = 0;
  const char* reason = "solo";  ///< why the batch sealed (for traces/tests)
};

class MicroBatcher {
 public:
  struct Options {
    int maxBatch = 8;            ///< seal when this many requests coalesced
    std::int64_t maxWaitUs = 200;  ///< seal when the window expires
    /// Optional fault seam: every seal is reported to it and may pick up a
    /// virtual delay (EngineOptions::faultInjector). Not owned.
    FaultInjector* injector = nullptr;
  };

  /// Called with every sealed batch. May run on the submitting thread (batch
  /// full, deadline-tight, or batching disabled) or on the batcher's timer
  /// thread (window expiry).
  using DispatchFn = std::function<void(SealedBatch)>;

  MicroBatcher(Options options, DispatchFn dispatch);
  /// Seals and dispatches everything still open, then joins the timer.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Adds a request to the open batch for its key (sealing first when the
  /// request is incompatible with it), or dispatches immediately when
  /// batching is disabled (maxBatch <= 1 or maxWaitUs <= 0) or the workload
  /// is not batchable. A request carrying tuner overrides
  /// (PendingRequest::maxBatchOverride / maxWaitUsOverride) is grouped under
  /// those values instead of the engine-wide defaults. A request with a deadline pulls the batch's seal time
  /// forward to now + (deadline - now) / 2; the timer thread is woken so a
  /// tighter seal time shortens its current wait.
  void enqueue(std::unique_ptr<PendingRequest> request);

  /// Seals and dispatches all open batches now (used by Engine::drain).
  void flush();

 private:
  struct OpenBatch {
    std::vector<std::unique_ptr<PendingRequest>> requests;
    std::chrono::steady_clock::time_point sealAt;
  };

  /// Two requests may share a batch iff their shared (non-batched) inputs
  /// agree and their batched tensor inputs are concatenable along the batch
  /// dim (equal rank/dtype and equal extents everywhere else — polymorphic
  /// keys admit ragged batch extents, nothing more).
  static bool compatible(const PendingRequest& a, const PendingRequest& b);

  void timerLoop();

  const Options options_;
  const DispatchFn dispatch_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::map<std::string, OpenBatch> open_;  ///< keyed by ProgramKey::toString
  bool stopping_ = false;
  std::thread timer_;
};

}  // namespace tssa::serve
