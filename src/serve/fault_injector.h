// Deterministic fault-injection seam for the serving engine.
//
// Production serving behaviour under failure — compile errors, kernel
// exceptions mid-batch, batches stalling between seal and execution — is
// impossible to exercise reliably from the outside: the interesting states
// are reached through timing. The FaultInjector turns them into scripted,
// repeatable events. It is compiled in always (no #ifdef test builds) and
// enabled per Engine via EngineOptions::faultInjector; a null injector costs
// one pointer check on the affected paths and nothing on the request path.
//
// The injector counts three engine-side event streams and fires armed
// faults by 1-based occurrence index:
//   * compiles     — every shape-specialized compile the engine starts
//                    (fallback compiles are deliberately NOT routed through
//                    the injector: the recovery path must stay recoverable);
//   * runs/launches — every pipeline execution the engine performs, with a
//                    per-run kernel-launch counter (Profiler launch probe);
//   * batch seals  — every batch the MicroBatcher hands to dispatch.
//
// Determinism contract: compile and seal indices are engine-global and
// deterministic whenever the traffic is (tests submit from one thread and
// bound batches with maxBatch). Kernel-launch faults are addressed as
// (run, launch); run indices are deterministic when pipeline executions do
// not overlap, which the fault tests arrange (one batch in flight,
// pipeline.threads == 1). See tests/serve_faults_test.cpp.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/support/error.h"

namespace tssa::serve {

/// The exception every injected fault throws: a tssa::Error subclass so it
/// travels every path a real failure would, but identifiable in tests.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what)
      : Error("injected fault: " + what, "fault_injector", 0) {}
};

class FaultInjector {
 public:
  // ---- Arming (thread-safe; may be called while the engine runs) ----------

  /// Throw InjectedFault from the nth compile the engine starts (1-based).
  void failNthCompile(std::uint64_t n);
  /// Throw InjectedFault from every compile whose program-key string
  /// contains `substring` (e.g. a workload name) — models a persistently
  /// broken program; the engine's negative cache + fallback must absorb it.
  void failCompilesForKeyContaining(std::string substring);
  /// Throw InjectedFault from the `launch`-th kernel launch (1-based) of the
  /// `run`-th pipeline execution the engine performs (1-based).
  void throwOnKernelLaunch(std::uint64_t run, std::uint64_t launch);
  /// Pretend the nth sealed batch (1-based) spent `virtualUs` extra between
  /// seal and execution: the engine's pre-execution deadline check uses
  /// seal time + this delay as "now". Virtual, not wall-clock — deadline
  /// expiry in the execution queue becomes testable without sleeps.
  void delayNthBatchSeal(std::uint64_t n, std::int64_t virtualUs);

  // ---- Observation (for test assertions) ----------------------------------

  std::uint64_t compilesSeen() const;
  std::uint64_t runsSeen() const;
  std::uint64_t sealsSeen() const;
  std::uint64_t faultsInjected() const;

  // ---- Engine-facing hooks ------------------------------------------------

  /// Called at the start of every engine compile; throws if armed.
  void onCompile(const std::string& keyString);
  /// Called before every pipeline execution; establishes the current run
  /// index for onKernelLaunch and returns it (1-based).
  std::uint64_t beginRun();
  /// Called from the Profiler launch probe on every kernel launch of an
  /// engine-run pipeline; throws if (currentRun, launchInRun) is armed.
  void onKernelLaunch();
  /// Called by the MicroBatcher on every seal; returns the armed virtual
  /// delay for this seal (0 normally).
  std::int64_t onBatchSeal();

 private:
  mutable std::mutex mutex_;
  std::uint64_t compiles_ = 0;
  std::uint64_t runs_ = 0;
  std::uint64_t seals_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t launchInRun_ = 0;
  std::set<std::uint64_t> failCompileAt_;
  std::vector<std::string> failCompileKeySubstrings_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> failLaunchAt_;
  std::vector<std::pair<std::uint64_t, std::int64_t>> sealDelays_;
};

}  // namespace tssa::serve
