#include "src/serve/decode.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "src/obs/trace.h"
#include "src/support/error.h"
#include "src/tensor/random.h"

namespace tssa::serve {

using Clock = std::chrono::steady_clock;
using workloads::kDecodeDim;

namespace {

/// Large enough that exp(score - max) underflows to exactly 0.0f for every
/// padded context row, small enough to stay finite through the additions.
constexpr float kMaskNegative = -1e30f;

double usBetween(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

/// A session inside the active set. `tokens` counts KV entries appended so
/// far; `step` is the index of the next step to execute: steps [0, P) feed
/// prompt rows, step s >= P-1 emits generated token s-(P-1), and the session
/// finishes after step P+G-2 (total steps = promptLen + generate - 1).
struct DecodeScheduler::ActiveSession {
  std::string id;
  Tensor prompt;
  std::int64_t promptLen = 0;
  std::int64_t generate = 0;
  std::int64_t step = 0;
  std::int64_t batchedSteps = 0;
  bool joined = false;  ///< admitted into the active set (KV reserved)
  Tensor x;  ///< input token of the next step ([1, kDecodeDim])
  std::vector<Tensor> generated;
  Clock::time_point submitTime;
  Clock::time_point admitTime;
  Clock::time_point deadline = kNoDeadline;
  std::promise<DecodeResult> promise;

  std::int64_t totalSteps() const { return promptLen + generate - 1; }
};

struct DecodeScheduler::Arrival {
  std::unique_ptr<ActiveSession> session;
  std::int64_t totalTokens = 0;  ///< KV tokens the session will append
};

DecodeScheduler::DecodeScheduler(DecodeOptions options)
    : options_(std::move(options)),
      kv_(KvCacheOptions{.pageTokens = options_.kvPageTokens,
                         .tokenFloats = 2 * kDecodeDim,
                         .maxPages = options_.kvMaxPages}),
      engine_([&] {
        EngineOptions eo;
        eo.kind = options_.kind;
        eo.pipeline = options_.pipeline;
        eo.cacheCapacity = options_.cacheCapacity;
        eo.maxBatch = options_.maxStepBatch;
        // Step batches are sealed by the per-iteration drain(), never by the
        // window; a wide window keeps the batcher timer out of the picture
        // (and batch composition deterministic under deterministic traffic).
        eo.maxWaitUs = 1'000'000;
        eo.executePool = options_.executePool;
        eo.shardId = options_.shardId;
        return eo;
      }()) {
  TSSA_CHECK(!options_.ctxBuckets.empty(), "ctxBuckets must not be empty");
  TSSA_CHECK(std::is_sorted(options_.ctxBuckets.begin(),
                            options_.ctxBuckets.end()),
             "ctxBuckets must be ascending");
  TSSA_CHECK(options_.maxStepBatch >= 1, "maxStepBatch must be >= 1");
  TSSA_CHECK(options_.maxActiveSessions >= 1,
             "maxActiveSessions must be >= 1");
  thread_ = std::thread([this] { loop(); });
}

DecodeScheduler::~DecodeScheduler() {
  shutdown();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;  // shutdown already set it; keep the invariant obvious
  }
  wake_.notify_all();
  thread_.join();
}

Tensor DecodeScheduler::randomPrompt(std::int64_t len, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal({len, kDecodeDim}, 0.0, 0.5);
}

std::int64_t DecodeScheduler::bucketFor(std::int64_t tokens) const {
  for (std::int64_t bucket : options_.ctxBuckets)
    if (bucket >= tokens) return bucket;
  TSSA_THROW("context of " << tokens
                           << " tokens exceeds the largest bucket "
                           << options_.ctxBuckets.back());
}

std::future<DecodeResult> DecodeScheduler::submit(DecodeRequest request) {
  TSSA_CHECK(request.prompt.defined() && request.prompt.dim() == 2 &&
                 request.prompt.size(1) == kDecodeDim &&
                 request.prompt.dtype() == DType::Float32,
             "prompt must be a float32 [len, " << kDecodeDim << "] tensor");
  TSSA_CHECK(request.prompt.size(0) >= 1, "prompt must hold >= 1 token");
  TSSA_CHECK(request.generate >= 1, "generate must be >= 1");

  auto session = std::make_unique<ActiveSession>();
  session->promptLen = request.prompt.size(0);
  session->generate = request.generate;
  session->prompt = request.prompt.contiguous();
  session->submitTime = Clock::now();
  session->deadline = absoluteDeadline(session->submitTime,
                                       request.deadlineUs);
  session->id = request.id.empty()
                    ? "decode-" + std::to_string(++sessionCounter_)
                    : std::move(request.id);
  std::future<DecodeResult> future = session->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(metricsMutex_);
    ++submitted_;
  }

  auto rejectNow = [&](RejectReason reason, const std::string& detail) {
    {
      std::lock_guard<std::mutex> lock(metricsMutex_);
      ++rejected_[static_cast<int>(reason)];
    }
    session->promise.set_exception(
        std::make_exception_ptr(RejectedError(reason, detail)));
    return std::move(future);
  };

  // The last step reads totalSteps-1 context tokens; a session that cannot
  // fit the largest bucket (or the whole KV cache) can never finish, so it
  // is shed here rather than admitted into certain failure.
  auto arrival = std::make_unique<Arrival>();
  arrival->totalTokens = session->totalSteps();
  if (session->totalSteps() - 1 > options_.ctxBuckets.back())
    return rejectNow(RejectReason::KvExhausted,
                     "session needs " +
                         std::to_string(session->totalSteps() - 1) +
                         " context tokens; largest bucket is " +
                         std::to_string(options_.ctxBuckets.back()));
  if (options_.kvMaxPages > 0 &&
      kv_.pagesNeededFor(arrival->totalTokens) > options_.kvMaxPages)
    return rejectNow(RejectReason::KvExhausted,
                     "session needs more KV pages than the cache holds");
  if (session->deadline <= session->submitTime)
    return rejectNow(RejectReason::Deadline,
                     "deadline expired before admission");

  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      return rejectNow(RejectReason::ShuttingDown,
                       "decode scheduler is shutting down");
    if (options_.maxQueuedSessions > 0 &&
        arrivals_.size() >= options_.maxQueuedSessions)
      return rejectNow(RejectReason::QueueFull,
                       "decode admission queue full (maxQueuedSessions=" +
                           std::to_string(options_.maxQueuedSessions) + ")");
    ++pendingSessions_;
    arrival->session = std::move(session);
    arrivals_.push_back(std::move(arrival));
    notify = true;
  }
  if (notify) wake_.notify_all();
  return future;
}

void DecodeScheduler::admitLocked(
    std::vector<std::unique_ptr<ActiveSession>>& admitted) {
  // Run-to-completion baseline: a new wave may only start once the previous
  // wave has fully drained. Continuous batching admits whenever a slot is
  // free — the whole point of iteration-level scheduling.
  if (!options_.continuous && !active_.empty()) return;
  const auto now = Clock::now();
  auto it = arrivals_.begin();
  while (it != arrivals_.end() &&
         active_.size() + admitted.size() < options_.maxActiveSessions) {
    Arrival& arrival = **it;
    std::unique_ptr<ActiveSession> session = std::move(arrival.session);
    const std::int64_t totalTokens = arrival.totalTokens;
    it = arrivals_.erase(it);
    if (stopping_) {
      rejectSession(std::move(session), RejectReason::ShuttingDown,
                    "decode scheduler is shutting down");
      continue;
    }
    if (session->deadline <= now) {
      rejectSession(std::move(session), RejectReason::Deadline,
                    "session deadline expired in the admission queue");
      continue;
    }
    if (!kv_.tryReserve(session->id, totalTokens)) {
      // Shedding, not waiting: KvExhausted is a typed outcome the client
      // retries against; holding the session would deadlock a full cache
      // whose sessions never finish (e.g. all waiting on each other).
      rejectSession(std::move(session), RejectReason::KvExhausted,
                    "KV cache cannot reserve " +
                        std::to_string(kv_.pagesNeededFor(totalTokens)) +
                        " pages");
      continue;
    }
    session->admitTime = now;
    session->joined = true;
    session->x = session->prompt.narrow(0, 0, 1);
    {
      std::lock_guard<std::mutex> lock(metricsMutex_);
      ++joins_;
    }
    admitted.push_back(std::move(session));
  }
  // When stopping, everything still queued is shed right away.
  if (stopping_) {
    for (auto& a : arrivals_)
      rejectSession(std::move(a->session), RejectReason::ShuttingDown,
                    "decode scheduler is shutting down");
    arrivals_.clear();
  }
}

void DecodeScheduler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::vector<std::unique_ptr<ActiveSession>> admitted;
    admitLocked(admitted);
    for (auto& s : admitted) active_.push_back(std::move(s));
    if (active_.empty()) {
      if (stopping_ && arrivals_.empty()) return;
      wake_.wait(lock, [this] { return stopping_ || !arrivals_.empty(); });
      continue;
    }
    lock.unlock();
    stepOnce();
    lock.lock();
  }
}

void DecodeScheduler::stepOnce() {
  const auto stepStart = Clock::now();
  obs::TraceSpan span("serve", "decode.step");

  // A session whose remaining deadline ran out does not re-join the batch.
  std::vector<std::unique_ptr<ActiveSession>> live;
  live.reserve(active_.size());
  for (auto& s : active_) {
    if (s->deadline <= stepStart)
      rejectSession(std::move(s), RejectReason::Deadline,
                    "session deadline expired mid-generation");
    else
      live.push_back(std::move(s));
  }
  active_ = std::move(live);
  if (active_.empty()) return;

  // Group by context bucket; same bucket ⇒ same program key ⇒ the inner
  // engine coalesces the steps into one execution (up to maxStepBatch).
  std::map<std::int64_t, std::vector<ActiveSession*>> groups;
  for (auto& s : active_) groups[bucketFor(s->step)].push_back(s.get());

  span.arg("sessions", static_cast<std::int64_t>(active_.size()));
  span.arg("buckets", static_cast<std::int64_t>(groups.size()));

  std::vector<std::pair<ActiveSession*, std::future<Response>>> futures;
  futures.reserve(active_.size());
  for (auto& [bucket, members] : groups) {
    for (ActiveSession* s : members) {
      Tensor kctx = Tensor::zeros({1, bucket, kDecodeDim});
      Tensor vctx = Tensor::zeros({1, bucket, kDecodeDim});
      if (s->step > 0)
        kv_.gather(s->id, bucket, kctx.data<float>(), vctx.data<float>());
      // Additive mask: history slots [0, step) and the current token (slot
      // `bucket`) attend; padded slots get a value large enough that their
      // softmax weight underflows to exactly 0.0f (the bitwise-padding
      // contract in src/workloads/decode.cpp).
      Tensor mask = Tensor::zeros({1, bucket + 1});
      float* m = mask.data<float>();
      for (std::int64_t i = s->step; i < bucket; ++i) m[i] = kMaskNegative;

      Request req;
      req.workload = "decode_step";
      req.config.batch = 1;
      req.config.seqLen = bucket;
      req.config.seed = options_.seed;
      req.inputs.emplace_back(s->x);
      req.inputs.emplace_back(std::move(kctx));
      req.inputs.emplace_back(std::move(vctx));
      req.inputs.emplace_back(std::move(mask));
      // Step requests carry no deadline of their own: the *session* deadline
      // is enforced here, per iteration, and a sealed step batch is always
      // allowed to finish (matching the engine's "executing work is
      // delivered late, not cancelled" rule).
      futures.emplace_back(s, engine_.submit(std::move(req)));
    }
  }

  // Seal and execute everything submitted this iteration immediately — the
  // iteration boundary, not a wait window, is what forms decode batches.
  engine_.drain();

  std::vector<std::unique_ptr<ActiveSession>> survivors;
  survivors.reserve(active_.size());
  // Terminal sessions are collected first and their promises fulfilled only
  // after this iteration's metrics are recorded: drain() already resolved
  // every future, so future.get() returns instantly and a client woken by
  // set_value could otherwise read metrics() before the step was counted.
  std::vector<std::unique_ptr<ActiveSession>> finished;
  std::vector<std::pair<std::unique_ptr<ActiveSession>, std::exception_ptr>>
      failed;
  std::uint64_t stepped = 0;
  for (auto& [sPtr, future] : futures) {
    // Find the owning unique_ptr (active_ order matches futures order).
    auto it = std::find_if(active_.begin(), active_.end(),
                           [sPtr = sPtr](const auto& p) {
                             return p.get() == sPtr;
                           });
    std::unique_ptr<ActiveSession> s = std::move(*it);
    active_.erase(it);
    Response resp;
    try {
      resp = future.get();
    } catch (...) {
      failed.emplace_back(std::move(s), std::current_exception());
      continue;
    }
    ++stepped;
    const Tensor out = resp.outputs[0].tensor().contiguous();
    const Tensor k = resp.outputs[1].tensor().contiguous();
    const Tensor v = resp.outputs[2].tensor().contiguous();
    kv_.append(s->id, std::span<const float>(k.data<float>(), kDecodeDim),
               std::span<const float>(v.data<float>(), kDecodeDim));
    if (resp.batchedWith > 1) ++s->batchedSteps;
    if (s->step >= s->promptLen - 1) s->generated.push_back(out);
    ++s->step;
    if (s->step >= s->totalSteps()) {
      finished.push_back(std::move(s));
      continue;
    }
    s->x = s->step < s->promptLen ? s->prompt.narrow(0, s->step, 1) : out;
    survivors.push_back(std::move(s));
  }
  active_ = std::move(survivors);

  {
    std::lock_guard<std::mutex> lock(metricsMutex_);
    steps_ += stepped;
    ++iterations_;
    occupancy_.observe(static_cast<double>(stepped));
    if (stepped > 0) {
      if (!haveStepSpan_) {
        firstStep_ = stepStart;
        haveStepSpan_ = true;
      }
      lastStep_ = Clock::now();
    }
  }

  for (auto& s : finished) finishSession(std::move(s));
  for (auto& [s, error] : failed) failSession(std::move(s), std::move(error));
  span.arg("stepped", static_cast<std::int64_t>(stepped));
}

// Terminal bookkeeping runs BEFORE the promise is fulfilled: the moment a
// client's future resolves it may read metrics()/kv stats, and must find the
// session's pages already released and the counters already settled.
void DecodeScheduler::sessionDone(ActiveSession& session) {
  if (session.joined) {
    kv_.release(session.id);
    std::lock_guard<std::mutex> lock(metricsMutex_);
    ++leaves_;  // joins_ and leaves_ balance once the scheduler is idle
  }
  std::lock_guard<std::mutex> lock(drainMutex_);
  --pendingSessions_;
  drainCv_.notify_all();
}

void DecodeScheduler::finishSession(std::unique_ptr<ActiveSession> session) {
  DecodeResult result;
  result.steps = session->totalSteps();
  result.batchedSteps = session->batchedSteps;
  result.queueUs = usBetween(session->submitTime, session->admitTime);
  result.totalUs = usBetween(session->submitTime, Clock::now());
  result.generated = Tensor::zeros({session->generate, kDecodeDim});
  float* out = result.generated.data<float>();
  for (std::size_t i = 0; i < session->generated.size(); ++i)
    std::memcpy(out + static_cast<std::int64_t>(i) * kDecodeDim,
                session->generated[i].data<float>(),
                sizeof(float) * kDecodeDim);
  {
    std::lock_guard<std::mutex> lock(metricsMutex_);
    ++completed_;
  }
  sessionDone(*session);
  session->promise.set_value(std::move(result));
}

void DecodeScheduler::rejectSession(std::unique_ptr<ActiveSession> session,
                                    RejectReason reason,
                                    const std::string& detail) {
  {
    std::lock_guard<std::mutex> lock(metricsMutex_);
    ++rejected_[static_cast<int>(reason)];
  }
  sessionDone(*session);
  session->promise.set_exception(std::make_exception_ptr(
      RejectedError(reason, "session '" + session->id + "': " + detail)));
}

void DecodeScheduler::failSession(std::unique_ptr<ActiveSession> session,
                                  std::exception_ptr error) {
  sessionDone(*session);
  session->promise.set_exception(std::move(error));
}

void DecodeScheduler::drain() {
  std::unique_lock<std::mutex> lock(drainMutex_);
  drainCv_.wait(lock, [this] { return pendingSessions_.load() == 0; });
}

void DecodeScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  drain();
}

DecodeMetricsSnapshot DecodeScheduler::metrics() const {
  DecodeMetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(metricsMutex_);
    snap.sessionsSubmitted = submitted_;
    snap.sessionsCompleted = completed_;
    snap.joins = joins_;
    snap.leaves = leaves_;
    for (int r = 0; r < kNumRejectReasons; ++r)
      snap.rejected[r] = rejected_[r];
    snap.steps = steps_;
    snap.iterations = iterations_;
    snap.meanOccupancy =
        iterations_ == 0 ? 0.0
                         : static_cast<double>(steps_) /
                               static_cast<double>(iterations_);
    if (haveStepSpan_ && steps_ > 0) {
      const double spanUs = usBetween(firstStep_, lastStep_);
      if (spanUs > 0)
        snap.stepsPerSec = static_cast<double>(steps_) / (spanUs * 1e-6);
    }
  }
  snap.kv = kv_.stats();
  return snap;
}

void DecodeScheduler::exportMetrics(obs::MetricsRegistry& registry,
                                    std::string_view labels) const {
  const DecodeMetricsSnapshot snap = metrics();
  const auto counter = [&](const char* name, std::int64_t value) {
    registry.counterSet(obs::withLabels(name, labels), value);
  };
  const auto gauge = [&](const char* name, double value) {
    registry.gaugeSet(obs::withLabels(name, labels), value);
  };
  counter("tssa_decode_sessions_total",
          static_cast<std::int64_t>(snap.sessionsSubmitted));
  counter("tssa_decode_sessions_completed_total",
          static_cast<std::int64_t>(snap.sessionsCompleted));
  counter("tssa_decode_joins_total", static_cast<std::int64_t>(snap.joins));
  counter("tssa_decode_leaves_total", static_cast<std::int64_t>(snap.leaves));
  for (int r = 0; r < kNumRejectReasons; ++r) {
    const RejectReason reason = static_cast<RejectReason>(r);
    registry.counterSet(
        obs::withLabels("tssa_decode_rejected_total{reason=\"" +
                            std::string(rejectReasonName(reason)) + "\"}",
                        labels),
        static_cast<std::int64_t>(snap.rejected[r]));
  }
  counter("tssa_decode_steps_total", static_cast<std::int64_t>(snap.steps));
  counter("tssa_decode_iterations_total",
          static_cast<std::int64_t>(snap.iterations));
  gauge("tssa_decode_steps_per_s", snap.stepsPerSec);
  gauge("tssa_decode_mean_occupancy", snap.meanOccupancy);
  gauge("tssa_decode_kv_pages_in_use",
        static_cast<double>(snap.kv.pagesInUse));
  gauge("tssa_decode_kv_pages_high_water",
        static_cast<double>(snap.kv.pagesHighWater));
  gauge("tssa_decode_kv_page_capacity",
        static_cast<double>(snap.kv.pageCapacity));
  counter("tssa_decode_kv_exhausted_total",
          static_cast<std::int64_t>(snap.kv.exhaustedReservations));
  counter("tssa_decode_kv_tokens_total",
          static_cast<std::int64_t>(snap.kv.appendedTokens));
  {
    std::lock_guard<std::mutex> lock(metricsMutex_);
    registry.observeMany(obs::withLabels("tssa_decode_step_occupancy", labels),
                         occupancy_.samples());
  }
}

std::string DecodeMetricsSnapshot::toString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "sessions=%llu completed=%llu rejected=%llu joins=%llu leaves=%llu "
      "steps=%llu iters=%llu occupancy=%.2f steps_per_s=%.1f "
      "kv_pages=%lld/%lld high_water=%lld exhausted=%lld",
      static_cast<unsigned long long>(sessionsSubmitted),
      static_cast<unsigned long long>(sessionsCompleted),
      static_cast<unsigned long long>(rejectedTotal()),
      static_cast<unsigned long long>(joins),
      static_cast<unsigned long long>(leaves),
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(iterations), meanOccupancy,
      stepsPerSec, static_cast<long long>(kv.pagesInUse),
      static_cast<long long>(kv.pageCapacity),
      static_cast<long long>(kv.pagesHighWater),
      static_cast<long long>(kv.exhaustedReservations));
  return buf;
}

}  // namespace tssa::serve
