// Shape-specialized inference serving engine.
//
// The traffic-facing subsystem over the PR-1 execution engine: an Engine
// accepts typed requests for any registered workload, amortizes compilation
// through a ProgramCache keyed on (workload, pipeline kind, shape signature,
// device, texpr flag), coalesces same-key requests arriving within a bounded
// window into micro-batches along the workload's batch dimension, and
// executes them concurrently on the shared runtime::ThreadPool. Clients talk
// to the engine through lightweight Session handles; every response carries
// its latency decomposition (queue / compile / exec), and the engine exports
// an aggregate MetricsSnapshot (p50/p95/p99, throughput, cache stats).
//
// Batching contract: a micro-batched execution of K same-shape requests is
// bitwise identical to the K individual executions (tests/serve_test.cpp
// asserts it). This holds because every registered workload computes
// batch rows independently (BatchTraits in the registry) and because the
// executor itself is deterministic at any thread count (DESIGN.md §6).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/batcher.h"
#include "src/serve/metrics.h"
#include "src/serve/program_cache.h"
#include "src/serve/request.h"

namespace tssa::serve {

struct EngineOptions {
  runtime::PipelineKind kind = runtime::PipelineKind::TensorSsa;
  /// Device model, per-program interpreter thread cap, texpr backend — part
  /// of the program cache key.
  runtime::PipelineOptions pipeline{};
  std::size_t cacheCapacity = 32;      ///< compiled programs kept (LRU)
  int maxBatch = 8;                    ///< micro-batch request cap
  std::int64_t maxWaitUs = 200;        ///< micro-batch window; <= 0 disables
  /// Worker threads guaranteed on the shared pool for batch execution
  /// (0 = hardware concurrency). Distinct cached programs execute
  /// concurrently; runs of one program are serialized.
  int executeConcurrency = 0;
};

class Engine;

/// A client handle. Sessions are cheap, movable, and thread-compatible (one
/// session per client thread is the intended pattern; the engine itself is
/// fully thread-safe). The Engine must outlive its sessions.
class Session {
 public:
  /// Asynchronous submit; the future throws tssa::Error on failure.
  std::future<Response> submit(Request request);
  /// Blocking convenience: submit + get.
  Response infer(Request request);

  const std::string& id() const { return id_; }
  std::uint64_t requestsSubmitted() const { return *submitted_; }

 private:
  friend class Engine;
  Session(Engine* engine, std::string id)
      : engine_(engine),
        id_(std::move(id)),
        submitted_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

  Engine* engine_;
  std::string id_;
  std::shared_ptr<std::atomic<std::uint64_t>> submitted_;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Seals every open micro-batch, waits for all in-flight requests, then
  /// tears down. Outstanding futures are fulfilled before this returns.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Session openSession(std::string id = "");

  /// Session-less submit (uses an implicit anonymous session).
  std::future<Response> submit(Request request);

  /// Blocks until every submitted request has completed (open batches are
  /// sealed immediately rather than waiting out their window).
  void drain();

  MetricsSnapshot metrics() const;
  /// Unified export: the snapshot's counters/gauges plus the full latency
  /// histograms (tssa_serve_request/queue/exec_latency_us) under the
  /// canonical names shared with obs::exportProfiler. The registry can then
  /// be serialized as JSON or Prometheus text (obs::MetricsRegistry).
  void exportMetrics(obs::MetricsRegistry& registry) const;
  ProgramCache::Stats cacheStats() const { return cache_.stats(); }
  const EngineOptions& options() const { return options_; }

  /// The registry's example input tuple for (workload, config) — a valid
  /// payload for Request::inputs. Builds the workload; not cheap, intended
  /// for client setup, not the request path.
  static std::vector<runtime::RtValue> defaultInputs(
      const std::string& workload, const workloads::WorkloadConfig& config);

 private:
  friend class Session;

  std::future<Response> submitInternal(const std::string& sessionId,
                                       Request request);
  /// Runs one sealed batch: concat inputs → cached compile → execute →
  /// de-interleave → fulfill promises. Executes on a pool worker.
  void executeBatch(std::vector<std::unique_ptr<PendingRequest>> batch);
  void onBatchDispatched(std::vector<std::unique_ptr<PendingRequest>> batch);
  ProgramKey keyFor(const Request& request) const;

  const EngineOptions options_;
  ProgramCache cache_;
  MetricsCollector metrics_;
  std::atomic<std::uint64_t> pendingRequests_{0};
  std::mutex drainMutex_;
  std::condition_variable drainCv_;
  std::atomic<std::uint64_t> sessionCounter_{0};
  /// Last member: destroyed first, so its flush-on-destroy happens while
  /// cache/metrics are still alive.
  std::unique_ptr<MicroBatcher> batcher_;
};

}  // namespace tssa::serve
