// Shape-polymorphic inference serving engine.
//
// The traffic-facing subsystem over the PR-1 execution engine: an Engine
// accepts typed requests for any registered workload, amortizes compilation
// through a ProgramCache, coalesces same-key requests arriving within a
// bounded window into micro-batches along the workload's batch dimension,
// and executes them concurrently on the shared runtime::ThreadPool. Clients
// talk to the engine through lightweight Session handles; every response
// carries its latency decomposition (queue / compile / exec), and the engine
// exports an aggregate MetricsSnapshot (p50/p95/p99, throughput, cache
// stats).
//
// Specialization unit (DESIGN.md §13): with EngineOptions::symbolicShapes
// (the default), a request whose inputs instantiate the workload's symbolic
// pattern (workloadSymbolicPattern) is keyed on that *pattern* — one
// compiled polymorphic program serves every batch size and sequence length,
// so the compile count stays flat while shape diversity grows. Requests
// whose inputs deviate from the pattern fall back to the exact-shape
// signature and get a shape-specialized program, as does the whole engine
// when symbolicShapes is off.
//
// Batching contract: a micro-batched execution of K compatible requests is
// bitwise identical to the K individual executions (tests/serve_test.cpp,
// tests/serve_symbolic_test.cpp assert it). This holds because every
// registered workload computes batch rows independently (BatchTraits in the
// registry) and because the executor itself is deterministic at any thread
// count (DESIGN.md §6). Polymorphic requests may be *ragged* along the batch
// dimension — requests differing only in batch size coalesce padding-free;
// the batcher seals on any shape difference along a non-batch dimension.
//
// Robustness contract (DESIGN.md §10): admission is bounded (maxQueueDepth,
// per-session in-flight caps), deadlines are enforced at admission, in the
// batcher, and before execution, and failures degrade per request — a
// failed specialized compile is negatively cached and its traffic served
// through the reference pipeline; a kernel throw mid-batch fails only the
// faulty request (the batch is re-executed de-coalesced). Every refusal is
// a typed RejectedError on the future and a reason-labelled counter in
// tssa_serve_rejected_total; a submit future is always fulfilled, whatever
// happens (tests/serve_faults_test.cpp, tests/serve_soak_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/batcher.h"
#include "src/serve/fault_injector.h"
#include "src/serve/metrics.h"
#include "src/serve/program_cache.h"
#include "src/serve/request.h"

namespace tssa::runtime {
class ThreadPool;
}

namespace tssa::tune {
class Autotuner;
}

namespace tssa::serve {

struct EngineOptions {
  runtime::PipelineKind kind = runtime::PipelineKind::TensorSsa;
  /// Device model, per-program interpreter thread cap, texpr backend — part
  /// of the program cache key.
  runtime::PipelineOptions pipeline{};
  std::size_t cacheCapacity = 32;      ///< compiled programs kept (LRU)
  /// Key programs on the workload's symbolic shape pattern when the
  /// request's inputs instantiate it: one polymorphic compiled program per
  /// (workload, seed) serves every batch size / sequence length instead of
  /// one program per concrete shape. Off ⇒ exact-shape specialization
  /// everywhere (the pre-§13 behavior).
  bool symbolicShapes = true;
  int maxBatch = 8;                    ///< micro-batch request cap
  std::int64_t maxWaitUs = 200;        ///< micro-batch window; <= 0 disables
  /// Worker threads guaranteed on the shared pool for batch execution
  /// (0 = hardware concurrency). Distinct cached programs execute
  /// concurrently; runs of one program are serialized.
  int executeConcurrency = 0;
  /// Pool that executes sealed batches. Null (the default) uses the shared
  /// process-wide runtime::ThreadPool; a Router gives each shard its own
  /// pool so one shard's queue cannot starve another's workers. Not owned;
  /// must outlive the Engine.
  runtime::ThreadPool* executePool = nullptr;
  /// Shard identity for observability: when >= 0, every trace span this
  /// engine emits carries a `shard` arg, so one Chrome trace shows the
  /// whole tier. Metric label scoping is chosen at export time instead
  /// (the `labels` argument of exportMetrics).
  int shardId = -1;

  // ---- Admission control & graceful degradation (DESIGN.md §10) ----------

  /// Engine-wide cap on requests admitted but not yet delivered; a submit
  /// beyond it is shed with RejectReason::QueueFull instead of growing the
  /// queue (and its latency) without bound. 0 = unbounded.
  std::size_t maxQueueDepth = 0;
  /// Per-session cap on in-flight requests (admitted, not yet delivered);
  /// one runaway client sheds its own traffic before it can exhaust
  /// maxQueueDepth for everyone. 0 = unbounded.
  std::size_t maxInFlightPerSession = 0;
  /// How long a failed shape-specialized compile is remembered (negative
  /// cache): traffic for a broken key pays one compile attempt per TTL
  /// window, then is degraded or rejected straight away. <= 0 retries the
  /// compile on every batch.
  std::int64_t compileFailureTtlUs = 5'000'000;
  /// When the specialized compile fails, serve the request through the
  /// reference (eager, unbatched) pipeline instead of rejecting it —
  /// degraded throughput, correct results. When false, such requests are
  /// rejected with RejectReason::CompileFailed.
  bool fallbackOnCompileFailure = true;
  /// Deterministic fault seam for tests (src/serve/fault_injector.h):
  /// scripted compile failures, kernel throws, and batch-seal stalls.
  /// Not owned; must outlive the Engine. Null (production) costs a pointer
  /// check on the compile/run/seal paths and nothing on the request path.
  FaultInjector* faultInjector = nullptr;
  /// Cost-model-guided autotuner (src/tune/tuner.h). When set, programs are
  /// keyed and compiled with tuner->pipelineFor(workload, kind, pipeline)
  /// instead of `pipeline` — the tuned config is hashed into the cache key's
  /// config guard, so distinct configs never collide and a Router hashing
  /// the key keeps shards cache-affine per config. Micro-batching honors the
  /// tuned window overrides, and every run under a tuned config reports its
  /// measured ns/iter back for online refinement (a rejected entry falls
  /// back to `pipeline`'s heuristics). Not owned; must outlive the Engine.
  /// Null = the fixed heuristics.
  tune::Autotuner* tuner = nullptr;
};

class Engine;

/// A client handle. Sessions are cheap, movable, and thread-compatible (one
/// session per client thread is the intended pattern; the engine itself is
/// fully thread-safe). The Engine must outlive its sessions.
class Session {
 public:
  /// Asynchronous submit. The future throws RejectedError when the engine
  /// refuses the request (load shed, deadline miss, shutdown, unrecoverable
  /// compile failure) and plain tssa::Error when execution itself fails;
  /// malformed requests (unknown workload, wrong arity, batch-dim mismatch)
  /// throw RejectedError(BadRequest) synchronously from submit, counted in
  /// tssa_serve_rejected_total{reason="bad_request"}.
  std::future<Response> submit(Request request);
  /// Blocking convenience: submit + get.
  Response infer(Request request);

  const std::string& id() const { return id_; }
  std::uint64_t requestsSubmitted() const { return *submitted_; }
  /// Requests admitted for this session and not yet delivered (bounded by
  /// EngineOptions::maxInFlightPerSession when that is set).
  std::int64_t inFlight() const { return *inFlight_; }

 private:
  friend class Engine;
  Session(Engine* engine, std::string id)
      : engine_(engine),
        id_(std::move(id)),
        submitted_(std::make_shared<std::atomic<std::uint64_t>>(0)),
        inFlight_(std::make_shared<std::atomic<std::int64_t>>(0)) {}

  Engine* engine_;
  std::string id_;
  std::shared_ptr<std::atomic<std::uint64_t>> submitted_;
  std::shared_ptr<std::atomic<std::int64_t>> inFlight_;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Seals every open micro-batch, waits for all in-flight requests, then
  /// tears down. Outstanding futures are fulfilled before this returns.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Session openSession(std::string id = "");

  /// Session-less submit (uses an implicit anonymous session).
  std::future<Response> submit(Request request);

  /// Blocks until every submitted request has completed (open batches are
  /// sealed immediately rather than waiting out their window).
  void drain();

  /// Stops admitting: every subsequent submit is rejected with
  /// RejectReason::ShuttingDown; then drains what was already admitted.
  /// Idempotent. The destructor implies it.
  void shutdown();

  MetricsSnapshot metrics() const;
  /// Unified export: the snapshot's counters/gauges plus the full latency
  /// histograms (tssa_serve_request/queue/exec_latency_us) under the
  /// canonical names shared with obs::exportProfiler. The registry can then
  /// be serialized as JSON or Prometheus text (obs::MetricsRegistry).
  void exportMetrics(obs::MetricsRegistry& registry,
                     std::string_view labels = {}) const;
  ProgramCache::Stats cacheStats() const { return cache_.stats(); }
  const EngineOptions& options() const { return options_; }

  /// The registry's example input tuple for (workload, config) — a valid
  /// payload for Request::inputs. Builds the workload; not cheap, intended
  /// for client setup, not the request path.
  static std::vector<runtime::RtValue> defaultInputs(
      const std::string& workload, const workloads::WorkloadConfig& config);

  /// The program-cache key that an engine built with `options` resolves
  /// `request` to — static so a Router can compute routing keys without an
  /// Engine (cache-affinity routing hashes exactly this key). With
  /// symbolicShapes on, empty inputs resolve to the polymorphic pattern key
  /// directly: the defaults filled at admission instantiate the pattern by
  /// construction, so routing never has to materialize tensors. (With
  /// symbolicShapes off, empty inputs cannot be keyed before the defaults
  /// are filled — callers that route exact-shape traffic must send concrete
  /// inputs.) When the key is polymorphic, `*polymorphic` is set.
  static ProgramKey keyFor(const EngineOptions& options,
                           const Request& request,
                           bool* polymorphic = nullptr);

 private:
  friend class Session;

  using InFlightCounter = std::shared_ptr<std::atomic<std::int64_t>>;

  std::future<Response> submitInternal(const std::string& sessionId,
                                       InFlightCounter inFlight,
                                       Request request);
  /// Runs one sealed batch: pre-execution deadline check → concat inputs →
  /// cached compile → execute → de-interleave → fulfill promises. Degrades
  /// per request on compile failure and de-coalesces on a mid-batch throw.
  /// Executes on a pool worker.
  void executeBatch(SealedBatch batch);
  void onBatchDispatched(SealedBatch batch);
  /// Re-runs one request of a de-coalesced batch through its own (solo)
  /// specialized program.
  void executeSolo(std::unique_ptr<PendingRequest> request,
                   std::chrono::steady_clock::time_point execStart);
  /// Compile failed for `request`'s program: serve it through the reference
  /// pipeline (fallbackOnCompileFailure) or reject it (CompileFailed).
  void degradeOrReject(std::unique_ptr<PendingRequest> request,
                       std::chrono::steady_clock::time_point execStart,
                       const std::exception_ptr& compileError);
  /// Member shorthand for the static keyFor over this engine's options.
  ProgramKey keyFor(const Request& request, bool* polymorphic) const;

  // ---- Per-request terminal transitions (each touches the promise once,
  // ---- then releases the request's admission accounting) -----------------
  void deliver(std::unique_ptr<PendingRequest> request, Response response);
  void deliverError(std::unique_ptr<PendingRequest> request,
                    std::exception_ptr error);
  void rejectRequest(std::unique_ptr<PendingRequest> request,
                     RejectReason reason, const std::string& detail);
  void finishOne(PendingRequest& request);

  const EngineOptions options_;
  ProgramCache cache_;
  MetricsCollector metrics_;
  std::atomic<bool> shuttingDown_{false};
  std::atomic<std::uint64_t> pendingRequests_{0};
  std::mutex drainMutex_;
  std::condition_variable drainCv_;
  std::atomic<std::uint64_t> sessionCounter_{0};
  /// In-flight counter for session-less Engine::submit calls.
  InFlightCounter anonymousInFlight_;
  /// Last member: destroyed first, so its flush-on-destroy happens while
  /// cache/metrics are still alive.
  std::unique_ptr<MicroBatcher> batcher_;
};

}  // namespace tssa::serve
