// Typed inference requests/responses and the engine-internal pending record
// shared by the Engine and the MicroBatcher.
#pragma once

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "src/serve/metrics.h"
#include "src/serve/program_cache.h"
#include "src/workloads/workload.h"

namespace tssa::serve {

/// One inference request for a registered workload. `config` carries the
/// shape parameters (batch, seqLen) and the seed the workload's constant
/// weights were drawn with; `inputs` must match the workload's input
/// signature at that config (use Engine::defaultInputs to get a valid
/// example tuple).
struct Request {
  std::string workload;
  workloads::WorkloadConfig config;
  std::vector<runtime::RtValue> inputs;
};

struct Response {
  std::vector<runtime::RtValue> outputs;
  RequestTiming timing;
  int batchedWith = 1;   ///< requests coalesced into the same execution
  /// Program was compiled and ready when this request's batch looked it up
  /// (timing.compileUs == 0). False both when this batch compiled it and
  /// when it blocked on a concurrent single-flight compile.
  bool cacheHit = false;
};

/// A submitted request waiting for execution: request payload + the promise
/// its response is delivered through + everything the batcher needs to
/// group it (per-request program key, batch traits).
struct PendingRequest {
  Request request;
  std::promise<Response> promise;
  std::chrono::steady_clock::time_point enqueueTime;
  ProgramKey key;                   ///< per-request (unbatched) program key
  workloads::BatchTraits traits;
  std::string sessionId;
};

}  // namespace tssa::serve
