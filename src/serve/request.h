// Typed inference requests/responses and the engine-internal pending record
// shared by the Engine and the MicroBatcher.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/metrics.h"
#include "src/serve/program_cache.h"
#include "src/support/error.h"
#include "src/workloads/workload.h"

namespace tssa::serve {

/// The one sentinel for "this request/session carries no deadline". Every
/// site that turns a relative `deadlineUs` into an absolute expiry — engine
/// admission, the micro-batcher's seal bound, the decode scheduler's session
/// deadlines — must go through absoluteDeadline() so 0 means "no deadline"
/// everywhere and can never be read as "expired at epoch" by one call site
/// and "unconstrained" by another.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// Maps a relative deadline to the absolute expiry used for enforcement:
/// 0 ⇒ kNoDeadline, negative ⇒ already expired (the enqueue instant itself,
/// so every `deadline <= now` check fires), positive ⇒ enqueue + deadlineUs.
inline std::chrono::steady_clock::time_point absoluteDeadline(
    std::chrono::steady_clock::time_point enqueueTime,
    std::int64_t deadlineUs) {
  if (deadlineUs == 0) return kNoDeadline;
  if (deadlineUs < 0) return enqueueTime;
  return enqueueTime + std::chrono::microseconds(deadlineUs);
}

inline bool hasDeadline(std::chrono::steady_clock::time_point deadline) {
  return deadline != kNoDeadline;
}

/// One inference request for a registered workload. `config` carries the
/// shape parameters (batch, seqLen) and the seed the workload's constant
/// weights were drawn with; `inputs` must match the workload's input
/// signature at that config (use Engine::defaultInputs to get a valid
/// example tuple).
struct Request {
  std::string workload;
  workloads::WorkloadConfig config;
  std::vector<runtime::RtValue> inputs;
  /// Relative deadline from submit, in microseconds. 0 means no deadline;
  /// a negative value is treated as already expired (rejected at admission).
  /// Enforced at admission, in the micro-batcher (a tight deadline seals its
  /// batch early, leaving half the remaining budget for execution), and once
  /// more just before the batch executes; a miss is delivered as
  /// RejectedError(RejectReason::Deadline). Work that is already executing
  /// when the deadline passes is finished and delivered late, not cancelled.
  std::int64_t deadlineUs = 0;
};

struct Response {
  std::vector<runtime::RtValue> outputs;
  RequestTiming timing;
  int batchedWith = 1;   ///< requests coalesced into the same execution
  /// Program was compiled and ready when this request's batch looked it up
  /// (timing.compileUs == 0). False both when this batch compiled it and
  /// when it blocked on a concurrent single-flight compile — and always
  /// false on the fallback path, which never runs a specialized program.
  bool cacheHit = false;
  /// Served via the reference (eager, unbatched) pipeline because the
  /// shape-specialized compile failed (graceful degradation, DESIGN.md §10).
  bool fallback = false;
};

/// The typed failure a submit future throws when the engine refuses to
/// serve a request: load shedding, deadline misses, and unrecoverable
/// compile failures are expected serving outcomes that clients dispatch on
/// (retry elsewhere, hedge, drop), not anonymous tssa::Error strings.
class RejectedError : public Error {
 public:
  RejectedError(RejectReason reason, const std::string& detail,
                const char* file = __builtin_FILE(),
                int line = __builtin_LINE())
      : Error("request rejected (" + std::string(rejectReasonName(reason)) +
                  "): " + detail,
              file, line),
        reason_(reason) {}

  RejectReason reason() const noexcept { return reason_; }

 private:
  RejectReason reason_;
};

/// A submitted request waiting for execution: request payload + the promise
/// its response is delivered through + everything the batcher needs to
/// group it (per-request program key, batch traits, absolute deadline).
struct PendingRequest {
  Request request;
  std::promise<Response> promise;
  std::chrono::steady_clock::time_point enqueueTime;
  /// Absolute expiry, always computed via absoluteDeadline(): kNoDeadline
  /// when the request carries no deadline (deadlineUs == 0).
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  ProgramKey key;                   ///< per-request (unbatched) program key
  /// The key is the workload's symbolic-pattern key (Engine::keyFor matched
  /// the pattern): the compiled program is shape-polymorphic, so batching
  /// may be ragged along the batch dim and compiles must set
  /// WorkloadConfig::symbolicDims.
  bool polymorphic = false;
  workloads::BatchTraits traits;
  /// Micro-batch knobs from the autotuner (EngineOptions::tuner), resolved
  /// at admission so the batcher never touches the tuner: 0 / -1 keep the
  /// engine-wide defaults. Same program key ⇒ same overrides (the tuner is
  /// keyed by workload × kind), so every member of a batch agrees on them.
  int maxBatchOverride = 0;
  std::int64_t maxWaitUsOverride = -1;
  std::string sessionId;
  /// The owning session's in-flight counter; decremented exactly once when
  /// the promise is fulfilled (response, exception, or rejection). Null for
  /// requests admitted before per-session caps existed in the path.
  std::shared_ptr<std::atomic<std::int64_t>> sessionInFlight;
};

}  // namespace tssa::serve
