#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/obs/json.h"

namespace tssa::obs {

double percentileNearestRank(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = rank == 0 ? 0 : rank - 1;
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

std::string promLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string withLabels(const std::string& key, std::string_view labels) {
  if (labels.empty()) return key;
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos)
    return key + "{" + std::string(labels) + "}";
  std::string out = key;
  out.insert(out.size() - 1, "," + std::string(labels));
  return out;
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(value);
}

void Histogram::observeMany(std::span<const double> values) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.insert(samples_.end(), values.begin(), values.end());
}

std::vector<double> Histogram::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

HistogramStats Histogram::stats() const {
  std::vector<double> xs = samples();
  HistogramStats s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(xs.size());
  s.p50 = percentileNearestRank(xs, 0.50);
  s.p95 = percentileNearestRank(xs, 0.95);
  s.p99 = percentileNearestRank(xs, 0.99);
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::counterAdd(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::counterSet(const std::string& name, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] = value;
}

void MetricsRegistry::gaugeSet(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

Histogram& MetricsRegistry::histogramSlot(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  histogramSlot(name).observe(value);
}

void MetricsRegistry::observeMany(const std::string& name,
                                  std::span<const double> values) {
  histogramSlot(name).observeMany(values);
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  // Copy the histogram pointers under the lock, compute stats outside it
  // (stats() takes each histogram's own mutex).
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.counters = counters_;
    snap.gauges = gauges_;
    hists.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
  }
  for (const auto& [name, h] : hists) snap.histograms[name] = h->stats();
  return snap;
}

namespace {

/// `name{labels}` → base metric name (what the # TYPE line advertises).
std::string_view baseName(std::string_view key) {
  const std::size_t brace = key.find('{');
  return brace == std::string_view::npos ? key : key.substr(0, brace);
}

/// Quantile-label splicing for the summary exposition (same semantics as
/// the public obs::withLabels).
std::string withLabel(const std::string& key, const std::string& label) {
  return withLabels(key, label);
}

}  // namespace

std::string MetricsRegistry::Snapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += jsonQuote(name) + ":" + jsonNumber(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += jsonQuote(name) + ":" + jsonNumber(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : histograms) {
    if (!first) out += ",";
    first = false;
    out += jsonQuote(name) + ":{";
    out += "\"count\":" + jsonNumber(static_cast<std::int64_t>(s.count));
    out += ",\"sum\":" + jsonNumber(s.sum);
    out += ",\"min\":" + jsonNumber(s.min);
    out += ",\"max\":" + jsonNumber(s.max);
    out += ",\"mean\":" + jsonNumber(s.mean);
    out += ",\"p50\":" + jsonNumber(s.p50);
    out += ",\"p95\":" + jsonNumber(s.p95);
    out += ",\"p99\":" + jsonNumber(s.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::Snapshot::toPrometheus() const {
  std::string out;
  std::string lastType;  // base name of the last # TYPE emitted
  auto typeLine = [&](std::string_view base, const char* type) {
    if (lastType == base) return;  // labeled series share one TYPE line
    lastType = base;
    out += "# TYPE " + std::string(base) + " " + type + "\n";
  };
  for (const auto& [name, v] : counters) {
    typeLine(baseName(name), "counter");
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    typeLine(baseName(name), "gauge");
    out += name + " " + jsonNumber(v) + "\n";
  }
  for (const auto& [name, s] : histograms) {
    typeLine(baseName(name), "summary");
    out += withLabel(name, "quantile=\"0.5\"") + " " + jsonNumber(s.p50) + "\n";
    out += withLabel(name, "quantile=\"0.95\"") + " " + jsonNumber(s.p95) + "\n";
    out += withLabel(name, "quantile=\"0.99\"") + " " + jsonNumber(s.p99) + "\n";
    out += std::string(baseName(name)) + "_sum " + jsonNumber(s.sum) + "\n";
    out += std::string(baseName(name)) + "_count " +
           std::to_string(s.count) + "\n";
  }
  return out;
}

}  // namespace tssa::obs
