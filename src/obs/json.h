// Minimal JSON writing utilities shared by the observability exporters
// (Chrome trace_event files, MetricsRegistry snapshots) and the bench
// result records. Writing only — the repo has no JSON consumer in C++
// (tests carry their own micro-parser; scripts/check_bench.py uses Python).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace tssa::obs {

/// Escapes `s` per RFC 8259 and returns it wrapped in double quotes.
inline std::string jsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// A double rendered as a JSON number (JSON has no NaN/Inf — emit null).
inline std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string jsonNumber(std::int64_t v) { return std::to_string(v); }

}  // namespace tssa::obs
