// Bridges from the existing measurement sources into the unified
// MetricsRegistry namespace. The serve::Engine has its own exporter
// (Engine::exportMetrics) because its snapshot spans multiple profilers; the
// canonical metric names are shared — see DESIGN.md §9 for the table.
#pragma once

#include "src/obs/metrics.h"
#include "src/runtime/profiler.h"

namespace tssa::obs {

/// Exports one Profiler's counters under the canonical names:
///
///   tssa_kernel_launches_total            kernelLaunches()
///   tssa_kernel_invocations_total{kernel=...}   per-kernel histogram
///   tssa_bytes_moved_total                bytesMoved()
///   tssa_flops_total                      flops()
///   tssa_sim_time_us / tssa_host_time_us / tssa_gpu_time_us   (gauges)
///   tssa_arena_allocs_total{kind="fresh"|"reused"}
///   tssa_arena_bytes_total{kind="fresh"|"reused"}
///   tssa_arena_recycled_total / tssa_arena_recycle_misses_total
///
/// Counter values are SET (not added): a Profiler is itself cumulative
/// since its last reset, so re-exporting after more runs refreshes the
/// registry to the profiler's current totals.
void exportProfiler(const runtime::Profiler& profiler,
                    MetricsRegistry& registry);

}  // namespace tssa::obs
