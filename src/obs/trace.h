// Structured tracing: nested spans over the whole stack, exported as Chrome
// trace_event JSON (open in Perfetto / chrome://tracing).
//
// Design constraints (DESIGN.md §9):
//   * Near-zero cost when disabled: a span site costs one relaxed atomic
//     load and a branch. No allocation, no clock read, no lock.
//   * Lock-sharded when enabled: each span is appended to one of kShards
//     buffers chosen by thread id, so ThreadPool workers recording
//     concurrently contend only when they hash to the same shard.
//   * Spans are recorded at destruction as Chrome "X" (complete) events:
//     timestamp + duration per thread. RAII guarantees a child span closes
//     before its parent, which is exactly the nesting contract the trace
//     viewers expect for same-tid complete events.
//
// The Tracer is process-global (Tracer::instance()): the interesting traces
// cross subsystems — a serve request's spans come from the engine, the
// batcher's timer thread, pipeline passes, and pool workers — and stitching
// per-component tracers back together would need exactly the global clock
// and thread-id space the singleton already provides.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tssa::obs {

/// One recorded span (or instant event when durNs == 0 and the phase says
/// so). Args are pre-rendered JSON values: TraceSpan::arg overloads render
/// strings/integers/doubles so export is a plain concatenation.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint64_t startNs = 0;  ///< relative to the tracer epoch
  std::uint64_t durNs = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Enabling does not clear previously recorded spans (call clear() for a
  /// fresh trace); disabling stops recording instantly but keeps the buffer
  /// for export.
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void clear();
  std::size_t spanCount() const;

  /// Appends a finished event to the calling thread's shard.
  void record(TraceEvent event);

  /// Nanoseconds since the tracer epoch (process start, steady clock).
  std::uint64_t nowNs() const { return sinceEpochNs(Clock::now()); }
  std::uint64_t sinceEpochNs(std::chrono::steady_clock::time_point t) const {
    if (t < epoch_) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
            .count());
  }

  /// Small dense id for the calling thread (stable for its lifetime); used
  /// as the Chrome trace `tid`.
  static std::uint32_t currentThreadId();

  /// All recorded events, merged across shards and sorted by (tid, start).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to `path`; returns false on I/O failure.
  bool writeChromeTrace(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  Tracer() : epoch_(Clock::now()) {}
  Shard& shardForThisThread();

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  Shard shards_[kShards];
};

/// RAII span. Construction samples the clock only when tracing is enabled;
/// destruction records the completed event. Intended use:
///
///   obs::TraceSpan span("pipeline", "fusion");
///   span.arg("nodes_before", before);
///   ... work ...
///
/// Copying is disabled; a span belongs to one scope on one thread.
class TraceSpan {
 public:
  TraceSpan(std::string_view cat, std::string_view name) {
    Tracer& t = Tracer::instance();
    if (!t.enabled()) return;
    active_ = true;
    event_.cat = cat;
    event_.name = name;
    event_.startNs = t.nowNs();
    event_.tid = Tracer::currentThreadId();
  }
  ~TraceSpan() { finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is actually recording — use to skip computing
  /// expensive args (graph statistics) on the disabled path.
  bool active() const { return active_; }

  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, int value) {
    arg(key, static_cast<std::int64_t>(value));
  }
  void arg(std::string_view key, double value);

  /// Records the span now (idempotent; the destructor becomes a no-op).
  void finish();

 private:
  bool active_ = false;
  TraceEvent event_;
};

}  // namespace tssa::obs
