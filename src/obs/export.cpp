#include "src/obs/export.h"

namespace tssa::obs {

void exportProfiler(const runtime::Profiler& profiler,
                    MetricsRegistry& registry) {
  registry.counterSet("tssa_kernel_launches_total",
                      profiler.kernelLaunches());
  registry.counterSet("tssa_bytes_moved_total", profiler.bytesMoved());
  registry.counterSet("tssa_flops_total", profiler.flops());
  registry.gaugeSet("tssa_sim_time_us", profiler.simTimeUs());
  registry.gaugeSet("tssa_host_time_us", profiler.hostTimeUs());
  registry.gaugeSet("tssa_gpu_time_us", profiler.gpuTimeUs());

  const runtime::Profiler::MemoryCounters mem = profiler.memoryCounters();
  registry.counterSet("tssa_arena_allocs_total{kind=\"fresh\"}",
                      mem.freshAllocs);
  registry.counterSet("tssa_arena_allocs_total{kind=\"reused\"}",
                      mem.reusedAllocs);
  registry.counterSet("tssa_arena_bytes_total{kind=\"fresh\"}",
                      mem.freshBytes);
  registry.counterSet("tssa_arena_bytes_total{kind=\"reused\"}",
                      mem.reusedBytes);
  registry.counterSet("tssa_arena_recycled_total", mem.recycled);
  registry.counterSet("tssa_arena_recycle_misses_total", mem.recycleMisses);

  for (const auto& [kernel, count] : profiler.kernelHistogram()) {
    registry.counterSet(
        "tssa_kernel_invocations_total{kernel=" + promLabelValue(kernel) +
            "}",
        count);
  }
}

}  // namespace tssa::obs
