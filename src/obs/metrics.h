// Unified metrics: one named-counter/gauge/histogram registry for everything
// the stack measures — the runtime Profiler's launch/byte/arena counters,
// the serving engine's request latencies and cache statistics — with a
// consistent snapshot exportable as JSON and as Prometheus text exposition
// format (version 0.0.4).
//
// Naming convention (reconciles the historically divergent Profiler /
// serve::MetricsSnapshot names — see DESIGN.md §9 for the full table):
//   * counters end in `_total`; time is microseconds (`_us`), sizes bytes;
//   * one logical metric keeps ONE name everywhere: arena traffic is
//     `tssa_arena_allocs_total{kind="fresh"|"reused"}` whether it is read
//     from a Pipeline's Profiler or aggregated across a serving Engine;
//   * a `{key="value"}` suffix on the registry key is emitted verbatim as a
//     Prometheus label set (keys sharing a base name share one # TYPE line).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace tssa::obs {

/// Nearest-rank percentile: the smallest sample x such that at least q·n
/// samples are <= x, i.e. 1-based rank ceil(q·n). (A floor would be off by
/// one: p50 of 2 samples must be the lower one, and p99 of 100 samples the
/// 99th, not the maximum.) Takes the samples by value: it sorts its copy.
double percentileNearestRank(std::vector<double> samples, double q);

/// Quotes `v` as a Prometheus label value (escapes backslash, double quote,
/// and newline — the only escapes the exposition format defines).
std::string promLabelValue(std::string_view v);

/// Splices a rendered label set (e.g. `shard="2"` or `a="x",b="y"`) into a
/// possibly-already-labeled metric key:
///   withLabels("m", "shard=\"2\"")            == "m{shard=\"2\"}"
///   withLabels("m{k=\"v\"}", "shard=\"2\"")   == "m{k=\"v\",shard=\"2\"}"
/// Empty labels return the key unchanged. This is how one exporter instance
/// (an Engine shard, a per-shard DecodeScheduler) registers its series
/// without colliding with its siblings on the canonical names: same base
/// name, disjoint label sets (DESIGN.md §14).
std::string withLabels(const std::string& key, std::string_view labels);

struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Thread-safe sample accumulator. Percentiles are computed at stats() time
/// over the full sample set (exact, not sketched — serving runs here are
/// bounded; a streaming sketch can replace the storage behind the same
/// interface if that changes).
class Histogram {
 public:
  void observe(double value);
  void observeMany(std::span<const double> values);
  HistogramStats stats() const;
  std::vector<double> samples() const;
  std::uint64_t count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  /// A process-global registry for ambient exporters; subsystems that want
  /// isolation (tests, per-engine snapshots) construct their own.
  static MetricsRegistry& global();

  void counterAdd(const std::string& name, std::int64_t delta);
  void counterSet(const std::string& name, std::int64_t value);
  void gaugeSet(const std::string& name, double value);
  void observe(const std::string& name, double value);
  void observeMany(const std::string& name, std::span<const double> values);
  void clear();

  struct Snapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;

    std::int64_t counter(const std::string& name) const {
      auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    }
    double gauge(const std::string& name) const {
      auto it = gauges.find(name);
      return it == gauges.end() ? 0.0 : it->second;
    }
    HistogramStats histogram(const std::string& name) const {
      auto it = histograms.find(name);
      return it == histograms.end() ? HistogramStats{} : it->second;
    }

    std::string toJson() const;
    /// Prometheus text exposition: counters/gauges as single samples,
    /// histograms as summaries (quantile labels + _sum + _count).
    std::string toPrometheus() const;
  };

  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  // unique_ptr: Histogram owns a mutex and must stay address-stable while
  // observe() runs outside the registry lock.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  Histogram& histogramSlot(const std::string& name);
};

}  // namespace tssa::obs
