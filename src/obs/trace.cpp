#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"

namespace tssa::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint32_t Tracer::currentThreadId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1) + 1;  // 0 reserved
  return id;
}

Tracer::Shard& Tracer::shardForThisThread() {
  return shards_[currentThreadId() % kShards];
}

void Tracer::record(TraceEvent event) {
  Shard& shard = shardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(event));
}

void Tracer::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.clear();
  }
}

std::size_t Tracer::spanCount() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.events.size();
  }
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.durNs > b.durNs;  // parent before child at equal start
            });
  return all;
}

std::string Tracer::chromeTraceJson() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + jsonQuote(e.name);
    out += ",\"cat\":" + jsonQuote(e.cat);
    out += ",\"ph\":\"X\",\"pid\":1";
    out += ",\"tid\":" + std::to_string(e.tid);
    // Chrome trace timestamps are microseconds; keep sub-us precision as a
    // fraction (viewers accept fractional ts/dur).
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.startNs) / 1e3,
                  static_cast<double>(e.durNs) / 1e3);
    out += buf;
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool firstArg = true;
      for (const auto& [k, v] : e.args) {
        if (!firstArg) out += ",";
        firstArg = false;
        out += jsonQuote(k) + ":" + v;
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool Tracer::writeChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void TraceSpan::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), jsonQuote(value));
}

void TraceSpan::arg(std::string_view key, std::int64_t value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), jsonNumber(value));
}

void TraceSpan::arg(std::string_view key, double value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), jsonNumber(value));
}

void TraceSpan::finish() {
  if (!active_) return;
  active_ = false;
  Tracer& t = Tracer::instance();
  event_.durNs = t.nowNs() - event_.startNs;
  t.record(std::move(event_));
}

}  // namespace tssa::obs
