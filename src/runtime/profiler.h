// Execution profiler: kernel-launch counting and simulated-time accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/runtime/device.h"

namespace tssa::runtime {

/// Collects the two metrics the paper reports: kernel launch counts (Fig. 6)
/// and simulated latency (Figs. 5/7/8). The interpreter reports every
/// framework action and kernel; the profiler prices them with the device and
/// host models and combines per-op as max(host, kernel).
///
/// Thread safety: recording (`kernel`, `hostOnly`, ...) and `reset` are
/// serialized by an internal mutex, so events may be reported from worker
/// threads (the threaded ParallelMap executor batches per-worker events and
/// merges them at its barrier, but stray in-worker calls are still safe —
/// `perKernel_` is no longer a bare map mutated without synchronization).
/// Readers are expected to run after parallel regions completed (the
/// interpreter's barrier guarantees it), so the getters take the same lock
/// only where a torn map read could crash.
class Profiler {
 public:
  Profiler(DeviceSpec device, HostSpec host)
      : device_(std::move(device)), host_(std::move(host)) {}

  // ---- Events ------------------------------------------------------------

  /// A device kernel plus the host work that dispatched it.
  void kernel(std::string_view name, std::int64_t bytes, std::int64_t flops,
              double hostUs) {
    // Launch probe (fault-injection seam, src/serve/fault_injector.h): every
    // launch of this pipeline flows through here, so this is the one place a
    // scripted kernel failure can fire. Invoked outside mutex_ — the probe
    // takes its own lock and may throw; the throwing launch is not recorded
    // (it never "happened").
    if (auto probe = launchProbe(); probe) (*probe)();
    const double k = device_.kernelTimeUs(bytes, flops);
    std::lock_guard<std::mutex> lock(mutex_);
    ++launches_;
    bytes_ += bytes;
    flops_ += flops;
    gpuUs_ += k;
    hostUs_ += hostUs;
    // Asynchronous dispatch pipelines host work under kernel execution;
    // Python-serialized dispatch pays both.
    simUs_ += host_.serialDispatch ? k + hostUs : (k > hostUs ? k : hostUs);
    perKernel_[std::string(name)] += 1;
  }

  /// Host-only work (view bookkeeping, scalar ops, control flow).
  void hostOnly(double hostUs) {
    std::lock_guard<std::mutex> lock(mutex_);
    hostUs_ += hostUs;
    simUs_ += hostUs;
  }

  void opDispatch() { hostOnly(host_.perOpUs); }
  void loopIteration() { hostOnly(host_.perLoopIterUs); }
  void branch() { hostOnly(host_.perIfUs); }
  void regionCall() { hostOnly(host_.perRegionCallUs); }

  /// Arena allocation accounting from the memory planner (src/tensor/arena.h):
  /// pool misses ("fresh", heap allocations) vs. pool hits ("reused").
  /// Reported by the interpreter at single-threaded points. NOTE: unlike
  /// launches/bytes/flops these counters are NOT invariant across thread
  /// counts — every worker warms its own arena — so they are kept out of the
  /// kernel histogram and the determinism contracts built on it.
  void memory(std::int64_t freshAllocs, std::int64_t reusedAllocs,
              std::int64_t freshBytes, std::int64_t reusedBytes,
              std::int64_t recycled = 0, std::int64_t recycleMisses = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    memFresh_ += freshAllocs;
    memReused_ += reusedAllocs;
    memFreshBytes_ += freshBytes;
    memReusedBytes_ += reusedBytes;
    memRecycled_ += recycled;
    memRecycleMisses_ += recycleMisses;
  }

  // ---- Results ------------------------------------------------------------

  std::int64_t kernelLaunches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return launches_;
  }
  std::int64_t bytesMoved() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }
  std::int64_t flops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return flops_;
  }
  /// Pure device busy time.
  double gpuTimeUs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return gpuUs_;
  }
  /// Pure host (framework) time.
  double hostTimeUs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hostUs_;
  }
  /// Modelled end-to-end latency.
  double simTimeUs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return simUs_;
  }
  /// Snapshot copy taken under the lock: safe to call while recording is
  /// still in flight (a by-reference return here was a torn read waiting to
  /// happen for any caller overlapping a parallel region).
  std::map<std::string, std::int64_t> kernelHistogram() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return perKernel_;
  }

  /// Snapshot of the memory-planner counters.
  struct MemoryCounters {
    std::int64_t freshAllocs = 0;
    std::int64_t reusedAllocs = 0;
    std::int64_t freshBytes = 0;
    std::int64_t reusedBytes = 0;
    std::int64_t recycled = 0;       ///< buffers returned to the pool
    std::int64_t recycleMisses = 0;  ///< recycle refused (shared / tiny)
  };
  MemoryCounters memoryCounters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {memFresh_,        memReused_,    memFreshBytes_,
            memReusedBytes_, memRecycled_,  memRecycleMisses_};
  }

  const DeviceSpec& device() const { return device_; }
  const HostSpec& host() const { return host_; }

  /// Installs (or clears, with nullptr) a hook invoked at the top of every
  /// kernel() call. The probe may throw — that models a kernel launch
  /// failure and propagates out of the interpreter to the run() caller.
  /// Unlike the counters it survives reset(): it is part of the pipeline's
  /// wiring, not of a run's results.
  using LaunchProbe = std::function<void()>;
  void setLaunchProbe(LaunchProbe probe) {
    auto shared = probe ? std::make_shared<const LaunchProbe>(std::move(probe))
                        : std::shared_ptr<const LaunchProbe>();
    std::lock_guard<std::mutex> lock(mutex_);
    launchProbe_ = std::move(shared);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    launches_ = 0;
    bytes_ = 0;
    flops_ = 0;
    gpuUs_ = hostUs_ = simUs_ = 0;
    memFresh_ = memReused_ = memFreshBytes_ = memReusedBytes_ = 0;
    memRecycled_ = memRecycleMisses_ = 0;
    perKernel_.clear();
  }

 private:
  std::shared_ptr<const LaunchProbe> launchProbe() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return launchProbe_;
  }

  DeviceSpec device_;
  HostSpec host_;
  std::shared_ptr<const LaunchProbe> launchProbe_;  ///< guarded by mutex_
  mutable std::mutex mutex_;
  std::int64_t launches_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t flops_ = 0;
  double gpuUs_ = 0;
  double hostUs_ = 0;
  double simUs_ = 0;
  std::int64_t memFresh_ = 0;
  std::int64_t memReused_ = 0;
  std::int64_t memFreshBytes_ = 0;
  std::int64_t memReusedBytes_ = 0;
  std::int64_t memRecycled_ = 0;
  std::int64_t memRecycleMisses_ = 0;
  std::map<std::string, std::int64_t> perKernel_;
};

}  // namespace tssa::runtime
