// Execution profiler: kernel-launch counting and simulated-time accounting.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/runtime/device.h"

namespace tssa::runtime {

/// Collects the two metrics the paper reports: kernel launch counts (Fig. 6)
/// and simulated latency (Figs. 5/7/8). The interpreter reports every
/// framework action and kernel; the profiler prices them with the device and
/// host models and combines per-op as max(host, kernel).
///
/// Thread safety: recording (`kernel`, `hostOnly`, ...) and `reset` are
/// serialized by an internal mutex, so events may be reported from worker
/// threads (the threaded ParallelMap executor batches per-worker events and
/// merges them at its barrier, but stray in-worker calls are still safe —
/// `perKernel_` is no longer a bare map mutated without synchronization).
/// Readers are expected to run after parallel regions completed (the
/// interpreter's barrier guarantees it), so the getters take the same lock
/// only where a torn map read could crash.
class Profiler {
 public:
  Profiler(DeviceSpec device, HostSpec host)
      : device_(std::move(device)), host_(std::move(host)) {}

  // ---- Events ------------------------------------------------------------

  /// A device kernel plus the host work that dispatched it.
  void kernel(std::string_view name, std::int64_t bytes, std::int64_t flops,
              double hostUs) {
    const double k = device_.kernelTimeUs(bytes, flops);
    std::lock_guard<std::mutex> lock(mutex_);
    ++launches_;
    bytes_ += bytes;
    flops_ += flops;
    gpuUs_ += k;
    hostUs_ += hostUs;
    // Asynchronous dispatch pipelines host work under kernel execution;
    // Python-serialized dispatch pays both.
    simUs_ += host_.serialDispatch ? k + hostUs : (k > hostUs ? k : hostUs);
    perKernel_[std::string(name)] += 1;
  }

  /// Host-only work (view bookkeeping, scalar ops, control flow).
  void hostOnly(double hostUs) {
    std::lock_guard<std::mutex> lock(mutex_);
    hostUs_ += hostUs;
    simUs_ += hostUs;
  }

  void opDispatch() { hostOnly(host_.perOpUs); }
  void loopIteration() { hostOnly(host_.perLoopIterUs); }
  void branch() { hostOnly(host_.perIfUs); }
  void regionCall() { hostOnly(host_.perRegionCallUs); }

  // ---- Results ------------------------------------------------------------

  std::int64_t kernelLaunches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return launches_;
  }
  std::int64_t bytesMoved() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }
  std::int64_t flops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return flops_;
  }
  /// Pure device busy time.
  double gpuTimeUs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return gpuUs_;
  }
  /// Pure host (framework) time.
  double hostTimeUs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hostUs_;
  }
  /// Modelled end-to-end latency.
  double simTimeUs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return simUs_;
  }
  /// Snapshot-by-reference; only call once recording has quiesced.
  const std::map<std::string, std::int64_t>& kernelHistogram() const {
    return perKernel_;
  }

  const DeviceSpec& device() const { return device_; }
  const HostSpec& host() const { return host_; }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    launches_ = 0;
    bytes_ = 0;
    flops_ = 0;
    gpuUs_ = hostUs_ = simUs_ = 0;
    perKernel_.clear();
  }

 private:
  DeviceSpec device_;
  HostSpec host_;
  mutable std::mutex mutex_;
  std::int64_t launches_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t flops_ = 0;
  double gpuUs_ = 0;
  double hostUs_ = 0;
  double simUs_ = 0;
  std::map<std::string, std::int64_t> perKernel_;
};

}  // namespace tssa::runtime
