#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "src/obs/trace.h"

namespace tssa::runtime {

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::hardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::workerCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::ensureWorkers(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < count)
    workers_.emplace_back([this] { workerLoop(); });
}

void ThreadPool::submit(std::function<void()> task, int minWorkers) {
  ensureWorkers(std::max(minWorkers, 1));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taskQueue_.emplace_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    const char* taskKind = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] {
        return stopping_ || !chunkQueue_.empty() || !taskQueue_.empty();
      });
      // Chunk tasks first: they gate a parallelFor barrier someone is
      // spinning on, while submitted tasks are whole batches.
      if (!chunkQueue_.empty()) {
        task = std::move(chunkQueue_.front());
        chunkQueue_.pop_front();
        taskKind = "worker.chunk";
      } else if (!taskQueue_.empty()) {
        task = std::move(taskQueue_.front());
        taskQueue_.pop_front();
        taskKind = "worker.task";
      } else {
        return;  // stopping
      }
    }
    // One span per executed task on the worker's own timeline: the gaps
    // between spans ARE the idle time, which is what a utilization view of
    // the trace needs.
    obs::TraceSpan span("pool", taskKind);
    task();
  }
}

void ThreadPool::parallelFor(
    std::int64_t n, int maxWorkers,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn) {
  if (n <= 0) return;
  const int chunks =
      static_cast<int>(std::min<std::int64_t>(std::max(maxWorkers, 1), n));
  if (chunks <= 1) {
    fn(0, n, 0);
    return;
  }
  ensureWorkers(chunks - 1);

  // Completion barrier + first-chunk exception, shared with the tasks.
  struct Barrier {
    std::mutex mutex;
    std::condition_variable done;
    int pending;
    std::vector<std::exception_ptr> errors;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->pending = chunks - 1;
  barrier->errors.assign(static_cast<std::size_t>(chunks), nullptr);

  auto chunkBounds = [n, chunks](int c) {
    const std::int64_t begin = n * c / chunks;
    const std::int64_t end = n * (c + 1) / chunks;
    return std::pair<std::int64_t, std::int64_t>{begin, end};
  };
  auto runChunk = [&fn, barrier, chunkBounds](int c) {
    const auto [begin, end] = chunkBounds(c);
    try {
      fn(begin, end, c);
    } catch (...) {
      barrier->errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int c = 1; c < chunks; ++c) {
      chunkQueue_.emplace_back([runChunk, barrier, c] {
        runChunk(c);
        {
          std::lock_guard<std::mutex> dlock(barrier->mutex);
          --barrier->pending;
        }
        barrier->done.notify_one();
      });
    }
  }
  wake_.notify_all();

  runChunk(0);  // the caller takes the first (cache-warm) chunk

  // Helping barrier: while chunks of this region are pending, the caller
  // executes queued chunk tasks (possibly belonging to other regions)
  // instead of blocking. This makes nested parallelFor calls deadlock-free
  // even when every worker thread is itself parked on an inner barrier.
  // Only chunk tasks are stolen: submit()ed tasks may block on locks the
  // caller's thread already holds (e.g. the serving engine's per-program
  // exec mutex) and running one here could self-deadlock or form a lock
  // cycle between two helping callers.
  for (;;) {
    {
      std::lock_guard<std::mutex> block(barrier->mutex);
      if (barrier->pending == 0) break;
    }
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!chunkQueue_.empty()) {
        task = std::move(chunkQueue_.front());
        chunkQueue_.pop_front();
      }
    }
    if (task) {
      obs::TraceSpan span("pool", "chunk.help");
      task();
      continue;
    }
    std::unique_lock<std::mutex> block(barrier->mutex);
    // Timed wait: a task enqueued by a *nested* region after we started
    // waiting would not signal this barrier, so re-poll the queue.
    barrier->done.wait_for(block, std::chrono::milliseconds(1),
                           [&] { return barrier->pending == 0; });
  }
  for (const std::exception_ptr& e : barrier->errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace tssa::runtime
