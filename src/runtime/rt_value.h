// Runtime values flowing through the interpreter.
#pragma once

#include <variant>
#include <vector>

#include "src/support/error.h"
#include "src/tensor/scalar.h"
#include "src/tensor/tensor.h"

namespace tssa::runtime {

/// A runtime value: a tensor, a Python-level scalar, or a list of tensors.
class RtValue {
 public:
  RtValue() : value_(Scalar(std::int64_t{0})) {}
  RtValue(Tensor t) : value_(std::move(t)) {}            // NOLINT
  RtValue(Scalar s) : value_(s) {}                       // NOLINT
  RtValue(std::vector<Tensor> l) : value_(std::move(l)) {}  // NOLINT
  RtValue(std::int64_t v) : value_(Scalar(v)) {}         // NOLINT
  RtValue(double v) : value_(Scalar(v)) {}               // NOLINT
  RtValue(bool v) : value_(Scalar(v)) {}                 // NOLINT

  bool isTensor() const { return std::holds_alternative<Tensor>(value_); }
  bool isScalar() const { return std::holds_alternative<Scalar>(value_); }
  bool isList() const {
    return std::holds_alternative<std::vector<Tensor>>(value_);
  }

  const Tensor& tensor() const {
    const Tensor* t = std::get_if<Tensor>(&value_);
    TSSA_CHECK(t != nullptr, "runtime value is not a tensor");
    return *t;
  }
  Tensor& tensor() {
    Tensor* t = std::get_if<Tensor>(&value_);
    TSSA_CHECK(t != nullptr, "runtime value is not a tensor");
    return *t;
  }
  Scalar scalar() const {
    const Scalar* s = std::get_if<Scalar>(&value_);
    TSSA_CHECK(s != nullptr, "runtime value is not a scalar");
    return *s;
  }
  const std::vector<Tensor>& list() const {
    const auto* l = std::get_if<std::vector<Tensor>>(&value_);
    TSSA_CHECK(l != nullptr, "runtime value is not a list");
    return *l;
  }
  std::vector<Tensor>& list() {
    auto* l = std::get_if<std::vector<Tensor>>(&value_);
    TSSA_CHECK(l != nullptr, "runtime value is not a list");
    return *l;
  }

  std::int64_t toInt() const { return scalar().toInt(); }
  bool toBool() const { return scalar().toBool(); }
  double toDouble() const { return scalar().toDouble(); }

 private:
  std::variant<Tensor, Scalar, std::vector<Tensor>> value_;
};

}  // namespace tssa::runtime
