// Reference interpreter for graph-level IR.
//
// Executes a graph with *eager semantics*: view operators return aliasing
// tensors, mutation operators write through them, TensorSSA operators
// (Access/Assign) execute as their pure definitions, and FusionGroup /
// ParallelMap execute their bodies. This single executor therefore runs both
// the imperative input programs and every stage of their functionalized,
// fused forms — which is what lets tests assert bit-equal behaviour across
// the whole compilation pipeline.
//
// When a Profiler is attached, execution also produces the paper's metrics:
// kernel-launch counts and modelled latency. Fusion constructs are priced
// structurally (one launch; external bytes only), everything else per op.
#pragma once

#include <unordered_map>

#include <memory>

#include "src/ir/ir.h"
#include "src/runtime/profiler.h"
#include "src/runtime/rt_value.h"
#include "src/texpr/texpr.h"

namespace tssa::runtime {

class Interpreter {
 public:
  /// `profiler` may be null (pure execution, e.g. in tests). When
  /// `useTexpr` is set (default), supported FusionGroup bodies execute
  /// through the tensor-expression kernel (single pass, no intermediates);
  /// otherwise bodies are interpreted node by node. Both paths are
  /// cross-checked for equality in tests.
  explicit Interpreter(Profiler* profiler = nullptr, bool useTexpr = true)
      : profiler_(profiler), useTexpr_(useTexpr) {}

  /// Runs `graph` on `inputs` (one per graph input) and returns its outputs.
  std::vector<RtValue> run(const ir::Graph& graph,
                           std::span<const RtValue> inputs);

 private:
  using Env = std::unordered_map<const ir::Value*, RtValue>;

  void runBlockBody(const ir::Block& block, Env& env);
  std::vector<RtValue> blockReturns(const ir::Block& block, const Env& env);
  void execNode(const ir::Node& node, Env& env);

  const RtValue& get(const ir::Value* v, const Env& env) const;
  Tensor tensorIn(const ir::Node& node, std::size_t i, const Env& env) const;
  Scalar scalarIn(const ir::Node& node, std::size_t i, const Env& env) const;

  /// Applies the view rule of `viewKind` to `base`; dynamic view operands
  /// (select index, slice bounds) start at node input `operandStart`.
  Tensor applyView(ir::OpKind viewKind, const ir::Node& node,
                   const Tensor& base, std::size_t operandStart,
                   const Env& env) const;

  // ---- Cost accounting ----
  void chargeKernel(const ir::Node& node, std::int64_t bytes,
                    std::int64_t flops);
  void chargeOpDispatch();
  struct MergeScope;  // accumulates kernels into batched launches

  /// One batched launch being accumulated: the j-th kernel of every
  /// ParallelMap iteration merges into slot j (a batched grid), matching
  /// what horizontal parallelization can actually launch. A FusionGroup
  /// contributes exactly one slot.
  struct MergedKernel {
    std::string name;
    std::int64_t bytes = 0;
    std::int64_t flops = 0;
  };

  struct SuppressScope;  // FusionGroup interiors: count flops, no kernels

  Profiler* profiler_;
  bool useTexpr_ = true;
  /// Compiled kernels, cached per FusionGroup node across runs.
  std::unordered_map<const ir::Node*, std::unique_ptr<texpr::Kernel>>
      kernels_;
  int mergeDepth_ = 0;
  std::size_t mergePos_ = 0;
  std::vector<MergedKernel> mergeSlots_;
  int suppressDepth_ = 0;
  std::int64_t suppressFlops_ = 0;
  std::int64_t suppressSavedBytes_ = 0;
  std::unordered_map<const ir::Block*, bool> blockHasFusion_;
};

/// Convenience: bytes footprint of a tensor.
inline std::int64_t tensorBytes(const Tensor& t) {
  return t.defined()
             ? t.numel() * static_cast<std::int64_t>(dtypeSize(t.dtype()))
             : 0;
}

}  // namespace tssa::runtime
