// Reference interpreter for graph-level IR.
//
// Executes a graph with *eager semantics*: view operators return aliasing
// tensors, mutation operators write through them, TensorSSA operators
// (Access/Assign) execute as their pure definitions, and FusionGroup /
// ParallelMap execute their bodies. This single executor therefore runs both
// the imperative input programs and every stage of their functionalized,
// fused forms — which is what lets tests assert bit-equal behaviour across
// the whole compilation pipeline.
//
// When a Profiler is attached, execution also produces the paper's metrics:
// kernel-launch counts and modelled latency. Fusion constructs are priced
// structurally (one launch; external bytes only), everything else per op.
//
// Threading (see DESIGN.md "Threading model"): with `threads > 1`, a
// tssa::ParallelMap whose converting pass attached `par_dims` metadata runs
// its iterations concurrently on the shared runtime ThreadPool — each worker
// executes whole iterations against a private environment clone and an
// ExecContext of its own, and writes its iterations' slices into
// pre-allocated output buffers (slices are disjoint by the pass's proof, so
// no locks are needed). Fused element-kernels likewise split their index
// space across the pool. `threads == 1` reproduces the serial executor
// bit-for-bit, and any thread count yields bitwise-identical tensors and
// identical profiler numbers.
#pragma once

#include <unordered_map>

#include <memory>
#include <mutex>

#include "src/analysis/liveness.h"
#include "src/ir/ir.h"
#include "src/runtime/profiler.h"
#include "src/runtime/rt_value.h"
#include "src/tensor/arena.h"
#include "src/texpr/texpr.h"

namespace tssa::runtime {

class Interpreter {
 public:
  /// `profiler` may be null (pure execution, e.g. in tests). When
  /// `useTexpr` is set (default), supported FusionGroup bodies execute
  /// through the tensor-expression kernel (single pass, no intermediates);
  /// otherwise bodies are interpreted node by node. Both paths are
  /// cross-checked for equality in tests. `threads` caps the worker count
  /// for parallel constructs: 1 (default) executes fully serially, 0 means
  /// ThreadPool::hardwareThreads(). `texprJit` lets texpr kernels lower to
  /// native code via src/texpr/jit.h (bitwise-identical; declines fall back
  /// to per-element interpretation).
  explicit Interpreter(Profiler* profiler = nullptr, bool useTexpr = true,
                       int threads = 1, bool texprJit = true)
      : profiler_(profiler), useTexpr_(useTexpr), texprJit_(texprJit) {
    setThreads(threads);
  }

  /// Worker-count cap for ParallelMap iteration batches and fused element
  /// kernels; 0 resolves to the hardware concurrency.
  void setThreads(int threads);
  int threads() const { return threads_; }

  /// Runs `graph` on `inputs` (one per graph input) and returns its outputs.
  std::vector<RtValue> run(const ir::Graph& graph,
                           std::span<const RtValue> inputs);

  /// Attaches a liveness plan (see src/analysis/liveness.h). Planned runs
  /// route intermediate allocations through arenas — one owned by the
  /// interpreter for the root context, one thread-local per pool worker —
  /// and recycle a value's storage at its death point when the refcount
  /// proves sole ownership, so steady-state runs allocate almost nothing.
  /// The plan must describe the same graph later passed to run() (a plan for
  /// a different graph is a safe no-op: its death lists never match) and
  /// must outlive the interpreter; nullptr disables planning. Planned runs
  /// of one interpreter must not overlap in time (Pipeline::run holds this
  /// by construction; the serve engine serializes runs per program).
  void setMemoryPlan(const analysis::MemoryPlan* plan) { plan_ = plan; }
  const analysis::MemoryPlan* memoryPlan() const { return plan_; }

 private:
  using Env = std::unordered_map<const ir::Value*, RtValue>;

  /// One batched launch being accumulated: the j-th kernel of every
  /// ParallelMap iteration merges into slot j (a batched grid), matching
  /// what horizontal parallelization can actually launch. A FusionGroup
  /// contributes exactly one slot.
  struct MergedKernel {
    std::string name;
    std::int64_t bytes = 0;
    std::int64_t flops = 0;
  };

  /// Per-execution-thread interpreter state. The root context belongs to the
  /// caller of run(); every ParallelMap worker gets a fresh context, which is
  /// what makes block execution re-entrant across threads. Cost accounting
  /// accumulates here and is only merged into the shared Profiler at
  /// single-threaded points (parallelFor barriers).
  struct ExecContext {
    int mergeDepth = 0;        ///< >0 inside a ParallelMap merge scope
    std::size_t mergePos = 0;  ///< next slot for the current iteration
    std::vector<MergedKernel> mergeSlots;
    int suppressDepth = 0;  ///< >0 inside an interpreted FusionGroup body
    std::int64_t suppressFlops = 0;
    std::int64_t suppressSavedBytes = 0;
    bool onWorker = false;  ///< true on pool threads (no nested parallelism)
    /// This context's buffer pool (null when planning is off). The root
    /// context uses the interpreter-owned arena; each pool worker uses its
    /// thread-local one, so parallel regions never contend on a free list.
    Arena* arena = nullptr;
  };

  void runBlockBody(const ir::Block& block, Env& env, ExecContext& ctx);
  std::vector<RtValue> blockReturns(const ir::Block& block, const Env& env);
  void execNode(const ir::Node& node, Env& env, ExecContext& ctx);

  /// Drops the bindings of every value whose last use was `node` and offers
  /// their storage to the context's arena (the arena re-verifies sole
  /// ownership before pooling anything).
  void releaseDead(const ir::Node& node, Env& env, ExecContext& ctx);

  /// Erases the env bindings of `block`-defined return values right after
  /// blockReturns copied them out: the copy becomes the canonical owner, so
  /// whoever drops it last (a loop rebind, a planned death of the consuming
  /// node's output) can prove sole ownership and recycle the buffer. Without
  /// this the stale binding pins the refcount above 1 until the block next
  /// executes.
  void dropReturnBindings(const ir::Block& block, Env& env);

  /// Recycles every remaining binding of a finished environment into
  /// ctx.arena. Inputs, outputs, and constants all survive: something
  /// outside the env still holds their storage, so the Arena's refcount
  /// guard refuses them.
  void recycleEnv(Env& env, ExecContext& ctx);

  /// The threaded ParallelMap path; returns false when the node lacks the
  /// pass metadata or a runtime precondition fails (caller then runs the
  /// serial path).
  bool tryParallelMap(const ir::Node& node, Env& env, ExecContext& ctx,
                      std::int64_t trip, const std::vector<RtValue>& carried);

  const RtValue& get(const ir::Value* v, const Env& env) const;
  Tensor tensorIn(const ir::Node& node, std::size_t i, const Env& env) const;
  Scalar scalarIn(const ir::Node& node, std::size_t i, const Env& env) const;

  /// Applies the view rule of `viewKind` to `base`; dynamic view operands
  /// (select index, slice bounds, "dyn" extents) start at node input
  /// `operandStart`.
  Tensor applyView(ir::OpKind viewKind, const ir::Node& node,
                   const Tensor& base, std::size_t operandStart,
                   const Env& env) const;

  /// The node's "sizes" attr with -1 placeholders bound from trailing scalar
  /// operands when the node carries the "dyn" marker (symbolic-dim graphs).
  /// Without "dyn", returns the attr untouched (-1 keeps reshape's static
  /// infer meaning).
  Shape resolvedSizes(const ir::Node& node, std::size_t operandStart,
                      const Env& env) const;

  /// Compiled texpr kernel for a FusionGroup node, cached across runs and
  /// threads (nullptr when the body is unsupported).
  texpr::Kernel* kernelFor(const ir::Node& node, const ir::Block& body);

  // ---- Cost accounting ----
  void chargeKernel(const ir::Node& node, std::int64_t bytes,
                    std::int64_t flops, ExecContext& ctx);
  void chargeOpDispatch(ExecContext& ctx);
  struct MergeScope;     // accumulates kernels into batched launches
  struct SuppressScope;  // FusionGroup interiors: count flops, no kernels

  Profiler* profiler_;
  bool useTexpr_ = true;
  bool texprJit_ = true;
  int threads_ = 1;
  const analysis::MemoryPlan* plan_ = nullptr;
  /// Root-context buffer pool, created lazily on the first planned run and
  /// kept across runs so steady-state executions reuse prior buffers.
  std::unique_ptr<Arena> arena_;
  /// Compiled kernels, cached per FusionGroup node across runs. Guarded by
  /// `kernelsMutex_`: ParallelMap workers may compile concurrently.
  std::unordered_map<const ir::Node*, std::unique_ptr<texpr::Kernel>>
      kernels_;
  std::mutex kernelsMutex_;
  std::unordered_map<const ir::Block*, bool> blockHasFusion_;
};

/// Convenience: bytes footprint of a tensor.
inline std::int64_t tensorBytes(const Tensor& t) {
  return t.defined()
             ? t.numel() * static_cast<std::int64_t>(dtypeSize(t.dtype()))
             : 0;
}

}  // namespace tssa::runtime
