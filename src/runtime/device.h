// Analytic GPU device model and host (framework) dispatch model.
//
// The paper evaluates on real NVIDIA GPUs; this reproduction substitutes an
// analytic cost model (see DESIGN.md §1). Each kernel costs
//
//   t_kernel = launch_overhead + max(bytes / bandwidth, flops / peak)
//
// and each framework-level action (op dispatch, loop iteration, graph-break
// region call) costs host time. Per-op simulated latency is
// max(host, kernel), modelling a pipelined host->device queue that is
// host-bound when dispatch is slower than the kernels it feeds — precisely
// the regime the paper's imperative post-processing programs live in.
//
// Numerics are never simulated: every pipeline really executes its program
// on the CPU tensor library and results are cross-checked in tests.
#pragma once

#include <cstdint>
#include <string>

namespace tssa::runtime {

/// GPU hardware parameters.
struct DeviceSpec {
  std::string name;
  double launchOverheadUs = 5.0;   ///< fixed cost per kernel launch
  double memBandwidthGBps = 500;   ///< DRAM streaming bandwidth
  double computeGFlops = 10000;    ///< fp32 peak
  double syncLatencyUs = 8.0;      ///< device-host synchronization latency

  /// Consumer platform of the paper (GTX 1660 Ti class).
  static DeviceSpec consumer() {
    return DeviceSpec{"consumer-1660ti", 8.0, 288.0, 5400.0, 12.0};
  }
  /// Data-center platform of the paper (RTX 3090 class).
  static DeviceSpec dataCenter() {
    return DeviceSpec{"datacenter-3090", 5.0, 936.0, 35600.0, 8.0};
  }

  /// Device specs are compared member-wise (program caches key on them).
  friend bool operator==(const DeviceSpec&, const DeviceSpec&) = default;

  /// Kernel execution time (µs) for a memory/compute footprint.
  double kernelTimeUs(std::int64_t bytes, std::int64_t flops) const {
    const double memUs =
        static_cast<double>(bytes) / (memBandwidthGBps * 1e3);  // GB/s = B/µs*1e3
    const double computeUs = static_cast<double>(flops) / (computeGFlops * 1e3);
    return launchOverheadUs + (memUs > computeUs ? memUs : computeUs);
  }
};

/// Framework dispatch-cost parameters; one preset per compared system.
struct HostSpec {
  std::string name;
  double perOpUs = 1.0;          ///< dispatching one operator
  double perLoopIterUs = 0.5;    ///< control-flow cost per loop iteration
  double perIfUs = 0.3;          ///< control-flow cost per branch
  double perRegionCallUs = 0.0;  ///< entering a compiled region (guards etc.)
  /// Python-driven dispatch serializes with kernel execution (no async
  /// pipelining): per-op cost is host + kernel rather than max(host, kernel).
  bool serialDispatch = false;

  /// PyTorch eager: Python dispatches every op.
  static HostSpec eagerPython() {
    return HostSpec{"eager", 4.5, 3.0, 1.5, 0.0, true};
  }
  /// TorchScript interpreter VM (used by +NNC / +nvFuser and by TensorSSA).
  static HostSpec torchscriptVm() {
    return HostSpec{"ts-vm", 1.2, 0.8, 0.4, 0.0, false};
  }
  /// TorchDynamo: generated kernels are dispatched through Python launcher
  /// wrappers (costlier per kernel than the TorchScript VM), control flow
  /// falls back to the Python interpreter, and every region entry pays guard
  /// checks.
  static HostSpec dynamoInductor() {
    return HostSpec{"dynamo", 3.5, 4.0, 2.0, 15.0, true};
  }
};

}  // namespace tssa::runtime
