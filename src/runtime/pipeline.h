// The five compared compilation pipelines (paper §5.1 "Baselines").
//
// Each pipeline clones the source program and applies the transformations
// that the corresponding real system is capable of (see DESIGN.md §3), then
// executes through the shared reference interpreter with that system's host
// dispatch model. Numerics are identical across pipelines by construction —
// tests assert it — only structure (fusion, functionalization scope) and the
// dispatch model differ, which is what produces the paper's metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/ir.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/profiler.h"

namespace tssa::runtime {

enum class PipelineKind {
  Eager,              ///< PyTorch eager: no compilation, Python dispatch
  TorchScriptNnc,     ///< TorchScript + NNC fuser
  TorchScriptNvfuser, ///< TorchScript + nvFuser
  DynamoInductor,     ///< TorchDynamo + TorchInductor (dataflow
                      ///< functionalization, graph breaks at control flow)
  TensorSsa,          ///< this paper: holistic functionalization + vertical
                      ///< fusion + horizontal parallelization
};

/// All kinds, in the order the paper's figures list them.
const std::vector<PipelineKind>& allPipelines();

std::string_view pipelineName(PipelineKind kind);

/// Knobs shared by every pipeline. `threads` caps the runtime worker count
/// used for ParallelMap iteration batches and fused element kernels:
/// 1 executes fully serially (bit-for-bit the historical behaviour), 0 means
/// ThreadPool::hardwareThreads(). Results and profiler numbers are identical
/// at any thread count — only wall-clock time changes.
struct PipelineOptions {
  DeviceSpec device = DeviceSpec::dataCenter();
  int threads = 1;
  bool useTexpr = true;
  /// Liveness-driven memory planning (src/analysis/liveness.h): intermediates
  /// are released at their last use and their buffers recycled through
  /// per-context arenas. Outputs are bitwise identical with the planner on
  /// or off — the differential suite cross-checks both modes — so this stays
  /// on by default; the toggle exists for that cross-check and for debugging.
  bool memoryPlan = true;
  /// Native codegen for fused element regions (src/texpr/jit.h): texpr
  /// kernels compile to shared objects at runtime and dispatch through a C
  /// ABI; unsupported patterns and toolchain failures decline back to the
  /// per-element interpreter. Results are bitwise identical either way (the
  /// differential fuzz suite enforces this), so it defaults on; the toggle
  /// exists for that cross-check and for toolchain-less deployments.
  bool texprJit = true;
  /// Cap on ops per fusion group (FusionPolicy::maxKernelOps): 0 keeps the
  /// unlimited heuristic; the autotuner sets small caps when the device
  /// model favours splitting long chains. Only affects pipelines that fuse.
  std::size_t fusionMaxOps = 0;
  /// Per-candidate-loop parallelization gate (see parallelizeLoops): bit i
  /// admits parallelizable loop i in discovery order. All-ones keeps the
  /// parallelize-everything heuristic. Only the TensorSSA pipeline
  /// parallelizes, so other kinds ignore it.
  std::uint64_t parallelizeMask = ~std::uint64_t{0};

  friend bool operator==(const PipelineOptions&,
                         const PipelineOptions&) = default;
};

/// Order-insensitive hash consistent with PipelineOptions::operator==, for
/// keying compiled-program caches (see src/serve/program_cache.h).
std::size_t hashValue(const PipelineOptions& options);

/// The host dispatch model `kind` executes (and is priced) under.
HostSpec hostSpecFor(PipelineKind kind);

/// Applies the capability envelope of `kind` to `graph` in place — the same
/// pass sequence the Pipeline constructor runs, exposed so the autotuner can
/// compile candidate configurations and price them with the analytic cost
/// model (src/analysis/cost.h) without constructing an executable Pipeline.
void compileGraph(PipelineKind kind, ir::Graph& graph,
                  const PipelineOptions& options = {});

class Pipeline {
 public:
  /// Compiles `source` for `kind` with explicit runtime options (device,
  /// thread count, backend choice). The source graph is not modified.
  Pipeline(PipelineKind kind, const ir::Graph& source,
           const PipelineOptions& options);

  /// Convenience: default options on `device`.
  Pipeline(PipelineKind kind, const ir::Graph& source,
           DeviceSpec device = DeviceSpec::dataCenter())
      : Pipeline(kind, source, PipelineOptions{std::move(device)}) {}

  PipelineKind kind() const { return kind_; }
  std::string_view name() const { return pipelineName(kind_); }

  /// Executes the compiled program. Profiling restarts on every call.
  std::vector<RtValue> run(std::span<const RtValue> inputs);
  /// Executes without resetting the profiler (for accumulating runs).
  std::vector<RtValue> runAccumulate(std::span<const RtValue> inputs);

  const Profiler& profiler() const { return profiler_; }
  const ir::Graph& compiled() const { return *graph_; }

  /// Installs a hook invoked on every kernel launch this pipeline performs
  /// (the serving engine's fault-injection seam — see Profiler::
  /// setLaunchProbe for the contract). Pass nullptr to clear.
  void setLaunchProbe(Profiler::LaunchProbe probe);

 private:
  PipelineKind kind_;
  std::unique_ptr<ir::Graph> graph_;
  Profiler profiler_;
  Interpreter interpreter_;
  /// Liveness plan for the compiled graph (null when options.memoryPlan is
  /// off). Owned here because its Node*/Value* keys reference `graph_`.
  std::unique_ptr<analysis::MemoryPlan> plan_;
};

}  // namespace tssa::runtime
