#include "src/runtime/interpreter.h"

#include <algorithm>
#include <optional>

#include "src/ir/printer.h"
#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/ops.h"

namespace tssa::runtime {

using ir::Node;
using ir::OpKind;

namespace {

/// Rough FLOP estimate for one elementwise-style kernel output.
std::int64_t ewiseFlops(const Tensor& out) { return out.numel(); }

}  // namespace

void Interpreter::setThreads(int threads) {
  threads_ = threads == 0 ? ThreadPool::hardwareThreads()
                          : std::max(threads, 1);
}

// ---- Merge scope: collapse kernels recorded inside into one launch ---------------

struct Interpreter::MergeScope {
  explicit MergeScope(ExecContext& ctx) : ctx_(ctx) { ++ctx_.mergeDepth; }
  ~MergeScope() { --ctx_.mergeDepth; }
  MergeScope(const MergeScope&) = delete;
  MergeScope& operator=(const MergeScope&) = delete;
  ExecContext& ctx_;
};

// Inside a FusionGroup body: no kernels are recorded, only the per-element
// op count (the group itself is priced as one kernel by its caller).
struct Interpreter::SuppressScope {
  explicit SuppressScope(ExecContext& ctx) : ctx_(ctx) {
    ++ctx_.suppressDepth;
    saved_ = ctx_.suppressFlops;
    savedBytes_ = ctx_.suppressSavedBytes;
    ctx_.suppressFlops = 0;
    ctx_.suppressSavedBytes = 0;
  }
  ~SuppressScope() {
    ctx_.suppressFlops = saved_;
    ctx_.suppressSavedBytes = savedBytes_;
    --ctx_.suppressDepth;
  }
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
  ExecContext& ctx_;
  std::int64_t saved_ = 0;
  std::int64_t savedBytes_ = 0;
};

void Interpreter::chargeKernel(const Node& node, std::int64_t bytes,
                               std::int64_t flops, ExecContext& ctx) {
  if (profiler_ == nullptr) return;
  if (ctx.suppressDepth > 0) {
    ctx.suppressFlops += flops;
    return;
  }
  if (ctx.mergeDepth > 0) {
    if (ctx.mergePos >= ctx.mergeSlots.size()) {
      ctx.mergeSlots.push_back(
          MergedKernel{std::string(opName(node.kind())), 0, 0});
    }
    ctx.mergeSlots[ctx.mergePos].bytes += bytes;
    ctx.mergeSlots[ctx.mergePos].flops += flops;
    ++ctx.mergePos;
    return;
  }
  profiler_->kernel(opName(node.kind()), bytes, flops,
                    profiler_->host().perOpUs);
}

void Interpreter::chargeOpDispatch(ExecContext& ctx) {
  if (profiler_ == nullptr || ctx.mergeDepth > 0) return;
  profiler_->opDispatch();
}

// ---- Entry ----------------------------------------------------------------------------

std::vector<RtValue> Interpreter::run(const ir::Graph& graph,
                                      std::span<const RtValue> inputs) {
  TSSA_CHECK(inputs.size() == graph.inputs().size(),
             "expected " << graph.inputs().size() << " inputs, got "
                         << inputs.size());
  obs::TraceSpan runSpan("exec", "Interpreter.run");
  runSpan.arg("threads", threads_);
  Env env;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    env[graph.inputs()[i]] = inputs[i];
  ExecContext ctx;
  // With a plan attached, publish the root arena for the whole run:
  // Tensor::empty then draws intermediates from the pool. Graph inputs and
  // outputs are held by the caller (refcount > 1), so they are never pooled
  // and nothing a caller sees ever aliases arena memory.
  std::optional<Arena::Scope> arenaScope;
  Arena::Stats before;
  if (plan_ != nullptr) {
    if (arena_ == nullptr) arena_ = std::make_unique<Arena>();
    ctx.arena = arena_.get();
    before = arena_->stats();
    arenaScope.emplace(arena_.get());
  }
  runBlockBody(*graph.topBlock(), env, ctx);
  std::vector<RtValue> outs = blockReturns(*graph.topBlock(), env);
  // Sweep what is still bound (escaped-to-return values, stale branch
  // bindings) into the pool so the next run of this program starts warm;
  // `outs`, the caller's inputs, and constants keep their storage alive and
  // are refused by the refcount guard.
  recycleEnv(env, ctx);
  if (plan_ != nullptr && profiler_ != nullptr) {
    const Arena::Stats delta = arena_->stats() - before;
    profiler_->memory(delta.freshAllocs, delta.reusedAllocs, delta.freshBytes,
                      delta.reusedBytes, delta.recycled, delta.recycleMisses);
  }
  return outs;
}

void Interpreter::runBlockBody(const ir::Block& block, Env& env,
                               ExecContext& ctx) {
  // Graph-break model: entering a block whose compiled segment contains
  // generated kernels costs one region call (guard checks, Python resume).
  if (profiler_ != nullptr && ctx.mergeDepth == 0 && ctx.suppressDepth == 0 &&
      !ctx.onWorker && profiler_->host().perRegionCallUs > 0) {
    auto it = blockHasFusion_.find(&block);
    if (it == blockHasFusion_.end()) {
      bool has = false;
      for (const Node* node : block) {
        if (node->kind() == OpKind::FusionGroup) {
          has = true;
          break;
        }
      }
      it = blockHasFusion_.emplace(&block, has).first;
    }
    if (it->second) profiler_->regionCall();
  }
  for (const Node* node : block) {
    execNode(*node, env, ctx);
    if (plan_ != nullptr) releaseDead(*node, env, ctx);
  }
}

void Interpreter::releaseDead(const Node& node, Env& env, ExecContext& ctx) {
  (void)ctx;
  const std::vector<const ir::Value*>* dead = plan_->deathsFor(&node);
  if (dead == nullptr) return;
  for (const ir::Value* v : *dead) {
    auto it = env.find(v);
    // Not bound: the value lives in a branch that was not taken, or the plan
    // belongs to another graph. Either way there is nothing to drop.
    if (it == env.end()) continue;
    // Erasing the binding is the release: if it was the last owner, the
    // Storage destructor donates the buffer to the scope-current arena.
    env.erase(it);
  }
}

void Interpreter::dropReturnBindings(const ir::Block& block, Env& env) {
  for (const ir::Value* r : block.returns()) {
    // Values from an outer scope stay bound — later nodes may read them.
    if (r->definingBlock() != &block) continue;
    auto it = env.find(r);
    if (it != env.end()) env.erase(it);
  }
}

void Interpreter::recycleEnv(Env& env, ExecContext& ctx) {
  (void)ctx;
  // Dropping the bindings donates every solely-owned buffer to the
  // scope-current arena (via ~Storage); without an active scope this is a
  // plain clear. Values still referenced from outside — the returned
  // outputs, the caller's inputs, constants — survive untouched.
  env.clear();
}

std::vector<RtValue> Interpreter::blockReturns(const ir::Block& block,
                                               const Env& env) {
  std::vector<RtValue> out;
  out.reserve(block.numReturns());
  for (const ir::Value* r : block.returns()) out.push_back(get(r, env));
  return out;
}

const RtValue& Interpreter::get(const ir::Value* v, const Env& env) const {
  auto it = env.find(v);
  TSSA_CHECK(it != env.end(), "value %" << v->id() << " not bound");
  return it->second;
}

Tensor Interpreter::tensorIn(const Node& node, std::size_t i,
                             const Env& env) const {
  return get(node.input(i), env).tensor();
}

Scalar Interpreter::scalarIn(const Node& node, std::size_t i,
                             const Env& env) const {
  return get(node.input(i), env).scalar();
}

// ---- View application --------------------------------------------------------------------

Tensor Interpreter::applyView(OpKind viewKind, const Node& node,
                              const Tensor& base, std::size_t operandStart,
                              const Env& env) const {
  const auto& attrs = node.attrs();
  switch (viewKind) {
    case OpKind::Identity:
      return base;
    case OpKind::Select:
      return base.select(attrs.i("dim"),
                         scalarIn(node, operandStart, env).toInt());
    case OpKind::Slice:
      return base.slice(attrs.i("dim"),
                        scalarIn(node, operandStart, env).toInt(),
                        scalarIn(node, operandStart + 1, env).toInt(),
                        attrs.i("step"));
    case OpKind::Reshape: {
      Shape sizes = resolvedSizes(node, operandStart, env);
      return base.isContiguous() ? base.view(std::move(sizes))
                                 : base.reshape(std::move(sizes));
    }
    case OpKind::Permute:
      return base.permute(attrs.ints("dims"));
    case OpKind::Transpose:
      return base.transpose(attrs.i("dim0"), attrs.i("dim1"));
    case OpKind::Expand:
      return base.expand(resolvedSizes(node, operandStart, env));
    case OpKind::Squeeze:
      return base.squeeze(attrs.i("dim"));
    case OpKind::Unsqueeze:
      return base.unsqueeze(attrs.i("dim"));
    case OpKind::Flatten:
      return base.flatten(attrs.i("start_dim"), attrs.i("end_dim"));
    default:
      TSSA_THROW("not a view kind: " << opName(viewKind));
  }
}

Shape Interpreter::resolvedSizes(const Node& node, std::size_t operandStart,
                                 const Env& env) const {
  Shape sizes = node.attrs().ints("sizes");
  if (!node.attrs().has("dyn")) return sizes;
  // Symbolic-dim graphs leave runtime extents as -1 placeholders bound from
  // trailing scalar operands, in order (IRBuilder's dynamic-size overloads).
  std::size_t k = operandStart;
  for (std::int64_t& s : sizes) {
    if (s != -1) continue;
    TSSA_CHECK(k < node.numInputs(), "dyn sizes: missing extent operand");
    s = scalarIn(node, k++, env).toInt();
    TSSA_CHECK(s >= 0, "dyn sizes: negative runtime extent " << s);
  }
  return sizes;
}

// ---- Fusion kernel cache -----------------------------------------------------------------

texpr::Kernel* Interpreter::kernelFor(const Node& node,
                                      const ir::Block& body) {
  std::lock_guard<std::mutex> lock(kernelsMutex_);
  auto it = kernels_.find(&node);
  if (it == kernels_.end()) {
    std::unique_ptr<texpr::Kernel> compiled;
    if (texpr::Kernel::supports(body))
      compiled = std::make_unique<texpr::Kernel>(body, texprJit_);
    it = kernels_.emplace(&node, std::move(compiled)).first;
  }
  return it->second.get();
}

// ---- Threaded ParallelMap ----------------------------------------------------------------

bool Interpreter::tryParallelMap(const Node& node, Env& env, ExecContext& ctx,
                                 std::int64_t trip,
                                 const std::vector<RtValue>& carried) {
  // Preconditions: a worker budget, top-level context (a ParallelMap cannot
  // nest inside another one's body, but be defensive), and the converting
  // pass's independence proof attached as metadata.
  if (threads_ <= 1 || trip <= 1 || ctx.onWorker || ctx.mergeDepth > 0 ||
      ctx.suppressDepth > 0) {
    return false;
  }
  if (!node.attrs().has("par_dims")) return false;
  const std::vector<std::int64_t>& dims = node.attrs().ints("par_dims");
  if (dims.size() != carried.size()) return false;
  for (std::size_t k = 0; k < carried.size(); ++k) {
    if (dims[k] < 0) continue;  // read-only pass-through
    if (!carried[k].isTensor()) return false;
    const Tensor& t = carried[k].tensor();
    // Every iteration writes slice `i` of this dimension, so the extent must
    // cover the trip count (the serial path would throw out-of-range too —
    // let it produce that error).
    if (dims[k] >= t.dim() || t.size(dims[k]) < trip) return false;
  }

  const ir::Block& body = *node.block(0);

  // Pre-allocated output slots. Written slots get a private buffer cloned
  // from the carried input: slices the loop never writes (trip < extent)
  // keep their input values, exactly as in serial execution. The clone is an
  // execution artifact of the threaded engine, not a modelled kernel — the
  // profiler charge below is derived purely from the merged slots, matching
  // the serial path bit-for-bit.
  std::vector<RtValue> outs(carried.size());
  for (std::size_t k = 0; k < carried.size(); ++k)
    outs[k] = dims[k] >= 0 ? RtValue(carried[k].tensor().clone()) : carried[k];

  const int workers =
      static_cast<int>(std::min<std::int64_t>(threads_, trip));
  std::vector<std::vector<MergedKernel>> workerSlots(
      static_cast<std::size_t>(workers));
  std::vector<Arena::Stats> workerArenaDeltas(static_cast<std::size_t>(workers));

  ThreadPool::shared().parallelFor(
      trip, workers, [&](std::int64_t begin, std::int64_t end, int chunk) {
        // Worker-side span: one per chunk, on the executing thread's
        // timeline — this is what makes thread utilization visible in the
        // trace (idle workers show as gaps between chunk spans).
        obs::TraceSpan chunkSpan("exec", "ParallelMap.chunk");
        chunkSpan.arg("chunk", chunk);
        chunkSpan.arg("begin", begin);
        chunkSpan.arg("end", end);
        // Private environment: binding values is cheap (tensors are views).
        // Iterations of this chunk run serially against it, exactly like the
        // serial executor, but read the ParallelMap's *input* versions of
        // the carried values — legal because the pass proved each iteration
        // touches only its own slice.
        Env wenv = env;
        ExecContext wctx;
        wctx.onWorker = true;
        // Planned runs give each worker its own thread-local arena (no
        // contention); the Scope nests over whatever arena the calling
        // thread had published, which matters when the helping barrier runs
        // a chunk on the root thread.
        std::optional<Arena::Scope> warenaScope;
        Arena::Stats wbefore;
        if (plan_ != nullptr) {
          wctx.arena = &Arena::threadLocal();
          wbefore = wctx.arena->stats();
          warenaScope.emplace(wctx.arena);
        }
        MergeScope merge(wctx);
        for (std::int64_t it = begin; it < end; ++it) {
          wctx.mergePos = 0;  // kernel j of every iteration shares launch j
          wenv[body.param(0)] = Scalar(it);
          for (std::size_t k = 0; k < carried.size(); ++k)
            wenv[body.param(k + 1)] = carried[k];
          runBlockBody(body, wenv, wctx);
          std::vector<RtValue> rets = blockReturns(body, wenv);
          if (wctx.arena != nullptr) dropReturnBindings(body, wenv);
          for (std::size_t k = 0; k < carried.size(); ++k) {
            if (dims[k] < 0) continue;
            // This iteration owns slice `it` exclusively — lock-free write.
            Tensor dst = outs[k].tensor().select(dims[k], it);
            dst.copy_(rets[k].tensor().select(dims[k], it));
          }
          // `rets` dies here: the per-iteration results were copied into the
          // shared output slots above, so their buffers flow back into this
          // worker's pool for the next iteration (pass-through carried
          // values stay shared with the caller and are not donated).
        }
        recycleEnv(wenv, wctx);
        workerSlots[static_cast<std::size_t>(chunk)] =
            std::move(wctx.mergeSlots);
        if (wctx.arena != nullptr)
          workerArenaDeltas[static_cast<std::size_t>(chunk)] +=
              wctx.arena->stats() - wbefore;
      });

  // Deterministic slot merge: chunk order, position-wise. Every iteration
  // records the same kernel sequence (the body has no control flow), so this
  // reproduces the serial accumulation exactly.
  std::vector<MergedKernel> slots;
  for (const std::vector<MergedKernel>& ws : workerSlots) {
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (j >= slots.size()) slots.push_back(MergedKernel{ws[j].name, 0, 0});
      slots[j].bytes += ws[j].bytes;
      slots[j].flops += ws[j].flops;
    }
  }
  if (profiler_ != nullptr) {
    for (const MergedKernel& slot : slots) {
      profiler_->kernel("tssa::ParallelMap(" + slot.name + ")", slot.bytes,
                        slot.flops, profiler_->host().perOpUs);
    }
    if (plan_ != nullptr) {
      // Worker-arena traffic, merged at the barrier (a single-threaded
      // point). Unlike launch counts, the fresh/reuse split legitimately
      // varies with the thread count — each worker warms its own pool.
      Arena::Stats total;
      for (const Arena::Stats& d : workerArenaDeltas) total += d;
      profiler_->memory(total.freshAllocs, total.reusedAllocs,
                        total.freshBytes, total.reusedBytes, total.recycled,
                        total.recycleMisses);
    }
  }
  for (std::size_t k = 0; k < outs.size(); ++k)
    env[node.output(k)] = std::move(outs[k]);
  return true;
}

// ---- Node execution ----------------------------------------------------------------------

void Interpreter::execNode(const Node& node, Env& env, ExecContext& ctx) {
  const OpKind kind = node.kind();
  const auto& attrs = node.attrs();

  auto bindOut = [&](std::size_t i, RtValue v) {
    env[node.output(i)] = std::move(v);
  };

  // Elementwise binary compute.
  auto evalBinary = [&](auto&& fn) {
    Tensor a = tensorIn(node, 0, env);
    Tensor b = tensorIn(node, 1, env);
    Tensor out = fn(a, b);
    chargeKernel(node, tensorBytes(a) + tensorBytes(b) + tensorBytes(out),
                 ewiseFlops(out), ctx);
    bindOut(0, std::move(out));
  };
  auto evalUnary = [&](auto&& fn) {
    Tensor a = tensorIn(node, 0, env);
    Tensor out = fn(a);
    chargeKernel(node, tensorBytes(a) + tensorBytes(out), ewiseFlops(out),
                 ctx);
    bindOut(0, std::move(out));
  };
  // In-place op: compute pure equivalent, write through the target view.
  // PyTorch semantics: one kernel, result aliases the target.
  auto evalInplace = [&](auto&& fn) {
    Tensor target = tensorIn(node, 0, env);
    Tensor result = fn(target);
    target.copy_(result);
    chargeKernel(node, 2 * tensorBytes(target), ewiseFlops(target), ctx);
    bindOut(0, target);
  };

  switch (kind) {
    // ---- structural -------------------------------------------------------
    case OpKind::Constant:
      if (attrs.has("tensor")) {
        bindOut(0, attrs.tensor("tensor"));
      } else {
        bindOut(0, attrs.scalar("value"));
      }
      return;
    case OpKind::ListConstruct: {
      std::vector<Tensor> list;
      for (std::size_t i = 0; i < node.numInputs(); ++i)
        list.push_back(tensorIn(node, i, env));
      chargeOpDispatch(ctx);
      bindOut(0, std::move(list));
      return;
    }
    case OpKind::ListIndex: {
      const auto& list = get(node.input(0), env).list();
      const std::int64_t i = scalarIn(node, 1, env).toInt();
      TSSA_CHECK(i >= 0 && i < static_cast<std::int64_t>(list.size()),
                 "list index out of range");
      chargeOpDispatch(ctx);
      bindOut(0, list[static_cast<std::size_t>(i)]);
      return;
    }
    case OpKind::Return:
      TSSA_THROW("return sentinel must not be executed");
    case OpKind::Update:
      TSSA_THROW("tssa::update is annotation-only and must be removed "
                 "before execution");

    // ---- control flow -----------------------------------------------------
    case OpKind::If: {
      const bool cond = scalarIn(node, 0, env).toBool();
      if (profiler_ != nullptr && ctx.mergeDepth == 0) profiler_->branch();
      const ir::Block& block = *node.block(cond ? 0 : 1);
      runBlockBody(block, env, ctx);
      auto rets = blockReturns(block, env);
      // Re-home the branch returns onto the If's outputs: keeping the
      // branch-local binding too would pin the refcount when the output's
      // planned death tries to recycle.
      if (ctx.arena != nullptr) dropReturnBindings(block, env);
      for (std::size_t i = 0; i < rets.size(); ++i)
        bindOut(i, std::move(rets[i]));
      return;
    }
    case OpKind::Loop: {
      const std::int64_t trip = scalarIn(node, 0, env).toInt();
      const ir::Block& body = *node.block(0);
      std::vector<RtValue> carried;
      for (std::size_t i = 1; i < node.numInputs(); ++i)
        carried.push_back(get(node.input(i), env));
      for (std::int64_t it = 0; it < trip; ++it) {
        if (profiler_ != nullptr && ctx.mergeDepth == 0)
          profiler_->loopIteration();
        env[body.param(0)] = Scalar(it);
        for (std::size_t i = 0; i < carried.size(); ++i) {
          // The previous iteration's carried value dies at this rebind (its
          // planned "death" is escape via the body Return, which the copy in
          // `carried` satisfied). First iteration / shared buffers are safe:
          // the initial values are still referenced from the outer env, so
          // recycle refuses them.
          // Move, don't copy: a copy left in `carried` would pin the
          // refcount at 2 for the whole body, so the param's planned death
          // could never free the buffer. The overwrite also drops any stale
          // binding a param without a planned death still holds.
          env[body.param(i + 1)] = std::move(carried[i]);
        }
        runBlockBody(body, env, ctx);
        carried = blockReturns(body, env);
        if (ctx.arena != nullptr) dropReturnBindings(body, env);
      }
      for (std::size_t i = 0; i < carried.size(); ++i)
        bindOut(i, std::move(carried[i]));
      return;
    }
    case OpKind::ParallelMap: {
      // Semantics of Loop, executed as one batched kernel: the horizontal
      // parallelization result (§4.2.2). Iterations are independent by
      // construction (the pass proved it), so the threaded engine really
      // runs them concurrently; without metadata or a worker budget the
      // serial walk below executes the same batched-launch pricing.
      const std::int64_t trip = scalarIn(node, 0, env).toInt();
      const ir::Block& body = *node.block(0);
      std::vector<RtValue> carried;
      for (std::size_t i = 1; i < node.numInputs(); ++i)
        carried.push_back(get(node.input(i), env));
      obs::TraceSpan span("exec", "ParallelMap");
      span.arg("trip", trip);
      if (tryParallelMap(node, env, ctx, trip, carried)) {
        span.arg("threaded", std::int64_t{1});
        span.arg("workers",
                 static_cast<std::int64_t>(
                     std::min<std::int64_t>(threads_, trip)));
        return;
      }
      span.arg("threaded", std::int64_t{0});
      std::vector<MergedKernel> slots;
      {
        MergeScope merge(ctx);
        for (std::int64_t it = 0; it < trip; ++it) {
          ctx.mergePos = 0;  // kernel j of every iteration shares launch j
          env[body.param(0)] = Scalar(it);
          for (std::size_t i = 0; i < carried.size(); ++i) {
            // Move for the same reason as the Loop path: the serial
            // ParallelMap walk also chains versions iteration-to-iteration.
            env[body.param(i + 1)] = std::move(carried[i]);
          }
          runBlockBody(body, env, ctx);
          carried = blockReturns(body, env);
          if (ctx.arena != nullptr) dropReturnBindings(body, env);
        }
        slots.swap(ctx.mergeSlots);
      }
      if (profiler_ != nullptr && ctx.mergeDepth == 0) {
        for (const MergedKernel& slot : slots) {
          profiler_->kernel("tssa::ParallelMap(" + slot.name + ")",
                            slot.bytes, slot.flops,
                            profiler_->host().perOpUs);
        }
      }
      for (std::size_t i = 0; i < carried.size(); ++i)
        bindOut(i, std::move(carried[i]));
      return;
    }
    case OpKind::FusionGroup: {
      // One kernel. External traffic only: inputs + outputs; intermediates
      // live in registers of the generated kernel.
      obs::TraceSpan span("exec", "FusionGroup");
      const ir::Block& body = *node.block(0);
      std::int64_t bytes = 0;
      std::vector<RtValue> groupInputs;
      groupInputs.reserve(node.numInputs());
      for (std::size_t i = 0; i < node.numInputs(); ++i) {
        const RtValue& v = get(node.input(i), env);
        if (v.isTensor()) bytes += tensorBytes(v.tensor());
        groupInputs.push_back(v);
      }

      // Prefer the tensor-expression kernel (the NNC-substitute backend);
      // bodies it cannot express fall back to per-node interpretation.
      texpr::Kernel* kernel =
          useTexpr_ ? kernelFor(node, body) : nullptr;

      std::vector<RtValue> rets;
      std::int64_t flops = 0;
      std::int64_t savedBytes = 0;
      if (kernel != nullptr) {
        texpr::Kernel::RunStats stats;
        // Pool workers must not recurse into the pool: a ParallelMap body's
        // fused kernels run single-threaded inside their iteration.
        rets = kernel->run(groupInputs, &stats, ctx.onWorker ? 1 : threads_);
        flops = stats.flops;
        savedBytes = stats.savedBytes;
      } else {
        for (std::size_t i = 0; i < node.numInputs(); ++i)
          env[body.param(i)] = groupInputs[i];
        SuppressScope suppress(ctx);
        runBlockBody(body, env, ctx);
        flops = ctx.suppressFlops;
        savedBytes = ctx.suppressSavedBytes;
        rets = blockReturns(body, env);
        if (ctx.arena != nullptr) dropReturnBindings(body, env);
      }
      for (const RtValue& r : rets) {
        if (r.isTensor()) bytes += tensorBytes(r.tensor());
      }
      bytes = std::max<std::int64_t>(0, bytes - savedBytes);
      if (span.active()) {
        span.arg("backend", kernel != nullptr ? "texpr" : "interp");
        span.arg("bytes", bytes);
        span.arg("flops", flops);
      }
      if (profiler_ != nullptr) chargeKernel(node, bytes, flops, ctx);
      for (std::size_t i = 0; i < rets.size(); ++i)
        bindOut(i, std::move(rets[i]));
      return;
    }

    // ---- scalar arithmetic --------------------------------------------------
    case OpKind::ScalarAdd:
    case OpKind::ScalarSub:
    case OpKind::ScalarMul:
    case OpKind::ScalarMod:
    case OpKind::ScalarMin:
    case OpKind::ScalarMax: {
      const Scalar a = scalarIn(node, 0, env);
      const Scalar b = scalarIn(node, 1, env);
      chargeOpDispatch(ctx);
      if (a.isFloat() || b.isFloat()) {
        const double x = a.toDouble(), y = b.toDouble();
        double r = 0;
        switch (kind) {
          case OpKind::ScalarAdd: r = x + y; break;
          case OpKind::ScalarSub: r = x - y; break;
          case OpKind::ScalarMul: r = x * y; break;
          case OpKind::ScalarMin: r = std::min(x, y); break;
          case OpKind::ScalarMax: r = std::max(x, y); break;
          default: TSSA_THROW("mod of float scalars");
        }
        bindOut(0, Scalar(r));
      } else {
        const std::int64_t x = a.toInt(), y = b.toInt();
        std::int64_t r = 0;
        switch (kind) {
          case OpKind::ScalarAdd: r = x + y; break;
          case OpKind::ScalarSub: r = x - y; break;
          case OpKind::ScalarMul: r = x * y; break;
          case OpKind::ScalarMod: TSSA_CHECK(y != 0, "mod by zero"); r = x % y; break;
          case OpKind::ScalarMin: r = std::min(x, y); break;
          case OpKind::ScalarMax: r = std::max(x, y); break;
          default: break;
        }
        bindOut(0, Scalar(r));
      }
      return;
    }
    case OpKind::SizeOf: {
      // Reads the runtime extent off the tensor: the binding step that makes
      // a symbolically-shaped graph concrete (trip counts, factory sizes).
      const Tensor t = tensorIn(node, 0, env);
      std::int64_t d = attrs.i("dim");
      if (d < 0) d += static_cast<std::int64_t>(t.sizes().size());
      chargeOpDispatch(ctx);
      bindOut(0, Scalar(t.size(d)));
      return;
    }
    case OpKind::ScalarLt:
    case OpKind::ScalarLe:
    case OpKind::ScalarGt:
    case OpKind::ScalarGe:
    case OpKind::ScalarEq:
    case OpKind::ScalarNe: {
      const double x = scalarIn(node, 0, env).toDouble();
      const double y = scalarIn(node, 1, env).toDouble();
      chargeOpDispatch(ctx);
      bool r = false;
      switch (kind) {
        case OpKind::ScalarLt: r = x < y; break;
        case OpKind::ScalarLe: r = x <= y; break;
        case OpKind::ScalarGt: r = x > y; break;
        case OpKind::ScalarGe: r = x >= y; break;
        case OpKind::ScalarEq: r = x == y; break;
        case OpKind::ScalarNe: r = x != y; break;
        default: break;
      }
      bindOut(0, Scalar(r));
      return;
    }

    // ---- elementwise binary -------------------------------------------------
    case OpKind::Add: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::add(a, b); });
    case OpKind::Sub: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::sub(a, b); });
    case OpKind::Mul: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::mul(a, b); });
    case OpKind::Div: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::div(a, b); });
    case OpKind::Pow: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::pow(a, b); });
    case OpKind::Minimum: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::minimum(a, b); });
    case OpKind::Maximum: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::maximum(a, b); });
    case OpKind::Eq: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::eq(a, b); });
    case OpKind::Ne: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::ne(a, b); });
    case OpKind::Lt: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::lt(a, b); });
    case OpKind::Le: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::le(a, b); });
    case OpKind::Gt: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::gt(a, b); });
    case OpKind::Ge: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::ge(a, b); });
    case OpKind::LogicalAnd: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::logicalAnd(a, b); });
    case OpKind::LogicalOr: return evalBinary([](const Tensor& a, const Tensor& b) { return ops::logicalOr(a, b); });

    // ---- elementwise unary -----------------------------------------------------
    case OpKind::Neg: return evalUnary([](const Tensor& a) { return ops::neg(a); });
    case OpKind::Exp: return evalUnary([](const Tensor& a) { return ops::exp(a); });
    case OpKind::Log: return evalUnary([](const Tensor& a) { return ops::log(a); });
    case OpKind::Sqrt: return evalUnary([](const Tensor& a) { return ops::sqrt(a); });
    case OpKind::Abs: return evalUnary([](const Tensor& a) { return ops::abs(a); });
    case OpKind::Sigmoid: return evalUnary([](const Tensor& a) { return ops::sigmoid(a); });
    case OpKind::Tanh: return evalUnary([](const Tensor& a) { return ops::tanh(a); });
    case OpKind::Relu: return evalUnary([](const Tensor& a) { return ops::relu(a); });
    case OpKind::LogicalNot: return evalUnary([](const Tensor& a) { return ops::logicalNot(a); });
    case OpKind::Clamp:
      return evalUnary([&](const Tensor& a) {
        return ops::clamp(a, attrs.scalar("lo"), attrs.scalar("hi"));
      });
    case OpKind::Cast:
      return evalUnary([&](const Tensor& a) { return a.to(attrs.dtype("dtype")); });

    // ---- elementwise n-ary --------------------------------------------------------
    case OpKind::Where: {
      Tensor c = tensorIn(node, 0, env);
      Tensor a = tensorIn(node, 1, env);
      Tensor b = tensorIn(node, 2, env);
      Tensor out = ops::where(c, a, b);
      chargeKernel(node,
                   tensorBytes(c) + tensorBytes(a) + tensorBytes(b) +
                       tensorBytes(out),
                   ewiseFlops(out), ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::MaskedFill: {
      Tensor a = tensorIn(node, 0, env);
      Tensor mask = tensorIn(node, 1, env);
      const Scalar v = scalarIn(node, 2, env);
      Tensor out = ops::maskedFill(a, mask, v);
      chargeKernel(node, tensorBytes(a) + tensorBytes(mask) + tensorBytes(out),
                   ewiseFlops(out), ctx);
      bindOut(0, std::move(out));
      return;
    }

    // ---- reductions -------------------------------------------------------------
    case OpKind::Sum: {
      Tensor a = tensorIn(node, 0, env);
      Tensor out = ops::sum(a);
      chargeKernel(node, tensorBytes(a), a.numel(), ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::SumDim:
    case OpKind::Mean:
    case OpKind::MaxDim:
    case OpKind::MinDim:
    case OpKind::Argmax: {
      Tensor a = tensorIn(node, 0, env);
      const std::int64_t dim = attrs.i("dim");
      const bool keep = attrs.bOr("keepdim", false);
      Tensor out;
      switch (kind) {
        case OpKind::SumDim: out = ops::sum(a, dim, keep); break;
        case OpKind::Mean: out = ops::mean(a, dim, keep); break;
        case OpKind::MaxDim: out = ops::maxReduce(a, dim, keep); break;
        case OpKind::MinDim: out = ops::minReduce(a, dim, keep); break;
        case OpKind::Argmax: out = ops::argmax(a, dim, keep); break;
        default: break;
      }
      chargeKernel(node, tensorBytes(a) + tensorBytes(out), a.numel(), ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Softmax: {
      Tensor a = tensorIn(node, 0, env);
      Tensor out = ops::softmax(a, attrs.i("dim"));
      chargeKernel(node, 2 * tensorBytes(a) + tensorBytes(out), 5 * a.numel(),
                   ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Cumsum: {
      Tensor a = tensorIn(node, 0, env);
      Tensor out = ops::cumsum(a, attrs.i("dim"));
      chargeKernel(node, tensorBytes(a) + tensorBytes(out), a.numel(), ctx);
      bindOut(0, std::move(out));
      return;
    }

    // ---- linear algebra ------------------------------------------------------------
    case OpKind::Matmul: {
      Tensor a = tensorIn(node, 0, env);
      Tensor b = tensorIn(node, 1, env);
      Tensor out = ops::matmul(a, b);
      const std::int64_t flops =
          a.dim() == 2 ? 2 * a.size(0) * a.size(1) * b.size(b.dim() - 1)
                       : 2 * a.size(0) * a.size(1) * a.size(2) * b.size(2);
      chargeKernel(node, tensorBytes(a) + tensorBytes(b) + tensorBytes(out),
                   flops, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Bmm: {
      Tensor a = tensorIn(node, 0, env);
      Tensor b = tensorIn(node, 1, env);
      Tensor out = ops::bmm(a, b);
      chargeKernel(node, tensorBytes(a) + tensorBytes(b) + tensorBytes(out),
                   2 * a.size(0) * a.size(1) * a.size(2) * b.size(2), ctx);
      bindOut(0, std::move(out));
      return;
    }

    // ---- shape / data movement --------------------------------------------------------
    case OpKind::Cat:
    case OpKind::Stack: {
      const auto& list = get(node.input(0), env).list();
      const std::int64_t dim = attrs.i("dim");
      Tensor out = kind == OpKind::Cat ? ops::cat(list, dim)
                                       : ops::stack(list, dim);
      chargeKernel(node, 2 * tensorBytes(out), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::IndexSelect: {
      Tensor a = tensorIn(node, 0, env);
      Tensor idx = tensorIn(node, 1, env);
      Tensor out = ops::indexSelect(a, attrs.i("dim"), idx);
      chargeKernel(node, tensorBytes(out) * 2 + tensorBytes(idx), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Gather: {
      Tensor a = tensorIn(node, 0, env);
      Tensor idx = tensorIn(node, 1, env);
      Tensor out = ops::gather(a, attrs.i("dim"), idx);
      chargeKernel(node, tensorBytes(out) * 2 + tensorBytes(idx), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Topk: {
      // GPU selection/sort runs as a multi-pass primitive (CUB-style) with
      // host synchronization between stages: model it as four dependent
      // kernels plus two device syncs.
      Tensor a = tensorIn(node, 0, env);
      auto [values, indices] = ops::topk(a, attrs.i("k"));
      for (int pass = 0; pass < 4; ++pass) {
        chargeKernel(node, tensorBytes(a) + tensorBytes(values), a.numel(),
                     ctx);
      }
      if (profiler_ != nullptr && ctx.mergeDepth == 0 &&
          ctx.suppressDepth == 0)
        profiler_->hostOnly(2 * profiler_->device().syncLatencyUs);
      bindOut(0, std::move(values));
      bindOut(1, std::move(indices));
      return;
    }
    case OpKind::Argsort: {
      Tensor a = tensorIn(node, 0, env);
      Tensor out = ops::argsort(a, attrs.b("descending"));
      for (int pass = 0; pass < 4; ++pass) {
        chargeKernel(node, tensorBytes(a) + tensorBytes(out), a.numel(), ctx);
      }
      if (profiler_ != nullptr && ctx.mergeDepth == 0 &&
          ctx.suppressDepth == 0)
        profiler_->hostOnly(2 * profiler_->device().syncLatencyUs);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Clone:
    case OpKind::Contiguous: {
      Tensor a = tensorIn(node, 0, env);
      Tensor out = kind == OpKind::Clone ? a.clone() : a.contiguous();
      chargeKernel(node, 2 * tensorBytes(a), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }

    // ---- factories -----------------------------------------------------------------------
    case OpKind::Zeros:
    case OpKind::Ones: {
      Shape sizes = resolvedSizes(node, 0, env);
      const DType dt = attrs.dtype("dtype");
      Tensor out = kind == OpKind::Zeros ? Tensor::zeros(sizes, dt)
                                         : Tensor::ones(sizes, dt);
      chargeKernel(node, tensorBytes(out), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Full: {
      Shape sizes = resolvedSizes(node, 1, env);
      Tensor out =
          Tensor::full(sizes, scalarIn(node, 0, env), attrs.dtype("dtype"));
      chargeKernel(node, tensorBytes(out), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Arange: {
      Tensor out = Tensor::arange(scalarIn(node, 0, env).toInt(),
                                  scalarIn(node, 1, env).toInt(),
                                  scalarIn(node, 2, env).toInt());
      chargeKernel(node, tensorBytes(out), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }

    // ---- tensor views (alias; host-only metadata op) -----------------------------------------
    case OpKind::Select:
    case OpKind::Slice:
    case OpKind::Reshape:
    case OpKind::Permute:
    case OpKind::Transpose:
    case OpKind::Expand:
    case OpKind::Squeeze:
    case OpKind::Unsqueeze:
    case OpKind::Flatten:
    case OpKind::Identity: {
      Tensor base = tensorIn(node, 0, env);
      chargeOpDispatch(ctx);
      bindOut(0, applyView(kind, node, base, 1, env));
      return;
    }

    // ---- mutation (writes through aliases; Definition 3.2) ------------------------------------
    case OpKind::Copy_: {
      Tensor dst = tensorIn(node, 0, env);
      Tensor src = tensorIn(node, 1, env);
      dst.copy_(src);
      chargeKernel(node, tensorBytes(dst) + tensorBytes(src), 0, ctx);
      bindOut(0, dst);
      return;
    }
    case OpKind::Fill_: {
      Tensor dst = tensorIn(node, 0, env);
      dst.fill_(scalarIn(node, 1, env));
      chargeKernel(node, tensorBytes(dst), 0, ctx);
      bindOut(0, dst);
      return;
    }
    case OpKind::Zero_: {
      Tensor dst = tensorIn(node, 0, env);
      dst.fill_(Scalar(0));
      chargeKernel(node, tensorBytes(dst), 0, ctx);
      bindOut(0, dst);
      return;
    }
    case OpKind::Add_:
      return evalInplace([&](const Tensor& t) {
        return ops::add(t, tensorIn(node, 1, env));
      });
    case OpKind::Sub_:
      return evalInplace([&](const Tensor& t) {
        return ops::sub(t, tensorIn(node, 1, env));
      });
    case OpKind::Mul_:
      return evalInplace([&](const Tensor& t) {
        return ops::mul(t, tensorIn(node, 1, env));
      });
    case OpKind::Div_:
      return evalInplace([&](const Tensor& t) {
        return ops::div(t, tensorIn(node, 1, env));
      });
    case OpKind::Relu_:
      return evalInplace([](const Tensor& t) { return ops::relu(t); });
    case OpKind::Sigmoid_:
      return evalInplace([](const Tensor& t) { return ops::sigmoid(t); });
    case OpKind::Tanh_:
      return evalInplace([](const Tensor& t) { return ops::tanh(t); });
    case OpKind::MaskedFill_:
      return evalInplace([&](const Tensor& t) {
        return ops::maskedFill(t, tensorIn(node, 1, env),
                               scalarIn(node, 2, env));
      });

    // ---- TensorSSA (pure semantics of Definitions 3.3/3.4) -------------------------------------
    case OpKind::Access: {
      Tensor base = tensorIn(node, 0, env);
      const OpKind viewKind = static_cast<OpKind>(attrs.i("view"));
      Tensor out = applyView(viewKind, node, base, 1, env).clone();
      chargeKernel(node, 2 * tensorBytes(out), 0, ctx);
      bindOut(0, std::move(out));
      return;
    }
    case OpKind::Assign: {
      Tensor base = tensorIn(node, 0, env);
      Tensor src = tensorIn(node, 1, env);
      const OpKind viewKind = static_cast<OpKind>(attrs.i("view"));
      // Donated buffers (marked by markInplaceAssigns) are written in place:
      // the new version reuses the dead old version's storage, so traffic is
      // just the written region, not a whole-buffer copy.
      const bool inplace = attrs.bOr("inplace", false);
      Tensor out = inplace ? base : base.clone();
      applyView(viewKind, node, out, 2, env).copy_(src);
      if (inplace) {
        if (ctx.suppressDepth > 0) {
          ctx.suppressSavedBytes += std::max<std::int64_t>(
              0, 2 * (tensorBytes(base) - tensorBytes(src)));
        }
        chargeKernel(node, 2 * tensorBytes(src), 0, ctx);
      } else {
        chargeKernel(node, 2 * tensorBytes(base) + tensorBytes(src), 0, ctx);
      }
      bindOut(0, std::move(out));
      return;
    }

  }
  TSSA_THROW("interpreter: unhandled op " << opName(kind) << " in\n"
                                          << ir::toString(node));
}

}  // namespace tssa::runtime
