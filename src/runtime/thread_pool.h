// Reusable worker pool for data-parallel execution.
//
// The runtime's parallel constructs — tssa::ParallelMap iteration batches and
// the element loops of fused texpr kernels — share one process-wide pool so
// thread creation is paid once, not per kernel. Work is distributed by
// *static chunking*: `parallelFor(n, w, fn)` splits [0, n) into at most `w`
// contiguous chunks, runs chunk 0 on the calling thread (which keeps the hot
// cache where the operands were produced), and returns only after every
// chunk finished — while waiting, the caller *helps* execute queued chunk
// tasks (never blocking submit()ed tasks), which makes nested parallelFor
// calls deadlock-free.
// Exceptions thrown inside chunks are collected and the
// lowest-chunk-index one is rethrown on the caller after the barrier, so a
// failing parallel region behaves like its serial equivalent.
//
// Determinism contract: chunk boundaries depend only on (n, maxWorkers),
// never on scheduling, and the callback receives its chunk index — callers
// that accumulate per-chunk state can therefore merge results in chunk order
// and obtain scheduling-independent (bitwise reproducible) totals.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tssa::runtime {

class ThreadPool {
 public:
  /// Worker threads are spawned lazily, on first demand.
  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool shared by all interpreters.
  static ThreadPool& shared();

  /// `std::thread::hardware_concurrency()`, clamped to at least 1.
  static int hardwareThreads();

  /// Runs `fn(begin, end, chunk)` over a static partition of [0, n) into
  /// min(maxWorkers, n) contiguous chunks. Chunk 0 runs on the calling
  /// thread; the call returns only after every chunk completed (exception
  /// barrier: the first-chunk exception is rethrown). With maxWorkers <= 1
  /// (or n <= 1) this degenerates to a plain serial call on the caller.
  void parallelFor(
      std::int64_t n, int maxWorkers,
      const std::function<void(std::int64_t begin, std::int64_t end,
                               int chunk)>& fn);

  /// Enqueues a detached task on the pool (fire-and-forget: completion and
  /// error delivery are the caller's responsibility — wrap the body if you
  /// need either). At least `minWorkers` workers are spawned so the task is
  /// guaranteed to run even when no parallelFor ever created workers; pass a
  /// larger value to allow that many submitted tasks to run concurrently.
  /// Used by the serving engine to execute micro-batches on the same pool
  /// that runs their ParallelMap / fused-kernel chunks (the helping barrier
  /// in parallelFor keeps that nesting deadlock-free).
  ///
  /// Submitted tasks may block (the engine's batch tasks take a per-program
  /// exec mutex), so they are ONLY ever run by dedicated worker threads —
  /// never by the helping barrier. A parallelFor caller that stole one could
  /// otherwise block on a lock its own thread (or a peer helper) already
  /// holds and deadlock; helpers steal chunk tasks exclusively, which never
  /// block on caller-held locks.
  void submit(std::function<void()> task, int minWorkers = 1);

  /// Number of live worker threads (excluding callers). Grows on demand.
  int workerCount();

 private:
  void ensureWorkers(int count);
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  /// parallelFor chunk tasks: non-blocking, stealable by helping barriers.
  std::deque<std::function<void()>> chunkQueue_;
  /// submit()ed tasks: may block on external locks, workers only.
  std::deque<std::function<void()>> taskQueue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace tssa::runtime
