#include "src/runtime/pipeline.h"

#include <functional>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/core/unroll.h"
#include "src/ir/verifier.h"
#include "src/obs/trace.h"

namespace tssa::runtime {

const std::vector<PipelineKind>& allPipelines() {
  static const std::vector<PipelineKind> kinds = {
      PipelineKind::Eager,
      PipelineKind::TorchScriptNnc,
      PipelineKind::TorchScriptNvfuser,
      PipelineKind::DynamoInductor,
      PipelineKind::TensorSsa,
  };
  return kinds;
}

std::string_view pipelineName(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::Eager:
      return "Eager";
    case PipelineKind::TorchScriptNnc:
      return "TS+NNC";
    case PipelineKind::TorchScriptNvfuser:
      return "TS+nvFuser";
    case PipelineKind::DynamoInductor:
      return "Dynamo+Inductor";
    case PipelineKind::TensorSsa:
      return "TensorSSA";
  }
  return "?";
}

HostSpec hostSpecFor(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::Eager:
      return HostSpec::eagerPython();
    case PipelineKind::DynamoInductor:
      return HostSpec::dynamoInductor();
    case PipelineKind::TorchScriptNnc:
    case PipelineKind::TorchScriptNvfuser:
    case PipelineKind::TensorSsa:
      return HostSpec::torchscriptVm();
  }
  return HostSpec::torchscriptVm();
}

namespace {

/// Per-pass graph statistics carried as span args: the delta tells what the
/// pass actually did (torch.fx's inspectability argument — a transformation
/// pipeline is only debuggable when each stage's effect is observable).
struct GraphCounts {
  std::int64_t nodes = 0;
  std::int64_t fusionGroups = 0;
  std::int64_t parallelMaps = 0;
};

GraphCounts countGraph(const ir::Graph& g) {
  GraphCounts c;
  std::vector<const ir::Block*> stack{g.topBlock()};
  while (!stack.empty()) {
    const ir::Block* b = stack.back();
    stack.pop_back();
    for (const ir::Node* node : *b) {
      ++c.nodes;
      if (node->kind() == ir::OpKind::FusionGroup) ++c.fusionGroups;
      if (node->kind() == ir::OpKind::ParallelMap) ++c.parallelMaps;
      for (const ir::Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return c;
}

/// Runs one compilation pass under a "pipeline" span. Graph statistics are
/// only computed when the tracer is live, so the disabled path pays exactly
/// one atomic load per pass.
template <typename Fn>
void tracedPass(const char* name, ir::Graph& graph, Fn&& fn) {
  obs::TraceSpan span("pipeline", name);
  GraphCounts before;
  if (span.active()) before = countGraph(graph);
  fn();
  if (span.active()) {
    const GraphCounts after = countGraph(graph);
    span.arg("nodes_before", before.nodes);
    span.arg("nodes_after", after.nodes);
    if (after.fusionGroups != before.fusionGroups)
      span.arg("fusion_groups_formed",
               after.fusionGroups - before.fusionGroups);
    if (after.parallelMaps != before.parallelMaps)
      span.arg("loops_parallelized",
               after.parallelMaps - before.parallelMaps);
  }
}

}  // namespace

/// Applies the capability envelope of `kind` to `graph` (in place).
void compileGraph(PipelineKind kind, ir::Graph& graph,
                  const PipelineOptions& options) {
  using core::ConversionOptions;
  using core::FusionPolicy;
  // The tunable knobs ride on the per-kind policy presets.
  auto withCap = [&](FusionPolicy policy) {
    policy.maxKernelOps = options.fusionMaxOps;
    return policy;
  };
  obs::TraceSpan compileSpan("pipeline", "compile");
  compileSpan.arg("pipeline", pipelineName(kind));
  switch (kind) {
    case PipelineKind::Eager:
      // No compilation at all.
      return;
    case PipelineKind::TorchScriptNnc:
      tracedPass("hoist-constants", graph,
                 [&] { core::hoistConstants(graph); });
      tracedPass("fusion", graph, [&] {
        core::fuseKernels(graph, withCap(FusionPolicy::nnc()));
      });
      break;
    case PipelineKind::TorchScriptNvfuser:
      tracedPass("hoist-constants", graph,
                 [&] { core::hoistConstants(graph); });
      tracedPass("fusion", graph, [&] {
        core::fuseKernels(graph, withCap(FusionPolicy::nvfuser()));
      });
      break;
    case PipelineKind::DynamoInductor: {
      tracedPass("lower-inplace", graph,
                 [&] { core::lowerInplaceOps(graph); });
      // Dynamo traces Python control flow: constant-range loops unroll into
      // the captured region; anything data-dependent graph-breaks.
      tracedPass("unroll-loops", graph, [&] { core::unrollLoops(graph); });
      tracedPass("fold-scalar-constants", graph,
                 [&] { core::foldScalarConstants(graph); });
      tracedPass("functionalize", graph, [&] {
        ConversionOptions options;
        options.acrossControlFlow = false;  // graph breaks at control flow
        core::convertToTensorSSA(graph, options);
      });
      tracedPass("views-to-access", graph, [&] {
        core::readonlyViewsToAccess(graph, FusionPolicy::inductor());
      });
      tracedPass("hoist-constants", graph,
                 [&] { core::hoistConstants(graph); });
      tracedPass("fusion", graph, [&] {
        core::fuseKernels(graph, withCap(FusionPolicy::inductor()));
      });
      tracedPass("mark-inplace", graph,
                 [&] { core::markInplaceAssigns(graph); });
      break;
    }
    case PipelineKind::TensorSsa: {
      tracedPass("lower-inplace", graph,
                 [&] { core::lowerInplaceOps(graph); });
      tracedPass("functionalize", graph,
                 [&] { core::convertToTensorSSA(graph); });
      tracedPass("views-to-access", graph, [&] {
        core::readonlyViewsToAccess(graph, FusionPolicy::tensorssa());
      });
      tracedPass("parallelize", graph, [&] {
        core::parallelizeLoops(graph, options.parallelizeMask);
      });
      tracedPass("hoist-constants", graph,
                 [&] { core::hoistConstants(graph); });
      tracedPass("fusion", graph, [&] {
        core::fuseKernels(graph, withCap(FusionPolicy::tensorssa()));
      });
      tracedPass("mark-inplace", graph,
                 [&] { core::markInplaceAssigns(graph); });
      break;
    }
  }
  tracedPass("dce", graph, [&] { core::eliminateDeadCode(graph); });
  tracedPass("verify", graph, [&] { ir::verify(graph); });
}

std::size_t hashValue(const PipelineOptions& options) {
  std::size_t h = std::hash<std::string>{}(options.device.name);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<double>{}(options.device.launchOverheadUs));
  mix(std::hash<double>{}(options.device.memBandwidthGBps));
  mix(std::hash<double>{}(options.device.computeGFlops));
  mix(std::hash<double>{}(options.device.syncLatencyUs));
  mix(std::hash<int>{}(options.threads));
  mix(std::hash<bool>{}(options.useTexpr));
  mix(std::hash<bool>{}(options.memoryPlan));
  mix(std::hash<bool>{}(options.texprJit));
  mix(std::hash<std::size_t>{}(options.fusionMaxOps));
  mix(std::hash<std::uint64_t>{}(options.parallelizeMask));
  return h;
}

Pipeline::Pipeline(PipelineKind kind, const ir::Graph& source,
                   const PipelineOptions& options)
    : kind_(kind),
      graph_(ir::cloneGraph(source)),
      profiler_(options.device, hostSpecFor(kind)),
      interpreter_(&profiler_, options.useTexpr, options.threads,
                   options.texprJit) {
  compileGraph(kind, *graph_, options);
  // The plan is built once per compiled program; in the serving engine it
  // travels with the cached Pipeline, so every request hitting the same
  // shape signature reuses both the compilation AND the buffer plan.
  if (options.memoryPlan) {
    obs::TraceSpan span("pipeline", "memory-plan");
    span.arg("pipeline", pipelineName(kind));
    plan_ = std::make_unique<analysis::MemoryPlan>(
        analysis::planMemory(*graph_));
    interpreter_.setMemoryPlan(plan_.get());
    if (span.active()) {
      span.arg("planned_deaths",
               static_cast<std::int64_t>(plan_->plannedDeaths));
      span.arg("slots", plan_->slotCount);
      span.arg("values", static_cast<std::int64_t>(plan_->totalValues));
    }
  }
}

std::vector<RtValue> Pipeline::run(std::span<const RtValue> inputs) {
  profiler_.reset();
  return runAccumulate(inputs);
}

std::vector<RtValue> Pipeline::runAccumulate(std::span<const RtValue> inputs) {
  return interpreter_.run(*graph_, inputs);
}

void Pipeline::setLaunchProbe(Profiler::LaunchProbe probe) {
  profiler_.setLaunchProbe(std::move(probe));
}

}  // namespace tssa::runtime
