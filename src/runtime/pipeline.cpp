#include "src/runtime/pipeline.h"

#include <functional>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/core/unroll.h"
#include "src/ir/verifier.h"

namespace tssa::runtime {

const std::vector<PipelineKind>& allPipelines() {
  static const std::vector<PipelineKind> kinds = {
      PipelineKind::Eager,
      PipelineKind::TorchScriptNnc,
      PipelineKind::TorchScriptNvfuser,
      PipelineKind::DynamoInductor,
      PipelineKind::TensorSsa,
  };
  return kinds;
}

std::string_view pipelineName(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::Eager:
      return "Eager";
    case PipelineKind::TorchScriptNnc:
      return "TS+NNC";
    case PipelineKind::TorchScriptNvfuser:
      return "TS+nvFuser";
    case PipelineKind::DynamoInductor:
      return "Dynamo+Inductor";
    case PipelineKind::TensorSsa:
      return "TensorSSA";
  }
  return "?";
}

namespace {

HostSpec hostFor(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::Eager:
      return HostSpec::eagerPython();
    case PipelineKind::DynamoInductor:
      return HostSpec::dynamoInductor();
    case PipelineKind::TorchScriptNnc:
    case PipelineKind::TorchScriptNvfuser:
    case PipelineKind::TensorSsa:
      return HostSpec::torchscriptVm();
  }
  return HostSpec::torchscriptVm();
}

/// Applies the capability envelope of `kind` to `graph` (in place).
void compileFor(PipelineKind kind, ir::Graph& graph) {
  using core::ConversionOptions;
  using core::FusionPolicy;
  switch (kind) {
    case PipelineKind::Eager:
      // No compilation at all.
      return;
    case PipelineKind::TorchScriptNnc:
      core::hoistConstants(graph);
      core::fuseKernels(graph, FusionPolicy::nnc());
      break;
    case PipelineKind::TorchScriptNvfuser:
      core::hoistConstants(graph);
      core::fuseKernels(graph, FusionPolicy::nvfuser());
      break;
    case PipelineKind::DynamoInductor: {
      core::lowerInplaceOps(graph);
      // Dynamo traces Python control flow: constant-range loops unroll into
      // the captured region; anything data-dependent graph-breaks.
      core::unrollLoops(graph);
      core::foldScalarConstants(graph);
      ConversionOptions options;
      options.acrossControlFlow = false;  // graph breaks at control flow
      core::convertToTensorSSA(graph, options);
      core::readonlyViewsToAccess(graph, FusionPolicy::inductor());
      core::hoistConstants(graph);
      core::fuseKernels(graph, FusionPolicy::inductor());
      core::markInplaceAssigns(graph);
      break;
    }
    case PipelineKind::TensorSsa: {
      core::lowerInplaceOps(graph);
      core::convertToTensorSSA(graph);
      core::readonlyViewsToAccess(graph, FusionPolicy::tensorssa());
      core::parallelizeLoops(graph);
      core::hoistConstants(graph);
      core::fuseKernels(graph, FusionPolicy::tensorssa());
      core::markInplaceAssigns(graph);
      break;
    }
  }
  core::eliminateDeadCode(graph);
  ir::verify(graph);
}

}  // namespace

std::size_t hashValue(const PipelineOptions& options) {
  std::size_t h = std::hash<std::string>{}(options.device.name);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<double>{}(options.device.launchOverheadUs));
  mix(std::hash<double>{}(options.device.memBandwidthGBps));
  mix(std::hash<double>{}(options.device.computeGFlops));
  mix(std::hash<double>{}(options.device.syncLatencyUs));
  mix(std::hash<int>{}(options.threads));
  mix(std::hash<bool>{}(options.useTexpr));
  mix(std::hash<bool>{}(options.memoryPlan));
  return h;
}

Pipeline::Pipeline(PipelineKind kind, const ir::Graph& source,
                   const PipelineOptions& options)
    : kind_(kind),
      graph_(ir::cloneGraph(source)),
      profiler_(options.device, hostFor(kind)),
      interpreter_(&profiler_, options.useTexpr, options.threads) {
  compileFor(kind, *graph_);
  // The plan is built once per compiled program; in the serving engine it
  // travels with the cached Pipeline, so every request hitting the same
  // shape signature reuses both the compilation AND the buffer plan.
  if (options.memoryPlan) {
    plan_ = std::make_unique<analysis::MemoryPlan>(
        analysis::planMemory(*graph_));
    interpreter_.setMemoryPlan(plan_.get());
  }
}

std::vector<RtValue> Pipeline::run(std::span<const RtValue> inputs) {
  profiler_.reset();
  return runAccumulate(inputs);
}

std::vector<RtValue> Pipeline::runAccumulate(std::span<const RtValue> inputs) {
  return interpreter_.run(*graph_, inputs);
}

}  // namespace tssa::runtime
