// Tests for the reference interpreter: eager aliasing semantics, control
// flow, TensorSSA op semantics, fusion constructs, and profiling.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/tensor/ops.h"

namespace tssa::runtime {
namespace {

using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;

std::vector<RtValue> runGraph(const Graph& g, std::vector<RtValue> inputs,
                              Profiler* prof = nullptr) {
  Interpreter interp(prof);
  return interp.run(g, inputs);
}

TEST(InterpreterTest, PureDataflow) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  Value* b = g.addInput(Type::tensor(), "b");
  IRBuilder builder(g);
  g.addOutput(builder.sigmoid(builder.add(a, b)));
  ir::verify(g);

  Tensor ta = Tensor::fromData({0, 1}, {2});
  Tensor tb = Tensor::fromData({0, -1}, {2});
  auto out = runGraph(g, {RtValue(ta), RtValue(tb)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].tensor().scalarAtLinear(0), 0.5, 1e-6);
  EXPECT_NEAR(out[0].tensor().scalarAtLinear(1), 0.5, 1e-6);
}

// The Figure 1 program: B = A[0]; B.copy_(C) — mutating the view mutates A.
TEST(InterpreterTest, Figure1ViewMutation) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "A");
  Value* c = g.addInput(Type::tensor(), "C");
  IRBuilder builder(g);
  Value* b = builder.select(a, 0, builder.constInt(0));
  builder.copy_(b, c);
  g.addOutput(a);
  ir::verify(g);

  Tensor ta = Tensor::zeros({2, 2});
  Tensor tc = Tensor::fromData({7, 8}, {2});
  auto out = runGraph(g, {RtValue(ta), RtValue(tc)});
  const Tensor& result = out[0].tensor();
  EXPECT_EQ(result.scalarAt(Shape{0, 0}), 7.0);
  EXPECT_EQ(result.scalarAt(Shape{0, 1}), 8.0);
  EXPECT_EQ(result.scalarAt(Shape{1, 0}), 0.0);
}

// The Figure 4 program: for i in range(n): b[i] = b[i] + 1.
Graph* buildFigure4(Graph& g) {
  Value* b0 = g.addInput(Type::tensor(), "b");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder builder(g);
  Value* b1 = builder.clone(b0);
  Node* loop = builder.makeLoop(n, {b1});
  ir::Block* body = loop->block(0);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  Value* i = body->param(0);
  Value* bIn = body->param(1);
  Value* bi = inner.select(bIn, 0, i);
  Value* one = inner.constTensor(Tensor::ones({}));
  Value* sum = inner.add(bi, one);
  Value* bi2 = inner.select(bIn, 0, i);
  inner.copy_(bi2, sum);
  body->addReturn(bIn);
  g.addOutput(loop->output(0));
  ir::verify(g);
  return &g;
}

TEST(InterpreterTest, Figure4LoopMutation) {
  Graph g;
  buildFigure4(g);
  Tensor b = Tensor::fromData({10, 20, 30, 40}, {4});
  auto out = runGraph(g, {RtValue(b), RtValue(std::int64_t{3})});
  const Tensor& r = out[0].tensor();
  EXPECT_EQ(r.scalarAtLinear(0), 11.0);
  EXPECT_EQ(r.scalarAtLinear(1), 21.0);
  EXPECT_EQ(r.scalarAtLinear(2), 31.0);
  EXPECT_EQ(r.scalarAtLinear(3), 40.0);  // untouched: loop ran 3 times
  // Input was cloned first; caller tensor unchanged.
  EXPECT_EQ(b.scalarAtLinear(0), 10.0);
}

TEST(InterpreterTest, IfBranches) {
  Graph g;
  Value* cond = g.addInput(Type::boolean(), "c");
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Node* ifNode = builder.makeIf(cond, 1);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(ifNode->block(0));
  ifNode->block(0)->addReturn(inner.relu(a));
  inner.setInsertionPointToEnd(ifNode->block(1));
  ifNode->block(1)->addReturn(inner.neg(a));
  g.addOutput(ifNode->output(0));
  ir::verify(g);

  Tensor t = Tensor::fromData({-2, 3}, {2});
  auto outTrue = runGraph(g, {RtValue(true), RtValue(t)});
  EXPECT_EQ(outTrue[0].tensor().scalarAtLinear(0), 0.0);
  auto outFalse = runGraph(g, {RtValue(false), RtValue(t)});
  EXPECT_EQ(outFalse[0].tensor().scalarAtLinear(0), 2.0);
  EXPECT_EQ(outFalse[0].tensor().scalarAtLinear(1), -3.0);
}

TEST(InterpreterTest, ScalarArithmeticAndLoopIndex) {
  // acc = 0-tensor; for i in 0..n: acc += i  (via full_ with scalar mult)
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder builder(g);
  Value* two = builder.constInt(2);
  Value* doubled = builder.scalarMul(n, two);
  Value* isBig = builder.scalarGe(doubled, builder.constInt(6));
  g.addOutput(doubled);
  g.addOutput(isBig);
  auto out = runGraph(g, {RtValue(std::int64_t{4})});
  EXPECT_EQ(out[0].toInt(), 8);
  EXPECT_TRUE(out[1].toBool());
}

TEST(InterpreterTest, InplaceOpsFamily) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  Value* m = g.addInput(Type::tensor(), "m");
  IRBuilder builder(g);
  Value* c = builder.clone(a);
  builder.add_(c, builder.constTensor(Tensor::ones({})));
  builder.mul_(c, builder.constTensor(Tensor::full({}, Scalar(2.0))));
  builder.relu_(c);
  builder.maskedFill_(c, m, builder.constFloat(-5.0));
  g.addOutput(c);
  ir::verify(g);

  Tensor t = Tensor::fromData({-3, 0.5f}, {2});
  Tensor mask = Tensor::fromData({1, 0}, {2}).to(DType::Bool);
  auto out = runGraph(g, {RtValue(t), RtValue(mask)});
  EXPECT_FLOAT_EQ(static_cast<float>(out[0].tensor().scalarAtLinear(0)), -5.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(out[0].tensor().scalarAtLinear(1)), 3.0f);
}

TEST(InterpreterTest, AccessMatchesViewClone) {
  // immut::access(slice) == aten::slice(...).clone()
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* start = builder.constInt(1);
  Value* end = builder.constInt(3);
  Node* access = builder.emitNode(OpKind::Access, {a, start, end}, 1);
  access->attrs().set("view", Scalar(static_cast<std::int64_t>(OpKind::Slice)));
  access->attrs().set("dim", Scalar(std::int64_t{0}));
  access->attrs().set("step", Scalar(std::int64_t{1}));
  g.addOutput(access->output());
  ir::verify(g);

  Tensor t = Tensor::fromData({1, 2, 3, 4}, {4});
  auto out = runGraph(g, {RtValue(t)});
  EXPECT_EQ(out[0].tensor().sizes(), (Shape{2}));
  EXPECT_EQ(out[0].tensor().scalarAtLinear(0), 2.0);
  EXPECT_FALSE(out[0].tensor().sharesStorageWith(t));
}

TEST(InterpreterTest, AssignMatchesCloneThenViewCopy) {
  // out = assign(base, src, select dim0 idx1): base unchanged, new tensor.
  Graph g;
  Value* base = g.addInput(Type::tensor(), "base");
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder builder(g);
  Value* idx = builder.constInt(1);
  Node* assign = builder.emitNode(OpKind::Assign, {base, src, idx}, 1);
  assign->attrs().set("view", Scalar(static_cast<std::int64_t>(OpKind::Select)));
  assign->attrs().set("dim", Scalar(std::int64_t{0}));
  g.addOutput(assign->output());
  ir::verify(g);

  Tensor b = Tensor::zeros({3, 2});
  Tensor s = Tensor::fromData({9, 9}, {2});
  auto out = runGraph(g, {RtValue(b), RtValue(s)});
  const Tensor& r = out[0].tensor();
  EXPECT_EQ(r.scalarAt(Shape{1, 0}), 9.0);
  EXPECT_EQ(r.scalarAt(Shape{0, 0}), 0.0);
  // Pure: the base operand is untouched.
  EXPECT_EQ(b.scalarAt(Shape{1, 0}), 0.0);
}

TEST(InterpreterTest, IdentityAssignBroadcasts) {
  Graph g;
  Value* base = g.addInput(Type::tensor(), "base");
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder builder(g);
  Node* assign = builder.emitNode(OpKind::Assign, {base, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  g.addOutput(assign->output());
  Tensor b = Tensor::zeros({2, 3});
  Tensor s = Tensor::fromData({1, 2, 3}, {3});
  auto out = runGraph(g, {RtValue(b), RtValue(s)});
  EXPECT_EQ(out[0].tensor().scalarAt(Shape{1, 2}), 3.0);
  EXPECT_EQ(b.scalarAt(Shape{1, 2}), 0.0);
}

TEST(InterpreterTest, FusionGroupExecutesAndCountsOneKernel) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Node* group = builder.emitNode(OpKind::FusionGroup, {a}, 1);
  ir::Block* body = group->addBlock();
  Value* p = body->addParam(Type::tensor());
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  body->addReturn(inner.relu(inner.add(p, p)));
  g.addOutput(group->output());
  ir::verify(g);

  Profiler prof(DeviceSpec::dataCenter(), HostSpec::torchscriptVm());
  Tensor t = Tensor::fromData({-1, 2}, {2});
  auto out = runGraph(g, {RtValue(t)}, &prof);
  EXPECT_EQ(out[0].tensor().scalarAtLinear(0), 0.0);
  EXPECT_EQ(out[0].tensor().scalarAtLinear(1), 4.0);
  EXPECT_EQ(prof.kernelLaunches(), 1);
}

TEST(InterpreterTest, ParallelMapMatchesLoopResult) {
  // Build the same body as Figure 4 under Loop and ParallelMap via assigns.
  auto build = [](Graph& g, OpKind loopKind) {
    Value* b0 = g.addInput(Type::tensor(), "b");
    Value* n = g.addInput(Type::integer(), "n");
    IRBuilder builder(g);
    Node* loop = builder.makeLoop(n, {b0});
    if (loopKind == OpKind::ParallelMap) {
      // Rebuild with the same structure under the ParallelMap kind.
      Node* pm = g.create(OpKind::ParallelMap, {n, b0}, 1);
      pm->insertBefore(loop);
      ir::Block* pmBody = pm->addBlock();
      pmBody->addParam(Type::integer(), "i");
      pmBody->addParam(Type::tensor());
      loop->destroy();
      loop = pm;
    }
    ir::Block* body = loop->block(0);
    IRBuilder inner(g);
    inner.setInsertionPointToEnd(body);
    Value* i = body->param(0);
    Value* bIn = body->param(1);
    Value* bi = inner.select(bIn, 0, i);
    Value* v = inner.mul(bi, inner.constTensor(Tensor::full({}, Scalar(3.0))));
    ir::Node* assign = inner.emitNode(OpKind::Assign, {bIn, v, i}, 1);
    assign->attrs().set("view",
                        Scalar(static_cast<std::int64_t>(OpKind::Select)));
    assign->attrs().set("dim", Scalar(std::int64_t{0}));
    body->addReturn(assign->output());
    g.addOutput(loop->output(0));
    ir::verify(g);
  };

  Graph gLoop, gPar;
  build(gLoop, OpKind::Loop);
  build(gPar, OpKind::ParallelMap);
  Tensor b = Tensor::fromData({1, 2, 3}, {3});

  Profiler profLoop(DeviceSpec::dataCenter(), HostSpec::torchscriptVm());
  Profiler profPar(DeviceSpec::dataCenter(), HostSpec::torchscriptVm());
  auto outLoop =
      runGraph(gLoop, {RtValue(b.clone()), RtValue(std::int64_t{3})}, &profLoop);
  auto outPar =
      runGraph(gPar, {RtValue(b.clone()), RtValue(std::int64_t{3})}, &profPar);
  EXPECT_TRUE(allClose(outLoop[0].tensor(), outPar[0].tensor()));
  EXPECT_EQ(outPar[0].tensor().scalarAtLinear(2), 9.0);
  // Horizontal parallelization: each per-iteration kernel position becomes
  // one batched launch (here: mul + assign = 2), independent of trip count.
  EXPECT_EQ(profPar.kernelLaunches(), 2);
  EXPECT_GT(profLoop.kernelLaunches(), profPar.kernelLaunches());
  EXPECT_LT(profPar.simTimeUs(), profLoop.simTimeUs());
}

TEST(InterpreterTest, ProfilerCountsEagerKernels) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* x = builder.add(a, a);    // kernel
  Value* y = builder.sigmoid(x);   // kernel
  Value* v = builder.select(y, 0, builder.constInt(0));  // view: no kernel
  g.addOutput(v);
  Profiler prof(DeviceSpec::consumer(), HostSpec::eagerPython());
  runGraph(g, {RtValue(Tensor::zeros({4, 4}))}, &prof);
  EXPECT_EQ(prof.kernelLaunches(), 2);
  EXPECT_GT(prof.simTimeUs(), 0.0);
  EXPECT_GT(prof.hostTimeUs(), 0.0);
  prof.reset();
  EXPECT_EQ(prof.kernelLaunches(), 0);
}

TEST(InterpreterTest, CatStackGatherFactories) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* z = builder.zeros({2, 2});
  Value* catted = builder.cat({a, z}, 0);
  Value* ar = builder.arange(builder.constInt(0), builder.constInt(4),
                             builder.constInt(1));
  Value* sel = builder.indexSelect(catted, 0, ar);
  g.addOutput(sel);
  ir::verify(g);
  auto out = runGraph(g, {RtValue(Tensor::ones({2, 2}))});
  EXPECT_EQ(out[0].tensor().sizes(), (Shape{4, 2}));
  EXPECT_EQ(out[0].tensor().scalarAt(Shape{0, 0}), 1.0);
  EXPECT_EQ(out[0].tensor().scalarAt(Shape{3, 1}), 0.0);
}

TEST(InterpreterTest, WrongInputCountThrows) {
  Graph g;
  g.addInput(Type::tensor());
  Interpreter interp;
  std::vector<RtValue> none;
  EXPECT_THROW(interp.run(g, none), Error);
}

TEST(InterpreterTest, UpdateOpRefusesToExecute) {
  Graph g;
  Value* a = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Value* b = builder.relu(a);
  builder.emitNode(OpKind::Update, {b, a}, 0);
  g.addOutput(b);
  Interpreter interp;
  std::vector<RtValue> in{RtValue(Tensor::zeros({2}))};
  EXPECT_THROW(interp.run(g, in), Error);
}

}  // namespace
}  // namespace tssa::runtime
