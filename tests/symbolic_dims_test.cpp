// Symbolic dimensions (ROADMAP item 3): one compiled program serves every
// shape that instantiates the workload's symbolic pattern.
//
// The acceptance differential here is the contract the serving engine's
// polymorphic cache keys rely on: a graph built with
// WorkloadConfig::symbolicDims produces *bitwise identical* outputs to the
// shape-specialized graph, for all 9 workloads, across thread counts and
// with the texpr JIT on or off, at several distinct shapes — so swapping the
// exact-shape signature for a pattern guard can never change what a request
// computes.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/shape.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::Interpreter;
using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::RtValue;
using workloads::buildWorkload;
using workloads::matchesSymbolicPattern;
using workloads::SymbolicPattern;
using workloads::Workload;
using workloads::WorkloadConfig;
using workloads::workloadSymbolicPattern;

bool bitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  for (IndexIterator it(a.sizes()); it.valid(); it.next()) {
    if (a.scalarAt(it.index()) != b.scalarAt(it.index())) return false;
  }
  return true;
}

std::vector<std::string> allWorkloads() {
  std::vector<std::string> names = workloads::workloadNames();
  names.push_back("decode_step");
  return names;
}

// ---- ir::Dim / Type ---------------------------------------------------------

TEST(SymbolicDimTest, DimToStringAndEquality) {
  using ir::Dim;
  EXPECT_EQ(Dim(32).toString(), "32");
  EXPECT_EQ(Dim::symbol("B").toString(), "B");
  EXPECT_EQ(Dim::symbol("C", 1).toString(), "C+1");
  EXPECT_EQ(Dim::symbol("C", -2).toString(), "C-2");
  EXPECT_EQ(Dim(32), Dim(32));
  EXPECT_FALSE(Dim(32) == Dim(33));
  EXPECT_EQ(Dim::symbol("C", 1), Dim::symbol("C", 1));
  EXPECT_FALSE(Dim::symbol("C", 1) == Dim::symbol("C", 2));
  EXPECT_FALSE(Dim::symbol("B") == Dim(32));
}

TEST(SymbolicDimTest, TensorTypePrintsDims) {
  ir::Type t = ir::Type::tensor(
      DType::Float32, {ir::Dim::symbol("B"), ir::Dim::symbol("C", 1), 32});
  EXPECT_EQ(t.toString(), "f32[B,C+1,32] Tensor");
  EXPECT_TRUE(t.hasDims());
  EXPECT_TRUE(t.hasSymbolicDims());
  // Equality stays kind-only: dims are advisory, like dtype.
  EXPECT_EQ(t, ir::Type::tensor());
  EXPECT_FALSE(ir::Type::tensor(DType::Float32, {1, 2}).hasSymbolicDims());
}

TEST(SymbolicDimTest, ParserRoundTripsSymbolicTypes) {
  auto graph = std::make_unique<ir::Graph>();
  ir::IRBuilder bld(*graph);
  ir::Value* x = graph->addInput(
      ir::Type::tensor(DType::Float32,
                       {ir::Dim::symbol("B"), ir::Dim::symbol("C", 1), 32}),
      "x");
  graph->addOutput(bld.relu(x));
  ir::verify(*graph);

  const std::string printed = ir::toString(*graph);
  EXPECT_NE(printed.find("f32[B,C+1,32] Tensor"), std::string::npos)
      << printed;
  auto reparsed = ir::parseGraph(printed);
  EXPECT_EQ(ir::toString(*reparsed), printed);
  const ir::Type& t = reparsed->inputs()[0]->type();
  ASSERT_TRUE(t.hasDims());
  ASSERT_EQ(t.dims().size(), 3u);
  EXPECT_EQ(t.dims()[0], ir::Dim::symbol("B"));
  EXPECT_EQ(t.dims()[1], ir::Dim::symbol("C", 1));
  EXPECT_EQ(t.dims()[2], ir::Dim(32));
}

// ---- dynamic-size ops --------------------------------------------------------

TEST(SymbolicDimTest, SizeOfAndDynamicFactories) {
  auto graph = std::make_unique<ir::Graph>();
  ir::IRBuilder bld(*graph);
  ir::Value* x = graph->addInput(ir::Type::tensor(DType::Float32), "x");
  ir::Value* rows = bld.sizeOf(x, 0);
  ir::Value* cols = bld.sizeOf(x, -1);  // negative dims normalize
  ir::Value* z = bld.zeros({-1, -1, 4}, {rows, cols});
  ir::Value* o = bld.ones({-1, 2}, {rows}, DType::Int64);
  graph->addOutput(z);
  graph->addOutput(o);
  ir::verify(*graph);

  Interpreter interp;
  std::vector<RtValue> inputs;
  inputs.emplace_back(Tensor::zeros({3, 5}));
  auto out = interp.run(*graph, inputs);
  EXPECT_EQ(out[0].tensor().sizes(), (Shape{3, 5, 4}));
  EXPECT_EQ(out[1].tensor().sizes(), (Shape{3, 2}));
  EXPECT_EQ(out[1].tensor().dtype(), DType::Int64);
}

TEST(SymbolicDimTest, DynamicReshapeAndExpand) {
  auto graph = std::make_unique<ir::Graph>();
  ir::IRBuilder bld(*graph);
  ir::Value* x = graph->addInput(ir::Type::tensor(DType::Float32), "x");
  ir::Value* rows = bld.sizeOf(x, 0);
  // [B, 6] -> [B, 2, 3], then a [B, 1, 3] slice expanded back to [B, 2, 3].
  ir::Value* r = bld.reshape(x, {-1, 2, 3}, {rows});
  ir::Value* s = bld.slice(r, 1, bld.constInt(0), bld.constInt(1));
  ir::Value* e = bld.expand(s, {-1, 2, 3}, {rows});
  graph->addOutput(bld.add(r, e));
  ir::verify(*graph);

  Interpreter interp;
  for (std::int64_t b : {1, 4}) {
    std::vector<RtValue> inputs;
    inputs.emplace_back(Tensor::ones({b, 6}));
    auto out = interp.run(*graph, inputs);
    EXPECT_EQ(out[0].tensor().sizes(), (Shape{b, 2, 3}));
  }
}

TEST(SymbolicDimTest, DynamicSizeCountMismatchThrows) {
  auto graph = std::make_unique<ir::Graph>();
  ir::IRBuilder bld(*graph);
  ir::Value* x = graph->addInput(ir::Type::tensor(DType::Float32), "x");
  ir::Value* rows = bld.sizeOf(x, 0);
  EXPECT_THROW(bld.zeros({-1, -1, 4}, {rows}), Error);
  EXPECT_THROW(bld.zeros({2, 4}, {rows}), Error);
}

TEST(SymbolicDimTest, StaticReshapeKeepsInferSemantics) {
  // Without the "dyn" marker, -1 in reshape sizes still means "infer".
  auto graph = std::make_unique<ir::Graph>();
  ir::IRBuilder bld(*graph);
  ir::Value* x = graph->addInput(ir::Type::tensor(DType::Float32), "x");
  graph->addOutput(bld.reshape(x, {-1, 3}));
  ir::verify(*graph);
  Interpreter interp;
  std::vector<RtValue> inputs;
  inputs.emplace_back(Tensor::ones({2, 6}));
  EXPECT_EQ(interp.run(*graph, inputs)[0].tensor().sizes(), (Shape{4, 3}));
}

// ---- symbolic pattern registry ------------------------------------------------

TEST(SymbolicPatternTest, BuilderStampsPatternTypesOnInputs) {
  for (const std::string& name : allWorkloads()) {
    const SymbolicPattern& pat = workloadSymbolicPattern(name);
    WorkloadConfig config;
    config.batch = 2;
    config.seqLen = 12;
    config.symbolicDims = true;
    Workload w = buildWorkload(name, config);
    ASSERT_NO_THROW(ir::verify(*w.graph)) << name;
    ASSERT_EQ(w.graph->inputs().size(), pat.inputs.size()) << name;
    for (std::size_t i = 0; i < pat.inputs.size(); ++i) {
      EXPECT_EQ(w.graph->inputs()[i]->type().toString(),
                pat.inputs[i].toString())
          << name << " input " << i;
    }
    // The builder's own sample inputs must instantiate the pattern.
    EXPECT_TRUE(matchesSymbolicPattern(pat, w.inputs)) << name;
    EXPECT_FALSE(pat.signature.empty()) << name;
  }
}

TEST(SymbolicPatternTest, GuardAcceptsAndRejects) {
  const SymbolicPattern& pat = workloadSymbolicPattern("attention");
  auto inputsFor = [](std::int64_t b, std::int64_t t) {
    std::vector<RtValue> in;
    for (int i = 0; i < 3; ++i) in.emplace_back(Tensor::zeros({b, t, 32}));
    return in;
  };
  EXPECT_TRUE(matchesSymbolicPattern(pat, inputsFor(1, 1)));
  EXPECT_TRUE(matchesSymbolicPattern(pat, inputsFor(7, 33)));

  // Inconsistent symbol binding: q and k disagree on T.
  auto bad = inputsFor(2, 8);
  bad[1] = RtValue(Tensor::zeros({2, 9, 32}));
  EXPECT_FALSE(matchesSymbolicPattern(pat, bad));
  // Static dim mismatch, rank mismatch, dtype mismatch, arity mismatch.
  auto badStatic = inputsFor(2, 8);
  badStatic[2] = RtValue(Tensor::zeros({2, 8, 33}));
  EXPECT_FALSE(matchesSymbolicPattern(pat, badStatic));
  auto badRank = inputsFor(2, 8);
  badRank[0] = RtValue(Tensor::zeros({2, 8}));
  EXPECT_FALSE(matchesSymbolicPattern(pat, badRank));
  auto badDtype = inputsFor(2, 8);
  badDtype[0] = RtValue(Tensor::zeros({2, 8, 32}, DType::Int64));
  EXPECT_FALSE(matchesSymbolicPattern(pat, badDtype));
  auto badArity = inputsFor(2, 8);
  badArity.pop_back();
  EXPECT_FALSE(matchesSymbolicPattern(pat, badArity));
}

TEST(SymbolicPatternTest, OffsetDimBindsAgainstDecodeMask) {
  const SymbolicPattern& pat = workloadSymbolicPattern("decode_step");
  auto inputsFor = [](std::int64_t b, std::int64_t ctx,
                      std::int64_t maskLen) {
    std::vector<RtValue> in;
    in.emplace_back(Tensor::zeros({b, 32}));
    in.emplace_back(Tensor::zeros({b, ctx, 32}));
    in.emplace_back(Tensor::zeros({b, ctx, 32}));
    in.emplace_back(Tensor::zeros({b, maskLen}));
    return in;
  };
  EXPECT_TRUE(matchesSymbolicPattern(pat, inputsFor(3, 16, 17)));
  // mask must be exactly C+1 long.
  EXPECT_FALSE(matchesSymbolicPattern(pat, inputsFor(3, 16, 16)));
  EXPECT_FALSE(matchesSymbolicPattern(pat, inputsFor(3, 16, 18)));
}

// ---- acceptance differential ---------------------------------------------------

class SymbolicDifferentialTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(SymbolicDifferentialTest, PolymorphicMatchesSpecializedBitwise) {
  const std::string name = GetParam();

  // One symbolic graph, built once; the concrete configs it must serve.
  WorkloadConfig symConfig;
  symConfig.symbolicDims = true;
  Workload sym = buildWorkload(name, symConfig);
  ASSERT_NO_THROW(ir::verify(*sym.graph));

  struct Case {
    std::int64_t batch;
    std::int64_t seqLen;
  };
  const Case cases[] = {{1, 16}, {2, 12}, {3, 7}};

  for (bool jit : {true, false}) {
    for (int threads : {1, 0}) {
      PipelineOptions options;
      options.threads = threads;
      options.texprJit = jit;
      Pipeline poly(PipelineKind::TensorSsa, *sym.graph, options);
      for (const Case& c : cases) {
        WorkloadConfig config;
        config.batch = c.batch;
        config.seqLen = c.seqLen;
        Workload w = buildWorkload(name, config);
        Pipeline specialized(PipelineKind::TensorSsa, *w.graph, options);

        auto expected = specialized.run(w.inputs);
        auto got = poly.run(w.inputs);
        ASSERT_EQ(expected.size(), got.size()) << name;
        for (std::size_t i = 0; i < got.size(); ++i) {
          if (!expected[i].isTensor()) continue;
          EXPECT_TRUE(bitwiseEqual(expected[i].tensor(), got[i].tensor()))
              << name << " output " << i << " differs at b=" << c.batch
              << " t=" << c.seqLen << " threads=" << threads
              << " jit=" << jit;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SymbolicDifferentialTest,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace tssa
