// Determinism tests for the threaded execution engine (ISSUE: differential &
// determinism suite). The contract under test: for every workload, running
// the TensorSSA pipeline with 1, 4, or hardware_concurrency() workers
// produces bitwise-identical output tensors AND identical profiler numbers
// (kernel-launch counts and per-kernel histogram) — threading changes
// wall-clock time only. Plus unit tests for the ThreadPool primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "src/runtime/pipeline.h"
#include "src/runtime/thread_pool.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::RtValue;
using runtime::ThreadPool;
using workloads::buildWorkload;
using workloads::Workload;
using workloads::WorkloadConfig;

// ---- ThreadPool unit tests ------------------------------------------------

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool::shared().parallelFor(
      1000, 7, [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
        for (std::int64_t i = begin; i < end; ++i) ++hits[i];
      });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundsAreDeterministic) {
  // Chunk boundaries must depend only on (n, maxWorkers) — run twice and
  // compare the partitions.
  auto partition = [](std::int64_t n, int workers) {
    std::mutex m;
    std::set<std::pair<std::int64_t, std::int64_t>> chunks;
    ThreadPool::shared().parallelFor(
        n, workers, [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
          std::lock_guard<std::mutex> lock(m);
          chunks.emplace(begin, end);
        });
    return chunks;
  };
  const auto a = partition(97, 4);
  const auto b = partition(97, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
}

TEST(ThreadPoolTest, DegenerateSizesRunSerially) {
  int calls = 0;
  ThreadPool::shared().parallelFor(
      1, 8, [&](std::int64_t begin, std::int64_t end, int chunk) {
        ++calls;
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 1);
        EXPECT_EQ(chunk, 0);
      });
  EXPECT_EQ(calls, 1);
  ThreadPool::shared().parallelFor(
      0, 8, [&](std::int64_t, std::int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 1);  // empty range: no invocation at all
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  std::atomic<int> calls{0};
  ThreadPool::shared().parallelFor(
      3, 16, [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
        ++calls;
        EXPECT_EQ(end - begin, 1);
      });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      ThreadPool::shared().parallelFor(
          100, 4,
          [&](std::int64_t begin, std::int64_t /*end*/, int /*chunk*/) {
            if (begin >= 50) throw std::runtime_error("boom");
          }),
      std::runtime_error);
  // The pool must survive a failed region and keep executing work.
  std::atomic<int> ok{0};
  ThreadPool::shared().parallelFor(
      8, 4, [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
        ok += static_cast<int>(end - begin);
      });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A chunk that itself calls parallelFor must complete even when every
  // worker is busy: inner regions run on the calling thread at worst.
  std::atomic<int> total{0};
  ThreadPool::shared().parallelFor(
      4, 4, [&](std::int64_t obegin, std::int64_t oend, int /*chunk*/) {
        for (std::int64_t i = obegin; i < oend; ++i) {
          ThreadPool::shared().parallelFor(
              8, 2, [&](std::int64_t begin, std::int64_t end, int /*c*/) {
                total += static_cast<int>(end - begin);
              });
        }
      });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, HelpingBarrierNeverStealsSubmittedTasks) {
  // Regression: submit()ed tasks may block on locks the parallelFor caller
  // holds (the serving engine's per-program exec mutex). If the helping
  // barrier stole this task, the caller would run it on its own thread and
  // self-deadlock on the non-recursive mutex it already holds.
  std::mutex m;
  std::atomic<bool> taskRan{false};
  std::atomic<bool> taskDone{false};  // set after m is released
  std::unique_lock<std::mutex> held(m);
  ThreadPool::shared().submit([&] {
    {
      std::lock_guard<std::mutex> lock(m);
      taskRan = true;
    }
    taskDone = true;
  });
  std::atomic<std::int64_t> sum{0};
  ThreadPool::shared().parallelFor(
      256, 8, [&](std::int64_t begin, std::int64_t end, int /*chunk*/) {
        for (std::int64_t i = begin; i < end; ++i) sum += i;
      });
  EXPECT_EQ(sum.load(), 256 * 255 / 2);
  EXPECT_FALSE(taskRan.load());  // parked on a worker, never stolen
  held.unlock();
  // Wait on taskDone, not taskRan: it is ordered after the worker's unlock,
  // so destroying m below cannot race with that unlock.
  while (!taskDone.load()) std::this_thread::yield();
  EXPECT_TRUE(taskRan.load());
}

TEST(ThreadPoolTest, LockHoldingTasksWithNestedParallelForDoNotDeadlock) {
  // The serving-engine shape: pool tasks serialize on a shared mutex and
  // call parallelFor while holding it (threaded interpreter). The helping
  // barrier must not pop a sibling task that needs the same mutex — doing
  // so self-deadlocks (same thread) or forms a lock cycle (two helpers).
  std::mutex programMutex;
  std::atomic<int> done{0};
  constexpr int kBatches = 8;
  for (int b = 0; b < kBatches; ++b) {
    ThreadPool::shared().submit(
        [&] {
          {
            std::lock_guard<std::mutex> lock(programMutex);
            std::atomic<std::int64_t> local{0};
            ThreadPool::shared().parallelFor(
                64, 4, [&](std::int64_t begin, std::int64_t end, int /*c*/) {
                  for (std::int64_t i = begin; i < end; ++i) local += i;
                });
            EXPECT_EQ(local.load(), 64 * 63 / 2);
          }
          ++done;  // after unlock: done==kBatches ⇒ safe to destroy the mutex
        },
        /*minWorkers=*/4);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (done.load() < kBatches &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(done.load(), kBatches);
}

// ---- Bitwise determinism across thread counts -----------------------------

bool bitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  for (IndexIterator it(a.sizes()); it.valid(); it.next()) {
    if (a.scalarAt(it.index()) != b.scalarAt(it.index())) return false;
  }
  return true;
}

class ParallelExecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelExecTest, ThreadCountIsUnobservable) {
  WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 12;
  Workload w = buildWorkload(GetParam(), config);

  PipelineOptions serialOpts;
  serialOpts.threads = 1;
  Pipeline serial(PipelineKind::TensorSsa, *w.graph, serialOpts);
  const std::vector<RtValue> expected = serial.run(w.inputs);

  for (int threads : {4, ThreadPool::hardwareThreads()}) {
    PipelineOptions opts;
    opts.threads = threads;
    Pipeline p(PipelineKind::TensorSsa, *w.graph, opts);
    const std::vector<RtValue> got = p.run(w.inputs);

    ASSERT_EQ(expected.size(), got.size()) << w.name;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (!expected[i].isTensor()) continue;
      EXPECT_TRUE(bitwiseEqual(expected[i].tensor(), got[i].tensor()))
          << w.name << " output " << i << " not bitwise identical at threads="
          << threads;
    }
    // Profiler metrics are part of the determinism contract: the threaded
    // engine merges per-worker accumulators in chunk order, so counts and
    // the per-kernel histogram must match the serial run exactly.
    EXPECT_EQ(serial.profiler().kernelLaunches(), p.profiler().kernelLaunches())
        << w.name << " threads=" << threads;
    EXPECT_EQ(serial.profiler().bytesMoved(), p.profiler().bytesMoved())
        << w.name << " threads=" << threads;
    EXPECT_EQ(serial.profiler().flops(), p.profiler().flops())
        << w.name << " threads=" << threads;
    EXPECT_EQ(serial.profiler().kernelHistogram(), p.profiler().kernelHistogram())
        << w.name << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParallelExecTest,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto& info) { return info.param; });

TEST(ParallelExecTest, YolactActuallyBearsAParallelMap) {
  // Guard against the suite silently testing nothing: at least one workload
  // must reach the threaded ParallelMap path (yolact's per-detection mask
  // loop, trip count 16, carried write dim 1).
  Workload w = buildWorkload("yolact", {});
  Pipeline p(PipelineKind::TensorSsa, *w.graph);
  bool found = false;
  std::vector<const ir::Block*> stack{p.compiled().topBlock()};
  while (!stack.empty()) {
    const ir::Block* b = stack.back();
    stack.pop_back();
    for (const ir::Node* node : *b) {
      if (node->kind() == ir::OpKind::ParallelMap &&
          node->attrs().has("par_dims")) {
        found = true;
      }
      for (const ir::Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  EXPECT_TRUE(found)
      << "no ParallelMap with par_dims metadata in compiled yolact";
}

}  // namespace
}  // namespace tssa
