// Serving over symbolic shapes (DESIGN.md §13).
//
// With EngineOptions::symbolicShapes (the default) the program cache is
// keyed on the workload's symbolic pattern, not the concrete input shapes:
// the compile count and cache size stay flat while shape diversity grows,
// requests that differ only along the batch dim coalesce raggedly, and
// everything stays bitwise identical to solo execution.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "src/serve/engine.h"
#include "src/tensor/shape.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using serve::Engine;
using serve::EngineOptions;
using serve::RejectedError;
using serve::RejectReason;
using serve::Request;
using serve::Response;
using runtime::RtValue;
using workloads::WorkloadConfig;

WorkloadConfig configFor(std::int64_t batch, std::int64_t seqLen) {
  WorkloadConfig c;
  c.batch = batch;
  c.seqLen = seqLen;
  return c;
}

bool bitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  for (IndexIterator it(a.sizes()); it.valid(); it.next()) {
    if (a.scalarAt(it.index()) != b.scalarAt(it.index())) return false;
  }
  return true;
}

TEST(ServeSymbolicTest, CompileCountStaysFlatAcrossShapeDiversity) {
  EngineOptions options;
  options.maxBatch = 1;  // isolate caching from coalescing
  Engine engine(options);

  // 12 distinct (batch, seqLen) shapes; exact-shape keys would compile 12
  // programs, the polymorphic key compiles exactly one.
  int requests = 0;
  for (std::int64_t b : {1, 2, 3}) {
    for (std::int64_t t : {4, 7, 9, 12}) {
      Request r;
      r.workload = "attention";
      r.config = configFor(b, t);
      Response resp = engine.submit(std::move(r)).get();
      EXPECT_FALSE(resp.outputs.empty());
      EXPECT_EQ(resp.cacheHit, requests > 0);
      ++requests;
    }
  }
  EXPECT_EQ(engine.cacheStats().compiles, 1u);
  EXPECT_EQ(engine.cacheStats().size, 1u);
  EXPECT_EQ(engine.metrics().errors, 0u);
}

TEST(ServeSymbolicTest, PolymorphicResponsesMatchShapeSpecializedBitwise) {
  EngineOptions poly;
  poly.maxBatch = 1;
  EngineOptions exact = poly;
  exact.symbolicShapes = false;
  Engine polyEngine(poly);
  Engine exactEngine(exact);

  for (const char* workload : {"lstm", "seq2seq", "yolov3", "decode_step"}) {
    for (std::int64_t b : {1, 3}) {
      auto makeRequest = [&] {
        Request r;
        r.workload = workload;
        r.config = configFor(b, 6);
        return r;
      };
      const Response got = polyEngine.submit(makeRequest()).get();
      const Response want = exactEngine.submit(makeRequest()).get();
      ASSERT_EQ(got.outputs.size(), want.outputs.size());
      for (std::size_t o = 0; o < got.outputs.size(); ++o) {
        EXPECT_TRUE(
            bitwiseEqual(got.outputs[o].tensor(), want.outputs[o].tensor()))
            << workload << " output " << o << " at batch " << b;
      }
    }
  }
}

TEST(ServeSymbolicTest, RaggedBatchCoalescesAndMatchesSoloBitwise) {
  // Solo reference: each request alone, batching off.
  EngineOptions soloOptions;
  soloOptions.maxBatch = 1;
  Engine soloEngine(soloOptions);
  const std::int64_t batches[] = {1, 3, 2};
  std::vector<Response> solo;
  for (std::int64_t b : batches) {
    Request r;
    r.workload = "lstm";
    r.config = configFor(b, 6);
    solo.push_back(soloEngine.submit(std::move(r)).get());
  }

  // Ragged batch: same three requests inside one window. They share the
  // polymorphic key and agree on every non-batch extent, so the batcher may
  // coalesce them even though their batch sizes differ.
  EngineOptions batchedOptions;
  batchedOptions.maxBatch = 3;
  batchedOptions.maxWaitUs = 200'000;  // sealed by count, not the window
  Engine batchedEngine(batchedOptions);
  std::vector<std::future<Response>> futures;
  for (std::int64_t b : batches) {
    Request r;
    r.workload = "lstm";
    r.config = configFor(b, 6);
    futures.push_back(batchedEngine.submit(std::move(r)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response got = futures[i].get();
    EXPECT_EQ(got.batchedWith, 3) << "request " << i << " did not coalesce";
    ASSERT_EQ(got.outputs.size(), solo[i].outputs.size());
    for (std::size_t o = 0; o < got.outputs.size(); ++o) {
      EXPECT_TRUE(bitwiseEqual(got.outputs[o].tensor(),
                               solo[i].outputs[o].tensor()))
          << "request " << i << " output " << o;
    }
  }
  EXPECT_EQ(batchedEngine.cacheStats().compiles, 1u);
  EXPECT_EQ(batchedEngine.metrics().batches, 1u);
}

TEST(ServeSymbolicTest, MismatchedSequenceLengthsDoNotCoalesce) {
  EngineOptions options;
  options.maxBatch = 2;
  options.maxWaitUs = 200'000;
  Engine engine(options);

  Request a;
  a.workload = "attention";
  a.config = configFor(2, 6);
  Request b;
  b.workload = "attention";
  b.config = configFor(2, 9);  // same key, different non-batch extent
  auto fa = engine.submit(std::move(a));
  auto fb = engine.submit(std::move(b));
  // The second arrival is incompatible with the open batch (its sequence
  // length differs), so the batcher seals the first solo — but both still
  // run through the one polymorphic program.
  EXPECT_EQ(fa.get().batchedWith, 1);
  EXPECT_EQ(fb.get().batchedWith, 1);
  EXPECT_EQ(engine.cacheStats().compiles, 1u);
}

// Satellite: an unknown workload used to escape Engine::submit as the
// registry's raw error; it must be the same typed, counted refusal every
// other shed path produces.
TEST(ServeSymbolicTest, UnknownWorkloadIsTypedBadRequest) {
  Engine engine;
  Request bogus;
  bogus.workload = "resnet";  // not registered
  try {
    engine.submit(std::move(bogus));
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::BadRequest);
  }

  Request wrongArity;
  wrongArity.workload = "lstm";
  wrongArity.config = configFor(2, 8);
  wrongArity.inputs = {RtValue(Tensor::zeros({2, 8, 128}))};
  try {
    engine.submit(std::move(wrongArity));
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::BadRequest);
  }

  // Metrics balance: both refusals are counted under bad_request, nothing
  // leaked into the queue, and the engine still serves.
  serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.rejectedFor(RejectReason::BadRequest), 2u);
  EXPECT_EQ(snap.rejectedTotal(), 2u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.requests, 0u);

  Request ok;
  ok.workload = "attention";
  ok.config = configFor(1, 4);
  EXPECT_FALSE(engine.submit(std::move(ok)).get().outputs.empty());
  snap = engine.metrics();
  EXPECT_EQ(snap.requests, 1u);
  EXPECT_EQ(snap.rejectedTotal(), 2u);
}

}  // namespace
}  // namespace tssa
