// Profiler accumulation semantics: Pipeline::run resets the profiler before
// executing, Pipeline::runAccumulate does not. N accumulated runs must report
// exactly N× the launch counts (and histogram) of a single run — at one
// worker thread and at hardware concurrency, since the executor's profiling
// is deterministic at any thread count (DESIGN.md §6).
#include <gtest/gtest.h>

#include <map>
#include <vector>
#include <string>

#include "src/runtime/pipeline.h"
#include "src/runtime/thread_pool.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::Profiler;
using runtime::RtValue;
using workloads::buildWorkload;
using workloads::Workload;
using workloads::WorkloadConfig;

WorkloadConfig smallConfig() {
  WorkloadConfig c;
  c.batch = 2;
  c.seqLen = 6;
  return c;
}

class ProfilerAccumulateTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfilerAccumulateTest, RunAccumulateSumsExactlyNRuns) {
  const int threads = GetParam();
  constexpr int kRuns = 3;
  Workload w = buildWorkload("lstm", smallConfig());

  PipelineOptions options;
  options.threads = threads;
  Pipeline pipeline(PipelineKind::TensorSsa, *w.graph, options);

  // Baseline: one run (which resets the profiler first).
  pipeline.run(w.inputs);
  const Profiler& prof = pipeline.profiler();
  const std::int64_t launches1 = prof.kernelLaunches();
  const std::int64_t bytes1 = prof.bytesMoved();
  const std::int64_t flops1 = prof.flops();
  const double simUs1 = prof.simTimeUs();
  const std::map<std::string, std::int64_t> hist1 = prof.kernelHistogram();
  ASSERT_GT(launches1, 0);
  ASSERT_FALSE(hist1.empty());

  // N accumulated runs: run() resets, then kRuns-1 × runAccumulate on top.
  pipeline.run(w.inputs);
  for (int i = 1; i < kRuns; ++i) pipeline.runAccumulate(w.inputs);

  EXPECT_EQ(prof.kernelLaunches(), kRuns * launches1);
  EXPECT_EQ(prof.bytesMoved(), kRuns * bytes1);
  EXPECT_EQ(prof.flops(), kRuns * flops1);
  // Simulated time is a sum of doubles; identical per-run terms, so the
  // total is N× the single run up to floating-point accumulation error.
  EXPECT_NEAR(prof.simTimeUs(), kRuns * simUs1, 1e-6 * kRuns * simUs1);

  const std::map<std::string, std::int64_t>& histN = prof.kernelHistogram();
  ASSERT_EQ(histN.size(), hist1.size());
  for (const auto& [name, count] : hist1) {
    auto it = histN.find(name);
    ASSERT_NE(it, histN.end()) << name;
    EXPECT_EQ(it->second, kRuns * count) << name;
  }
}

TEST_P(ProfilerAccumulateTest, RunResetsAccumulatedState) {
  const int threads = GetParam();
  Workload w = buildWorkload("attention", smallConfig());

  PipelineOptions options;
  options.threads = threads;
  Pipeline pipeline(PipelineKind::TensorSsa, *w.graph, options);

  pipeline.run(w.inputs);
  const std::int64_t launches1 = pipeline.profiler().kernelLaunches();
  const double simUs1 = pipeline.profiler().simTimeUs();

  // Pile up accumulated state, then verify a fresh run() discards it.
  pipeline.runAccumulate(w.inputs);
  pipeline.runAccumulate(w.inputs);
  ASSERT_GT(pipeline.profiler().kernelLaunches(), launches1);

  pipeline.run(w.inputs);
  EXPECT_EQ(pipeline.profiler().kernelLaunches(), launches1);
  EXPECT_DOUBLE_EQ(pipeline.profiler().simTimeUs(), simUs1);
}

TEST(ProfilerResetTest, ResetClearsEveryCounter) {
  Profiler prof(runtime::DeviceSpec::dataCenter(), runtime::HostSpec{});
  prof.kernel("add", /*bytes=*/1024, /*flops=*/256, /*hostUs=*/1.5);
  prof.opDispatch();
  ASSERT_EQ(prof.kernelLaunches(), 1);
  ASSERT_GT(prof.simTimeUs(), 0.0);

  prof.reset();
  EXPECT_EQ(prof.kernelLaunches(), 0);
  EXPECT_EQ(prof.bytesMoved(), 0);
  EXPECT_EQ(prof.flops(), 0);
  EXPECT_DOUBLE_EQ(prof.gpuTimeUs(), 0.0);
  EXPECT_DOUBLE_EQ(prof.hostTimeUs(), 0.0);
  EXPECT_DOUBLE_EQ(prof.simTimeUs(), 0.0);
  EXPECT_TRUE(prof.kernelHistogram().empty());
}

std::vector<int> threadCounts() {
  // On a single-core host 1 and hardwareThreads() coincide; gtest rejects
  // duplicate parameterized test names, so dedupe.
  std::vector<int> counts = {1};
  if (runtime::ThreadPool::hardwareThreads() > 1)
    counts.push_back(runtime::ThreadPool::hardwareThreads());
  return counts;
}

INSTANTIATE_TEST_SUITE_P(
    Threads, ProfilerAccumulateTest, ::testing::ValuesIn(threadCounts()),
    [](const ::testing::TestParamInfo<int>& info) {
      return "threads" + std::to_string(info.param);
    });

}  // namespace
}  // namespace tssa
