// KernelCache behaviour: cache-key correctness (what must share a kernel
// and what must not), single-flight compilation under concurrency, and
// eviction while a compiled kernel is still in use.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "src/ir/builder.h"
#include "src/tensor/random.h"
#include "src/texpr/codegen.h"
#include "src/texpr/jit.h"
#include "src/texpr/texpr.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::RtValue;
using texpr::codegen::Generator;
using texpr::codegen::InputSig;
using texpr::jit::KernelCache;

/// Builds `relu(p0 + p1)` as a FusionGroup body inside `g`.
Block* addSquashBody(Graph& g) {
  Value* in0 = g.addInput(Type::tensor());
  Value* in1 = g.addInput(Type::tensor());
  IRBuilder b(g);
  Node* group = b.emitNode(OpKind::FusionGroup, {in0, in1}, 0);
  Block* body = group->addBlock();
  Value* p0 = body->addParam(in0->type());
  Value* p1 = body->addParam(in1->type());
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  body->addReturn(inner.relu(inner.add(p0, p1)));
  group->addOutput(Type::tensor());
  g.addOutput(group->output(0));
  return body;
}

InputSig tensorSig(DType dtype, int rank, bool contiguous) {
  InputSig s;
  s.isTensor = true;
  s.dtype = dtype;
  s.rank = rank;
  s.contiguous = contiguous;
  return s;
}

TEST(JitCacheTest, KeyDistinguishesDtypeRankAndContiguity) {
  Graph g;
  Generator gen(*addSquashBody(g));
  const std::vector<InputSig> f32{tensorSig(DType::Float32, 2, true),
                                  tensorSig(DType::Float32, 2, true)};
  const std::vector<InputSig> i64{tensorSig(DType::Int64, 2, true),
                                  tensorSig(DType::Float32, 2, true)};
  const std::vector<InputSig> rank3{tensorSig(DType::Float32, 3, true),
                                    tensorSig(DType::Float32, 2, true)};
  const std::vector<InputSig> strided{tensorSig(DType::Float32, 2, false),
                                      tensorSig(DType::Float32, 2, true)};
  const std::string base = gen.cacheKey(f32);
  EXPECT_NE(base, gen.cacheKey(i64));
  EXPECT_NE(base, gen.cacheKey(rank3));
  EXPECT_NE(base, gen.cacheKey(strided));
  // Same signature twice: identical key (the key is a pure function).
  EXPECT_EQ(base, gen.cacheKey(f32));
}

TEST(JitCacheTest, StructurallyIdenticalBodiesShareAKey) {
  // The same body built in two unrelated graphs must map to one kernel:
  // the key fingerprints structure, not Value identities.
  Graph g1;
  Graph g2;
  Generator gen1(*addSquashBody(g1));
  Generator gen2(*addSquashBody(g2));
  const std::vector<InputSig> sig{tensorSig(DType::Float32, 2, true),
                                  tensorSig(DType::Float32, 2, true)};
  EXPECT_EQ(gen1.cacheKey(sig), gen2.cacheKey(sig));
}

TEST(JitCacheTest, SingleFlightCompileUnderConcurrency) {
  Graph g;
  Block* body = addSquashBody(g);
  Generator gen(*body);
  const std::vector<InputSig> sig{tensorSig(DType::Float32, 2, true),
                                  tensorSig(DType::Float32, 2, true)};
  ASSERT_EQ(gen.declineFor(sig), texpr::codegen::Decline::None);
  const std::string key = gen.cacheKey(sig);
  const std::string source = gen.emitSource(sig);

  auto& cache = KernelCache::instance();
  cache.clearForTesting();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<texpr::jit::CompiledKernel>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          cache.getOrCompile(key, [&] { return source; });
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = cache.stats();
  // Exactly one compile; every other thread either rendezvoused on it or
  // hit the published entry. All callers got the same kernel object.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compileFails, 0u);
  EXPECT_EQ(stats.size, 1u);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[static_cast<std::size_t>(t)], nullptr);
    EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);
  }
  cache.clearForTesting();
}

TEST(JitCacheTest, HonorsTmpdirForScratchFiles) {
  if (!texpr::jit::jitEnabled()) GTEST_SKIP() << "texpr JIT disabled";
  auto& cache = KernelCache::instance();
  cache.clearForTesting();

  const char* old = std::getenv("TMPDIR");
  const std::string saved = old != nullptr ? old : "";

  // Scratch dir the compile must land in (sandboxes point TMPDIR at the one
  // writable location; a hardcoded /tmp would miss it).
  char scratch[] = "./tssa-jit-scratch-XXXXXX";
  ASSERT_NE(::mkdtemp(scratch), nullptr);
  ::setenv("TMPDIR", scratch, 1);

  Graph g;
  Block* body = addSquashBody(g);
  Rng rng(33);
  std::vector<RtValue> inputs{RtValue(rng.uniform({4, 4}, -1, 1)),
                              RtValue(rng.uniform({4, 4}, -1, 1))};
  texpr::Kernel jitted(*body, /*allowJit=*/true);
  texpr::Kernel reference(*body, /*allowJit=*/false);
  const auto got = jitted.run(inputs, nullptr, 1);

  // The kernel engaged: one successful native compile, no fallback — with
  // every scratch file created under TMPDIR and cleaned up afterwards.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().compileFails, 0u);
  EXPECT_EQ(cache.stats().size, 1u);
  const auto want = reference.run(inputs, nullptr, 1);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(allClose(got[i].tensor(), want[i].tensor(), 0.0));
  EXPECT_EQ(::rmdir(scratch), 0) << "scratch dir not empty or never used";

  // Counter-probe: an unusable TMPDIR must break the compile — proof the
  // path above really came from the environment, not a /tmp fallback.
  cache.clearForTesting();
  ::setenv("TMPDIR", "./tssa-jit-does-not-exist", 1);
  texpr::Kernel broken(*body, /*allowJit=*/true);
  const auto fallback = broken.run(inputs, nullptr, 1);
  EXPECT_EQ(cache.stats().compileFails, 1u);
  for (std::size_t i = 0; i < fallback.size(); ++i)
    EXPECT_TRUE(allClose(fallback[i].tensor(), want[i].tensor(), 0.0));

  if (saved.empty())
    ::unsetenv("TMPDIR");
  else
    ::setenv("TMPDIR", saved.c_str(), 1);
  cache.clearForTesting();
}

TEST(JitCacheTest, EvictedKernelStaysUsableWhileReferenced) {
  if (!texpr::jit::jitEnabled()) GTEST_SKIP() << "texpr JIT disabled";
  auto& cache = KernelCache::instance();
  cache.clearForTesting();
  cache.setCapacityForTesting(1);

  // Two structurally different bodies: compiling the second must evict the
  // first from the cache, while the first Kernel's memoized shared_ptr
  // keeps the code mapped and runnable.
  Graph g1;
  Block* body1 = addSquashBody(g1);
  Graph g2;
  Value* in = g2.addInput(Type::tensor());
  IRBuilder b2(g2);
  Node* group2 = b2.emitNode(OpKind::FusionGroup, {in}, 0);
  Block* body2 = group2->addBlock();
  Value* p = body2->addParam(in->type());
  IRBuilder inner2(g2);
  inner2.setInsertionPointToEnd(body2);
  body2->addReturn(inner2.tanh(inner2.neg(p)));
  group2->addOutput(Type::tensor());
  g2.addOutput(group2->output(0));

  Rng rng(21);
  std::vector<RtValue> inputs1{RtValue(rng.uniform({4, 4}, -1, 1)),
                               RtValue(rng.uniform({4, 4}, -1, 1))};
  std::vector<RtValue> inputs2{RtValue(rng.uniform({4, 4}, -1, 1))};

  texpr::Kernel k1(*body1, /*allowJit=*/true);
  texpr::Kernel k2(*body2, /*allowJit=*/true);
  texpr::Kernel ref1(*body1, /*allowJit=*/false);

  const auto first = k1.run(inputs1, nullptr, 1);
  ASSERT_EQ(cache.stats().size, 1u);
  (void)k2.run(inputs2, nullptr, 1);
  // Capacity 1: compiling body2's kernel evicted body1's cache entry.
  EXPECT_EQ(cache.stats().size, 1u);

  // k1 still runs natively through its memoized kernel (counted as a hit)
  // and still matches both its earlier result and the interpreter.
  const auto before = cache.stats();
  const auto again = k1.run(inputs1, nullptr, 1);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  const auto reference = ref1.run(inputs1, nullptr, 1);
  ASSERT_EQ(again.size(), reference.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(allClose(again[i].tensor(), reference[i].tensor(), 0.0));
    EXPECT_TRUE(allClose(first[i].tensor(), reference[i].tensor(), 0.0));
  }

  cache.setCapacityForTesting(256);
  cache.clearForTesting();
}

}  // namespace
}  // namespace tssa
